#ifndef CONTRATOPIC_TOPICMODEL_NEURAL_BASE_H_
#define CONTRATOPIC_TOPICMODEL_NEURAL_BASE_H_

// Shared machinery for the neural topic models: a VAE encoder block and a
// training loop (Adam + gradient clipping + minibatching). Concrete models
// implement BuildBatch(), returning the scalar batch loss plus the
// differentiable K x V topic-word Var -- the hook ContraTopic's topic-wise
// contrastive regularizer attaches to (enabling the paper's backbone
// substitution study, Figure 6).

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/autodiff.h"
#include "topicmodel/topic_model.h"
#include "util/rng.h"
#include "util/telemetry.h"

namespace contratopic {
namespace topicmodel {

using autodiff::Var;
using tensor::Tensor;

// One minibatch handed to BuildBatch.
struct Batch {
  std::vector<int> indices;
  Tensor counts;      // B x V raw counts
  Tensor normalized;  // B x V, rows sum to 1
  const text::BowCorpus* corpus = nullptr;
};

// VAE inference network: MLP -> (mu, logvar) -> reparameterized logistic-
// normal theta (paper §III.B).
class VaeEncoder : public nn::Module {
 public:
  VaeEncoder(int64_t vocab_size, int64_t num_topics, const TrainConfig& config,
             util::Rng& rng);

  struct Output {
    Var mu;      // B x K
    Var logvar;  // B x K
    Var theta;   // B x K, rows sum to 1
  };
  // `sample` draws epsilon ~ N(0, I); when false theta = softmax(mu)
  // (used at inference time).
  Output Forward(const Var& x_normalized, bool sample);

  std::vector<nn::Parameter> Parameters() override;
  std::vector<nn::NamedTensor> Buffers() override;
  void SetTraining(bool training) override;

  // KL(q(theta|x) || N(0, I)) summed over the batch.
  static Var KlDivergence(const Output& encoded);

 private:
  nn::Mlp mlp_;
  nn::Linear mu_head_;
  nn::Linear logvar_head_;
  util::Rng* rng_;
};

// Base class implementing Train()/InferTheta() on top of BuildBatch().
class NeuralTopicModel : public TopicModel {
 public:
  NeuralTopicModel(std::string name, const TrainConfig& config);

  std::string name() const override { return name_; }
  int num_topics() const override { return config_.num_topics; }

  TrainStats Train(const text::BowCorpus& corpus) override;
  // Continues training an already-trained model on (new) data for
  // `epochs` epochs without re-running Prepare(): the online / streaming
  // path (paper §VI future work). Optimizer state is rebuilt per call.
  TrainStats TrainMore(const text::BowCorpus& corpus, int epochs);
  Tensor Beta() const override;
  Tensor InferTheta(const text::BowCorpus& corpus) override;

  // --- Hooks for subclasses -------------------------------------------

  struct BatchGraph {
    Var loss;  // 1x1 scalar to minimize
    Var beta;  // K x V differentiable topic-word distribution
    // Optional named scalar components of the loss -- e.g. {"recon", ...}
    // and {"kl", ...} from the VAE backbones, {"l_con", ...} from
    // ContraTopic. The training loop averages them per epoch into the
    // telemetry stream; models that report nothing emit a loss-only
    // epoch record.
    std::vector<std::pair<std::string, float>> loss_components;
  };
  // Builds the loss graph for one minibatch (training mode).
  virtual BatchGraph BuildBatch(const Batch& batch) = 0;

  // Maps a (B x V normalized) constant batch to a (B x K) theta tensor in
  // evaluation mode.
  virtual Tensor InferThetaBatch(const Tensor& x_normalized) = 0;

  // All trainable parameters.
  virtual std::vector<nn::Parameter> Parameters() = 0;
  virtual void SetTraining(bool training) = 0;

  // All persistent non-trainable tensors inference depends on: module
  // buffers (batch-norm running statistics) plus model constants derived
  // from the frozen embeddings (e.g. ETM's rho). Together with
  // Parameters() this must cover every tensor InferThetaBatch reads, or
  // a checkpoint-restored model will not reproduce the original bitwise.
  virtual std::vector<nn::NamedTensor> Buffers() { return {}; }

  // Parameters() and Buffers() flattened into one named state dict
  // (pointers into live model storage; unique names CHECK-enforced).
  std::vector<nn::NamedTensor> StateTensors();

  // Marks the model as trained with the given cached topic-word
  // distribution and switches it to evaluation mode — the final step of a
  // checkpoint restore, after StateTensors() have been overwritten.
  void RestoreTrainedState(Tensor beta);

  // Called once before the first epoch (models may precompute statistics
  // of the training corpus, e.g. NPMI or tf-idf).
  virtual void Prepare(const text::BowCorpus& corpus) {}

  // Optional: a differentiable document representation for contrastive
  // objectives over documents (CLNTM; ContraTopic's multi-level variant).
  // Undefined Var when the model does not support it.
  virtual Var EncodeRepresentation(const Tensor& x_normalized) {
    return Var();
  }

  // Extra per-method memory for the computational-analysis bench.
  virtual int64_t ExtraMemoryBytes() const { return 0; }

  const TrainConfig& config() const { return config_; }
  util::Rng& rng() { return rng_; }
  bool trained() const { return trained_; }

  // Fraction of training completed, in [0, 1] (1 after training). Lets
  // subclasses ramp regularizers (e.g. ContraTopic's lambda warmup).
  double TrainingProgress() const { return training_progress_; }

  // --- Observability ---------------------------------------------------

  // Attaches a telemetry sink (not owned; may be null, and must outlive
  // training). The loop then streams one "epoch" JSONL record per epoch:
  // mean loss, loss components, evaluator metrics, and per-stage wall
  // time (see util/telemetry.h).
  void SetTelemetry(util::RunTelemetry* telemetry) { telemetry_ = telemetry; }

  // Per-epoch interpretability metrics computed from the epoch's final
  // beta, e.g. {"npmi", ...}, {"diversity", ...}. Runs on the training
  // thread after each epoch; keep it proportional to K x V, not corpus
  // size. The eval stack stays out of this layer -- the bench harness
  // wires in eval::PerTopicCoherence & friends.
  using EpochEvaluator =
      std::function<std::vector<std::pair<std::string, double>>(
          const Tensor& beta)>;
  void SetEpochEvaluator(EpochEvaluator evaluator) {
    epoch_evaluator_ = std::move(evaluator);
  }

 protected:
  // Shared epoch loop used by Train and TrainMore.
  TrainStats RunTrainingLoop(const text::BowCorpus& corpus, int epochs);

  std::string name_;
  TrainConfig config_;
  util::Rng rng_;
  Tensor final_beta_;  // cached after training
  bool trained_ = false;
  bool training_ = true;  // current mode (mirrors nn::Module)
  double training_progress_ = 0.0;
  util::RunTelemetry* telemetry_ = nullptr;  // not owned
  EpochEvaluator epoch_evaluator_;
};

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_NEURAL_BASE_H_
