#ifndef CONTRATOPIC_TOPICMODEL_NEURAL_BASE_H_
#define CONTRATOPIC_TOPICMODEL_NEURAL_BASE_H_

// Shared machinery for the neural topic models: a VAE encoder block and a
// training loop (Adam + gradient clipping + minibatching). Concrete models
// implement BuildBatch(), returning the scalar batch loss plus the
// differentiable K x V topic-word Var -- the hook ContraTopic's topic-wise
// contrastive regularizer attaches to (enabling the paper's backbone
// substitution study, Figure 6).

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/autodiff.h"
#include "topicmodel/topic_model.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/telemetry.h"

namespace contratopic {
namespace topicmodel {

using autodiff::Var;
using tensor::Tensor;

// One minibatch handed to BuildBatch.
struct Batch {
  std::vector<int> indices;
  Tensor counts;      // B x V raw counts
  Tensor normalized;  // B x V, rows sum to 1
  const text::BowCorpus* corpus = nullptr;
};

// VAE inference network: MLP -> (mu, logvar) -> reparameterized logistic-
// normal theta (paper §III.B).
class VaeEncoder : public nn::Module {
 public:
  VaeEncoder(int64_t vocab_size, int64_t num_topics, const TrainConfig& config,
             util::Rng& rng);

  struct Output {
    Var mu;      // B x K
    Var logvar;  // B x K
    Var theta;   // B x K, rows sum to 1
  };
  // `sample` draws epsilon ~ N(0, I); when false theta = softmax(mu)
  // (used at inference time).
  Output Forward(const Var& x_normalized, bool sample);

  std::vector<nn::Parameter> Parameters() override;
  std::vector<nn::NamedTensor> Buffers() override;
  void SetTraining(bool training) override;

  // KL(q(theta|x) || N(0, I)) summed over the batch.
  static Var KlDivergence(const Output& encoded);

 private:
  nn::Mlp mlp_;
  nn::Linear mu_head_;
  nn::Linear logvar_head_;
  util::Rng* rng_;
};

// Serializable mid-training snapshot: everything RunTrainingLoop needs —
// beyond the parameter/buffer tensors themselves — to continue a run so
// that the remaining steps are bitwise-identical to an uninterrupted
// run's (DESIGN.md §11). Checkpoint v2 carries one of these next to the
// state dict; the numeric guard rails keep an in-memory copy (plus
// tensors) as the rollback target.
struct TrainingState {
  int num_docs = 0;       // training corpus size; validated on resume
  int total_epochs = 0;   // epoch budget of the interrupted Train() call
  int next_global_step = 0;  // steps completed so far
  nn::AdamState adam;
  // Every RNG stream the training loop consumes, in TrainingRngs()
  // order: the model's own generator (epoch shuffles, subclass draws)
  // first, then any wrapped models' (e.g. ContraTopic's backbone draws
  // its encoder noise from its own generator).
  std::vector<util::Rng::State> rngs;
  // Shuffle position of the minibatch iterator.
  std::vector<int> batch_order;
  int batch_cursor = 0;
  // Partial accumulators of the in-flight epoch, so a mid-epoch resume
  // reports the same epoch-mean loss as an uninterrupted run.
  double epoch_loss_sum = 0.0;
  std::vector<std::pair<std::string, double>> component_sums;
  double last_epoch_loss = 0.0;
};

// --- Distributed data-parallel training (DESIGN.md §13) -----------------

// One block of a distributed training step: the canonical tree fold
// (util::TreeFold) of a contiguous shard range's losses, per-shard loss
// components, gradients, and batch-norm buffer deltas. Ranks exchange
// these through dist::Communicator; every replica then applies the same
// global fold result, so the optimizer trajectory is bitwise-identical at
// any worker count.
struct DistStepPartial {
  // True for the identity element (an empty shard range); combining with
  // an empty partial returns the other side unchanged, which keeps the
  // fold free of x + 0.0f artifacts (e.g. -0.0f + 0.0f = +0.0f).
  bool empty = true;
  double loss = 0.0;  // sum of shard losses, in tree order
  // Summed named loss components, sorted by name.
  std::vector<std::pair<std::string, double>> components;
  std::vector<Tensor> grads;          // parallel to Parameters()
  std::vector<Tensor> buffer_deltas;  // parallel to Buffers(): post - pre
};

// Canonical combine for the shard tree: left subtree + right subtree,
// elementwise. Both sides must carry the same tensor shapes (they come
// from the same model) unless one is empty.
DistStepPartial CombineDistPartials(DistStepPartial left,
                                    DistStepPartial right);

// Everything RunTrainingLoop needs to run one rank of a data-parallel
// group. The global batch of every step is cut into a FIXED grid of
// `num_shards` contiguous shards (util::ShardRange -- a function of batch
// size only, never of worker count); this rank computes shards
// [shard_begin, shard_end), tree-folds them into a block partial, and
// exchanges it through `allreduce`, which must return the canonical
// global fold over all shards (or an error, which stops training with
// interrupted stats). Every rank runs the full loop in lockstep --
// identical shuffles, guard-rail decisions, and optimizer updates -- so
// replicas stay bitwise-synchronized without parameter broadcasts.
struct DistContext {
  int num_shards = 4;  // the fixed shard grid S; invariant across workers
  int rank = 0;
  int world_size = 1;
  int shard_begin = 0;  // owned shards: [shard_begin, shard_end)
  int shard_end = 4;
  // Folded into the per-(step, shard) derived RNG streams, so the noise a
  // shard's forward pass draws is a pure function of (salt, stream index,
  // step, shard) -- independent of which process computes the shard.
  uint64_t rng_salt = 0;
  using Allreduce = std::function<util::StatusOr<DistStepPartial>(
      int step, DistStepPartial local)>;
  // Null means world_size == 1: the local block fold IS the global fold.
  Allreduce allreduce;
  bool primary() const { return rank == 0; }
};

// Numeric guard rails for the training loop. Contrastive objectives can
// destabilize ELBO optimization (Nguyen & Luu 2021); instead of aborting
// on a NaN, the loop detects bad steps and rolls back to the last good
// snapshot, reporting through TrainStats::status and telemetry.
struct GuardRailOptions {
  // Reject a step whose loss or pre-clip gradient norm is NaN/Inf.
  bool check_nonfinite = true;
  // > 0: reject a step whose batch loss exceeds this factor times the
  // previous completed epoch's mean loss (no reference in epoch one).
  // The reference is part of TrainingState, so spike decisions are
  // identical in resumed and uninterrupted runs.
  double loss_spike_factor = 0.0;
  // Rollbacks allowed before the loop gives up with kDataLoss.
  int max_rollbacks = 3;
};

// How the training loop turns a BatchGraph into a descent direction
// (DESIGN.md §17).
enum class LossWeighting {
  // Minimize BatchGraph::loss exactly as the model built it (the fixed-
  // lambda composition; default).
  kFixed,
  // Multi-objective contrastive optimization (Nguyen et al. 2024): treat
  // the named scalar objectives as a Pareto problem, backpropagate each
  // separately, and descend the combination weighted by inverse per-
  // objective gradient magnitude. Models that report no objectives fall
  // back to kFixed behavior.
  kMoo,
};

// Deterministic multi-objective weights: w_i proportional to
// 1 / (||g_i||_2 + eps), normalized so the weights sum to 1. Each norm is
// accumulated serially in double over tensors in list order and elements
// in row-major order -- the same canonical-reduction rule the SIMD kernels
// follow (DESIGN.md §12) -- so the weights, and with them the whole MOO
// optimizer trajectory, are bitwise thread/backend/engine/process-
// invariant.
std::vector<double> MultiObjectiveWeights(
    const std::vector<std::vector<Tensor>>& objective_grads);

// Base class implementing Train()/InferTheta() on top of BuildBatch().
class NeuralTopicModel : public TopicModel {
 public:
  NeuralTopicModel(std::string name, const TrainConfig& config);

  std::string name() const override { return name_; }
  int num_topics() const override { return config_.num_topics; }

  TrainStats Train(const text::BowCorpus& corpus) override;
  // Continues an interrupted run from `state` (typically read from a
  // checkpoint v2 and restored onto this freshly rebuilt model via
  // serve::ResumeModel). Runs Prepare() then the remaining steps of the
  // original epoch budget. The resumed run's beta/theta/loss are
  // bitwise-identical to an uninterrupted run's at any thread count.
  // Returns interrupted stats with a non-OK status when `state` does not
  // match this model/corpus.
  TrainStats ResumeTraining(const text::BowCorpus& corpus,
                            const TrainingState& state);
  // Continues training an already-trained model on (new) data for
  // `epochs` epochs without re-running Prepare(): the online / streaming
  // path (paper §VI future work). Optimizer state is rebuilt per call.
  TrainStats TrainMore(const text::BowCorpus& corpus, int epochs);
  Tensor Beta() const override;
  Tensor InferTheta(const text::BowCorpus& corpus) override;

  // --- Hooks for subclasses -------------------------------------------

  struct BatchGraph {
    Var loss;  // 1x1 scalar to minimize
    Var beta;  // K x V differentiable topic-word distribution
    // Optional named scalar components of the loss -- e.g. {"recon", ...}
    // and {"kl", ...} from the VAE backbones, {"l_con", ...} from
    // ContraTopic. The training loop averages them per epoch into the
    // telemetry stream; models that report nothing emit a loss-only
    // epoch record.
    std::vector<std::pair<std::string, float>> loss_components;
    // Optional named scalar objective terms (each 1x1, sharing this
    // graph's nodes), e.g. {"recon", ...}, {"kl", ...}, {"l_con", ...}.
    // Under LossWeighting::kMoo the loop backpropagates each objective
    // separately and descends the Pareto-weighted combination instead of
    // d loss; models that leave this empty always train on `loss`. The
    // unweighted terms belong here: MOO replaces the fixed lambda.
    std::vector<std::pair<std::string, Var>> objectives;
  };
  // Builds the loss graph for one minibatch (training mode).
  virtual BatchGraph BuildBatch(const Batch& batch) = 0;

  // Maps a (B x V normalized) constant batch to a (B x K) theta tensor in
  // evaluation mode.
  virtual Tensor InferThetaBatch(const Tensor& x_normalized) = 0;

  // All trainable parameters.
  virtual std::vector<nn::Parameter> Parameters() = 0;
  virtual void SetTraining(bool training) = 0;

  // All persistent non-trainable tensors inference depends on: module
  // buffers (batch-norm running statistics) plus model constants derived
  // from the frozen embeddings (e.g. ETM's rho). Together with
  // Parameters() this must cover every tensor InferThetaBatch reads, or
  // a checkpoint-restored model will not reproduce the original bitwise.
  virtual std::vector<nn::NamedTensor> Buffers() { return {}; }

  // Parameters() and Buffers() flattened into one named state dict
  // (pointers into live model storage; unique names CHECK-enforced).
  std::vector<nn::NamedTensor> StateTensors();

  // Every RNG stream the training loop consumes, the model's own
  // generator first. Wrapper models that drive another NeuralTopicModel
  // (ContraTopic around its ETM backbone) must append the wrapped
  // model's streams: checkpoint/resume and guard-rail rollback restore
  // exactly these generators, and a stream left out silently desyncs the
  // encoder noise on replay (bitwise-resume tests catch this).
  virtual std::vector<util::Rng*> TrainingRngs() { return {&rng_}; }

  // Marks the model as trained with the given cached topic-word
  // distribution and switches it to evaluation mode — the final step of a
  // checkpoint restore, after StateTensors() have been overwritten.
  void RestoreTrainedState(Tensor beta);

  // Called once before the first epoch (models may precompute statistics
  // of the training corpus, e.g. NPMI or tf-idf).
  virtual void Prepare(const text::BowCorpus& corpus) {}

  // Optional: a differentiable document representation for contrastive
  // objectives over documents (CLNTM; ContraTopic's multi-level variant).
  // Undefined Var when the model does not support it.
  virtual Var EncodeRepresentation(const Tensor& x_normalized) {
    return Var();
  }

  // Extra per-method memory for the computational-analysis bench.
  virtual int64_t ExtraMemoryBytes() const { return 0; }

  const TrainConfig& config() const { return config_; }
  util::Rng& rng() { return rng_; }
  bool trained() const { return trained_; }

  // K x V beta from the most recent completed training step; defined once
  // one step has run and readable mid-training, unlike Beta() which
  // requires a trained model. Training checkpoints freeze this.
  const Tensor& LatestBeta() const { return final_beta_; }

  // Fraction of training completed, in [0, 1] (1 after training). Lets
  // subclasses ramp regularizers (e.g. ContraTopic's lambda warmup).
  double TrainingProgress() const { return training_progress_; }

  // --- Observability ---------------------------------------------------

  // Attaches a telemetry sink (not owned; may be null, and must outlive
  // training). The loop then streams one "epoch" JSONL record per epoch:
  // mean loss, loss components, evaluator metrics, and per-stage wall
  // time (see util/telemetry.h).
  void SetTelemetry(util::RunTelemetry* telemetry) { telemetry_ = telemetry; }

  // Per-epoch interpretability metrics computed from the epoch's final
  // beta, e.g. {"npmi", ...}, {"diversity", ...}. Runs on the training
  // thread after each epoch; keep it proportional to K x V, not corpus
  // size. The eval stack stays out of this layer -- the bench harness
  // wires in eval::PerTopicCoherence & friends.
  using EpochEvaluator =
      std::function<std::vector<std::pair<std::string, double>>(
          const Tensor& beta)>;
  void SetEpochEvaluator(EpochEvaluator evaluator) {
    epoch_evaluator_ = std::move(evaluator);
  }

  // --- Fault tolerance (DESIGN.md §11) ---------------------------------

  // Periodic auto-checkpointing: every `every_steps` completed steps (<= 0
  // means at every epoch boundary) the loop captures a TrainingState and
  // hands it to `sink` — typically serve::SaveTrainingCheckpoint bound to
  // a path. Sink failures are logged and counted
  // ("train.checkpoint_failures"), never fatal. The loop also consults
  // the "train.kill" fault-injection site right after each checkpoint;
  // when it fires, training stops with kCancelled — the in-process
  // stand-in for a crash that the recovery tests resume from.
  using CheckpointSink = std::function<util::Status(const TrainingState&)>;
  void SetAutoCheckpoint(int every_steps, CheckpointSink sink) {
    checkpoint_every_steps_ = every_steps;
    checkpoint_sink_ = std::move(sink);
  }

  // Arms the numeric guard rails (NaN/Inf and loss-spike detection with
  // rollback-to-last-good-snapshot).
  void SetGuardRails(const GuardRailOptions& options) {
    guard_rails_ = options;
    guard_rails_armed_ = true;
  }

  // --- Distributed training (DESIGN.md §13) ----------------------------

  // Attaches this model to one rank of a data-parallel group (not owned;
  // must outlive training; null detaches). While attached, the training
  // loop runs the sharded step path: per-shard forward/backward on
  // derived RNG streams, block tree fold, allreduce, and a replicated
  // optimizer step. Drive this through dist::DataParallelTrainer rather
  // than directly.
  void SetDistContext(const DistContext* context) { dist_ = context; }

  // --- Multi-objective weighting (DESIGN.md §17) -----------------------

  // Selects how the loop weighs BuildBatch's objectives. Deliberately NOT
  // part of TrainConfig: the config is serialized field-by-field into
  // checkpoints, and the weighting mode only shapes the training
  // trajectory, never the restored inference path. Describe() extras carry
  // it for observability instead.
  void SetLossWeighting(LossWeighting weighting) {
    loss_weighting_ = weighting;
  }
  LossWeighting loss_weighting() const { return loss_weighting_; }

 protected:
  // Shared epoch loop used by Train, TrainMore, and ResumeTraining.
  // `resume` is null for a fresh run.
  TrainStats RunTrainingLoop(const text::BowCorpus& corpus, int epochs,
                             const TrainingState* resume = nullptr);

  std::string name_;
  TrainConfig config_;
  util::Rng rng_;
  Tensor final_beta_;  // cached after training
  bool trained_ = false;
  bool training_ = true;  // current mode (mirrors nn::Module)
  double training_progress_ = 0.0;
  util::RunTelemetry* telemetry_ = nullptr;  // not owned
  EpochEvaluator epoch_evaluator_;
  int checkpoint_every_steps_ = 0;
  CheckpointSink checkpoint_sink_;
  GuardRailOptions guard_rails_;
  bool guard_rails_armed_ = false;
  const DistContext* dist_ = nullptr;  // not owned
  LossWeighting loss_weighting_ = LossWeighting::kFixed;
};

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_NEURAL_BASE_H_
