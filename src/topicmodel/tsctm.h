#ifndef CONTRATOPIC_TOPICMODEL_TSCTM_H_
#define CONTRATOPIC_TOPICMODEL_TSCTM_H_

// TSCTM-style topic-semantic contrastive topic model (Wu et al., 2022) on
// the ETM backbone. Each document is *quantized* to its dominant topic
// (argmax of theta, detached) and represented in topic-embedding space by
// z = normalize(theta . t). The contrastive term has two parts:
//
//   l_tsc    -- a quantization-index-masked similarity contrast between
//               documents: for each document, same-index documents are the
//               positives (their similarities are pulled up against the
//               masked log-sum-exp over different-index documents).
//   l_anchor -- a cross-entropy pulling z toward its own topic anchor
//               t_{q_i} (GatherRows over the normalized topic embeddings,
//               so the gradient scatter-adds into the shared anchors)
//               against the log-sum-exp over all K anchors.
//
// Unlike CLNTM this shapes the *topic-embedding* side directly: anchors of
// different topics repel through the masked denominator, which is the
// topic-semantic counterpart of the source paper's topic-wise objective.

#include "topicmodel/etm.h"

namespace contratopic {
namespace topicmodel {

class TsctmModel : public EtmModel {
 public:
  struct Options {
    float contrast_weight = 1.0f;
    float temperature = 0.1f;
    // Weight of the anchor cross-entropy inside the contrastive term.
    float anchor_weight = 0.5f;
  };

  TsctmModel(const TrainConfig& config,
             const embed::WordEmbeddings& embeddings);
  TsctmModel(const TrainConfig& config,
             const embed::WordEmbeddings& embeddings, Options options);

  BatchGraph BuildBatch(const Batch& batch) override;
  ModelDescriptor Describe() const override;

 private:
  Options options_;
};

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_TSCTM_H_
