#include "topicmodel/tsctm.h"

#include <vector>

#include "util/string_util.h"

namespace contratopic {
namespace topicmodel {

using namespace autodiff;  // NOLINT: op-heavy translation unit

TsctmModel::TsctmModel(const TrainConfig& config,
                       const embed::WordEmbeddings& embeddings)
    : TsctmModel(config, embeddings, Options{}) {}

TsctmModel::TsctmModel(const TrainConfig& config,
                       const embed::WordEmbeddings& embeddings,
                       Options options)
    : EtmModel(config, embeddings, EtmModel::Options{}, "TSCTM"),
      options_(options) {}

NeuralTopicModel::BatchGraph TsctmModel::BuildBatch(const Batch& batch) {
  ElboGraph g = BuildElbo(batch);
  const int64_t batch_size = batch.counts.rows();

  // Quantization: each document is assigned to its argmax topic. Reading
  // theta's value forces the pending prefix under the graph engine (the
  // ContraTopic CandidateWords precedent); the strict > keeps the lowest
  // index on ties, so the assignment is a pure function of theta's bits.
  const Tensor& theta_value = g.encoded.theta.value();
  std::vector<int> quant(batch_size, 0);
  for (int64_t r = 0; r < batch_size; ++r) {
    const float* row = theta_value.row(r);
    int best = 0;
    for (int64_t k = 1; k < theta_value.cols(); ++k) {
      if (row[k] > row[best]) best = static_cast<int>(k);
    }
    quant[r] = best;
  }

  // Document features in topic-embedding space.
  Var z = RowL2Normalize(MatMul(g.encoded.theta, topic_embeddings_));
  const float inv_tau = 1.0f / options_.temperature;
  Var logits = MulScalar(MatMul(z, z, false, true), inv_tau);  // B x B

  // Quantization-index masks (constants): same-index pairs are positives,
  // different-index pairs feed the denominator. A row only contributes
  // when it has at least one of each -- MaskedLogSumExpRows returns its
  // empty-row sentinel otherwise, which the indicator zeroes out.
  Tensor pos_mask(batch_size, batch_size);
  Tensor neg_mask(batch_size, batch_size);
  Tensor inv_pos_count(batch_size, 1);
  Tensor indicator(batch_size, 1);
  int active_rows = 0;
  for (int64_t i = 0; i < batch_size; ++i) {
    int pos_count = 0;
    int neg_count = 0;
    for (int64_t j = 0; j < batch_size; ++j) {
      if (quant[i] == quant[j]) {
        if (i != j) {
          pos_mask.at(i, j) = 1.0f;
          ++pos_count;
        }
      } else {
        neg_mask.at(i, j) = 1.0f;
        ++neg_count;
      }
    }
    if (pos_count > 0 && neg_count > 0) {
      inv_pos_count.at(i, 0) = 1.0f / static_cast<float>(pos_count);
      indicator.at(i, 0) = 1.0f;
      ++active_rows;
    }
  }

  // l_tsc = mean over active rows of (denominator - mean positive logit).
  Var contrast;
  Var mean_pos = Mul(RowSum(ApplyMask(logits, pos_mask)),
                     Var::Constant(inv_pos_count));
  Var denom = Mul(MaskedLogSumExpRows(logits, neg_mask),
                  Var::Constant(indicator));
  Var l_tsc = active_rows > 0
                  ? MulScalar(SumAll(Sub(denom, mean_pos)),
                              1.0f / static_cast<float>(active_rows))
                  : Var::Constant(Tensor::Scalar(0.0f));

  // l_anchor: cross-entropy of z against its own quantization anchor
  // (GatherRows duplicates anchors across the batch; the backward
  // scatter-adds into the shared topic embeddings) over all K anchors.
  Var anchors = RowL2Normalize(topic_embeddings_);  // K x e
  Var anchor_logits = MulScalar(MatMul(z, anchors, false, true), inv_tau);
  Var own_anchor = MulScalar(RowSum(Mul(z, GatherRows(anchors, quant))),
                             inv_tau);
  Var l_anchor = MeanAll(Sub(LogSumExpRows(anchor_logits), own_anchor));

  contrast = Add(l_tsc, MulScalar(l_anchor, options_.anchor_weight));
  Var loss = Add(g.loss, MulScalar(contrast, options_.contrast_weight));

  BatchGraph out;
  out.loss = loss;
  out.beta = g.beta;
  out.loss_components = {{"recon", g.recon},
                         {"kl", g.kl},
                         {"l_con", contrast.value().scalar()}};
  out.objectives = {{"recon", g.recon_term},
                    {"kl", g.kl_term},
                    {"l_con", contrast}};
  return out;
}

ModelDescriptor TsctmModel::Describe() const {
  ModelDescriptor d = DescribeAs("tsctm");
  d.extras.emplace_back("contrast_weight",
                        util::StrFormat("%.9g", options_.contrast_weight));
  d.extras.emplace_back("temperature",
                        util::StrFormat("%.9g", options_.temperature));
  d.extras.emplace_back("anchor_weight",
                        util::StrFormat("%.9g", options_.anchor_weight));
  return d;
}

}  // namespace topicmodel
}  // namespace contratopic
