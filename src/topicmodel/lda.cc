#include "topicmodel/lda.h"

#include <algorithm>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace contratopic {
namespace topicmodel {
namespace {

// Expands a bag-of-words document into a flat token list.
std::vector<int> ExpandTokens(const text::Document& doc) {
  std::vector<int> tokens;
  tokens.reserve(doc.TotalTokens());
  for (const auto& e : doc.entries) {
    for (int c = 0; c < e.count; ++c) tokens.push_back(e.word_id);
  }
  return tokens;
}

}  // namespace

LdaModel::LdaModel(int num_topics, uint64_t seed)
    : LdaModel(num_topics, seed, Options{}) {}

LdaModel::LdaModel(int num_topics, uint64_t seed, Options options)
    : num_topics_(num_topics), options_(options), rng_(seed) {
  CHECK_GT(num_topics, 0);
}

void LdaModel::GibbsSweep(TokenState* state,
                          std::vector<std::vector<int>>* doc_topic,
                          bool update_topic_word, util::Rng& rng) {
  const double v_eta = vocab_size_ * options_.eta;
  std::vector<double> weights(num_topics_);
  for (size_t d = 0; d < state->word.size(); ++d) {
    auto& words = state->word[d];
    auto& topics = state->topic[d];
    auto& n_dk = (*doc_topic)[d];
    for (size_t i = 0; i < words.size(); ++i) {
      const int w = words[i];
      const int old_k = topics[i];
      // Remove the token from the counts.
      --n_dk[old_k];
      if (update_topic_word) {
        --topic_word_[old_k][w];
        --topic_totals_[old_k];
      }
      // Full conditional.
      for (int k = 0; k < num_topics_; ++k) {
        const double phi =
            (topic_word_[k][w] + options_.eta) / (topic_totals_[k] + v_eta);
        weights[k] = (n_dk[k] + options_.alpha) * phi;
      }
      const int new_k = rng.Categorical(weights);
      topics[i] = new_k;
      ++n_dk[new_k];
      if (update_topic_word) {
        ++topic_word_[new_k][w];
        ++topic_totals_[new_k];
      }
    }
  }
}

TrainStats LdaModel::Train(const text::BowCorpus& corpus) {
  CHECK(!trained_) << "LDA was already trained";
  vocab_size_ = corpus.vocab_size();
  topic_word_.assign(num_topics_, std::vector<int64_t>(vocab_size_, 0));
  topic_totals_.assign(num_topics_, 0);

  // Random initialization.
  TokenState state;
  std::vector<std::vector<int>> doc_topic(corpus.num_docs(),
                                          std::vector<int>(num_topics_, 0));
  state.word.resize(corpus.num_docs());
  state.topic.resize(corpus.num_docs());
  for (int d = 0; d < corpus.num_docs(); ++d) {
    state.word[d] = ExpandTokens(corpus.doc(d));
    state.topic[d].resize(state.word[d].size());
    for (size_t i = 0; i < state.word[d].size(); ++i) {
      const int k = static_cast<int>(rng_.UniformInt(num_topics_));
      state.topic[d][i] = k;
      ++doc_topic[d][k];
      ++topic_word_[k][state.word[d][i]];
      ++topic_totals_[k];
    }
  }

  util::TraceSpan train_span("train");
  for (int sweep = 0; sweep < options_.gibbs_sweeps; ++sweep) {
    util::TraceSpan sweep_span("gibbs_sweep");
    GibbsSweep(&state, &doc_topic, /*update_topic_word=*/true, rng_);
  }
  util::MetricsRegistry::Global()
      .counter("train.gibbs_sweeps")
      .Increment(options_.gibbs_sweeps);

  // Cache training thetas.
  train_theta_ = tensor::Tensor(corpus.num_docs(), num_topics_);
  for (int d = 0; d < corpus.num_docs(); ++d) {
    const double denom =
        state.word[d].size() + num_topics_ * options_.alpha;
    for (int k = 0; k < num_topics_; ++k) {
      train_theta_.at(d, k) =
          static_cast<float>((doc_topic[d][k] + options_.alpha) / denom);
    }
  }

  trained_ = true;
  TrainStats stats;
  stats.total_seconds = train_span.ElapsedSeconds();
  stats.epochs = options_.gibbs_sweeps;
  stats.seconds_per_epoch =
      options_.gibbs_sweeps > 0 ? stats.total_seconds / options_.gibbs_sweeps
                                : 0.0;
  return stats;
}

tensor::Tensor LdaModel::Beta() const {
  CHECK(trained_);
  tensor::Tensor beta(num_topics_, vocab_size_);
  const double v_eta = vocab_size_ * options_.eta;
  for (int k = 0; k < num_topics_; ++k) {
    const double denom = topic_totals_[k] + v_eta;
    for (int w = 0; w < vocab_size_; ++w) {
      beta.at(k, w) =
          static_cast<float>((topic_word_[k][w] + options_.eta) / denom);
    }
  }
  return beta;
}

tensor::Tensor LdaModel::InferTheta(const text::BowCorpus& corpus) {
  CHECK(trained_);
  CHECK_EQ(corpus.vocab_size(), vocab_size_);
  // Fold-in Gibbs with frozen topic-word counts.
  TokenState state;
  std::vector<std::vector<int>> doc_topic(corpus.num_docs(),
                                          std::vector<int>(num_topics_, 0));
  state.word.resize(corpus.num_docs());
  state.topic.resize(corpus.num_docs());
  util::Rng rng = rng_.Fork();
  for (int d = 0; d < corpus.num_docs(); ++d) {
    state.word[d] = ExpandTokens(corpus.doc(d));
    state.topic[d].resize(state.word[d].size());
    for (size_t i = 0; i < state.word[d].size(); ++i) {
      const int k = static_cast<int>(rng.UniformInt(num_topics_));
      state.topic[d][i] = k;
      ++doc_topic[d][k];
    }
  }
  for (int sweep = 0; sweep < options_.fold_in_sweeps; ++sweep) {
    GibbsSweep(&state, &doc_topic, /*update_topic_word=*/false, rng);
  }
  tensor::Tensor theta(corpus.num_docs(), num_topics_);
  for (int d = 0; d < corpus.num_docs(); ++d) {
    const double denom = state.word[d].size() + num_topics_ * options_.alpha;
    for (int k = 0; k < num_topics_; ++k) {
      theta.at(d, k) =
          static_cast<float>((doc_topic[d][k] + options_.alpha) / denom);
    }
  }
  return theta;
}

}  // namespace topicmodel
}  // namespace contratopic
