#include "topicmodel/neural_base.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace contratopic {
namespace topicmodel {

namespace {

nn::Mlp::Config EncoderMlpConfig(int64_t vocab_size,
                                 const TrainConfig& config) {
  nn::Mlp::Config mlp;
  mlp.layer_sizes.push_back(vocab_size);
  for (int i = 0; i < std::max(1, config.encoder_layers); ++i) {
    mlp.layer_sizes.push_back(config.encoder_hidden);
  }
  mlp.activation = nn::Activation::kSelu;
  mlp.dropout_rate = config.dropout;
  mlp.batch_norm = config.batch_norm;
  return mlp;
}

}  // namespace

VaeEncoder::VaeEncoder(int64_t vocab_size, int64_t num_topics,
                       const TrainConfig& config, util::Rng& rng)
    : mlp_(EncoderMlpConfig(vocab_size, config), rng, "encoder"),
      mu_head_(config.encoder_hidden, num_topics, rng, "mu"),
      logvar_head_(config.encoder_hidden, num_topics, rng, "logvar"),
      rng_(&rng) {}

VaeEncoder::Output VaeEncoder::Forward(const Var& x_normalized, bool sample) {
  Var pi = mlp_.Forward(x_normalized);
  Output out;
  out.mu = mu_head_.Forward(pi);
  out.logvar = logvar_head_.Forward(pi);
  if (sample) {
    // theta = softmax(mu + sigma * eps), eps ~ N(0, I).
    Var sigma = autodiff::Exp(autodiff::MulScalar(out.logvar, 0.5f));
    Var eps = Var::Constant(
        Tensor::RandNormal(out.mu.rows(), out.mu.cols(), *rng_));
    out.theta = autodiff::SoftmaxRows(
        autodiff::Add(out.mu, autodiff::Mul(sigma, eps)));
  } else {
    out.theta = autodiff::SoftmaxRows(out.mu);
  }
  return out;
}

std::vector<nn::Parameter> VaeEncoder::Parameters() {
  std::vector<nn::Parameter> params = mlp_.Parameters();
  for (auto& p : mu_head_.Parameters()) params.push_back(p);
  for (auto& p : logvar_head_.Parameters()) params.push_back(p);
  return params;
}

std::vector<nn::NamedTensor> VaeEncoder::Buffers() { return mlp_.Buffers(); }

void VaeEncoder::SetTraining(bool training) {
  Module::SetTraining(training);
  mlp_.SetTraining(training);
  mu_head_.SetTraining(training);
  logvar_head_.SetTraining(training);
}

Var VaeEncoder::KlDivergence(const Output& encoded) {
  // -0.5 * sum(1 + logvar - mu^2 - exp(logvar)).
  Var term = autodiff::Sub(
      autodiff::AddScalar(encoded.logvar, 1.0f),
      autodiff::Add(autodiff::Square(encoded.mu),
                    autodiff::Exp(encoded.logvar)));
  return autodiff::MulScalar(autodiff::SumAll(term), -0.5f);
}

NeuralTopicModel::NeuralTopicModel(std::string name, const TrainConfig& config)
    : name_(std::move(name)), config_(config), rng_(config.seed) {}

TrainStats NeuralTopicModel::Train(const text::BowCorpus& corpus) {
  CHECK(!trained_) << name_ << " was already trained";
  CHECK_GT(corpus.num_docs(), 0);
  Prepare(corpus);
  return RunTrainingLoop(corpus, config_.epochs);
}

TrainStats NeuralTopicModel::TrainMore(const text::BowCorpus& corpus,
                                       int epochs) {
  CHECK(trained_) << name_ << ": call Train() before TrainMore()";
  CHECK_GT(corpus.num_docs(), 0);
  trained_ = false;  // Re-armed by the loop below.
  return RunTrainingLoop(corpus, epochs);
}

TrainStats NeuralTopicModel::RunTrainingLoop(const text::BowCorpus& corpus,
                                             int epochs) {
  SetTraining(true);

  nn::Adam adam(config_.learning_rate);
  text::BatchIterator batches(corpus.num_docs(), config_.batch_size, rng_);
  const int steps_per_epoch = batches.batches_per_epoch();

  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  util::Counter& step_counter = metrics.counter("train.steps");
  util::Counter& epoch_counter = metrics.counter("train.epochs");
  util::Histogram& loss_histogram = metrics.histogram("train.batch_loss");

  util::TraceSpan train_span("train");
  double last_epoch_loss = 0.0;
  const int total_steps = std::max(1, epochs * steps_per_epoch);
  int global_step = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    util::TraceSpan epoch_span("epoch");
    double epoch_loss = 0.0;
    // Per-stage wall time within the epoch, and per-component loss sums,
    // accumulated across steps. std::map keeps component order (hence the
    // telemetry field order) independent of which step reported first.
    double data_seconds = 0.0;
    double forward_seconds = 0.0;
    double backward_seconds = 0.0;
    double optimizer_seconds = 0.0;
    std::map<std::string, double> component_sums;
    for (int step = 0; step < steps_per_epoch; ++step) {
      training_progress_ =
          static_cast<double>(global_step++) / total_steps;
      Batch batch;
      {
        util::TraceSpan span("data");
        batch.indices = batches.Next();
        batch.counts = corpus.DenseBatch(batch.indices);
        batch.normalized = corpus.NormalizedBatch(batch.indices);
        batch.corpus = &corpus;
        data_seconds += span.ElapsedSeconds();
      }

      BatchGraph graph;
      {
        util::TraceSpan span("forward");
        graph = BuildBatch(batch);
        forward_seconds += span.ElapsedSeconds();
      }
      CHECK(graph.loss.defined());
      {
        util::TraceSpan span("backward");
        autodiff::Backward(graph.loss);
        backward_seconds += span.ElapsedSeconds();
      }
      {
        util::TraceSpan span("optimizer");
        auto params = Parameters();
        nn::ClipGradNorm(params, config_.grad_clip);
        adam.Step(params);
        for (auto& p : params) p.var.ZeroGrad();
        optimizer_seconds += span.ElapsedSeconds();
      }
      const double batch_loss = graph.loss.value().scalar();
      epoch_loss += batch_loss;
      loss_histogram.Observe(batch_loss);
      step_counter.Increment();
      for (const auto& [name, value] : graph.loss_components) {
        component_sums[name] += static_cast<double>(value);
      }
      if (!graph.beta.defined()) {
        // Models must expose beta; guard against subclass bugs early.
        LOG(FATAL) << name_ << "::BuildBatch returned undefined beta";
      }
      final_beta_ = graph.beta.value();
    }
    last_epoch_loss = epoch_loss / steps_per_epoch;
    epoch_counter.Increment();
    if (config_.verbose) {
      LOG(INFO) << name_ << " epoch " << epoch + 1 << "/" << epochs
                << " loss=" << last_epoch_loss;
    }
    if (telemetry_ != nullptr) {
      util::EpochTelemetry record;
      record.epoch = epoch + 1;
      record.total_epochs = epochs;
      record.loss = last_epoch_loss;
      for (const auto& [name, sum] : component_sums) {
        record.loss_components.emplace_back(name, sum / steps_per_epoch);
      }
      if (epoch_evaluator_) {
        util::TraceSpan span("epoch_eval");
        record.metrics = epoch_evaluator_(final_beta_);
      }
      record.seconds = epoch_span.ElapsedSeconds();
      record.stage_seconds = {{"data", data_seconds},
                              {"forward", forward_seconds},
                              {"backward", backward_seconds},
                              {"optimizer", optimizer_seconds}};
      telemetry_->RecordEpoch(record);
    }
  }

  SetTraining(false);
  trained_ = true;
  training_progress_ = 1.0;
  TrainStats stats;
  stats.total_seconds = train_span.ElapsedSeconds();
  stats.epochs = epochs;
  stats.seconds_per_epoch =
      epochs > 0 ? stats.total_seconds / epochs : 0.0;
  stats.final_loss = last_epoch_loss;
  stats.extra_memory_bytes = ExtraMemoryBytes();
  return stats;
}

std::vector<nn::NamedTensor> NeuralTopicModel::StateTensors() {
  std::vector<nn::NamedTensor> state;
  for (auto& p : Parameters()) {
    // The Node outlives the Parameter copy (shared with the model's own
    // Var), so the value pointer is stable.
    state.push_back({p.name, &p.var.node()->value});
  }
  for (auto& b : Buffers()) state.push_back(b);
  std::set<std::string> names;
  for (const auto& t : state) {
    CHECK(names.insert(t.name).second)
        << name_ << ": duplicate state tensor name " << t.name;
  }
  return state;
}

void NeuralTopicModel::RestoreTrainedState(Tensor beta) {
  CHECK_EQ(beta.rows(), config_.num_topics)
      << name_ << ": restored beta has wrong topic count";
  final_beta_ = std::move(beta);
  trained_ = true;
  training_progress_ = 1.0;
  SetTraining(false);
}

Tensor NeuralTopicModel::Beta() const {
  CHECK(trained_) << name_ << " is not trained";
  return final_beta_;
}

Tensor NeuralTopicModel::InferTheta(const text::BowCorpus& corpus) {
  CHECK(trained_) << name_ << " is not trained";
  SetTraining(false);
  Tensor theta(corpus.num_docs(), config_.num_topics);
  const int batch_size = std::max(1, config_.batch_size);
  // Batches are independent in eval mode (forward passes only read model
  // state: dropout is identity, batch-norm uses running stats) and each
  // writes a disjoint row range of theta. The batch grid is a function of
  // corpus size and batch_size only, so per-document math — and the result —
  // is identical at any thread count.
  const int num_batches = (corpus.num_docs() + batch_size - 1) / batch_size;
  util::ThreadPool::Global().ParallelFor(
      0, num_batches,
      [&](int64_t b_lo, int64_t b_hi) {
        for (int64_t b = b_lo; b < b_hi; ++b) {
          const int begin = static_cast<int>(b) * batch_size;
          const int end = std::min(corpus.num_docs(), begin + batch_size);
          std::vector<int> indices;
          indices.reserve(end - begin);
          for (int i = begin; i < end; ++i) indices.push_back(i);
          Tensor batch_theta = InferThetaBatch(corpus.NormalizedBatch(indices));
          CHECK_EQ(batch_theta.rows(), static_cast<int64_t>(indices.size()));
          CHECK_EQ(batch_theta.cols(), config_.num_topics);
          for (size_t r = 0; r < indices.size(); ++r) {
            std::copy(
                batch_theta.row(static_cast<int64_t>(r)),
                batch_theta.row(static_cast<int64_t>(r)) + config_.num_topics,
                theta.row(indices[r] /* == begin + r */));
          }
        }
      },
      /*grain=*/1);
  return theta;
}

}  // namespace topicmodel
}  // namespace contratopic
