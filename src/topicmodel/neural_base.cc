#include "topicmodel/neural_base.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <set>

#include "tensor/engine.h"
#include "tensor/graph.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace contratopic {
namespace topicmodel {

namespace {

nn::Mlp::Config EncoderMlpConfig(int64_t vocab_size,
                                 const TrainConfig& config) {
  nn::Mlp::Config mlp;
  mlp.layer_sizes.push_back(vocab_size);
  for (int i = 0; i < std::max(1, config.encoder_layers); ++i) {
    mlp.layer_sizes.push_back(config.encoder_hidden);
  }
  mlp.activation = nn::Activation::kSelu;
  mlp.dropout_rate = config.dropout;
  mlp.batch_norm = config.batch_norm;
  return mlp;
}

}  // namespace

std::vector<double> MultiObjectiveWeights(
    const std::vector<std::vector<Tensor>>& objective_grads) {
  std::vector<double> weights;
  if (objective_grads.empty()) return weights;
  weights.reserve(objective_grads.size());
  double inverse_sum = 0.0;
  for (const auto& grads : objective_grads) {
    // Canonical serial double accumulation (tensor order, then row-major
    // element order) -- the exact discipline nn::ClipGradNorm uses, so the
    // norm is one fixed arithmetic sequence at any thread count/backend.
    double total_sq = 0.0;
    for (const Tensor& g : grads) {
      const float* data = g.data();
      for (int64_t i = 0; i < g.numel(); ++i) {
        total_sq += static_cast<double>(data[i]) * static_cast<double>(data[i]);
      }
    }
    const double inverse = 1.0 / (std::sqrt(total_sq) + 1e-12);
    weights.push_back(inverse);
    inverse_sum += inverse;
  }
  for (double& w : weights) w /= inverse_sum;
  return weights;
}

DistStepPartial CombineDistPartials(DistStepPartial left,
                                    DistStepPartial right) {
  if (left.empty) return right;
  if (right.empty) return left;
  DistStepPartial out = std::move(left);
  out.loss += right.loss;
  // Merge-join the name-sorted component sums (both sides come from the
  // same model, but an all-empty subtree may have contributed nothing).
  std::vector<std::pair<std::string, double>> merged;
  merged.reserve(out.components.size() + right.components.size());
  size_t i = 0;
  size_t j = 0;
  while (i < out.components.size() || j < right.components.size()) {
    if (j >= right.components.size() ||
        (i < out.components.size() &&
         out.components[i].first < right.components[j].first)) {
      merged.push_back(std::move(out.components[i++]));
    } else if (i >= out.components.size() ||
               right.components[j].first < out.components[i].first) {
      merged.push_back(std::move(right.components[j++]));
    } else {
      merged.emplace_back(
          out.components[i].first,
          out.components[i].second + right.components[j].second);
      ++i;
      ++j;
    }
  }
  out.components = std::move(merged);
  CHECK_EQ(out.grads.size(), right.grads.size());
  for (size_t k = 0; k < out.grads.size(); ++k) {
    out.grads[k].AddInPlace(right.grads[k]);
  }
  CHECK_EQ(out.buffer_deltas.size(), right.buffer_deltas.size());
  for (size_t k = 0; k < out.buffer_deltas.size(); ++k) {
    out.buffer_deltas[k].AddInPlace(right.buffer_deltas[k]);
  }
  return out;
}

VaeEncoder::VaeEncoder(int64_t vocab_size, int64_t num_topics,
                       const TrainConfig& config, util::Rng& rng)
    : mlp_(EncoderMlpConfig(vocab_size, config), rng, "encoder"),
      mu_head_(config.encoder_hidden, num_topics, rng, "mu"),
      logvar_head_(config.encoder_hidden, num_topics, rng, "logvar"),
      rng_(&rng) {}

VaeEncoder::Output VaeEncoder::Forward(const Var& x_normalized, bool sample) {
  Var pi = mlp_.Forward(x_normalized);
  Output out;
  out.mu = mu_head_.Forward(pi);
  out.logvar = logvar_head_.Forward(pi);
  if (sample) {
    // theta = softmax(mu + sigma * eps), eps ~ N(0, I).
    Var sigma = autodiff::Exp(autodiff::MulScalar(out.logvar, 0.5f));
    Var eps = Var::Constant(
        Tensor::RandNormal(out.mu.rows(), out.mu.cols(), *rng_));
    out.theta = autodiff::SoftmaxRows(
        autodiff::Add(out.mu, autodiff::Mul(sigma, eps)));
  } else {
    out.theta = autodiff::SoftmaxRows(out.mu);
  }
  return out;
}

std::vector<nn::Parameter> VaeEncoder::Parameters() {
  std::vector<nn::Parameter> params = mlp_.Parameters();
  for (auto& p : mu_head_.Parameters()) params.push_back(p);
  for (auto& p : logvar_head_.Parameters()) params.push_back(p);
  return params;
}

std::vector<nn::NamedTensor> VaeEncoder::Buffers() { return mlp_.Buffers(); }

void VaeEncoder::SetTraining(bool training) {
  Module::SetTraining(training);
  mlp_.SetTraining(training);
  mu_head_.SetTraining(training);
  logvar_head_.SetTraining(training);
}

Var VaeEncoder::KlDivergence(const Output& encoded) {
  // -0.5 * sum(1 + logvar - mu^2 - exp(logvar)).
  Var term = autodiff::Sub(
      autodiff::AddScalar(encoded.logvar, 1.0f),
      autodiff::Add(autodiff::Square(encoded.mu),
                    autodiff::Exp(encoded.logvar)));
  return autodiff::MulScalar(autodiff::SumAll(term), -0.5f);
}

NeuralTopicModel::NeuralTopicModel(std::string name, const TrainConfig& config)
    : name_(std::move(name)), config_(config), rng_(config.seed) {}

TrainStats NeuralTopicModel::Train(const text::BowCorpus& corpus) {
  CHECK(!trained_) << name_ << " was already trained";
  CHECK_GT(corpus.num_docs(), 0);
  Prepare(corpus);
  return RunTrainingLoop(corpus, config_.epochs);
}

TrainStats NeuralTopicModel::TrainMore(const text::BowCorpus& corpus,
                                       int epochs) {
  CHECK(trained_) << name_ << ": call Train() before TrainMore()";
  CHECK_GT(corpus.num_docs(), 0);
  trained_ = false;  // Re-armed by the loop below.
  return RunTrainingLoop(corpus, epochs);
}

TrainStats NeuralTopicModel::ResumeTraining(const text::BowCorpus& corpus,
                                            const TrainingState& state) {
  TrainStats stats;
  stats.interrupted = true;
  if (trained_) {
    stats.status = util::Status::FailedPrecondition(
        name_ + " is already trained; ResumeTraining targets a fresh model");
    return stats;
  }
  if (corpus.num_docs() != state.num_docs) {
    stats.status = util::Status::FailedPrecondition(
        name_ + ": training state was captured on a corpus with " +
        std::to_string(state.num_docs) + " docs, got " +
        std::to_string(corpus.num_docs()));
    return stats;
  }
  if (state.total_epochs <= 0 || state.next_global_step < 0) {
    stats.status = util::Status::InvalidArgument(
        name_ + ": training state has an invalid step budget");
    return stats;
  }
  Prepare(corpus);
  return RunTrainingLoop(corpus, state.total_epochs, &state);
}

TrainStats NeuralTopicModel::RunTrainingLoop(const text::BowCorpus& corpus,
                                             int epochs,
                                             const TrainingState* resume) {
  SetTraining(true);

  // Engine selection (DESIGN.md §14): with CT_EXEC_ENGINE=graph this
  // installs a thread-local GraphSession for the whole training run, so
  // every autodiff op below records into the graph IR instead of executing
  // eagerly. Inert (pure tape) otherwise. Covers the dist branch too: each
  // forked worker re-enters RunTrainingLoop and installs its own session.
  graph::GraphSession graph_session(tensor::ActiveExecEngine() ==
                                    tensor::ExecEngine::kGraph);

  nn::Adam adam(config_.learning_rate);
  text::BatchIterator batches(corpus.num_docs(), config_.batch_size, rng_);
  const int steps_per_epoch = batches.batches_per_epoch();
  const int total_steps = std::max(1, epochs * steps_per_epoch);

  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  util::Counter& step_counter = metrics.counter("train.steps");
  util::Counter& epoch_counter = metrics.counter("train.epochs");
  util::Histogram& loss_histogram = metrics.histogram("train.batch_loss");
  util::Counter& rollback_counter = metrics.counter("train.rollbacks");
  util::Counter& ckpt_failure_counter =
      metrics.counter("train.checkpoint_failures");
  util::FaultInjector& faults = util::FaultInjector::Global();

  // Loop state. Every field here is mirrored by TrainingState, so a run
  // resumed from a checkpoint continues the exact arithmetic sequence of
  // the interrupted one (DESIGN.md §11).
  int global_step = 0;
  double epoch_loss = 0.0;
  // std::map keeps component order (hence the telemetry field order)
  // independent of which step reported first.
  std::map<std::string, double> component_sums;
  double last_epoch_loss = 0.0;

  const auto capture = [&]() {
    TrainingState s;
    s.num_docs = corpus.num_docs();
    s.total_epochs = epochs;
    s.next_global_step = global_step;
    s.adam = adam.ExportState(Parameters());
    for (util::Rng* stream : TrainingRngs()) {
      s.rngs.push_back(stream->SaveState());
    }
    s.batch_order = batches.order();
    s.batch_cursor = batches.cursor();
    s.epoch_loss_sum = epoch_loss;
    for (const auto& [cname, sum] : component_sums) {
      s.component_sums.emplace_back(cname, sum);
    }
    s.last_epoch_loss = last_epoch_loss;
    return s;
  };
  // Restores loop state. Order matters: the BatchIterator constructor
  // above consumed shuffle draws from rng_, so the RNG restore must come
  // after construction and the iterator then gets its saved permutation.
  const auto restore = [&](const TrainingState& s) -> util::Status {
    util::Status adam_status = adam.ImportState(s.adam, Parameters());
    if (!adam_status.ok()) return adam_status;
    const std::vector<util::Rng*> streams = TrainingRngs();
    if (s.rngs.size() != streams.size()) {
      return util::Status::FailedPrecondition(
          name_ + ": training state has " + std::to_string(s.rngs.size()) +
          " RNG stream(s) but this model trains from " +
          std::to_string(streams.size()));
    }
    for (size_t i = 0; i < streams.size(); ++i) {
      streams[i]->RestoreState(s.rngs[i]);
    }
    batches.RestoreState(s.batch_order, s.batch_cursor);
    global_step = s.next_global_step;
    epoch_loss = s.epoch_loss_sum;
    component_sums.clear();
    for (const auto& [cname, sum] : s.component_sums) {
      component_sums[cname] = sum;
    }
    last_epoch_loss = s.last_epoch_loss;
    return util::Status::OK();
  };

  TrainStats stats;
  if (resume != nullptr) {
    util::Status restore_status = restore(*resume);
    if (!restore_status.ok()) {
      stats.status = std::move(restore_status);
      stats.interrupted = true;
      SetTraining(false);
      return stats;
    }
  }

  // Rollback target for the numeric guard rails: deep copies of every
  // state tensor plus the matching loop state. Refreshed at every epoch
  // boundary and checkpoint, i.e. a rollback replays at most one epoch.
  std::vector<Tensor> snapshot_tensors;
  TrainingState snapshot_state;
  const auto take_snapshot = [&]() {
    snapshot_state = capture();
    snapshot_tensors.clear();
    for (const auto& t : StateTensors()) {
      snapshot_tensors.push_back(*t.tensor);
    }
  };
  const auto roll_back = [&]() {
    std::vector<nn::NamedTensor> live = StateTensors();
    CHECK_EQ(live.size(), snapshot_tensors.size());
    for (size_t i = 0; i < live.size(); ++i) {
      *live[i].tensor = snapshot_tensors[i];
    }
    // Cannot fail: the snapshot came from this very model.
    CHECK(restore(snapshot_state).ok());
  };
  if (guard_rails_armed_) take_snapshot();

  util::TraceSpan train_span("train");
  int rollbacks = 0;
  double data_seconds = 0.0;
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  double optimizer_seconds = 0.0;
  std::optional<util::TraceSpan> epoch_span;

  // Early-stop bookkeeping shared by the kill site and the guard rails'
  // budget-exhausted path. The model is NOT marked trained.
  const auto stop_early = [&](util::Status status) {
    LOG(WARNING) << name_ << ": training stopped early: "
                 << status.ToString();
    stats.status = std::move(status);
    stats.interrupted = true;
    stats.rollbacks = rollbacks;
    stats.total_seconds = train_span.ElapsedSeconds();
    stats.epochs = global_step / steps_per_epoch;
    stats.seconds_per_epoch =
        stats.epochs > 0 ? stats.total_seconds / stats.epochs : 0.0;
    stats.final_loss = last_epoch_loss;
    stats.extra_memory_bytes = ExtraMemoryBytes();
    SetTraining(false);
    return stats;
  };
  const auto guard_tripped = [&](const std::string& what) -> bool {
    // Returns true when the budget is exhausted (caller stops); otherwise
    // rolls back and the caller retries from the snapshot.
    if (rollbacks >= guard_rails_.max_rollbacks) return true;
    ++rollbacks;
    rollback_counter.Increment();
    LOG(WARNING) << name_ << ": " << what << " at step " << global_step
                 << "; rolling back to step "
                 << snapshot_state.next_global_step;
    roll_back();
    return false;
  };

  while (global_step < epochs * steps_per_epoch) {
    const int epoch = global_step / steps_per_epoch;
    const int step_in_epoch = global_step % steps_per_epoch;
    // Lazily opened so a mid-epoch resume (or rollback) re-enters the
    // in-flight epoch without double-opening its span.
    if (!epoch_span) epoch_span.emplace("epoch");
    training_progress_ = static_cast<double>(global_step) / total_steps;

    Batch batch;
    {
      util::TraceSpan span("data");
      batch.indices = batches.Next();
      if (dist_ == nullptr) {
        // The dist path densifies per shard instead.
        batch.counts = corpus.DenseBatch(batch.indices);
        batch.normalized = corpus.NormalizedBatch(batch.indices);
      }
      batch.corpus = &corpus;
      data_seconds += span.ElapsedSeconds();
    }

    // The step's loss-derived state, filled by whichever path runs.
    double batch_loss = 0.0;
    std::vector<std::pair<std::string, double>> step_components;
    Tensor step_beta;
    bool grad_bad = false;

    if (dist_ != nullptr) {
      // ---- Sharded data-parallel step (DESIGN.md §13) ----------------
      // The batch is cut into the fixed `num_shards` grid; this rank
      // computes its owned shards, tree-folds them, exchanges the block
      // with the group, and applies the canonical global fold exactly
      // like every other replica.
      const int num_shards = dist_->num_shards;
      CHECK_GE(static_cast<int>(batch.indices.size()), num_shards)
          << name_ << ": distributed training needs batch_size >= the "
          << "shard grid";
      const std::vector<util::Rng*> streams = TrainingRngs();
      std::vector<util::Rng::State> base_states;
      base_states.reserve(streams.size());
      for (util::Rng* s : streams) base_states.push_back(s->SaveState());
      const std::vector<nn::NamedTensor> buffers = Buffers();
      std::vector<Tensor> pre_buffers;
      pre_buffers.reserve(buffers.size());
      for (const auto& b : buffers) pre_buffers.push_back(*b.tensor);
      auto params = Parameters();

      bool beta_recorded = false;
      // Objective names of this model's graphs, captured from the first
      // non-empty shard (identical across shards and ranks -- same model
      // code). In MOO mode part.grads is objective-major: one params-sized
      // block per objective; the blocks fold elementwise like any other
      // gradient and are weighted only after the allreduce.
      std::vector<std::string> objective_names;
      const auto shard_partial = [&](int64_t s) {
        DistStepPartial part;
        const auto [lo, hi] = util::ShardRange(
            static_cast<int64_t>(batch.indices.size()), s, num_shards);
        if (lo >= hi) return part;  // empty shard: the fold identity
        // Rewind every stream to its derived per-(step, shard)
        // generator: the noise a shard's forward consumes is a pure
        // function of (salt, stream index, step, shard) -- independent
        // of which process computes the shard and of rollback history.
        for (size_t j = 0; j < streams.size(); ++j) {
          *streams[j] = util::Rng(
              util::MixBits(dist_->rng_salt +
                            0x9E3779B97F4A7C15ull * (j + 1)),
              static_cast<uint64_t>(global_step) * num_shards +
                  static_cast<uint64_t>(s));
        }
        // Every shard updates batch-norm running stats from the same
        // pre-step values; the per-shard deltas are folded and averaged
        // into one update below.
        for (size_t b = 0; b < buffers.size(); ++b) {
          *buffers[b].tensor = pre_buffers[b];
        }
        Batch shard_batch;
        shard_batch.indices.assign(batch.indices.begin() + lo,
                                   batch.indices.begin() + hi);
        shard_batch.counts = corpus.DenseBatch(shard_batch.indices);
        shard_batch.normalized =
            corpus.NormalizedBatch(shard_batch.indices);
        shard_batch.corpus = &corpus;
        BatchGraph graph;
        {
          util::TraceSpan span("forward");
          graph = BuildBatch(shard_batch);
          forward_seconds += span.ElapsedSeconds();
        }
        CHECK(graph.loss.defined());
        part.empty = false;
        part.loss = graph.loss.value().scalar();
        std::map<std::string, double> comp;
        for (const auto& [cname, value] : graph.loss_components) {
          comp[cname] += static_cast<double>(value);
        }
        part.components.assign(comp.begin(), comp.end());
        const bool moo_shard = loss_weighting_ == LossWeighting::kMoo &&
                               !graph.objectives.empty();
        if (moo_shard) {
          if (objective_names.empty()) {
            for (const auto& [oname, objective] : graph.objectives) {
              objective_names.push_back(oname);
            }
          }
          CHECK_EQ(objective_names.size(), graph.objectives.size());
          util::TraceSpan span("backward");
          part.grads.reserve(graph.objectives.size() * params.size());
          for (auto& [oname, objective] : graph.objectives) {
            CHECK(objective.defined())
                << name_ << ": undefined MOO objective " << oname;
            autodiff::Backward(objective);
            for (auto& p : params) {
              const Tensor& g = p.var.grad();
              part.grads.push_back(g.numel() > 0
                                       ? g
                                       : Tensor(p.var.rows(), p.var.cols()));
            }
            // Wipe the shared graph (leaves included) before the next
            // objective's sweep.
            autodiff::ClearGraphGrads(objective);
          }
          backward_seconds += span.ElapsedSeconds();
        } else {
          {
            util::TraceSpan span("backward");
            autodiff::Backward(graph.loss);
            backward_seconds += span.ElapsedSeconds();
          }
          part.grads.reserve(params.size());
          for (auto& p : params) {
            const Tensor& g = p.var.grad();
            // A parameter the graph never reached has no grad; a zero
            // tensor keeps the fold shape-stable.
            part.grads.push_back(g.numel() > 0
                                     ? g
                                     : Tensor(p.var.rows(), p.var.cols()));
            p.var.ZeroGrad();
          }
        }
        part.buffer_deltas.reserve(buffers.size());
        for (size_t b = 0; b < buffers.size(); ++b) {
          Tensor delta = *buffers[b].tensor;
          const float* pre = pre_buffers[b].data();
          float* out = delta.data();
          for (int64_t k = 0; k < delta.numel(); ++k) out[k] -= pre[k];
          part.buffer_deltas.push_back(std::move(delta));
        }
        if (!beta_recorded) {
          CHECK(graph.beta.defined())
              << name_ << "::BuildBatch returned undefined beta";
          step_beta = graph.beta.value();
          beta_recorded = true;
        }
        return part;
      };
      DistStepPartial local = util::TreeFold<DistStepPartial>(
          dist_->shard_begin, dist_->shard_end, shard_partial,
          CombineDistPartials);
      // The base streams advance only through the epoch shuffles (which
      // every rank replays identically); shard draws never touch them.
      for (size_t j = 0; j < streams.size(); ++j) {
        streams[j]->RestoreState(base_states[j]);
      }
      util::StatusOr<DistStepPartial> exchanged =
          dist_->allreduce
              ? dist_->allreduce(global_step, std::move(local))
              : util::StatusOr<DistStepPartial>(std::move(local));
      if (!exchanged.ok()) return stop_early(exchanged.status());
      DistStepPartial combined = std::move(exchanged).value();
      CHECK(!combined.empty) << name_ << ": empty distributed step";
      const bool moo_step = !objective_names.empty();
      CHECK_EQ(combined.grads.size(), moo_step
                                          ? objective_names.size() *
                                                params.size()
                                          : params.size());
      CHECK_EQ(combined.buffer_deltas.size(), buffers.size());

      batch_loss = combined.loss;
      step_components = std::move(combined.components);
      if (moo_step) {
        // Weights from the *globally folded* per-objective gradients, so
        // every rank computes identical weights and the merged update
        // stays process-count-invariant.
        std::vector<std::vector<Tensor>> objective_grads(
            objective_names.size());
        for (size_t k = 0; k < objective_names.size(); ++k) {
          objective_grads[k].reserve(params.size());
          for (size_t i = 0; i < params.size(); ++i) {
            objective_grads[k].push_back(
                std::move(combined.grads[k * params.size() + i]));
          }
        }
        const std::vector<double> weights =
            MultiObjectiveWeights(objective_grads);
        std::vector<Tensor> merged;
        merged.reserve(params.size());
        for (size_t i = 0; i < params.size(); ++i) {
          Tensor g(params[i].var.rows(), params[i].var.cols());
          for (size_t k = 0; k < weights.size(); ++k) {
            g.AddScaledInPlace(objective_grads[k][i],
                               static_cast<float>(weights[k]));
          }
          merged.push_back(std::move(g));
        }
        combined.grads = std::move(merged);
        for (size_t k = 0; k < weights.size(); ++k) {
          step_components.emplace_back("moo_w_" + objective_names[k],
                                       weights[k]);
        }
      }
      // Chaos: as below; the injector schedule is replica-invariant, so
      // every rank sees the same corrupted step.
      if (faults.ShouldFail("train.loss_corrupt")) {
        batch_loss = std::numeric_limits<double>::quiet_NaN();
      }
      // One batch-norm update with the mean shard statistic: buffer =
      // pre + (fold of per-shard deltas) / num_shards. A power-of-two
      // grid makes the scale exact.
      const float inv_shards = 1.0f / static_cast<float>(num_shards);
      for (size_t b = 0; b < buffers.size(); ++b) {
        Tensor& dst = *buffers[b].tensor;
        dst = pre_buffers[b];
        const float* delta = combined.buffer_deltas[b].data();
        float* out = dst.data();
        for (int64_t k = 0; k < dst.numel(); ++k) {
          out[k] += delta[k] * inv_shards;
        }
      }

      // Guard rail 1, on the combined loss. Gradients are already safely
      // copied out and zeroed, so a trip only needs the rollback (which
      // also restores the buffers written above).
      if (guard_rails_armed_) {
        const char* bad = nullptr;
        if (guard_rails_.check_nonfinite && !std::isfinite(batch_loss)) {
          bad = "non-finite batch loss";
        } else if (guard_rails_.loss_spike_factor > 0.0 &&
                   last_epoch_loss > 0.0 &&
                   batch_loss >
                       guard_rails_.loss_spike_factor * last_epoch_loss) {
          bad = "batch loss spike";
        }
        if (bad != nullptr) {
          if (guard_tripped(bad)) {
            return stop_early(util::Status::DataLoss(
                name_ + ": " + bad + " at step " +
                std::to_string(global_step) + " with the rollback budget (" +
                std::to_string(guard_rails_.max_rollbacks) + ") exhausted"));
          }
          continue;
        }
      }

      // Every rank applies the identical combined gradients, so the
      // replicas' parameters stay bitwise-synchronized without any
      // parameter broadcast.
      {
        util::TraceSpan span("optimizer");
        for (size_t i = 0; i < params.size(); ++i) {
          params[i].var.node()->grad = combined.grads[i];
        }
        const float grad_norm = nn::ClipGradNorm(params, config_.grad_clip);
        grad_bad = guard_rails_armed_ && guard_rails_.check_nonfinite &&
                   !std::isfinite(grad_norm);
        if (!grad_bad) adam.Step(params);
        for (auto& p : params) p.var.ZeroGrad();
        optimizer_seconds += span.ElapsedSeconds();
      }
    } else {
      BatchGraph graph;
      {
        util::TraceSpan span("forward");
        graph = BuildBatch(batch);
        forward_seconds += span.ElapsedSeconds();
      }
      CHECK(graph.loss.defined());
      batch_loss = graph.loss.value().scalar();
      if (!graph.beta.defined()) {
        // Models must expose beta; guard against subclass bugs early.
        LOG(FATAL) << name_ << "::BuildBatch returned undefined beta";
      }
      // Materialize beta before the optimizer mutates parameters. A beta
      // the loss never consumes (ProdLDA, WeTe) is still pending under the
      // graph engine here; forcing it after adam.Step() would read the
      // post-update weights and break tape/graph bitwise identity.
      step_beta = graph.beta.value();
      // Chaos: pretend the forward pass diverged. Checked by the guard
      // rails below exactly like an organic NaN.
      if (faults.ShouldFail("train.loss_corrupt")) {
        batch_loss = std::numeric_limits<double>::quiet_NaN();
      }

      // Guard rail 1: the batch loss, inspected before any state mutates.
      if (guard_rails_armed_) {
        const char* bad = nullptr;
        if (guard_rails_.check_nonfinite && !std::isfinite(batch_loss)) {
          bad = "non-finite batch loss";
        } else if (guard_rails_.loss_spike_factor > 0.0 &&
                   last_epoch_loss > 0.0 &&
                   batch_loss >
                       guard_rails_.loss_spike_factor * last_epoch_loss) {
          bad = "batch loss spike";
        }
        if (bad != nullptr) {
          if (guard_tripped(bad)) {
            return stop_early(util::Status::DataLoss(
                name_ + ": " + bad + " at step " +
                std::to_string(global_step) + " with the rollback budget (" +
                std::to_string(guard_rails_.max_rollbacks) + ") exhausted"));
          }
          continue;
        }
      }

      const bool moo_step = loss_weighting_ == LossWeighting::kMoo &&
                            !graph.objectives.empty();
      {
        util::TraceSpan span("backward");
        if (moo_step) {
          // One reverse sweep per objective over the shared graph. Leaf
          // grads are copied out after each sweep and the whole reachable
          // graph is wiped (ClearGraphGrads) so sweeps never contaminate
          // each other through shared intermediate nodes.
          auto params = Parameters();
          std::vector<std::vector<Tensor>> objective_grads;
          objective_grads.reserve(graph.objectives.size());
          for (auto& [oname, objective] : graph.objectives) {
            CHECK(objective.defined())
                << name_ << ": undefined MOO objective " << oname;
            autodiff::Backward(objective);
            std::vector<Tensor> grads;
            grads.reserve(params.size());
            for (auto& p : params) {
              const Tensor& g = p.var.grad();
              grads.push_back(g.numel() > 0
                                  ? g
                                  : Tensor(p.var.rows(), p.var.cols()));
            }
            objective_grads.push_back(std::move(grads));
            autodiff::ClearGraphGrads(objective);
          }
          const std::vector<double> weights =
              MultiObjectiveWeights(objective_grads);
          for (size_t i = 0; i < params.size(); ++i) {
            Tensor combined(params[i].var.rows(), params[i].var.cols());
            for (size_t k = 0; k < weights.size(); ++k) {
              combined.AddScaledInPlace(objective_grads[k][i],
                                        static_cast<float>(weights[k]));
            }
            params[i].var.node()->grad = std::move(combined);
          }
          for (size_t k = 0; k < weights.size(); ++k) {
            step_components.emplace_back(
                "moo_w_" + graph.objectives[k].first, weights[k]);
          }
        } else {
          autodiff::Backward(graph.loss);
        }
        backward_seconds += span.ElapsedSeconds();
      }
      // Guard rail 2: the pre-clip gradient norm. A non-finite norm skips
      // the Adam step (which would poison the moments), then rolls back.
      {
        util::TraceSpan span("optimizer");
        auto params = Parameters();
        const float grad_norm = nn::ClipGradNorm(params, config_.grad_clip);
        grad_bad = guard_rails_armed_ && guard_rails_.check_nonfinite &&
                   !std::isfinite(grad_norm);
        if (!grad_bad) adam.Step(params);
        for (auto& p : params) p.var.ZeroGrad();
        optimizer_seconds += span.ElapsedSeconds();
      }
      for (const auto& [cname, value] : graph.loss_components) {
        step_components.emplace_back(cname, static_cast<double>(value));
      }
    }

    if (grad_bad) {
      if (guard_tripped("non-finite gradient norm")) {
        return stop_early(util::Status::DataLoss(
            name_ + ": non-finite gradient norm at step " +
            std::to_string(global_step) + " with the rollback budget (" +
            std::to_string(guard_rails_.max_rollbacks) + ") exhausted"));
      }
      continue;
    }

    epoch_loss += batch_loss;
    loss_histogram.Observe(batch_loss);
    step_counter.Increment();
    for (const auto& [cname, value] : step_components) {
      component_sums[cname] += value;
    }
    if (step_beta.numel() > 0) final_beta_ = step_beta;
    ++global_step;

    const bool epoch_end = step_in_epoch == steps_per_epoch - 1;
    if (epoch_end) {
      last_epoch_loss = epoch_loss / steps_per_epoch;
      epoch_counter.Increment();
      if (config_.verbose) {
        LOG(INFO) << name_ << " epoch " << epoch + 1 << "/" << epochs
                  << " loss=" << last_epoch_loss;
      }
      if (telemetry_ != nullptr) {
        util::EpochTelemetry record;
        record.epoch = epoch + 1;
        record.total_epochs = epochs;
        record.loss = last_epoch_loss;
        for (const auto& [cname, sum] : component_sums) {
          record.loss_components.emplace_back(cname, sum / steps_per_epoch);
        }
        if (epoch_evaluator_) {
          util::TraceSpan span("epoch_eval");
          record.metrics = epoch_evaluator_(final_beta_);
        }
        record.seconds = epoch_span->ElapsedSeconds();
        record.stage_seconds = {{"data", data_seconds},
                                {"forward", forward_seconds},
                                {"backward", backward_seconds},
                                {"optimizer", optimizer_seconds}};
        telemetry_->RecordEpoch(record);
      }
      epoch_span.reset();
      epoch_loss = 0.0;
      component_sums.clear();
      data_seconds = forward_seconds = 0.0;
      backward_seconds = optimizer_seconds = 0.0;
    }

    // Auto-checkpoint, then the kill site: a fired "train.kill" stands in
    // for a crash, so the last checkpoint written is exactly what a
    // recovering process finds on disk.
    // The cadence deliberately ignores whether a sink is attached: in
    // distributed training only the primary rank writes checkpoints, but
    // every rank must refresh its guard-rail snapshot at the same steps
    // or a rollback would desynchronize the replicas.
    const bool checkpoint_due =
        checkpoint_every_steps_ > 0
            ? global_step % checkpoint_every_steps_ == 0
            : epoch_end;
    if (checkpoint_due && checkpoint_sink_) {
      util::Status ckpt_status = checkpoint_sink_(capture());
      if (!ckpt_status.ok()) {
        ckpt_failure_counter.Increment();
        LOG(WARNING) << name_ << ": auto-checkpoint at step " << global_step
                     << " failed: " << ckpt_status.ToString();
      }
    }
    if (guard_rails_armed_ && (epoch_end || checkpoint_due)) take_snapshot();
    if (faults.ShouldFail("train.kill")) {
      return stop_early(util::Status::Cancelled(
          name_ + ": injected kill after step " +
          std::to_string(global_step)));
    }
  }
  epoch_span.reset();

  SetTraining(false);
  trained_ = true;
  training_progress_ = 1.0;
  stats.rollbacks = rollbacks;
  stats.total_seconds = train_span.ElapsedSeconds();
  stats.epochs = epochs;
  stats.seconds_per_epoch =
      epochs > 0 ? stats.total_seconds / epochs : 0.0;
  stats.final_loss = last_epoch_loss;
  stats.extra_memory_bytes = ExtraMemoryBytes();
  return stats;
}

std::vector<nn::NamedTensor> NeuralTopicModel::StateTensors() {
  std::vector<nn::NamedTensor> state;
  for (auto& p : Parameters()) {
    // The Node outlives the Parameter copy (shared with the model's own
    // Var), so the value pointer is stable.
    state.push_back({p.name, &p.var.node()->value});
  }
  for (auto& b : Buffers()) state.push_back(b);
  std::set<std::string> names;
  for (const auto& t : state) {
    CHECK(names.insert(t.name).second)
        << name_ << ": duplicate state tensor name " << t.name;
  }
  return state;
}

void NeuralTopicModel::RestoreTrainedState(Tensor beta) {
  CHECK_EQ(beta.rows(), config_.num_topics)
      << name_ << ": restored beta has wrong topic count";
  final_beta_ = std::move(beta);
  trained_ = true;
  training_progress_ = 1.0;
  SetTraining(false);
}

Tensor NeuralTopicModel::Beta() const {
  CHECK(trained_) << name_ << " is not trained";
  return final_beta_;
}

Tensor NeuralTopicModel::InferTheta(const text::BowCorpus& corpus) {
  CHECK(trained_) << name_ << " is not trained";
  SetTraining(false);
  Tensor theta(corpus.num_docs(), config_.num_topics);
  const int batch_size = std::max(1, config_.batch_size);
  // Batches are independent in eval mode (forward passes only read model
  // state: dropout is identity, batch-norm uses running stats) and each
  // writes a disjoint row range of theta. The batch grid is a function of
  // corpus size and batch_size only, so per-document math — and the result —
  // is identical at any thread count.
  const int num_batches = (corpus.num_docs() + batch_size - 1) / batch_size;
  util::ThreadPool::Global().ParallelFor(
      0, num_batches,
      [&](int64_t b_lo, int64_t b_hi) {
        for (int64_t b = b_lo; b < b_hi; ++b) {
          const int begin = static_cast<int>(b) * batch_size;
          const int end = std::min(corpus.num_docs(), begin + batch_size);
          std::vector<int> indices;
          indices.reserve(end - begin);
          for (int i = begin; i < end; ++i) indices.push_back(i);
          Tensor batch_theta = InferThetaBatch(corpus.NormalizedBatch(indices));
          CHECK_EQ(batch_theta.rows(), static_cast<int64_t>(indices.size()));
          CHECK_EQ(batch_theta.cols(), config_.num_topics);
          for (size_t r = 0; r < indices.size(); ++r) {
            std::copy(
                batch_theta.row(static_cast<int64_t>(r)),
                batch_theta.row(static_cast<int64_t>(r)) + config_.num_topics,
                theta.row(indices[r] /* == begin + r */));
          }
        }
      },
      /*grain=*/1);
  return theta;
}

}  // namespace topicmodel
}  // namespace contratopic
