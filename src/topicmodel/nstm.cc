#include "topicmodel/nstm.h"

#include "tensor/kernels.h"
#include "util/string_util.h"

namespace contratopic {
namespace topicmodel {

using namespace autodiff;  // NOLINT: op-heavy translation unit

NstmModel::NstmModel(const TrainConfig& config,
                     const embed::WordEmbeddings& embeddings)
    : NstmModel(config, embeddings, Options{}) {}

NstmModel::NstmModel(const TrainConfig& config,
                     const embed::WordEmbeddings& embeddings, Options options)
    : NeuralTopicModel("NSTM", config), options_(options) {
  rho_norm_ = Var::Constant(tensor::RowL2Normalized(embeddings.vectors()));
  MarkInvariant(rho_norm_);
  topic_embeddings_ = Var::Leaf(
      Tensor::RandNormal(config.num_topics, embeddings.dimension(), rng_,
                         0.0f, 0.1f),
      /*requires_grad=*/true);
  nn::Mlp::Config mlp;
  mlp.layer_sizes = {embeddings.vocab_size(), config.encoder_hidden};
  for (int i = 1; i < std::max(1, config.encoder_layers); ++i) {
    mlp.layer_sizes.push_back(config.encoder_hidden);
  }
  mlp.activation = nn::Activation::kSelu;
  mlp.dropout_rate = config.dropout;
  mlp.batch_norm = config.batch_norm;
  encoder_mlp_ = std::make_unique<nn::Mlp>(mlp, rng_, "nstm_enc");
  theta_head_ = std::make_unique<nn::Linear>(config.encoder_hidden,
                                             config.num_topics, rng_, "theta");
}

Var NstmModel::EncodeTheta(const Var& x_normalized) {
  return SoftmaxRows(theta_head_->Forward(encoder_mlp_->Forward(x_normalized)));
}

Var NstmModel::CostMatrix() {
  // 1 - rho_n t_n^T, in [0, 2].
  Var cosine =
      MatMul(rho_norm_, RowL2Normalize(topic_embeddings_), false, true);
  return AddScalar(Neg(cosine), 1.0f);
}

Var NstmModel::BetaVar() {
  // Topics read off the cosine similarities with a sharp softmax.
  Var cosine =
      MatMul(RowL2Normalize(topic_embeddings_), rho_norm_, false, true);
  return SoftmaxRows(MulScalar(cosine, 1.0f / options_.tau_beta));
}

NeuralTopicModel::BatchGraph NstmModel::BuildBatch(const Batch& batch) {
  const int64_t b = batch.normalized.rows();
  Var x_norm = Var::Constant(batch.normalized);
  Var theta = EncodeTheta(x_norm);
  Var cost = CostMatrix();                                    // V x K
  Var kernel = Exp(MulScalar(cost, -1.0f / options_.sinkhorn_epsilon));

  // Batched Sinkhorn between each document's word distribution (rows of
  // x_norm) and its theta row, unrolled for a fixed iteration count.
  Var u = Var::Constant(Tensor::Ones(b, batch.normalized.cols()));
  Var v = Var::Constant(Tensor::Ones(b, config_.num_topics));
  for (int it = 0; it < options_.sinkhorn_iterations; ++it) {
    // v = theta / (K^T u); u = x / (K v).
    v = Div(theta, AddScalar(MatMul(u, kernel), 1e-12f));
    u = Div(x_norm, AddScalar(MatMul(v, kernel, false, true), 1e-12f));
  }
  // Transport cost: sum_b u_b^T (K .* C) v_b.
  Var kernel_cost = Mul(kernel, cost);  // V x K
  Var ot = SumAll(Mul(u, MatMul(v, kernel_cost, false, true)));
  const float inv_batch = 1.0f / static_cast<float>(b);

  // Auxiliary reconstruction keeps topics predictive (weighted lightly).
  Var beta = BetaVar();
  Var recon = Neg(SumAll(
      Mul(Var::Constant(batch.counts), Log(MatMul(theta, beta), 1e-10f))));

  Var loss = MulScalar(
      Add(ot, MulScalar(recon, options_.recon_weight)), inv_batch);
  return {loss, beta, {}};
}

Tensor NstmModel::InferThetaBatch(const Tensor& x_normalized) {
  // Eval mode is set once by NeuralTopicModel::InferTheta; setting it here
  // per batch would race when batches run on pool workers.
  return EncodeTheta(Var::Constant(x_normalized)).value();
}

std::vector<nn::NamedTensor> NstmModel::Buffers() {
  std::vector<nn::NamedTensor> buffers = encoder_mlp_->Buffers();
  buffers.push_back({"rho_norm", &rho_norm_.node()->value});
  return buffers;
}

ModelDescriptor NstmModel::Describe() const {
  ModelDescriptor d;
  d.type = "nstm";
  d.display_name = name_;
  d.config = config_;
  d.vocab_size = static_cast<int>(rho_norm_.value().rows());
  d.embedding_dim = static_cast<int>(rho_norm_.value().cols());
  d.extras.emplace_back("sinkhorn_epsilon",
                        util::StrFormat("%.9g", options_.sinkhorn_epsilon));
  d.extras.emplace_back("sinkhorn_iterations",
                        std::to_string(options_.sinkhorn_iterations));
  d.extras.emplace_back("tau_beta",
                        util::StrFormat("%.9g", options_.tau_beta));
  return d;
}

std::vector<nn::Parameter> NstmModel::Parameters() {
  std::vector<nn::Parameter> params = encoder_mlp_->Parameters();
  for (auto& p : theta_head_->Parameters()) params.push_back(p);
  params.push_back({"topic_embeddings", topic_embeddings_});
  return params;
}

void NstmModel::SetTraining(bool training) {
  training_ = training;
  encoder_mlp_->SetTraining(training);
  theta_head_->SetTraining(training);
}

}  // namespace topicmodel
}  // namespace contratopic
