#include "topicmodel/wete.h"

#include "tensor/kernels.h"
#include "util/string_util.h"

namespace contratopic {
namespace topicmodel {

using namespace autodiff;  // NOLINT: op-heavy translation unit

WeTeModel::WeTeModel(const TrainConfig& config,
                     const embed::WordEmbeddings& embeddings)
    : WeTeModel(config, embeddings, Options{}, "WeTe") {}

WeTeModel::WeTeModel(const TrainConfig& config,
                     const embed::WordEmbeddings& embeddings, Options options,
                     std::string name)
    : NeuralTopicModel(std::move(name), config), options_(options) {
  rho_norm_ = Var::Constant(tensor::RowL2Normalized(embeddings.vectors()));
  MarkInvariant(rho_norm_);
  topic_embeddings_ = Var::Leaf(
      Tensor::RandNormal(config.num_topics, embeddings.dimension(), rng_,
                         0.0f, 0.1f),
      /*requires_grad=*/true);
  nn::Mlp::Config mlp;
  mlp.layer_sizes = {embeddings.vocab_size(), config.encoder_hidden};
  for (int i = 1; i < std::max(1, config.encoder_layers); ++i) {
    mlp.layer_sizes.push_back(config.encoder_hidden);
  }
  mlp.activation = nn::Activation::kSelu;
  mlp.dropout_rate = config.dropout;
  mlp.batch_norm = config.batch_norm;
  encoder_mlp_ = std::make_unique<nn::Mlp>(mlp, rng_, "wete_enc");
  theta_head_ = std::make_unique<nn::Linear>(config.encoder_hidden,
                                             config.num_topics, rng_, "theta");
}

Var WeTeModel::EncodeTheta(const Var& x_normalized) {
  return SoftmaxRows(theta_head_->Forward(encoder_mlp_->Forward(x_normalized)));
}

Var WeTeModel::CostMatrix() {
  Var cosine =
      MatMul(rho_norm_, RowL2Normalize(topic_embeddings_), false, true);
  return AddScalar(Neg(cosine), 1.0f);
}

Var WeTeModel::BetaVar() {
  Var cosine =
      MatMul(RowL2Normalize(topic_embeddings_), rho_norm_, false, true);
  return SoftmaxRows(MulScalar(cosine, 1.0f / options_.tau_beta));
}

NeuralTopicModel::BatchGraph WeTeModel::BuildBatch(const Batch& batch) {
  const int64_t b = batch.normalized.rows();
  Var x_norm = Var::Constant(batch.normalized);
  Var theta = EncodeTheta(x_norm);
  Var cost = CostMatrix();  // V x K

  // Forward direction (doc -> topics): each word pays its soft-min topic
  // distance. q = softmax_k(-C/gamma); s_w = sum_k q_wk C_wk; cost is
  // sum_d sum_w x_dw s_w.
  Var q = SoftmaxRows(MulScalar(cost, -1.0f / options_.gamma));
  Var softmin = RowSum(Mul(q, cost));  // V x 1
  Var forward_cost = SumAll(MatMul(x_norm, softmin));

  // Backward direction (topics -> doc): topic k pays its expected distance
  // to the doc's words under p(w|k, d) proportional to x_dw exp(-C_wk/g):
  //   E = exp(-C/gamma); N = x (E .* C); Z = x E; cost = sum theta .* N/Z.
  Var e = Exp(MulScalar(cost, -1.0f / options_.gamma));  // V x K
  Var n = MatMul(x_norm, Mul(e, cost));                  // B x K
  Var z = AddScalar(MatMul(x_norm, e), 1e-12f);          // B x K
  Var backward_cost = SumAll(Mul(theta, Div(n, z)));

  const float inv_batch = 1.0f / static_cast<float>(b);
  Var loss = MulScalar(
      Add(forward_cost, MulScalar(backward_cost, options_.backward_weight)),
      inv_batch);
  return {loss, BetaVar(), {}};
}

Tensor WeTeModel::InferThetaBatch(const Tensor& x_normalized) {
  // Eval mode is set once by NeuralTopicModel::InferTheta; setting it here
  // per batch would race when batches run on pool workers.
  return EncodeTheta(Var::Constant(x_normalized)).value();
}

Var WeTeModel::EncodeRepresentation(const Tensor& x_normalized) {
  return EncodeTheta(Var::Constant(x_normalized));
}

std::vector<nn::NamedTensor> WeTeModel::Buffers() {
  std::vector<nn::NamedTensor> buffers = encoder_mlp_->Buffers();
  buffers.push_back({"rho_norm", &rho_norm_.node()->value});
  return buffers;
}

ModelDescriptor WeTeModel::Describe() const {
  ModelDescriptor d;
  d.type = "wete";
  d.display_name = name_;
  d.config = config_;
  d.vocab_size = static_cast<int>(rho_norm_.value().rows());
  d.embedding_dim = static_cast<int>(rho_norm_.value().cols());
  d.extras.emplace_back("gamma", util::StrFormat("%.9g", options_.gamma));
  d.extras.emplace_back("tau_beta",
                        util::StrFormat("%.9g", options_.tau_beta));
  return d;
}

std::vector<nn::Parameter> WeTeModel::Parameters() {
  std::vector<nn::Parameter> params = encoder_mlp_->Parameters();
  for (auto& p : theta_head_->Parameters()) params.push_back(p);
  params.push_back({"topic_embeddings", topic_embeddings_});
  return params;
}

void WeTeModel::SetTraining(bool training) {
  training_ = training;
  encoder_mlp_->SetTraining(training);
  theta_head_->SetTraining(training);
}

}  // namespace topicmodel
}  // namespace contratopic
