#ifndef CONTRATOPIC_TOPICMODEL_LDA_H_
#define CONTRATOPIC_TOPICMODEL_LDA_H_

// Latent Dirichlet Allocation (Blei et al., 2003) trained with a collapsed
// Gibbs sampler (Griffiths & Steyvers). The conventional-topic-model
// baseline of the paper's experiments.

#include <vector>

#include "topicmodel/topic_model.h"
#include "util/rng.h"

namespace contratopic {
namespace topicmodel {

class LdaModel : public TopicModel {
 public:
  struct Options {
    double alpha = 0.1;   // document-topic prior
    double eta = 0.01;    // topic-word prior
    int gibbs_sweeps = 150;
    int fold_in_sweeps = 20;  // for inference on unseen documents
  };

  explicit LdaModel(int num_topics, uint64_t seed = 7);
  LdaModel(int num_topics, uint64_t seed, Options options);

  std::string name() const override { return "LDA"; }
  int num_topics() const override { return num_topics_; }

  TrainStats Train(const text::BowCorpus& corpus) override;
  tensor::Tensor Beta() const override;
  tensor::Tensor InferTheta(const text::BowCorpus& corpus) override;

 private:
  // One Gibbs sweep over `tokens`; updates assignments and counts.
  // `update_topic_word` is false during fold-in (topic-word counts frozen).
  struct TokenState {
    std::vector<std::vector<int>> word;   // per doc, token word ids
    std::vector<std::vector<int>> topic;  // per doc, token assignments
  };
  void GibbsSweep(TokenState* state, std::vector<std::vector<int>>* doc_topic,
                  bool update_topic_word, util::Rng& rng);

  int num_topics_;
  Options options_;
  util::Rng rng_;
  int vocab_size_ = 0;
  bool trained_ = false;
  std::vector<std::vector<int64_t>> topic_word_;  // K x V counts
  std::vector<int64_t> topic_totals_;             // K
  tensor::Tensor train_theta_;
};

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_LDA_H_
