#ifndef CONTRATOPIC_TOPICMODEL_CLNTM_H_
#define CONTRATOPIC_TOPICMODEL_CLNTM_H_

// CLNTM (Nguyen & Luu, 2021): ETM plus a *document-wise* contrastive term.
// Following the paper's sampling recipe, both views substitute entries of
// the input BOW with the model's own reconstruction (theta . beta,
// detached): the negative view overwrites the top-k highest-tf-idf
// (salient) entries -- destroying the document's topical signature -- and
// the positive view overwrites the bottom-k lowest-tf-idf entries, which
// perturbs only background words. An InfoNCE loss over encoder
// representations pulls each document toward its positive view against the
// in-batch positives of other documents plus its own hard negative. This
// is the paper's principal contrastive-learning baseline -- it regularizes
// the document-topic side and only *implicitly* shapes the topic-word
// distribution (paper §IV.E).

#include "topicmodel/etm.h"

namespace contratopic {
namespace topicmodel {

class ClntmModel : public EtmModel {
 public:
  struct Options {
    float contrast_weight = 1.0f;
    float temperature = 0.5f;
    // Fraction of a document's present words counted as salient (top by
    // tf-idf) for the negative view; the positive view perturbs the same
    // number of least-salient present words.
    float salient_fraction = 0.25f;
  };

  ClntmModel(const TrainConfig& config,
             const embed::WordEmbeddings& embeddings);
  ClntmModel(const TrainConfig& config,
             const embed::WordEmbeddings& embeddings, Options options);

  void Prepare(const text::BowCorpus& corpus) override;
  BatchGraph BuildBatch(const Batch& batch) override;
  ModelDescriptor Describe() const override;

 private:
  Options options_;
  std::vector<int> doc_freq_;
};

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_CLNTM_H_
