#ifndef CONTRATOPIC_TOPICMODEL_CLNTM_H_
#define CONTRATOPIC_TOPICMODEL_CLNTM_H_

// CLNTM (Nguyen & Luu, 2021): ETM plus a *document-wise* contrastive term.
// For each document, a positive view keeps its salient (high tf-idf) words
// and a negative view removes them; an InfoNCE loss pulls the document
// representation toward the positive and away from the negative. This is
// the paper's principal contrastive-learning baseline -- it regularizes
// the document-topic side and only *implicitly* shapes the topic-word
// distribution (paper §IV.E).

#include "topicmodel/etm.h"

namespace contratopic {
namespace topicmodel {

class ClntmModel : public EtmModel {
 public:
  struct Options {
    float contrast_weight = 1.0f;
    float temperature = 0.5f;
    // Fraction of a document's tokens treated as salient by tf-idf.
    float salient_fraction = 0.25f;
  };

  ClntmModel(const TrainConfig& config,
             const embed::WordEmbeddings& embeddings);
  ClntmModel(const TrainConfig& config,
             const embed::WordEmbeddings& embeddings, Options options);

  void Prepare(const text::BowCorpus& corpus) override;
  BatchGraph BuildBatch(const Batch& batch) override;
  ModelDescriptor Describe() const override;

 private:
  // Builds positive (salient-only) and negative (salient-removed) views.
  void BuildViews(const Batch& batch, Tensor* positive, Tensor* negative);

  Options options_;
  std::vector<int> doc_freq_;
};

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_CLNTM_H_
