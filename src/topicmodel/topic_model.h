#ifndef CONTRATOPIC_TOPICMODEL_TOPIC_MODEL_H_
#define CONTRATOPIC_TOPICMODEL_TOPIC_MODEL_H_

// Common interface for every topic model in the repo (the paper's
// ContraTopic and all nine baselines). A model is trained once on a corpus
// and afterwards exposes
//   * Beta():       the K x V topic-word distribution (rows sum to 1), and
//   * InferTheta(): per-document topic proportions for any corpus.

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "text/corpus.h"
#include "util/status.h"

namespace contratopic {
namespace topicmodel {

struct TrainConfig {
  int num_topics = 20;
  int epochs = 15;
  int batch_size = 256;
  // Adam at 5e-4 is the paper's setting for every neural model.
  float learning_rate = 5e-4f;
  // Encoder: the paper uses a 3-layer 800-unit SeLU MLP with dropout 0.5
  // and batch norm; defaults here are scaled for CPU (see DESIGN.md §6).
  int encoder_hidden = 128;
  int encoder_layers = 2;
  float dropout = 0.5f;
  bool batch_norm = true;
  float grad_clip = 10.0f;
  uint64_t seed = 7;
  bool verbose = false;
};

struct TrainStats {
  double total_seconds = 0.0;
  double seconds_per_epoch = 0.0;
  double final_loss = 0.0;
  int epochs = 0;
  // Extra memory attributable to the method (e.g. the NPMI matrix held by
  // ContraTopic); reported by the computational-analysis bench (§V.E).
  int64_t extra_memory_bytes = 0;
  // Fault-tolerance outcome (DESIGN.md §11). `status` is non-OK when the
  // loop stopped early: kCancelled for an injected kill, kDataLoss when
  // the numeric guard rails exhausted their rollback budget. The model is
  // only marked trained when `interrupted` is false.
  util::Status status;
  // Guard-rail rollbacks performed (non-finite loss/gradients, spikes).
  int rollbacks = 0;
  bool interrupted = false;
};

// Everything a fresh process needs to rebuild a model's *architecture*
// before restoring its trained state from a checkpoint
// (serve/checkpoint.h). `type` is the core::CreateModel zoo name ("etm",
// "prodlda", "contratopic", ...); an empty type marks a model that does
// not support checkpointing. `extras` records model-specific options as
// ordered key/value strings — self-describing metadata for humans and
// forward compatibility; restore only needs type/config/shapes because
// every inference-relevant tensor is captured as a parameter or buffer.
struct ModelDescriptor {
  std::string type;
  std::string display_name;
  TrainConfig config;
  int vocab_size = 0;
  // Width of the frozen word-embedding table the model was built from
  // (0 for models constructed without one, e.g. ProdLDA / WLDA).
  int embedding_dim = 0;
  std::vector<std::pair<std::string, std::string>> extras;
};

class TopicModel {
 public:
  virtual ~TopicModel() = default;

  virtual std::string name() const = 0;

  // Architecture descriptor for checkpointing; models that cannot be
  // checkpointed return the default (empty-type) descriptor.
  virtual ModelDescriptor Describe() const { return {}; }

  // Trains on `corpus`; may be called once.
  virtual TrainStats Train(const text::BowCorpus& corpus) = 0;

  // K x V topic-word distribution; each row sums to 1.
  virtual tensor::Tensor Beta() const = 0;

  // num_docs x K document-topic distribution for `corpus`.
  virtual tensor::Tensor InferTheta(const text::BowCorpus& corpus) = 0;

  virtual int num_topics() const = 0;
};

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_TOPIC_MODEL_H_
