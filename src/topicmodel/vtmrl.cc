#include "topicmodel/vtmrl.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/string_util.h"

namespace contratopic {
namespace topicmodel {

using namespace autodiff;  // NOLINT: op-heavy translation unit

VtmrlModel::VtmrlModel(const TrainConfig& config,
                       const embed::WordEmbeddings& embeddings)
    : VtmrlModel(config, embeddings, Options{}) {}

VtmrlModel::VtmrlModel(const TrainConfig& config,
                       const embed::WordEmbeddings& embeddings,
                       Options options)
    : EtmModel(config, embeddings, EtmModel::Options{}, "VTMRL"),
      options_(options) {}

void VtmrlModel::Prepare(const text::BowCorpus& corpus) {
  train_npmi_ =
      std::make_unique<eval::NpmiMatrix>(eval::NpmiMatrix::Compute(corpus));
}

int64_t VtmrlModel::ExtraMemoryBytes() const {
  return train_npmi_ != nullptr ? train_npmi_->MemoryBytes() : 0;
}

NeuralTopicModel::BatchGraph VtmrlModel::BuildBatch(const Batch& batch) {
  CHECK(train_npmi_ != nullptr) << "Prepare() was not called";
  ElboGraph g = BuildElbo(batch);

  // Hard-sample words per topic (no gradient through the sampling) and
  // measure their NPMI coherence as the reward.
  const Tensor& beta_value = g.beta.value();
  const int k = config_.num_topics;
  const int v = static_cast<int>(beta_value.cols());
  Tensor advantage_mask(k, v);
  double mean_reward = 0.0;
  std::vector<double> rewards(k);
  std::vector<std::vector<int>> samples(k);
  for (int topic = 0; topic < k; ++topic) {
    // Sample without replacement proportional to beta (Gumbel top-k trick,
    // evaluated in hard mode).
    std::vector<std::pair<float, int>> keys(v);
    for (int w = 0; w < v; ++w) {
      const float logit = std::log(beta_value.at(topic, w) + 1e-20f);
      keys[w] = {logit + static_cast<float>(rng_.Gumbel()), w};
    }
    const int take = std::min(options_.words_per_topic, v);
    std::partial_sort(
        keys.begin(), keys.begin() + take, keys.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    samples[topic].reserve(take);
    for (int i = 0; i < take; ++i) samples[topic].push_back(keys[i].second);
    rewards[topic] = train_npmi_->MeanPairwise(samples[topic]);
    mean_reward += rewards[topic];
  }
  mean_reward /= k;
  if (!baseline_initialized_) {
    reward_baseline_ = mean_reward;
    baseline_initialized_ = true;
  } else {
    reward_baseline_ = options_.baseline_momentum * reward_baseline_ +
                       (1.0 - options_.baseline_momentum) * mean_reward;
  }
  for (int topic = 0; topic < k; ++topic) {
    const float adv = static_cast<float>(rewards[topic] - reward_baseline_);
    for (int w : samples[topic]) advantage_mask.at(topic, w) = adv;
  }

  // REINFORCE surrogate: -sum_k adv_k * sum_{w in S_k} log beta_kw.
  Var rl = Neg(SumAll(Mul(Log(g.beta, 1e-20f), Var::Constant(advantage_mask))));
  Var loss = Add(g.loss, MulScalar(rl, options_.reward_weight /
                                           static_cast<float>(k)));
  return {loss, g.beta, {}};
}

ModelDescriptor VtmrlModel::Describe() const {
  ModelDescriptor d = DescribeAs("vtmrl");
  d.extras.emplace_back("reward_weight",
                        util::StrFormat("%.9g", options_.reward_weight));
  d.extras.emplace_back("words_per_topic",
                        std::to_string(options_.words_per_topic));
  d.extras.emplace_back("baseline_momentum",
                        util::StrFormat("%.9g", options_.baseline_momentum));
  return d;
}

}  // namespace topicmodel
}  // namespace contratopic
