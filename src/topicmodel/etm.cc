#include "topicmodel/etm.h"

#include "util/string_util.h"

namespace contratopic {
namespace topicmodel {

using namespace autodiff;  // NOLINT: op-heavy translation unit

EtmModel::EtmModel(const TrainConfig& config,
                   const embed::WordEmbeddings& embeddings)
    : EtmModel(config, embeddings, Options{}, "ETM") {}

EtmModel::EtmModel(const TrainConfig& config,
                   const embed::WordEmbeddings& embeddings, Options options,
                   std::string name)
    : NeuralTopicModel(std::move(name), config), options_(options) {
  CHECK_GT(embeddings.vocab_size(), 0);
  rho_ = Var::Constant(embeddings.vectors());
  // Frozen across the whole run: lets the graph engine hoist products over
  // rho out of the step loop (tensor/graph.h).
  MarkInvariant(rho_);
  topic_embeddings_ = Var::Leaf(
      Tensor::RandNormal(config.num_topics, embeddings.dimension(), rng_,
                         0.0f, 0.02f),
      /*requires_grad=*/true);
  encoder_ = std::make_unique<VaeEncoder>(embeddings.vocab_size(),
                                          config.num_topics, config, rng_);
}

Var EtmModel::BetaVar() {
  // softmax over the vocabulary of (t rho^T) / tau.
  Var logits = MulScalar(MatMul(topic_embeddings_, rho_, false, true),
                         1.0f / options_.tau_beta);
  return SoftmaxRows(logits);
}

EtmModel::ElboGraph EtmModel::BuildElbo(const Batch& batch) {
  ElboGraph g;
  Var x_norm = Var::Constant(batch.normalized);
  Var x_counts = Var::Constant(batch.counts);
  g.encoded = encoder_->Forward(x_norm, /*sample=*/training_);
  g.beta = BetaVar();
  // Reconstruction: -sum_d sum_w x_dw log(theta_d . beta_w).
  g.word_probs = MatMul(g.encoded.theta, g.beta);  // B x V
  Var recon = Neg(SumAll(Mul(x_counts, Log(g.word_probs, 1e-10f))));
  Var kl = VaeEncoder::KlDivergence(g.encoded);
  const float inv_batch = 1.0f / static_cast<float>(batch.counts.rows());
  g.loss = MulScalar(Add(recon, kl), inv_batch);
  g.recon_term = MulScalar(recon, inv_batch);
  g.kl_term = MulScalar(kl, inv_batch);
  g.recon = recon.value().scalar() * inv_batch;
  g.kl = kl.value().scalar() * inv_batch;
  return g;
}

NeuralTopicModel::BatchGraph EtmModel::BuildBatch(const Batch& batch) {
  ElboGraph g = BuildElbo(batch);
  BatchGraph out;
  out.loss = g.loss;
  out.beta = g.beta;
  out.loss_components = {{"recon", g.recon}, {"kl", g.kl}};
  out.objectives = {{"recon", g.recon_term}, {"kl", g.kl_term}};
  return out;
}

Tensor EtmModel::InferThetaBatch(const Tensor& x_normalized) {
  // Eval mode is set once by NeuralTopicModel::InferTheta; setting it here
  // per batch would race when batches run on pool workers.
  VaeEncoder::Output out =
      encoder_->Forward(Var::Constant(x_normalized), /*sample=*/false);
  return out.theta.value();
}

Var EtmModel::EncodeRepresentation(const Tensor& x_normalized) {
  return encoder_->Forward(Var::Constant(x_normalized), /*sample=*/false).mu;
}

std::vector<nn::Parameter> EtmModel::Parameters() {
  std::vector<nn::Parameter> params = encoder_->Parameters();
  params.push_back({"topic_embeddings", topic_embeddings_});
  return params;
}

std::vector<nn::NamedTensor> EtmModel::Buffers() {
  std::vector<nn::NamedTensor> buffers = encoder_->Buffers();
  // rho is frozen, but a restored process rebuilds the model around
  // placeholder embeddings — the true values must ride in the checkpoint.
  buffers.push_back({"rho", &rho_.node()->value});
  return buffers;
}

ModelDescriptor EtmModel::DescribeAs(const std::string& type) const {
  ModelDescriptor d;
  d.type = type;
  d.display_name = name_;
  d.config = config_;
  d.vocab_size = static_cast<int>(rho_.value().rows());
  d.embedding_dim = static_cast<int>(rho_.value().cols());
  d.extras.emplace_back("tau_beta",
                        util::StrFormat("%.9g", options_.tau_beta));
  return d;
}

ModelDescriptor EtmModel::Describe() const { return DescribeAs("etm"); }

void EtmModel::SetTraining(bool training) {
  training_ = training;
  encoder_->SetTraining(training);
}

}  // namespace topicmodel
}  // namespace contratopic
