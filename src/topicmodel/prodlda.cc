#include "topicmodel/prodlda.h"

#include <cmath>

#include "util/string_util.h"

namespace contratopic {
namespace topicmodel {

using namespace autodiff;  // NOLINT: op-heavy translation unit

ProdLdaModel::ProdLdaModel(const TrainConfig& config, int vocab_size)
    : ProdLdaModel(config, vocab_size, Options{}) {}

ProdLdaModel::ProdLdaModel(const TrainConfig& config, int vocab_size,
                           Options options)
    : NeuralTopicModel("ProdLDA", config), options_(options) {
  CHECK_GT(vocab_size, 0);
  const int k = config.num_topics;
  // Laplace approximation of a symmetric Dirichlet(alpha) in softmax basis
  // (Srivastava & Sutton, eqs. 4-5). For symmetric alpha the prior mean is
  // zero and the variance is shared across coordinates.
  const float a = options_.dirichlet_alpha;
  prior_mu_ = 0.0f;
  prior_var_ = (1.0f / a) * (1.0f - 2.0f / k) + 1.0f / (k * k) * (k / a);

  decoder_weight_ = Var::Leaf(
      Tensor::RandNormal(k, vocab_size, rng_, 0.0f, 0.02f),
      /*requires_grad=*/true);
  encoder_ = std::make_unique<VaeEncoder>(vocab_size, k, config, rng_);
}

Var ProdLdaModel::LaplacePriorKl(const VaeEncoder::Output& encoded) const {
  // KL(N(mu, sigma^2) || N(mu0, sigma0^2)) summed over batch and topics:
  //   0.5 * sum(sigma^2/s0 + (mu - mu0)^2/s0 - 1 + log s0 - logvar).
  const float s0 = prior_var_;
  Var var = Exp(encoded.logvar);
  Var mu_diff_sq = Square(AddScalar(encoded.mu, -prior_mu_));
  Var inside =
      AddScalar(Sub(MulScalar(Add(var, mu_diff_sq), 1.0f / s0),
                    encoded.logvar),
                -1.0f + std::log(s0));
  return MulScalar(SumAll(inside), 0.5f);
}

NeuralTopicModel::BatchGraph ProdLdaModel::BuildBatch(const Batch& batch) {
  Var x_norm = Var::Constant(batch.normalized);
  Var x_counts = Var::Constant(batch.counts);
  VaeEncoder::Output encoded =
      encoder_->Forward(x_norm, /*sample=*/training_);
  // Product of experts: log p(w|theta) = log_softmax(theta W).
  Var logits = MatMul(encoded.theta, decoder_weight_);
  Var log_probs = LogSoftmaxRows(logits);
  Var recon = Neg(SumAll(Mul(x_counts, log_probs)));
  Var kl = LaplacePriorKl(encoded);
  const float inv_batch = 1.0f / static_cast<float>(batch.counts.rows());
  Var loss = MulScalar(Add(recon, kl), inv_batch);
  Var beta = SoftmaxRows(decoder_weight_);
  return {loss,
          beta,
          {{"recon", recon.value().scalar() * inv_batch},
           {"kl", kl.value().scalar() * inv_batch}}};
}

Tensor ProdLdaModel::InferThetaBatch(const Tensor& x_normalized) {
  // Eval mode is set once by NeuralTopicModel::InferTheta; setting it here
  // per batch would race when batches run on pool workers.
  return encoder_->Forward(Var::Constant(x_normalized), /*sample=*/false)
      .theta.value();
}

std::vector<nn::Parameter> ProdLdaModel::Parameters() {
  std::vector<nn::Parameter> params = encoder_->Parameters();
  params.push_back({"decoder.weight", decoder_weight_});
  return params;
}

std::vector<nn::NamedTensor> ProdLdaModel::Buffers() {
  return encoder_->Buffers();
}

ModelDescriptor ProdLdaModel::Describe() const {
  ModelDescriptor d;
  d.type = "prodlda";
  d.display_name = name_;
  d.config = config_;
  d.vocab_size = static_cast<int>(decoder_weight_.value().cols());
  d.extras.emplace_back("dirichlet_alpha",
                        util::StrFormat("%.9g", options_.dirichlet_alpha));
  return d;
}

void ProdLdaModel::SetTraining(bool training) {
  training_ = training;
  encoder_->SetTraining(training);
}

}  // namespace topicmodel
}  // namespace contratopic
