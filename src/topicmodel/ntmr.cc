#include "topicmodel/ntmr.h"

#include "tensor/kernels.h"
#include "util/string_util.h"

namespace contratopic {
namespace topicmodel {

using namespace autodiff;  // NOLINT: op-heavy translation unit

NtmrModel::NtmrModel(const TrainConfig& config,
                     const embed::WordEmbeddings& embeddings)
    : NtmrModel(config, embeddings, Options{}) {}

NtmrModel::NtmrModel(const TrainConfig& config,
                     const embed::WordEmbeddings& embeddings, Options options)
    : EtmModel(config, embeddings, EtmModel::Options{}, "NTM-R"),
      options_(options) {
  embeddings_norm_ =
      Var::Constant(tensor::RowL2Normalized(embeddings.vectors()));
  MarkInvariant(embeddings_norm_);
}

NeuralTopicModel::BatchGraph NtmrModel::BuildBatch(const Batch& batch) {
  ElboGraph g = BuildElbo(batch);
  // Sharpened topic-word mass projected into embedding space. For a topic
  // concentrated on words with aligned embeddings the centroid norm
  // approaches 1; spreading mass over unrelated words shrinks it.
  Var sharp = SoftmaxRows(MulScalar(Log(g.beta, 1e-12f), options_.sharpen));
  Var centroids = MatMul(sharp, embeddings_norm_);  // K x e
  Var coherence = MeanAll(RowSum(Square(centroids)));
  Var loss =
      Sub(g.loss, MulScalar(coherence, options_.coherence_weight));
  return {loss, g.beta, {}};
}

std::vector<nn::NamedTensor> NtmrModel::Buffers() {
  std::vector<nn::NamedTensor> buffers = EtmModel::Buffers();
  // Derived from the true embeddings; a restored process rebuilds around
  // placeholders, so the normalized copy must be checkpointed too.
  buffers.push_back({"embeddings_norm", &embeddings_norm_.node()->value});
  return buffers;
}

ModelDescriptor NtmrModel::Describe() const {
  ModelDescriptor d = DescribeAs("ntmr");
  d.extras.emplace_back("coherence_weight",
                        util::StrFormat("%.9g", options_.coherence_weight));
  d.extras.emplace_back("sharpen",
                        util::StrFormat("%.9g", options_.sharpen));
  return d;
}

}  // namespace topicmodel
}  // namespace contratopic
