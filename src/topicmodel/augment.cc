#include "topicmodel/augment.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace contratopic {
namespace topicmodel {

void BuildTfIdfViews(const tensor::Tensor& normalized,
                     const tensor::Tensor& tfidf, float salient_fraction,
                     tensor::Tensor* positive, tensor::Tensor* negative) {
  CHECK(normalized.same_shape(tfidf));
  CHECK_GT(salient_fraction, 0.0f);
  *positive = normalized;
  *negative = normalized;
  for (int64_t r = 0; r < tfidf.rows(); ++r) {
    std::vector<std::pair<float, int>> present;
    for (int64_t c = 0; c < tfidf.cols(); ++c) {
      if (tfidf.at(r, c) > 0.0f) {
        present.emplace_back(tfidf.at(r, c), static_cast<int>(c));
      }
    }
    if (present.empty()) continue;
    const int salient = std::max(
        1, static_cast<int>(salient_fraction * present.size()));
    std::partial_sort(
        present.begin(), present.begin() + salient, present.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<bool> is_salient(tfidf.cols(), false);
    for (int i = 0; i < salient; ++i) is_salient[present[i].second] = true;
    for (int64_t c = 0; c < tfidf.cols(); ++c) {
      if (is_salient[c]) {
        negative->at(r, c) = 0.0f;
      } else {
        positive->at(r, c) = 0.0f;
      }
    }
  }
}

}  // namespace topicmodel
}  // namespace contratopic
