#include "topicmodel/augment.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace contratopic {
namespace topicmodel {

void BuildTfIdfViews(const tensor::Tensor& normalized,
                     const tensor::Tensor& tfidf, float salient_fraction,
                     tensor::Tensor* positive, tensor::Tensor* negative) {
  CHECK(normalized.same_shape(tfidf));
  CHECK_GT(salient_fraction, 0.0f);
  *positive = normalized;
  *negative = normalized;
  for (int64_t r = 0; r < tfidf.rows(); ++r) {
    std::vector<std::pair<float, int>> present;
    for (int64_t c = 0; c < tfidf.cols(); ++c) {
      if (tfidf.at(r, c) > 0.0f) {
        present.emplace_back(tfidf.at(r, c), static_cast<int>(c));
      }
    }
    if (present.empty()) continue;
    const int salient = std::max(
        1, static_cast<int>(salient_fraction * present.size()));
    std::partial_sort(
        present.begin(), present.begin() + salient, present.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<bool> is_salient(tfidf.cols(), false);
    for (int i = 0; i < salient; ++i) is_salient[present[i].second] = true;
    for (int64_t c = 0; c < tfidf.cols(); ++c) {
      if (is_salient[c]) {
        negative->at(r, c) = 0.0f;
      } else {
        positive->at(r, c) = 0.0f;
      }
    }
  }
}

void BuildReconSubstitutedViews(const tensor::Tensor& normalized,
                                const tensor::Tensor& tfidf,
                                const tensor::Tensor& reconstruction,
                                float salient_fraction,
                                tensor::Tensor* positive,
                                tensor::Tensor* negative) {
  CHECK(normalized.same_shape(tfidf));
  CHECK(normalized.same_shape(reconstruction));
  CHECK_GT(salient_fraction, 0.0f);
  *positive = normalized;
  *negative = normalized;
  for (int64_t r = 0; r < normalized.rows(); ++r) {
    std::vector<std::pair<float, int>> present;
    for (int64_t c = 0; c < normalized.cols(); ++c) {
      if (normalized.at(r, c) > 0.0f) {
        present.emplace_back(tfidf.at(r, c), static_cast<int>(c));
      }
    }
    if (present.empty()) continue;
    const int k = std::max(
        1, static_cast<int>(salient_fraction * present.size()));
    // Strict-weak order with a word-id tiebreak: the ranking (and with it
    // the views) is a pure function of the inputs.
    std::sort(present.begin(), present.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (int i = 0; i < k; ++i) {
      const int c = present[i].second;  // most salient
      negative->at(r, c) = reconstruction.at(r, c);
    }
    const int n = static_cast<int>(present.size());
    for (int i = std::max(0, n - k); i < n; ++i) {
      const int c = present[i].second;  // least salient
      positive->at(r, c) = reconstruction.at(r, c);
    }
  }
}

}  // namespace topicmodel
}  // namespace contratopic
