#ifndef CONTRATOPIC_TOPICMODEL_VTMRL_H_
#define CONTRATOPIC_TOPICMODEL_VTMRL_H_

// VTMRL (Gui et al., 2019): ETM plus a REINFORCE term whose reward is the
// measured NPMI coherence of words *hard-sampled* from each topic. This is
// the policy-gradient alternative to ContraTopic's differentiable
// relaxation; the paper (§II.C) notes its high gradient variance and
// convergence issues, which the reproduction exhibits as well.

#include <memory>

#include "eval/npmi.h"
#include "topicmodel/etm.h"

namespace contratopic {
namespace topicmodel {

class VtmrlModel : public EtmModel {
 public:
  struct Options {
    float reward_weight = 20.0f;
    int words_per_topic = 10;  // sampled for the reward
    float baseline_momentum = 0.9f;
  };

  VtmrlModel(const TrainConfig& config,
             const embed::WordEmbeddings& embeddings);
  VtmrlModel(const TrainConfig& config,
             const embed::WordEmbeddings& embeddings, Options options);

  void Prepare(const text::BowCorpus& corpus) override;
  BatchGraph BuildBatch(const Batch& batch) override;
  int64_t ExtraMemoryBytes() const override;
  ModelDescriptor Describe() const override;

 private:
  Options options_;
  std::unique_ptr<eval::NpmiMatrix> train_npmi_;
  double reward_baseline_ = 0.0;
  bool baseline_initialized_ = false;
};

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_VTMRL_H_
