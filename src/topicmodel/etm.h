#ifndef CONTRATOPIC_TOPICMODEL_ETM_H_
#define CONTRATOPIC_TOPICMODEL_ETM_H_

// Embedded Topic Model (Dieng et al., 2020) -- ContraTopic's backbone
// (paper §III.B). Words live in a frozen embedding space rho (V x e);
// each topic is a learnable embedding t_k, and
//   beta_k = softmax(rho t_k / tau_beta).
// Inference is a logistic-normal VAE.

#include <memory>

#include "embed/word_embeddings.h"
#include "topicmodel/neural_base.h"

namespace contratopic {
namespace topicmodel {

class EtmModel : public NeuralTopicModel {
 public:
  struct Options {
    // Sharpening temperature for beta (paper: tau_beta = 0.1).
    float tau_beta = 0.1f;
  };

  EtmModel(const TrainConfig& config,
           const embed::WordEmbeddings& embeddings);
  EtmModel(const TrainConfig& config, const embed::WordEmbeddings& embeddings,
           Options options, std::string name = "ETM");

  BatchGraph BuildBatch(const Batch& batch) override;
  Tensor InferThetaBatch(const Tensor& x_normalized) override;
  std::vector<nn::Parameter> Parameters() override;
  std::vector<nn::NamedTensor> Buffers() override;
  ModelDescriptor Describe() const override;
  void SetTraining(bool training) override;
  // Documents represented by the encoder mean.
  Var EncodeRepresentation(const Tensor& x_normalized) override;

 protected:
  // Shared descriptor builder for the ETM-derived baselines (they differ
  // only in the zoo `type` and their extra options).
  ModelDescriptor DescribeAs(const std::string& type) const;
  // softmax(t rho^T / tau_beta): the differentiable K x V topic-word Var.
  Var BetaVar();

  // ELBO pieces shared with the ETM-derived baselines (NTM-R, VTMRL,
  // CLNTM, TSCTM) and with ContraTopic.
  struct ElboGraph {
    VaeEncoder::Output encoded;
    Var beta;
    Var word_probs;     // B x V theta . beta (CLNTM reads its value for
                        // the reconstruction-substituted views)
    Var loss;           // (reconstruction + KL) / batch_size
    // The same two terms as standalone 1x1 nodes (extra MulScalar nodes
    // off the identical recon/kl subgraphs -- `loss` is untouched). These
    // are the per-term objectives the MOO weighting mode backpropagates.
    Var recon_term;
    Var kl_term;
    float recon = 0.0f;  // reconstruction term / batch_size (telemetry)
    float kl = 0.0f;     // KL term / batch_size (telemetry)
  };
  ElboGraph BuildElbo(const Batch& batch);

  Options options_;
  Var rho_;               // constant V x e word embeddings (frozen)
  Var topic_embeddings_;  // learnable K x e
  std::unique_ptr<VaeEncoder> encoder_;
};

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_ETM_H_
