#ifndef CONTRATOPIC_TOPICMODEL_NTMR_H_
#define CONTRATOPIC_TOPICMODEL_NTMR_H_

// NTM-R (Ding et al., 2018): ETM plus a differentiable *word-embedding*
// coherence surrogate. Each topic's top-word mass is projected into the
// embedding space; coherent topics concentrate on mutually similar words,
// which maximizes the squared norm of the projected centroid. Unlike
// ContraTopic this regularizer (a) uses embedding similarity rather than
// corpus NPMI and (b) carries no cross-topic (diversity) term -- the two
// gaps the paper's §II.C calls out.

#include "topicmodel/etm.h"

namespace contratopic {
namespace topicmodel {

class NtmrModel : public EtmModel {
 public:
  struct Options {
    float coherence_weight = 50.0f;
    // Extra sharpening applied to beta before projecting (concentrates the
    // surrogate on the top words).
    float sharpen = 4.0f;
  };

  NtmrModel(const TrainConfig& config,
            const embed::WordEmbeddings& embeddings);
  NtmrModel(const TrainConfig& config, const embed::WordEmbeddings& embeddings,
            Options options);

  BatchGraph BuildBatch(const Batch& batch) override;
  std::vector<nn::NamedTensor> Buffers() override;
  ModelDescriptor Describe() const override;

 private:
  Options options_;
  Var embeddings_norm_;  // constant V x e row-normalized
};

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_NTMR_H_
