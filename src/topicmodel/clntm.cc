#include "topicmodel/clntm.h"

#include <algorithm>
#include <cmath>

#include "topicmodel/augment.h"
#include "util/string_util.h"

namespace contratopic {
namespace topicmodel {

using namespace autodiff;  // NOLINT: op-heavy translation unit

ClntmModel::ClntmModel(const TrainConfig& config,
                       const embed::WordEmbeddings& embeddings)
    : ClntmModel(config, embeddings, Options{}) {}

ClntmModel::ClntmModel(const TrainConfig& config,
                       const embed::WordEmbeddings& embeddings,
                       Options options)
    : EtmModel(config, embeddings, EtmModel::Options{}, "CLNTM"),
      options_(options) {}

void ClntmModel::Prepare(const text::BowCorpus& corpus) {
  doc_freq_ = corpus.DocumentFrequencies();
}

void ClntmModel::BuildViews(const Batch& batch, Tensor* positive,
                            Tensor* negative) {
  CHECK(batch.corpus != nullptr);
  const Tensor tfidf = batch.corpus->TfIdfBatch(batch.indices, doc_freq_);
  BuildTfIdfViews(batch.normalized, tfidf, options_.salient_fraction,
                  positive, negative);
}

NeuralTopicModel::BatchGraph ClntmModel::BuildBatch(const Batch& batch) {
  ElboGraph g = BuildElbo(batch);

  Tensor positive;
  Tensor negative;
  BuildViews(batch, &positive, &negative);

  // Representations: the (deterministic) encoder mean of each view,
  // L2-normalized; similarity = dot / temperature.
  Var h = RowL2Normalize(g.encoded.mu);
  Var h_pos = RowL2Normalize(
      encoder_->Forward(Var::Constant(positive), /*sample=*/false).mu);
  Var h_neg = RowL2Normalize(
      encoder_->Forward(Var::Constant(negative), /*sample=*/false).mu);
  const float inv_tau = 1.0f / options_.temperature;
  Var s_pos = MulScalar(RowSum(Mul(h, h_pos)), inv_tau);  // B x 1
  Var s_neg = MulScalar(RowSum(Mul(h, h_neg)), inv_tau);  // B x 1
  // InfoNCE with one positive and one negative:
  //   -log(e^{s+} / (e^{s+} + e^{s-})) = softplus(s- - s+).
  Var contrast = MeanAll(Softplus(Sub(s_neg, s_pos)));

  Var loss = Add(g.loss, MulScalar(contrast, options_.contrast_weight));
  return {loss, g.beta, {}};
}

ModelDescriptor ClntmModel::Describe() const {
  ModelDescriptor d = DescribeAs("clntm");
  d.extras.emplace_back("contrast_weight",
                        util::StrFormat("%.9g", options_.contrast_weight));
  d.extras.emplace_back("temperature",
                        util::StrFormat("%.9g", options_.temperature));
  d.extras.emplace_back("salient_fraction",
                        util::StrFormat("%.9g", options_.salient_fraction));
  return d;
}

}  // namespace topicmodel
}  // namespace contratopic
