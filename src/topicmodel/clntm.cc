#include "topicmodel/clntm.h"

#include <algorithm>
#include <cmath>

#include "topicmodel/augment.h"
#include "util/string_util.h"

namespace contratopic {
namespace topicmodel {

using namespace autodiff;  // NOLINT: op-heavy translation unit

ClntmModel::ClntmModel(const TrainConfig& config,
                       const embed::WordEmbeddings& embeddings)
    : ClntmModel(config, embeddings, Options{}) {}

ClntmModel::ClntmModel(const TrainConfig& config,
                       const embed::WordEmbeddings& embeddings,
                       Options options)
    : EtmModel(config, embeddings, EtmModel::Options{}, "CLNTM"),
      options_(options) {}

void ClntmModel::Prepare(const text::BowCorpus& corpus) {
  doc_freq_ = corpus.DocumentFrequencies();
}

NeuralTopicModel::BatchGraph ClntmModel::BuildBatch(const Batch& batch) {
  ElboGraph g = BuildElbo(batch);
  CHECK(batch.corpus != nullptr);

  // Views driven by the detached reconstruction theta . beta: reading
  // word_probs' value here forces the pending prefix under the graph
  // engine (same precedent as ContraTopic's CandidateWords); the views
  // themselves enter the graph as constants, so no gradient flows through
  // the substitution.
  const Tensor tfidf = batch.corpus->TfIdfBatch(batch.indices, doc_freq_);
  Tensor positive;
  Tensor negative;
  BuildReconSubstitutedViews(batch.normalized, tfidf, g.word_probs.value(),
                             options_.salient_fraction, &positive, &negative);

  // Representations: the (deterministic) encoder mean of each view,
  // L2-normalized; similarity = dot / temperature.
  Var h = RowL2Normalize(g.encoded.mu);
  Var h_pos = RowL2Normalize(
      encoder_->Forward(Var::Constant(positive), /*sample=*/false).mu);
  Var h_neg = RowL2Normalize(
      encoder_->Forward(Var::Constant(negative), /*sample=*/false).mu);
  const float inv_tau = 1.0f / options_.temperature;
  // InfoNCE: each document's positive is its own perturbed view; the
  // other documents' positive views act as in-batch negatives and the
  // salient-substituted view as an extra hard negative.
  Var sim = MulScalar(MatMul(h, h_pos, false, true), inv_tau);  // B x B
  Var s_pos = MulScalar(RowSum(Mul(h, h_pos)), inv_tau);        // B x 1
  Var s_neg = MulScalar(RowSum(Mul(h, h_neg)), inv_tau);        // B x 1
  // Denominator log(sum_j e^{sim_ij} + e^{s_neg_i}), assembled as
  // lse + softplus(s_neg - lse) so it stays one fixed op sequence.
  Var lse = LogSumExpRows(sim);
  Var denom = Add(lse, Softplus(Sub(s_neg, lse)));
  Var contrast = MeanAll(Sub(denom, s_pos));

  Var loss = Add(g.loss, MulScalar(contrast, options_.contrast_weight));
  BatchGraph out;
  out.loss = loss;
  out.beta = g.beta;
  out.loss_components = {{"recon", g.recon},
                         {"kl", g.kl},
                         {"l_con", contrast.value().scalar()}};
  out.objectives = {{"recon", g.recon_term},
                    {"kl", g.kl_term},
                    {"l_con", contrast}};
  return out;
}

ModelDescriptor ClntmModel::Describe() const {
  ModelDescriptor d = DescribeAs("clntm");
  d.extras.emplace_back("contrast_weight",
                        util::StrFormat("%.9g", options_.contrast_weight));
  d.extras.emplace_back("temperature",
                        util::StrFormat("%.9g", options_.temperature));
  d.extras.emplace_back("salient_fraction",
                        util::StrFormat("%.9g", options_.salient_fraction));
  return d;
}

}  // namespace topicmodel
}  // namespace contratopic
