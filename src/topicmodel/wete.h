#ifndef CONTRATOPIC_TOPICMODEL_WETE_H_
#define CONTRATOPIC_TOPICMODEL_WETE_H_

// WeTe (Wang et al., 2022), simplified: represents each document as its set
// of word embeddings and the topics as embeddings in the same space, and
// minimizes a *bidirectional conditional-transport* cost:
//   doc -> topics: every observed word pays its soft-min distance to the
//                  topic set;
//   topics -> doc: every topic (weighted by theta) pays its expected
//                  distance to the document's words under a doc-conditional
//                  soft assignment.
// Both directions reduce to 2-D matrix expressions (see BuildBatch), which
// is the simplification relative to the original per-token formulation;
// DESIGN.md §3 records this.

#include <memory>

#include "embed/word_embeddings.h"
#include "topicmodel/neural_base.h"

namespace contratopic {
namespace topicmodel {

class WeTeModel : public NeuralTopicModel {
 public:
  struct Options {
    float gamma = 0.2f;     // soft-min temperature
    float tau_beta = 0.1f;  // beta read-off temperature
    float backward_weight = 1.0f;
  };

  WeTeModel(const TrainConfig& config,
            const embed::WordEmbeddings& embeddings);
  WeTeModel(const TrainConfig& config, const embed::WordEmbeddings& embeddings,
            Options options, std::string name = "WeTe");

  BatchGraph BuildBatch(const Batch& batch) override;
  Tensor InferThetaBatch(const Tensor& x_normalized) override;
  std::vector<nn::Parameter> Parameters() override;
  std::vector<nn::NamedTensor> Buffers() override;
  ModelDescriptor Describe() const override;
  void SetTraining(bool training) override;
  Var EncodeRepresentation(const Tensor& x_normalized) override;

 protected:
  Var EncodeTheta(const Var& x_normalized);
  Var BetaVar();
  Var CostMatrix();  // V x K, 1 - cosine

  Options options_;
  Var rho_norm_;          // constant V x e
  Var topic_embeddings_;  // K x e
  std::unique_ptr<nn::Mlp> encoder_mlp_;
  std::unique_ptr<nn::Linear> theta_head_;
};

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_WETE_H_
