#ifndef CONTRATOPIC_TOPICMODEL_NSTM_H_
#define CONTRATOPIC_TOPICMODEL_NSTM_H_

// NSTM (Zhao et al., 2021): neural topic model via optimal transport.
// Learns document-topic proportions by minimizing the entropy-regularized
// OT distance between each document's word distribution and its topic
// distribution, with transport cost 1 - cos(word embedding, topic
// embedding). The Sinkhorn iterations are unrolled inside the autodiff
// graph, so gradients flow to both theta and the topic embeddings.

#include <memory>

#include "embed/word_embeddings.h"
#include "topicmodel/neural_base.h"

namespace contratopic {
namespace topicmodel {

class NstmModel : public NeuralTopicModel {
 public:
  struct Options {
    float sinkhorn_epsilon = 0.3f;  // entropic regularization
    int sinkhorn_iterations = 6;
    float tau_beta = 0.1f;  // temperature for reading beta off the cosines
    // Weight of the auxiliary reconstruction term that keeps beta usable
    // as a generative distribution.
    float recon_weight = 0.5f;
  };

  NstmModel(const TrainConfig& config,
            const embed::WordEmbeddings& embeddings);
  NstmModel(const TrainConfig& config, const embed::WordEmbeddings& embeddings,
            Options options);

  BatchGraph BuildBatch(const Batch& batch) override;
  Tensor InferThetaBatch(const Tensor& x_normalized) override;
  std::vector<nn::Parameter> Parameters() override;
  std::vector<nn::NamedTensor> Buffers() override;
  ModelDescriptor Describe() const override;
  void SetTraining(bool training) override;

 private:
  Var EncodeTheta(const Var& x_normalized);
  Var BetaVar();
  // 1 - cos(rho, t): the V x K transport cost.
  Var CostMatrix();

  Options options_;
  Var rho_norm_;          // constant V x e, row-normalized embeddings
  Var topic_embeddings_;  // K x e
  std::unique_ptr<nn::Mlp> encoder_mlp_;
  std::unique_ptr<nn::Linear> theta_head_;
};

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_NSTM_H_
