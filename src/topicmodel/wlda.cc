#include "topicmodel/wlda.h"

#include "util/string_util.h"

namespace contratopic {
namespace topicmodel {

using namespace autodiff;  // NOLINT: op-heavy translation unit

namespace {

// IMQ kernel matrix sum: sum_ij sum_s c_s / (c_s + ||x_i - y_j||^2),
// built from differentiable pairwise squared distances.
Var ImqKernelSum(const Var& x, const Var& y) {
  // ||x_i - y_j||^2 = |x_i|^2 + |y_j|^2 - 2 x_i . y_j.
  Var cross = MulScalar(MatMul(x, y, false, true), -2.0f);
  Var x_sq = RowSum(Square(x));                    // m x 1
  Var y_sq_row = Transpose(RowSum(Square(y)));     // 1 x n
  Var dist = BroadcastRowAdd(BroadcastColAdd(cross, x_sq), y_sq_row);
  // Scales spanning the typical simplex diameter.
  Var total;
  for (float c : {0.1f, 0.2f, 0.5f, 1.0f, 2.0f}) {
    Var numerator =
        Var::Constant(tensor::Tensor::Full(dist.rows(), dist.cols(), c));
    Var k = Div(numerator, AddScalar(dist, c));  // c / (c + d)
    total = total.defined() ? Add(total, SumAll(k)) : SumAll(k);
  }
  return total;
}

}  // namespace

WldaModel::WldaModel(const TrainConfig& config, int vocab_size)
    : WldaModel(config, vocab_size, Options{}, "WLDA") {}

WldaModel::WldaModel(const TrainConfig& config, int vocab_size,
                     Options options, std::string name)
    : NeuralTopicModel(std::move(name), config), options_(options) {
  CHECK_GT(vocab_size, 0);
  beta_logits_ = Var::Leaf(
      Tensor::RandNormal(config.num_topics, vocab_size, rng_, 0.0f, 0.02f),
      /*requires_grad=*/true);
  nn::Mlp::Config mlp;
  mlp.layer_sizes = {vocab_size, config.encoder_hidden};
  for (int i = 1; i < std::max(1, config.encoder_layers); ++i) {
    mlp.layer_sizes.push_back(config.encoder_hidden);
  }
  mlp.activation = nn::Activation::kSelu;
  mlp.dropout_rate = config.dropout;
  mlp.batch_norm = config.batch_norm;
  encoder_mlp_ = std::make_unique<nn::Mlp>(mlp, rng_, "wlda_enc");
  theta_head_ = std::make_unique<nn::Linear>(config.encoder_hidden,
                                             config.num_topics, rng_, "theta");
}

Var WldaModel::EncodeTheta(const Var& x_normalized) {
  return SoftmaxRows(theta_head_->Forward(encoder_mlp_->Forward(x_normalized)));
}

Var WldaModel::BetaVar() { return SoftmaxRows(beta_logits_); }

Var WldaModel::MmdToDirichlet(const Var& theta) {
  const int64_t b = theta.rows();
  const int64_t k = theta.cols();
  // Fresh prior sample of the same size.
  Tensor prior(b, k);
  for (int64_t r = 0; r < b; ++r) {
    const std::vector<double> draw =
        rng_.Dirichlet(options_.dirichlet_alpha, static_cast<int>(k));
    for (int64_t c = 0; c < k; ++c) {
      prior.at(r, c) = static_cast<float>(draw[c]);
    }
  }
  Var prior_var = Var::Constant(prior);
  const float inv_b2 = 1.0f / static_cast<float>(b * b);
  Var k_xx = MulScalar(ImqKernelSum(theta, theta), inv_b2);
  Var k_yy = MulScalar(ImqKernelSum(prior_var, prior_var), inv_b2);
  Var k_xy = MulScalar(ImqKernelSum(theta, prior_var), -2.0f * inv_b2);
  return Add(Add(k_xx, k_yy), k_xy);
}

NeuralTopicModel::BatchGraph WldaModel::BuildBatch(const Batch& batch) {
  Var x_norm = Var::Constant(batch.normalized);
  Var x_counts = Var::Constant(batch.counts);
  Var theta = EncodeTheta(x_norm);
  Var beta = BetaVar();
  Var word_probs = MatMul(theta, beta);
  Var recon = Neg(SumAll(Mul(x_counts, Log(word_probs, 1e-10f))));
  const float inv_batch = 1.0f / static_cast<float>(batch.counts.rows());
  Var mmd = MmdToDirichlet(theta);
  Var loss = Add(MulScalar(recon, inv_batch),
                 MulScalar(mmd, options_.mmd_weight));
  return {loss, beta, {}};
}

Tensor WldaModel::InferThetaBatch(const Tensor& x_normalized) {
  // Eval mode is set once by NeuralTopicModel::InferTheta; setting it here
  // per batch would race when batches run on pool workers.
  return EncodeTheta(Var::Constant(x_normalized)).value();
}

Var WldaModel::EncodeRepresentation(const Tensor& x_normalized) {
  return EncodeTheta(Var::Constant(x_normalized));
}

std::vector<nn::NamedTensor> WldaModel::Buffers() {
  return encoder_mlp_->Buffers();
}

ModelDescriptor WldaModel::Describe() const {
  ModelDescriptor d;
  d.type = "wlda";
  d.display_name = name_;
  d.config = config_;
  d.vocab_size = static_cast<int>(beta_logits_.value().cols());
  d.extras.emplace_back("dirichlet_alpha",
                        util::StrFormat("%.9g", options_.dirichlet_alpha));
  d.extras.emplace_back("mmd_weight",
                        util::StrFormat("%.9g", options_.mmd_weight));
  return d;
}

std::vector<nn::Parameter> WldaModel::Parameters() {
  std::vector<nn::Parameter> params = encoder_mlp_->Parameters();
  for (auto& p : theta_head_->Parameters()) params.push_back(p);
  params.push_back({"beta_logits", beta_logits_});
  return params;
}

void WldaModel::SetTraining(bool training) {
  training_ = training;
  encoder_mlp_->SetTraining(training);
  theta_head_->SetTraining(training);
}

}  // namespace topicmodel
}  // namespace contratopic
