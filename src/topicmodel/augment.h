#ifndef CONTRATOPIC_TOPICMODEL_AUGMENT_H_
#define CONTRATOPIC_TOPICMODEL_AUGMENT_H_

// tf-idf-guided document augmentations (Nguyen & Luu, 2021): for each
// document the *positive* view keeps only its salient (high tf-idf) words
// and the *negative* view removes them. Used by CLNTM's document-wise
// contrastive term and by ContraTopic's optional multi-level objective.

#include <vector>

#include "tensor/tensor.h"
#include "text/corpus.h"

namespace contratopic {
namespace topicmodel {

// `normalized` is the B x V input batch; `tfidf` its tf-idf weights.
// `salient_fraction` of each document's present words (by tf-idf) count as
// salient. Outputs have the same shape as `normalized`.
void BuildTfIdfViews(const tensor::Tensor& normalized,
                     const tensor::Tensor& tfidf, float salient_fraction,
                     tensor::Tensor* positive, tensor::Tensor* negative);

// The full CLNTM sampling recipe: instead of zeroing entries, both views
// substitute them with the model's own (detached) reconstruction
// `reconstruction` = theta . beta. The *negative* view overwrites each
// document's top-k highest-tf-idf present entries (k = salient_fraction of
// its present words, at least 1); the *positive* view overwrites its
// bottom-k lowest-tf-idf present entries. Salience ranks ties by word id,
// so the views are one deterministic function of the inputs.
void BuildReconSubstitutedViews(const tensor::Tensor& normalized,
                                const tensor::Tensor& tfidf,
                                const tensor::Tensor& reconstruction,
                                float salient_fraction,
                                tensor::Tensor* positive,
                                tensor::Tensor* negative);

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_AUGMENT_H_
