#ifndef CONTRATOPIC_TOPICMODEL_AUGMENT_H_
#define CONTRATOPIC_TOPICMODEL_AUGMENT_H_

// tf-idf-guided document augmentations (Nguyen & Luu, 2021): for each
// document the *positive* view keeps only its salient (high tf-idf) words
// and the *negative* view removes them. Used by CLNTM's document-wise
// contrastive term and by ContraTopic's optional multi-level objective.

#include <vector>

#include "tensor/tensor.h"
#include "text/corpus.h"

namespace contratopic {
namespace topicmodel {

// `normalized` is the B x V input batch; `tfidf` its tf-idf weights.
// `salient_fraction` of each document's present words (by tf-idf) count as
// salient. Outputs have the same shape as `normalized`.
void BuildTfIdfViews(const tensor::Tensor& normalized,
                     const tensor::Tensor& tfidf, float salient_fraction,
                     tensor::Tensor* positive, tensor::Tensor* negative);

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_AUGMENT_H_
