#ifndef CONTRATOPIC_TOPICMODEL_WLDA_H_
#define CONTRATOPIC_TOPICMODEL_WLDA_H_

// WLDA (Nan et al., 2019): a Wasserstein-autoencoder topic model. The
// encoder is deterministic (theta = softmax(MLP(x))), the decoder is an
// LDA-style mixture with learnable beta logits, and instead of a KL term
// the aggregate posterior is matched to a Dirichlet prior with an MMD
// penalty (inverse multiquadric kernels).

#include <memory>

#include "topicmodel/neural_base.h"

namespace contratopic {
namespace topicmodel {

class WldaModel : public NeuralTopicModel {
 public:
  struct Options {
    float dirichlet_alpha = 0.1f;  // prior over the simplex
    float mmd_weight = 5.0f;       // lambda of the WAE objective
  };

  WldaModel(const TrainConfig& config, int vocab_size);
  WldaModel(const TrainConfig& config, int vocab_size, Options options,
            std::string name = "WLDA");

  BatchGraph BuildBatch(const Batch& batch) override;
  Tensor InferThetaBatch(const Tensor& x_normalized) override;
  std::vector<nn::Parameter> Parameters() override;
  std::vector<nn::NamedTensor> Buffers() override;
  ModelDescriptor Describe() const override;
  void SetTraining(bool training) override;
  Var EncodeRepresentation(const Tensor& x_normalized) override;

 protected:
  // Encoder logits -> theta (deterministic).
  Var EncodeTheta(const Var& x_normalized);
  // Differentiable beta = softmax(beta_logits).
  Var BetaVar();
  // MMD^2 between theta rows and fresh Dirichlet(alpha) samples.
  Var MmdToDirichlet(const Var& theta);

  Options options_;
  Var beta_logits_;  // K x V
  std::unique_ptr<nn::Mlp> encoder_mlp_;
  std::unique_ptr<nn::Linear> theta_head_;
};

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_WLDA_H_
