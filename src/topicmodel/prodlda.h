#ifndef CONTRATOPIC_TOPICMODEL_PRODLDA_H_
#define CONTRATOPIC_TOPICMODEL_PRODLDA_H_

// ProdLDA (Srivastava & Sutton, 2017): replaces LDA's mixture decoder with
// a product of experts, p(w|theta) = softmax(theta W), and approximates the
// Dirichlet prior with its logistic-normal Laplace approximation.

#include <memory>

#include "topicmodel/neural_base.h"

namespace contratopic {
namespace topicmodel {

class ProdLdaModel : public NeuralTopicModel {
 public:
  struct Options {
    // Symmetric Dirichlet concentration used for the Laplace prior.
    float dirichlet_alpha = 0.02f;
  };

  ProdLdaModel(const TrainConfig& config, int vocab_size);
  ProdLdaModel(const TrainConfig& config, int vocab_size, Options options);

  BatchGraph BuildBatch(const Batch& batch) override;
  Tensor InferThetaBatch(const Tensor& x_normalized) override;
  std::vector<nn::Parameter> Parameters() override;
  std::vector<nn::NamedTensor> Buffers() override;
  ModelDescriptor Describe() const override;
  void SetTraining(bool training) override;

 private:
  // KL(q || Laplace-approximated Dirichlet), summed over the batch.
  Var LaplacePriorKl(const VaeEncoder::Output& encoded) const;

  Options options_;
  float prior_mu_ = 0.0f;
  float prior_var_ = 1.0f;
  Var decoder_weight_;  // K x V
  std::unique_ptr<VaeEncoder> encoder_;
};

}  // namespace topicmodel
}  // namespace contratopic

#endif  // CONTRATOPIC_TOPICMODEL_PRODLDA_H_
