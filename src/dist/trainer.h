#ifndef CONTRATOPIC_DIST_TRAINER_H_
#define CONTRATOPIC_DIST_TRAINER_H_

// Fork-based data-parallel training with a process-count-invariance
// contract (DESIGN.md §13). Every global batch is cut into a FIXED grid
// of `num_shards` contiguous shards; worker process w owns the
// contiguous block of shards [w*S/W, (w+1)*S/W). Each rank runs the full
// training loop in lockstep (identical epoch shuffles, guard-rail
// decisions, and optimizer steps), computes only its owned shards, and
// exchanges block partials through a hub-and-spoke allreduce on rank 0
// that folds them in the canonical shard-tree order (util::TreeFold).
// Because power-of-two aligned blocks are exact subtrees of that fold,
// beta/theta/loss/NPMI trajectories are bitwise-identical at
// --workers=1, 2, and 4.
//
// The co-occurrence/NPMI kernel build of ContraTopic models is sharded
// over the same grid: each worker accumulates a contiguous doc range and
// ships its integer-valued counts back over a framed channel; the
// primary merges blocks in rank order (exact) and injects the kernel via
// SetKernel, so Prepare() skips its own serial rebuild.
//
// Fault tolerance: a worker that dies mid-step (the deterministic
// "dist.worker_kill.rank<r>" chaos site, or any real crash) surfaces on
// the hub as kUnavailable; training stops with interrupted stats exactly
// like an injected "train.kill". With auto_restart set, the trainer
// rewinds the primary replica to the newest resumable checkpoint,
// re-forks the group, and resumes -- bitwise-identical to a run that was
// never interrupted.

#include <memory>
#include <string>
#include <vector>

#include "dist/communicator.h"
#include "text/corpus.h"
#include "text/vocabulary.h"
#include "topicmodel/neural_base.h"
#include "util/status.h"

namespace contratopic {
namespace serve {
struct Checkpoint;
}  // namespace serve

namespace dist {

// Exit code of a worker process vanished by its kill site (distinguishes
// an injected death from a real crash in the parent's reaping loop).
inline constexpr int kKilledExitCode = 42;

// Wire form of a DistStepPartial (exposed for the determinism tests).
std::string PackPartial(const topicmodel::DistStepPartial& partial);
util::StatusOr<topicmodel::DistStepPartial> UnpackPartial(
    const std::string& bytes);

struct Options {
  // Worker processes; a power of two with workers <= num_shards. 1 still
  // runs the sharded step path (and the sharded kernel build), so the
  // W=1 trajectory is the invariance baseline, not a special case.
  int workers = 1;
  // The fixed per-batch shard grid S (power of two). Every batch must
  // hold at least S documents.
  int num_shards = 4;
  // Salt of the derived per-(step, shard) RNG streams.
  uint64_t rng_salt = 0x5eedc0de5eedc0deull;
  // Resumable checkpointing on the primary rank (<= 0: every epoch
  // boundary); active when checkpoint_path is set, which requires vocab.
  // Every rank follows the same cadence for guard-rail snapshot parity;
  // only rank 0 writes files.
  int checkpoint_every_steps = 0;
  std::string checkpoint_path;
  const text::Vocabulary* vocab = nullptr;  // not owned
  // When set, rank r streams deterministic JSONL to
  // <telemetry_dir>/worker<r>.jsonl and the primary merges the streams
  // into <telemetry_dir>/merged.jsonl after training.
  std::string telemetry_dir;
  // Re-fork and resume from checkpoint_path when a worker dies mid-step.
  bool auto_restart = false;
  int max_restarts = 1;
};

class DataParallelTrainer {
 public:
  // `model` is the primary (rank 0) replica, not owned; worker replicas
  // are fork()-inherited copies, so the caller must not mutate it while
  // Train/Resume runs. Guard rails, epoch budget, and seeds are read
  // from the model/config as usual.
  DataParallelTrainer(topicmodel::NeuralTopicModel* model, Options options);

  // Sharded kernel build (ContraTopic models) + data-parallel training.
  // Returns rank 0's stats; on a worker death without auto_restart the
  // stats are interrupted with kUnavailable.
  util::StatusOr<topicmodel::TrainStats> Train(const text::BowCorpus& corpus);

  // Continues a checkpointed run (the model must already carry the
  // checkpoint's state tensors, e.g. via serve::ResumeModel); all ranks
  // resume in lockstep from `state`.
  util::StatusOr<topicmodel::TrainStats> Resume(
      const text::BowCorpus& corpus, const topicmodel::TrainingState& state);

  // Worker deaths recovered from via auto_restart.
  int restarts() const { return restarts_; }

 private:
  util::StatusOr<topicmodel::TrainStats> RunGroup(
      const text::BowCorpus& corpus, const topicmodel::TrainingState* resume);
  util::StatusOr<topicmodel::TrainStats> MaybeRestart(
      const text::BowCorpus& corpus,
      util::StatusOr<topicmodel::TrainStats> stats);
  int RunWorkerRank(int rank, Channel channel, const text::BowCorpus& corpus,
                    const topicmodel::TrainingState* resume);
  util::Status BuildShardedKernel(const text::BowCorpus& corpus);
  // Overwrites the live model's state tensors from `checkpoint`, bitwise.
  util::Status RestoreStateTensors(const serve::Checkpoint& checkpoint);
  util::Status ValidateOptions() const;
  util::Status MergeTelemetry() const;
  std::string WorkerTelemetryPath(int rank) const;

  topicmodel::NeuralTopicModel* model_;  // not owned
  Options options_;
  int restarts_ = 0;
  int dead_rank_ = -1;  // rank whose channel failed in the last group run
};

}  // namespace dist
}  // namespace contratopic

#endif  // CONTRATOPIC_DIST_TRAINER_H_
