#ifndef CONTRATOPIC_DIST_COMMUNICATOR_H_
#define CONTRATOPIC_DIST_COMMUNICATOR_H_

// Process-to-process transport for the data-parallel trainer (DESIGN.md
// §13). A Channel is one end of an AF_UNIX stream socketpair carrying
// framed messages:
//
//   frame   magic "CTDF" (u32) | tag (u32, the sender's step number) |
//           payload size (u64) | CRC-32 of payload (u32) | payload bytes
//
// Send/Recv never return partial frames: both loop over short
// reads/writes and retry EINTR. A closed peer surfaces as kUnavailable
// -- the worker-death signal the trainer's recovery path keys on; a bad
// magic, an insane size, a CRC mismatch, or an unexpected tag surface as
// kDataLoss. The "dist.send" and "dist.recv_corrupt" fault sites let the
// chaos suite inject deterministic transport failures (util/fault.h).

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace contratopic {
namespace dist {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
uint32_t Crc32(const void* data, size_t size);

// "CTDF" little-endian.
inline constexpr uint32_t kFrameMagic = 0x46445443u;
// Anything larger is treated as a corrupt header, not a real payload.
inline constexpr uint64_t kMaxFramePayload = 1ull << 31;

class Channel {
 public:
  Channel() = default;
  explicit Channel(int fd) : fd_(fd) {}
  ~Channel() { Close(); }
  Channel(Channel&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Channel& operator=(Channel&& other) noexcept;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Connects `a` and `b` as the two ends of a fresh socketpair; after a
  // fork, each process closes the end it does not own.
  static util::Status CreatePair(Channel* a, Channel* b);

  bool open() const { return fd_ >= 0; }
  void Close();

  // Writes one frame. kUnavailable when the peer is gone, kIOError on
  // any other write failure (or an injected "dist.send" fault).
  util::Status Send(uint32_t tag, const std::string& payload);

  // Reads one frame, validating magic, size bound, CRC, and tag.
  util::StatusOr<std::string> Recv(uint32_t expected_tag);

 private:
  int fd_ = -1;
};

}  // namespace dist
}  // namespace contratopic

#endif  // CONTRATOPIC_DIST_COMMUNICATOR_H_
