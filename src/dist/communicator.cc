#include "dist/communicator.h"

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "util/fault.h"

namespace contratopic {
namespace dist {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t n = 0; n < 256; ++n) {
    uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

// Retries EINTR and short writes until `size` bytes are on the wire.
util::Status WriteAll(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    // MSG_NOSIGNAL: a vanished peer must surface as a status, not SIGPIPE.
    const ssize_t n = ::send(fd, p, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return util::Status::Unavailable("dist: peer closed the channel");
      }
      return util::Status::IOError(std::string("dist: send failed: ") +
                                   std::strerror(errno));
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return util::Status::OK();
}

// Retries EINTR and short reads; EOF mid-frame is the peer-death signal.
util::Status ReadAll(int fd, void* data, size_t size) {
  char* p = static_cast<char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::recv(fd, p, remaining, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        return util::Status::Unavailable("dist: peer closed the channel");
      }
      return util::Status::IOError(std::string("dist: recv failed: ") +
                                   std::strerror(errno));
    }
    if (n == 0) {
      return util::Status::Unavailable("dist: peer closed the channel");
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return util::Status::OK();
}

struct FrameHeader {
  uint32_t magic;
  uint32_t tag;
  uint64_t payload_size;
  uint32_t crc;
};

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4;

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

util::Status Channel::CreatePair(Channel* a, Channel* b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return util::Status::IOError(std::string("dist: socketpair failed: ") +
                                 std::strerror(errno));
  }
  *a = Channel(fds[0]);
  *b = Channel(fds[1]);
  return util::Status::OK();
}

void Channel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status Channel::Send(uint32_t tag, const std::string& payload) {
  if (fd_ < 0) {
    return util::Status::FailedPrecondition("dist: channel is closed");
  }
  if (util::FaultInjector::Global().ShouldFail("dist.send")) {
    return util::Status::IOError("injected dist.send fault");
  }
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  AppendU32(&frame, kFrameMagic);
  AppendU32(&frame, tag);
  AppendU64(&frame, payload.size());
  AppendU32(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);
  return WriteAll(fd_, frame.data(), frame.size());
}

util::StatusOr<std::string> Channel::Recv(uint32_t expected_tag) {
  if (fd_ < 0) {
    return util::Status::FailedPrecondition("dist: channel is closed");
  }
  char header[kHeaderBytes];
  CT_RETURN_IF_ERROR(ReadAll(fd_, header, kHeaderBytes));
  const FrameHeader h = {LoadU32(header), LoadU32(header + 4),
                         LoadU64(header + 8), LoadU32(header + 16)};
  if (h.magic != kFrameMagic) {
    return util::Status::DataLoss("dist: frame has a bad magic number");
  }
  if (h.payload_size > kMaxFramePayload) {
    return util::Status::DataLoss("dist: frame header declares an insane size");
  }
  std::string payload(h.payload_size, '\0');
  if (h.payload_size > 0) {
    CT_RETURN_IF_ERROR(ReadAll(fd_, payload.data(), payload.size()));
  }
  if (!payload.empty() &&
      util::FaultInjector::Global().ShouldFail("dist.recv_corrupt")) {
    // Flip one bit before the CRC check: models wire corruption, which the
    // checksum must catch.
    payload[payload.size() / 2] ^= 0x20;
  }
  if (Crc32(payload.data(), payload.size()) != h.crc) {
    return util::Status::DataLoss("dist: frame payload failed its CRC check");
  }
  if (h.tag != expected_tag) {
    return util::Status::DataLoss("dist: frame tag " + std::to_string(h.tag) +
                                  " does not match expected " +
                                  std::to_string(expected_tag));
  }
  return payload;
}

}  // namespace dist
}  // namespace contratopic
