#include "dist/trainer.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <utility>

#include "core/contratopic.h"
#include "embed/cooccurrence.h"
#include "eval/npmi.h"
#include "serve/checkpoint.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/serialize.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace dist {
namespace {

using topicmodel::DistStepPartial;

// Largest per-partial tensor list / component list the unpacker accepts;
// anything above is a corrupt frame, not a real model.
constexpr uint32_t kMaxPartialEntries = 4096;
constexpr uint64_t kMaxTensorElems = 1ull << 28;

void PackTensor(util::BinaryWriter* writer, const tensor::Tensor& t) {
  writer->WriteU64(static_cast<uint64_t>(t.rows()));
  writer->WriteU64(static_cast<uint64_t>(t.cols()));
  writer->WriteBytes(t.data(), static_cast<size_t>(t.numel()) * sizeof(float));
}

bool UnpackTensor(util::BinaryReader* reader, tensor::Tensor* out) {
  const uint64_t rows = reader->ReadU64();
  const uint64_t cols = reader->ReadU64();
  if (!reader->ok() || rows == 0 || cols == 0 ||
      rows * cols > kMaxTensorElems) {
    return false;
  }
  tensor::Tensor t(static_cast<int64_t>(rows), static_cast<int64_t>(cols));
  for (int64_t i = 0; i < t.numel(); ++i) t.data()[i] = reader->ReadF32();
  if (!reader->ok()) return false;
  *out = std::move(t);
  return true;
}

// Quiesces the global thread pool to a single (inline-executing) worker
// for the lifetime of a fork fan-out, restoring the previous width after.
// Forked children inherit the pool *object* but not its threads; with
// num_threads()==1 every ParallelFor call runs inline (NumChunks caps at
// 1), so a child never schedules onto a thread that does not exist in its
// process. Children must also never resize the pool (the destructor would
// try to join those ghosts) -- they exit via _Exit instead of unwinding.
class PoolQuiesce {
 public:
  PoolQuiesce() : prev_(util::ThreadPool::Global().num_threads()) {
    util::ThreadPool::SetGlobalNumThreads(1);
  }
  ~PoolQuiesce() { util::ThreadPool::SetGlobalNumThreads(prev_); }
  PoolQuiesce(const PoolQuiesce&) = delete;
  PoolQuiesce& operator=(const PoolQuiesce&) = delete;

 private:
  int prev_;
};

void ReapWorker(pid_t pid) {
  int wstatus = 0;
  while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(wstatus)) {
    const int code = WEXITSTATUS(wstatus);
    if (code != 0 && code != kKilledExitCode) {
      LOG(WARNING) << "dist: worker pid " << pid << " exited with code "
                   << code;
    }
  } else if (WIFSIGNALED(wstatus)) {
    LOG(WARNING) << "dist: worker pid " << pid << " died on signal "
                 << WTERMSIG(wstatus);
  }
}

}  // namespace

std::string PackPartial(const DistStepPartial& partial) {
  std::string bytes;
  util::BinaryWriter writer(&bytes);
  writer.WriteU32(partial.empty ? 1u : 0u);
  writer.WriteF64(partial.loss);
  writer.WriteU32(static_cast<uint32_t>(partial.components.size()));
  for (const auto& [name, value] : partial.components) {
    writer.WriteString(name);
    writer.WriteF64(value);
  }
  writer.WriteU32(static_cast<uint32_t>(partial.grads.size()));
  for (const auto& g : partial.grads) PackTensor(&writer, g);
  writer.WriteU32(static_cast<uint32_t>(partial.buffer_deltas.size()));
  for (const auto& d : partial.buffer_deltas) PackTensor(&writer, d);
  return bytes;
}

util::StatusOr<DistStepPartial> UnpackPartial(const std::string& bytes) {
  util::BinaryReader reader(bytes.data(), bytes.size());
  const util::Status corrupt =
      util::Status::DataLoss("dist: step partial image is corrupt");
  DistStepPartial partial;
  partial.empty = reader.ReadU32() != 0;
  partial.loss = reader.ReadF64();
  const uint32_t num_components = reader.ReadU32();
  if (!reader.ok() || num_components > kMaxPartialEntries) return corrupt;
  partial.components.reserve(num_components);
  for (uint32_t i = 0; i < num_components; ++i) {
    std::string name = reader.ReadString();
    const double value = reader.ReadF64();
    if (!reader.ok()) return corrupt;
    partial.components.emplace_back(std::move(name), value);
  }
  const uint32_t num_grads = reader.ReadU32();
  if (!reader.ok() || num_grads > kMaxPartialEntries) return corrupt;
  partial.grads.resize(num_grads);
  for (auto& g : partial.grads) {
    if (!UnpackTensor(&reader, &g)) return corrupt;
  }
  const uint32_t num_deltas = reader.ReadU32();
  if (!reader.ok() || num_deltas > kMaxPartialEntries) return corrupt;
  partial.buffer_deltas.resize(num_deltas);
  for (auto& d : partial.buffer_deltas) {
    if (!UnpackTensor(&reader, &d)) return corrupt;
  }
  if (!reader.AtEnd()) return corrupt;
  return partial;
}

DataParallelTrainer::DataParallelTrainer(topicmodel::NeuralTopicModel* model,
                                         Options options)
    : model_(model), options_(std::move(options)) {
  CHECK(model_ != nullptr);
}

util::Status DataParallelTrainer::ValidateOptions() const {
  const auto pow2 = [](int x) { return x > 0 && (x & (x - 1)) == 0; };
  if (!pow2(options_.workers) || !pow2(options_.num_shards) ||
      options_.workers > options_.num_shards) {
    return util::Status::InvalidArgument(
        "dist: workers and num_shards must be powers of two with "
        "workers <= num_shards");
  }
  if (!options_.checkpoint_path.empty() && options_.vocab == nullptr) {
    return util::Status::InvalidArgument(
        "dist: checkpoint_path requires a vocabulary");
  }
  if (options_.auto_restart && options_.checkpoint_path.empty()) {
    return util::Status::InvalidArgument(
        "dist: auto_restart requires checkpoint_path");
  }
  return util::Status::OK();
}

std::string DataParallelTrainer::WorkerTelemetryPath(int rank) const {
  return options_.telemetry_dir + "/worker" + std::to_string(rank) + ".jsonl";
}

util::Status DataParallelTrainer::BuildShardedKernel(
    const text::BowCorpus& corpus) {
  auto* contra = dynamic_cast<core::ContraTopicModel*>(model_);
  if (contra == nullptr) return util::Status::OK();  // no NPMI kernel
  const int W = options_.workers;
  const int S = options_.num_shards;
  const int block = S / W;
  const int64_t docs = corpus.num_docs();

  // Worker w accumulates its contiguous block of the fixed S-shard doc
  // grid. At W=1 this is the plain serial scan (the ranges tile [0, docs)
  // in order); at W>1 the per-block counts are integer-valued, so the
  // rank-ordered merge below is exact -- every W produces the same
  // kernel bitwise.
  const auto block_counts = [&](int w) {
    embed::CooccurrenceCounts counts(corpus.vocab_size());
    for (int s = w * block; s < (w + 1) * block; ++s) {
      const auto range = util::ShardRange(docs, s, S);
      counts.AddPresenceRange(corpus, range.first, range.second);
    }
    return counts;
  };

  std::vector<embed::CooccurrenceCounts> blocks;
  blocks.reserve(W);
  if (W == 1) {
    blocks.push_back(block_counts(0));
  } else {
    PoolQuiesce quiesce;
    std::vector<std::pair<pid_t, Channel>> procs;
    procs.reserve(W - 1);
    util::Status failure;
    for (int w = 1; w < W; ++w) {
      Channel parent_end, child_end;
      failure = Channel::CreatePair(&parent_end, &child_end);
      if (!failure.ok()) break;
      const pid_t pid = ::fork();
      if (pid < 0) {
        failure = util::Status::IOError(std::string("dist: fork failed: ") +
                                        std::strerror(errno));
        break;
      }
      if (pid == 0) {
        for (auto& p : procs) p.second.Close();
        parent_end.Close();
        std::string payload;
        util::BinaryWriter writer(&payload);
        block_counts(w).Serialize(&writer);
        const util::Status sent =
            child_end.Send(static_cast<uint32_t>(w), payload);
        std::_Exit(sent.ok() ? 0 : 1);
      }
      child_end.Close();
      procs.emplace_back(pid, std::move(parent_end));
    }
    if (failure.ok()) {
      blocks.push_back(block_counts(0));
      for (int w = 1; w < W; ++w) {
        util::StatusOr<std::string> payload =
            procs[w - 1].second.Recv(static_cast<uint32_t>(w));
        if (!payload.ok()) {
          failure = payload.status();
          break;
        }
        util::BinaryReader reader(payload->data(), payload->size());
        util::StatusOr<embed::CooccurrenceCounts> counts =
            embed::CooccurrenceCounts::Deserialize(&reader);
        if (!counts.ok()) {
          failure = counts.status();
          break;
        }
        blocks.push_back(std::move(*counts));
      }
    }
    for (auto& p : procs) p.second.Close();
    for (auto& p : procs) ReapWorker(p.first);
    if (!failure.ok()) return failure;
  }

  // Canonical fold of the per-worker blocks, in rank order.
  embed::CooccurrenceCounts merged = util::TreeFold<embed::CooccurrenceCounts>(
      0, W, [&](int64_t w) { return std::move(blocks[w]); },
      [](embed::CooccurrenceCounts left, embed::CooccurrenceCounts right) {
        left.Merge(right);
        return left;
      });
  contra->SetKernel(
      std::make_unique<eval::NpmiMatrix>(eval::NpmiMatrix::FromCounts(merged)));
  return util::Status::OK();
}

int DataParallelTrainer::RunWorkerRank(
    int rank, Channel channel, const text::BowCorpus& corpus,
    const topicmodel::TrainingState* resume) {
  const int block = options_.num_shards / options_.workers;
  topicmodel::DistContext ctx;
  ctx.num_shards = options_.num_shards;
  ctx.rank = rank;
  ctx.world_size = options_.workers;
  ctx.shard_begin = rank * block;
  ctx.shard_end = (rank + 1) * block;
  ctx.rng_salt = options_.rng_salt;
  const std::string kill_site =
      "dist.worker_kill.rank" + std::to_string(rank);
  ctx.allreduce = [&](int step, DistStepPartial local)
      -> util::StatusOr<DistStepPartial> {
    // An injected death vanishes this worker before its block reaches
    // the hub: the parent observes EOF mid-step, exactly like a real
    // crash.
    if (util::FaultInjector::Global().ShouldFail(kill_site)) {
      std::_Exit(kKilledExitCode);
    }
    CT_RETURN_IF_ERROR(
        channel.Send(static_cast<uint32_t>(step), PackPartial(local)));
    util::StatusOr<std::string> combined =
        channel.Recv(static_cast<uint32_t>(step));
    if (!combined.ok()) return combined.status();
    return UnpackPartial(*combined);
  };
  model_->SetDistContext(&ctx);
  // Evaluation and checkpoint files belong to the primary; the
  // checkpoint *cadence* stays armed (inherited, sink-less) so this
  // rank's guard-rail snapshots refresh on the same steps as rank 0's.
  model_->SetEpochEvaluator({});
  std::unique_ptr<util::RunTelemetry> telemetry;
  if (!options_.telemetry_dir.empty()) {
    util::RunTelemetry::Options topts;
    topts.path = WorkerTelemetryPath(rank);
    topts.deterministic = true;
    telemetry = std::make_unique<util::RunTelemetry>(topts);
    telemetry->RecordRunStart(
        "dist_worker", {{"rank", std::to_string(rank)},
                        {"workers", std::to_string(options_.workers)}});
    model_->SetTelemetry(telemetry.get());
  }
  const topicmodel::TrainStats stats =
      resume != nullptr ? model_->ResumeTraining(corpus, *resume)
                        : model_->Train(corpus);
  model_->SetTelemetry(nullptr);
  if (telemetry != nullptr) {
    telemetry->RecordManifest({{"rank", static_cast<double>(rank)},
                               {"interrupted", stats.interrupted ? 1.0 : 0.0}});
  }
  // A clean finish and a propagated group stop (the hub vanished, or a
  // sibling died and rank 0 closed the channels) are both orderly exits.
  return stats.status.ok() || stats.interrupted ? 0 : 1;
}

util::StatusOr<topicmodel::TrainStats> DataParallelTrainer::RunGroup(
    const text::BowCorpus& corpus, const topicmodel::TrainingState* resume) {
  const int W = options_.workers;
  const int S = options_.num_shards;
  const int block = S / W;
  dead_rank_ = -1;

  // Cadence before fork, sink after: the forked workers inherit the
  // checkpoint *schedule* (guard-rail snapshots must refresh on the same
  // steps on every rank) but only rank 0 gets a sink that writes files.
  model_->SetAutoCheckpoint(options_.checkpoint_every_steps, {});

  PoolQuiesce quiesce;

  struct WorkerProc {
    pid_t pid = -1;
    Channel channel;  // parent end
  };
  std::vector<WorkerProc> workers;
  workers.reserve(W > 0 ? W - 1 : 0);
  util::Status spawn_failure;
  for (int r = 1; r < W; ++r) {
    Channel parent_end, child_end;
    spawn_failure = Channel::CreatePair(&parent_end, &child_end);
    if (!spawn_failure.ok()) break;
    const pid_t pid = ::fork();
    if (pid < 0) {
      spawn_failure = util::Status::IOError(
          std::string("dist: fork failed: ") + std::strerror(errno));
      break;
    }
    if (pid == 0) {
      // Worker process: drop every inherited parent-side fd (so a dead
      // sibling's EOF is visible to the hub), run the rank, and _Exit
      // without unwinding -- the thread pool's threads and the test
      // framework belong to the parent.
      for (auto& w : workers) w.channel.Close();
      parent_end.Close();
      std::_Exit(RunWorkerRank(r, std::move(child_end), corpus, resume));
    }
    child_end.Close();
    workers.push_back(WorkerProc{pid, std::move(parent_end)});
  }
  const auto wind_down = [&workers]() {
    // Closing the hub ends unblocks any worker still waiting in Recv (it
    // sees EOF -> kUnavailable -> orderly stop) before we reap.
    for (auto& w : workers) w.channel.Close();
    for (auto& w : workers) ReapWorker(w.pid);
  };
  if (!spawn_failure.ok()) {
    wind_down();
    return spawn_failure;
  }

  topicmodel::DistContext ctx;
  ctx.num_shards = S;
  ctx.rank = 0;
  ctx.world_size = W;
  ctx.shard_begin = 0;
  ctx.shard_end = block;
  ctx.rng_salt = options_.rng_salt;
  if (W > 1) {
    // Hub-and-spoke allreduce: gather the W block partials, fold them in
    // canonical rank order (each block is an exact subtree of the global
    // shard tree), broadcast the fold back. Any transport failure marks
    // the rank and stops training with interrupted stats upstream.
    ctx.allreduce = [this, &workers, W](int step, DistStepPartial local)
        -> util::StatusOr<DistStepPartial> {
      std::vector<DistStepPartial> partials(W);
      partials[0] = std::move(local);
      for (int r = 1; r < W; ++r) {
        util::StatusOr<std::string> payload =
            workers[r - 1].channel.Recv(static_cast<uint32_t>(step));
        if (!payload.ok()) {
          dead_rank_ = r;
          return payload.status();
        }
        util::StatusOr<DistStepPartial> partial = UnpackPartial(*payload);
        if (!partial.ok()) {
          dead_rank_ = r;
          return partial.status();
        }
        partials[r] = std::move(*partial);
      }
      DistStepPartial combined = util::TreeFold<DistStepPartial>(
          0, W, [&](int64_t r) { return std::move(partials[r]); },
          topicmodel::CombineDistPartials);
      const std::string bytes = PackPartial(combined);
      for (int r = 1; r < W; ++r) {
        const util::Status sent =
            workers[r - 1].channel.Send(static_cast<uint32_t>(step), bytes);
        if (!sent.ok()) {
          dead_rank_ = r;
          return sent;
        }
      }
      return combined;
    };
  }
  model_->SetDistContext(&ctx);
  if (!options_.checkpoint_path.empty()) {
    model_->SetAutoCheckpoint(
        options_.checkpoint_every_steps,
        [this](const topicmodel::TrainingState& state) {
          return serve::SaveTrainingCheckpoint(
              *model_, *options_.vocab, state, options_.checkpoint_path);
        });
  }
  std::unique_ptr<util::RunTelemetry> telemetry;
  if (!options_.telemetry_dir.empty()) {
    util::RunTelemetry::Options topts;
    topts.path = WorkerTelemetryPath(0);
    topts.deterministic = true;
    telemetry = std::make_unique<util::RunTelemetry>(topts);
    telemetry->RecordRunStart(
        "dist_worker",
        {{"rank", "0"}, {"workers", std::to_string(options_.workers)}});
    model_->SetTelemetry(telemetry.get());
  }

  topicmodel::TrainStats stats =
      resume != nullptr ? model_->ResumeTraining(corpus, *resume)
                        : model_->Train(corpus);

  if (telemetry != nullptr) {
    model_->SetTelemetry(nullptr);
    telemetry->RecordManifest({{"rank", 0.0},
                               {"interrupted", stats.interrupted ? 1.0 : 0.0}});
  }
  model_->SetDistContext(nullptr);
  model_->SetAutoCheckpoint(0, {});
  wind_down();
  return stats;
}

util::Status DataParallelTrainer::RestoreStateTensors(
    const serve::Checkpoint& checkpoint) {
  std::map<std::string, const tensor::Tensor*> by_name;
  for (const auto& [name, t] : checkpoint.tensors) by_name[name] = &t;
  for (const auto& named : model_->StateTensors()) {
    const auto it = by_name.find(named.name);
    if (it == by_name.end() || !named.tensor->same_shape(*it->second)) {
      return util::Status::FailedPrecondition(
          "dist: checkpoint does not match the live model (tensor '" +
          named.name + "')");
    }
    *named.tensor = *it->second;
  }
  return util::Status::OK();
}

util::StatusOr<topicmodel::TrainStats> DataParallelTrainer::MaybeRestart(
    const text::BowCorpus& corpus,
    util::StatusOr<topicmodel::TrainStats> stats) {
  while (options_.auto_restart && stats.ok() && stats->interrupted &&
         stats->status.code() == util::StatusCode::kUnavailable &&
         restarts_ < options_.max_restarts) {
    ++restarts_;
    LOG(WARNING) << "dist: worker rank " << dead_rank_
                 << " died mid-step; restarting from "
                 << options_.checkpoint_path << " (restart " << restarts_
                 << "/" << options_.max_restarts << ")";
    if (dead_rank_ >= 0) {
      // A re-forked group copies the fault injector with fresh
      // per-process counters; a still-armed kill site would fire again
      // on every restart, so consume the one that just fired.
      util::FaultInjector::Global().Disarm("dist.worker_kill.rank" +
                                           std::to_string(dead_rank_));
    }
    util::StatusOr<serve::Checkpoint> checkpoint =
        serve::ReadCheckpoint(options_.checkpoint_path);
    if (!checkpoint.ok()) return checkpoint.status();
    if (!checkpoint->has_training_state) {
      return util::Status::FailedPrecondition(
          "dist: checkpoint carries no training state to restart from");
    }
    // Rewind the primary replica bitwise; the re-forked group then
    // resumes from the checkpoint in lockstep.
    CT_RETURN_IF_ERROR(RestoreStateTensors(*checkpoint));
    stats = RunGroup(corpus, &checkpoint->training_state);
  }
  return stats;
}

util::StatusOr<topicmodel::TrainStats> DataParallelTrainer::Train(
    const text::BowCorpus& corpus) {
  CT_RETURN_IF_ERROR(ValidateOptions());
  CT_RETURN_IF_ERROR(BuildShardedKernel(corpus));
  util::StatusOr<topicmodel::TrainStats> stats =
      MaybeRestart(corpus, RunGroup(corpus, nullptr));
  if (stats.ok() && !options_.telemetry_dir.empty()) {
    CT_RETURN_IF_ERROR(MergeTelemetry());
  }
  return stats;
}

util::StatusOr<topicmodel::TrainStats> DataParallelTrainer::Resume(
    const text::BowCorpus& corpus, const topicmodel::TrainingState& state) {
  CT_RETURN_IF_ERROR(ValidateOptions());
  CT_RETURN_IF_ERROR(BuildShardedKernel(corpus));
  util::StatusOr<topicmodel::TrainStats> stats =
      MaybeRestart(corpus, RunGroup(corpus, &state));
  if (stats.ok() && !options_.telemetry_dir.empty()) {
    CT_RETURN_IF_ERROR(MergeTelemetry());
  }
  return stats;
}

util::Status DataParallelTrainer::MergeTelemetry() const {
  // Deterministic interleave: line i of every stream, ranks ascending.
  // Lockstep replicas emit the same number of records per epoch, so this
  // groups each epoch's records together. After an auto-restart the
  // per-rank files (and thus the merge) cover the final group run.
  std::vector<std::vector<std::string>> streams(options_.workers);
  for (int r = 0; r < options_.workers; ++r) {
    std::ifstream in(WorkerTelemetryPath(r));
    if (!in) {
      return util::Status::IOError("dist: missing telemetry stream " +
                                   WorkerTelemetryPath(r));
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) streams[r].push_back(line);
    }
  }
  size_t max_lines = 0;
  for (const auto& s : streams) max_lines = std::max(max_lines, s.size());
  const std::string merged_path = options_.telemetry_dir + "/merged.jsonl";
  std::ofstream out(merged_path, std::ios::trunc);
  if (!out) {
    return util::Status::IOError("dist: cannot write " + merged_path);
  }
  for (size_t i = 0; i < max_lines; ++i) {
    for (int r = 0; r < options_.workers; ++r) {
      if (i < streams[r].size()) {
        out << "{\"worker\":" << r << ",\"record\":" << streams[r][i] << "}\n";
      }
    }
  }
  out.flush();
  if (!out) {
    return util::Status::IOError("dist: failed writing " + merged_path);
  }
  return util::Status::OK();
}

}  // namespace dist
}  // namespace contratopic
