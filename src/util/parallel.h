#ifndef CONTRATOPIC_UTIL_PARALLEL_H_
#define CONTRATOPIC_UTIL_PARALLEL_H_

// Deterministic parallel reduction on top of util::ThreadPool.
//
// Floating-point addition is not associative, so a reduction whose
// partial-sum boundaries depend on the number of worker threads produces
// different bits at different --threads settings. The helpers here make the
// boundaries a function of the *range only*:
//
//   1. The range is cut into a fixed grid of chunks of `grain` items each
//      (FixedGridChunks; independent of pool size).
//   2. One partial accumulator ("per-thread gradient buffer" in the training
//      engine) is produced per chunk, in parallel, by whichever worker picks
//      the chunk up.
//   3. Partials are combined pairwise in a fixed tree order
//      ((0+1)+(2+3))+... on the calling thread.
//
// Steps 1 and 3 never look at num_threads(), so num_threads=1 and
// num_threads=N yield bitwise-identical results; threads only change which
// worker computes each chunk, never what is computed.

#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace util {

// Number of chunks in the fixed reduction grid: ceil(range / grain).
// Depends only on the range and grain -- NEVER on the thread count (contrast
// with ThreadPool::NumChunks, which is for partition-independent bodies).
inline int64_t FixedGridChunks(int64_t range, int64_t grain) {
  CHECK_GT(grain, 0);
  if (range <= 0) return 0;
  return (range + grain - 1) / grain;
}

// Smallest power of two >= n (n >= 1).
inline int64_t RoundUpPow2(int64_t n) {
  CHECK_GE(n, 1);
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Fixed shard grid: item range owned by `shard` of `num_shards` when
// `total` items are cut into contiguous floor-boundary ranges,
//   [ total*s/num_shards, total*(s+1)/num_shards ).
// A pure function of (total, num_shards) -- never of worker or thread
// count -- so any assignment of shards to workers computes the same
// per-shard work. Ragged tails are allowed and shards may be empty when
// total < num_shards.
inline std::pair<int64_t, int64_t> ShardRange(int64_t total, int64_t shard,
                                              int64_t num_shards) {
  CHECK_GT(num_shards, 0);
  CHECK_GE(shard, 0);
  CHECK_LT(shard, num_shards);
  CHECK_GE(total, 0);
  return {total * shard / num_shards, total * (shard + 1) / num_shards};
}

// Canonical tree fold over leaves [lo, hi): splits at the
// round-up-power-of-two midpoint, recursing left and right, so the fold
// shape is a pure function of the index range. Because the split points
// are power-of-two aligned, the fold over any power-of-two aligned block
// is an exact subtree of the fold over the whole range: worker-local
// folds composed with a fold over the per-worker block results reproduce
// the flat global fold bit for bit. This is the process-count-invariance
// contract of the distributed trainer (DESIGN.md §13), and the same
// discipline as the mod-8 block trees inside the SIMD kernels.
//   leaf(i)            -> T   produces leaf i's value;
//   combine(left, right) -> T  folds two subtrees (left subtree first).
template <typename T, typename LeafFn, typename CombineFn>
T TreeFold(int64_t lo, int64_t hi, const LeafFn& leaf,
           const CombineFn& combine) {
  CHECK_LT(lo, hi);
  const int64_t n = hi - lo;
  if (n == 1) return leaf(lo);
  const int64_t half = RoundUpPow2(n) / 2;
  T left = TreeFold<T>(lo, lo + half, leaf, combine);
  T right = TreeFold<T>(lo + half, hi, leaf, combine);
  return combine(std::move(left), std::move(right));
}

// Deterministic map-reduce over [begin, end).
//   chunk_fn(lo, hi) -> T   computes the partial for one grid chunk;
//   combine(&acc, part)     folds a partial into an accumulator (called in
//                           fixed tree order, single-threaded).
// Returns `identity` for an empty range. T must be movable.
template <typename T, typename ChunkFn, typename CombineFn>
T ParallelReduceOrdered(ThreadPool& pool, int64_t begin, int64_t end,
                        int64_t grain, T identity, const ChunkFn& chunk_fn,
                        const CombineFn& combine) {
  const int64_t range = end - begin;
  const int64_t chunks = FixedGridChunks(range, grain);
  if (chunks == 0) return identity;
  if (chunks == 1) {
    T part = chunk_fn(begin, end);
    combine(identity, std::move(part));
    return identity;
  }
  std::vector<T> partials(static_cast<size_t>(chunks));
  pool.ParallelFor(
      0, chunks,
      [&](int64_t c_lo, int64_t c_hi) {
        for (int64_t c = c_lo; c < c_hi; ++c) {
          const int64_t lo = begin + c * grain;
          const int64_t hi = std::min<int64_t>(end, lo + grain);
          partials[static_cast<size_t>(c)] = chunk_fn(lo, hi);
        }
      },
      /*grain=*/1);
  // Fixed pairwise tree reduction: level by level, left to right.
  int64_t count = chunks;
  while (count > 1) {
    const int64_t half = count / 2;
    for (int64_t i = 0; i < half; ++i) {
      combine(partials[static_cast<size_t>(2 * i)],
              std::move(partials[static_cast<size_t>(2 * i + 1)]));
      if (2 * i != i) {
        partials[static_cast<size_t>(i)] =
            std::move(partials[static_cast<size_t>(2 * i)]);
      }
    }
    if (count % 2 == 1) {
      partials[static_cast<size_t>(half)] =
          std::move(partials[static_cast<size_t>(count - 1)]);
      count = half + 1;
    } else {
      count = half;
    }
  }
  combine(identity, std::move(partials[0]));
  return identity;
}

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_PARALLEL_H_
