#ifndef CONTRATOPIC_UTIL_PARALLEL_H_
#define CONTRATOPIC_UTIL_PARALLEL_H_

// Deterministic parallel reduction on top of util::ThreadPool.
//
// Floating-point addition is not associative, so a reduction whose
// partial-sum boundaries depend on the number of worker threads produces
// different bits at different --threads settings. The helpers here make the
// boundaries a function of the *range only*:
//
//   1. The range is cut into a fixed grid of chunks of `grain` items each
//      (FixedGridChunks; independent of pool size).
//   2. One partial accumulator ("per-thread gradient buffer" in the training
//      engine) is produced per chunk, in parallel, by whichever worker picks
//      the chunk up.
//   3. Partials are combined pairwise in a fixed tree order
//      ((0+1)+(2+3))+... on the calling thread.
//
// Steps 1 and 3 never look at num_threads(), so num_threads=1 and
// num_threads=N yield bitwise-identical results; threads only change which
// worker computes each chunk, never what is computed.

#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace util {

// Number of chunks in the fixed reduction grid: ceil(range / grain).
// Depends only on the range and grain -- NEVER on the thread count (contrast
// with ThreadPool::NumChunks, which is for partition-independent bodies).
inline int64_t FixedGridChunks(int64_t range, int64_t grain) {
  CHECK_GT(grain, 0);
  if (range <= 0) return 0;
  return (range + grain - 1) / grain;
}

// Deterministic map-reduce over [begin, end).
//   chunk_fn(lo, hi) -> T   computes the partial for one grid chunk;
//   combine(&acc, part)     folds a partial into an accumulator (called in
//                           fixed tree order, single-threaded).
// Returns `identity` for an empty range. T must be movable.
template <typename T, typename ChunkFn, typename CombineFn>
T ParallelReduceOrdered(ThreadPool& pool, int64_t begin, int64_t end,
                        int64_t grain, T identity, const ChunkFn& chunk_fn,
                        const CombineFn& combine) {
  const int64_t range = end - begin;
  const int64_t chunks = FixedGridChunks(range, grain);
  if (chunks == 0) return identity;
  if (chunks == 1) {
    T part = chunk_fn(begin, end);
    combine(identity, std::move(part));
    return identity;
  }
  std::vector<T> partials(static_cast<size_t>(chunks));
  pool.ParallelFor(
      0, chunks,
      [&](int64_t c_lo, int64_t c_hi) {
        for (int64_t c = c_lo; c < c_hi; ++c) {
          const int64_t lo = begin + c * grain;
          const int64_t hi = std::min<int64_t>(end, lo + grain);
          partials[static_cast<size_t>(c)] = chunk_fn(lo, hi);
        }
      },
      /*grain=*/1);
  // Fixed pairwise tree reduction: level by level, left to right.
  int64_t count = chunks;
  while (count > 1) {
    const int64_t half = count / 2;
    for (int64_t i = 0; i < half; ++i) {
      combine(partials[static_cast<size_t>(2 * i)],
              std::move(partials[static_cast<size_t>(2 * i + 1)]));
      if (2 * i != i) {
        partials[static_cast<size_t>(i)] =
            std::move(partials[static_cast<size_t>(2 * i)]);
      }
    }
    if (count % 2 == 1) {
      partials[static_cast<size_t>(half)] =
          std::move(partials[static_cast<size_t>(count - 1)]);
      count = half + 1;
    } else {
      count = half;
    }
  }
  combine(identity, std::move(partials[0]));
  return identity;
}

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_PARALLEL_H_
