#include "util/serialize.h"

#include <cstring>

namespace contratopic {
namespace util {

namespace {
// Guards against corrupt length prefixes blowing up memory.
constexpr uint64_t kMaxElements = 1ull << 32;
}  // namespace

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary) {}

BinaryWriter::BinaryWriter(std::string* buffer) : buffer_(buffer) {}

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  if (buffer_ != nullptr) {
    buffer_->append(static_cast<const char*>(data), size);
  } else {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
  }
}

void BinaryWriter::WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }

void BinaryWriter::WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }

void BinaryWriter::WriteF32(float v) { WriteBytes(&v, sizeof(v)); }

void BinaryWriter::WriteF64(double v) { WriteBytes(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteU64(v.size());
  WriteBytes(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteIntVector(const std::vector<int>& v) {
  WriteU64(v.size());
  WriteBytes(v.data(), v.size() * sizeof(int));
}

Status BinaryWriter::Close() {
  if (buffer_ != nullptr) return Status::OK();
  out_.flush();
  if (!out_) return Status::IOError("write failed");
  out_.close();
  return Status::OK();
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary) {
  ok_ = static_cast<bool>(in_);
}

BinaryReader::BinaryReader(const void* data, size_t size)
    : buffer_(static_cast<const uint8_t*>(data)), size_(size) {}

size_t BinaryReader::remaining() const {
  return buffer_ != nullptr ? size_ - pos_ : 0;
}

bool BinaryReader::ReadBytes(void* out, size_t size) {
  if (!ok_) return false;
  if (buffer_ != nullptr) {
    if (size > size_ - pos_) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, buffer_ + pos_, size);
    pos_ += size;
  } else {
    in_.read(static_cast<char*>(out), static_cast<std::streamsize>(size));
    if (!in_) ok_ = false;
  }
  return ok_;
}

template <typename T>
T BinaryReader::ReadPod() {
  T v{};
  ReadBytes(&v, sizeof(v));
  return v;
}

uint32_t BinaryReader::ReadU32() { return ReadPod<uint32_t>(); }
uint64_t BinaryReader::ReadU64() { return ReadPod<uint64_t>(); }
float BinaryReader::ReadF32() { return ReadPod<float>(); }
double BinaryReader::ReadF64() { return ReadPod<double>(); }

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > kMaxElements ||
      (buffer_ != nullptr && n > size_ - pos_)) {
    ok_ = false;
    return {};
  }
  std::string s(n, '\0');
  ReadBytes(s.data(), n);
  if (!ok_) return {};
  return s;
}

std::vector<float> BinaryReader::ReadFloatVector() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > kMaxElements ||
      (buffer_ != nullptr && n * sizeof(float) > size_ - pos_)) {
    ok_ = false;
    return {};
  }
  std::vector<float> v(n);
  ReadBytes(v.data(), n * sizeof(float));
  if (!ok_) return {};
  return v;
}

std::vector<int> BinaryReader::ReadIntVector() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > kMaxElements ||
      (buffer_ != nullptr && n * sizeof(int) > size_ - pos_)) {
    ok_ = false;
    return {};
  }
  std::vector<int> v(n);
  ReadBytes(v.data(), n * sizeof(int));
  if (!ok_) return {};
  return v;
}

Status BinaryReader::status() const {
  return ok_ ? Status::OK() : Status::IOError("read failed or file corrupt");
}

}  // namespace util
}  // namespace contratopic
