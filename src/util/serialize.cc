#include "util/serialize.h"

#include <cstring>

namespace contratopic {
namespace util {

namespace {
// Guards against corrupt length prefixes blowing up memory.
constexpr uint64_t kMaxElements = 1ull << 32;
}  // namespace

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary) {}

void BinaryWriter::WriteU32(uint32_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteU64(uint64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteF32(float v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteU64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void BinaryWriter::WriteIntVector(const std::vector<int>& v) {
  WriteU64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(int)));
}

Status BinaryWriter::Close() {
  out_.flush();
  if (!out_) return Status::IOError("write failed");
  out_.close();
  return Status::OK();
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary) {
  ok_ = static_cast<bool>(in_);
}

template <typename T>
T BinaryReader::ReadPod() {
  T v{};
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in_) ok_ = false;
  return v;
}

uint32_t BinaryReader::ReadU32() { return ReadPod<uint32_t>(); }
uint64_t BinaryReader::ReadU64() { return ReadPod<uint64_t>(); }
float BinaryReader::ReadF32() { return ReadPod<float>(); }

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > kMaxElements) {
    ok_ = false;
    return {};
  }
  std::string s(n, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(n));
  if (!in_) ok_ = false;
  return s;
}

std::vector<float> BinaryReader::ReadFloatVector() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > kMaxElements) {
    ok_ = false;
    return {};
  }
  std::vector<float> v(n);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(float)));
  if (!in_) ok_ = false;
  return v;
}

std::vector<int> BinaryReader::ReadIntVector() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > kMaxElements) {
    ok_ = false;
    return {};
  }
  std::vector<int> v(n);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(int)));
  if (!in_) ok_ = false;
  return v;
}

Status BinaryReader::status() const {
  return ok_ ? Status::OK() : Status::IOError("read failed or file corrupt");
}

}  // namespace util
}  // namespace contratopic
