#include "util/status.h"

namespace contratopic {
namespace util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace util
}  // namespace contratopic
