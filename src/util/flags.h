#ifndef CONTRATOPIC_UTIL_FLAGS_H_
#define CONTRATOPIC_UTIL_FLAGS_H_

// Minimal --key=value command-line parser used by the bench binaries and
// examples. No registration needed:
//
//   util::Flags flags(argc, argv);
//   int epochs = flags.GetInt("epochs", 20);
//   std::string scale = flags.GetString("scale", "small");
//   if (flags.Has("help")) { ... }

#include <map>
#include <string>
#include <vector>

namespace contratopic {
namespace util {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int GetInt(const std::string& key, int default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  // Positional (non --key) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  // All parsed flags; handy for echoing configuration in bench output.
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_FLAGS_H_
