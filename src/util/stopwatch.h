#ifndef CONTRATOPIC_UTIL_STOPWATCH_H_
#define CONTRATOPIC_UTIL_STOPWATCH_H_

// Wall-clock stopwatch used by the training loops and the computational-
// analysis bench (paper §V.E reports sec/epoch).

#include <chrono>

namespace contratopic {
namespace util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_STOPWATCH_H_
