#ifndef CONTRATOPIC_UTIL_FAULT_H_
#define CONTRATOPIC_UTIL_FAULT_H_

// Deterministic fault injection (DESIGN.md §11). Production code is
// sprinkled with named *injection sites*:
//
//   if (util::FaultInjector::Global().ShouldFail("checkpoint.rename")) {
//     return Status::IOError("injected: rename failed");
//   }
//
// A disarmed site costs one relaxed atomic load. Tests (and the chaos CI
// job) arm sites with a FaultSpec that fires either on every nth call or
// with a per-call probability. The schedule is *deterministic and
// thread-count-invariant*: whether the k-th call at a site fails is a
// pure function of (injector seed, site name, k), never of wall clock,
// thread interleaving, or which thread happens to make the call. Two runs
// that perform the same work therefore see the same fault schedule — the
// property the crash-recovery and chaos tests rely on
// (tests/fault_injection_test.cc).
//
// Sites register themselves on first ShouldFail, so RegisteredSites()
// enumerates every site the process actually exercised — the injection-
// site registry the chaos suite walks to prove each one can fire.
//
// Every fire increments the global "fault.injected" metrics counter plus
// a per-site tally, so chaos runs are visible in run telemetry.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace contratopic {
namespace util {

// SplitMix64 finalizer: the high-quality 64 -> 64 bit mix behind the
// probability schedule. Exported for other counter-derived deterministic
// "randomness" (e.g. serve::RetryPolicy's backoff jitter).
uint64_t MixBits(uint64_t x);

// How an armed site decides to fire. Exactly one trigger should be set;
// with both set, either firing fires the site.
struct FaultSpec {
  // Fire when (call index) % every_nth == every_nth - 1, i.e. the nth,
  // 2nth, ... calls (1 fires every call). 0 disables the trigger.
  int64_t every_nth = 0;
  // Fire each call with this probability, decided by hashing
  // (seed, site, call index) — not by a shared RNG stream, so the
  // schedule is independent of thread interleaving. 0 disables.
  double probability = 0.0;
  // Stop firing after this many fires; < 0 means unlimited. The
  // crash-recovery tests use max_fires = 1 to inject exactly one fault
  // and then let the retried/rolled-back work succeed.
  int64_t max_fires = -1;
};

class FaultInjector {
 public:
  // The process-wide injector every production site consults.
  static FaultInjector& Global();

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Arms `site` with `spec`; replaces any previous spec and resets the
  // site's call/fire counters so a schedule always starts from call 0.
  void Arm(const std::string& site, const FaultSpec& spec);
  // Disarms `site` (its counters are kept for inspection).
  void Disarm(const std::string& site);
  // Disarms every site, forgets all counters, and restores the seed. The
  // cheap "nothing armed" fast path is restored too.
  void Reset();

  // Seed folded into the probability hash; change it to explore a
  // different (but equally reproducible) fault schedule.
  void SetSeed(uint64_t seed);

  // The hot call: true when the armed spec says this call fires.
  // Registers `site` on first use; disarmed sites only pay an atomic
  // load + (first time) a map insert.
  bool ShouldFail(const std::string& site);

  // Every site ShouldFail has ever been asked about, sorted by name.
  std::vector<std::string> RegisteredSites() const;

  int64_t calls(const std::string& site) const;
  int64_t fires(const std::string& site) const;

 private:
  struct SiteState {
    bool armed = false;
    FaultSpec spec;
    int64_t calls = 0;
    int64_t fires = 0;
  };

  mutable std::mutex mu_;
  uint64_t seed_ = 0;
  // Count of armed sites, mirrored outside the lock so disarmed
  // processes (production) skip the mutex entirely.
  std::atomic<int> armed_sites_{0};
  std::map<std::string, SiteState> sites_;
};

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_FAULT_H_
