#include "util/cpu_features.h"

namespace contratopic {
namespace util {

const CpuFeatures& CpuFeatures::Get() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    f.sse2 = __builtin_cpu_supports("sse2");
    f.avx = __builtin_cpu_supports("avx");
    f.avx2 = __builtin_cpu_supports("avx2");
    f.fma = __builtin_cpu_supports("fma");
#endif
    return f;
  }();
  return features;
}

std::string CpuFeatures::ToString() const {
  std::string out;
  auto append = [&out](bool have, const char* name) {
    if (!have) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  append(sse2, "sse2");
  append(avx, "avx");
  append(avx2, "avx2");
  append(fma, "fma");
  if (out.empty()) out = "none";
  return out;
}

}  // namespace util
}  // namespace contratopic
