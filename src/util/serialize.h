#ifndef CONTRATOPIC_UTIL_SERIALIZE_H_
#define CONTRATOPIC_UTIL_SERIALIZE_H_

// Tiny binary (de)serialization helpers used for saving trained models,
// embeddings, and precomputed NPMI matrices. Format: little-endian POD
// writes with explicit lengths; all readers validate sizes.
//
// Both ends work either against a file or against an in-memory byte
// buffer. The buffer mode exists for the serve checkpoint format, which
// serializes its payload to memory first so a checksum over the exact
// bytes can be written ahead of them (serve/checkpoint.h).

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace contratopic {
namespace util {

class BinaryWriter {
 public:
  // Opens `path` for writing; check ok() before use.
  explicit BinaryWriter(const std::string& path);
  // Appends to `*buffer` instead of a file (not owned; must outlive the
  // writer). Always ok(); Close() is a no-op success.
  explicit BinaryWriter(std::string* buffer);

  bool ok() const { return buffer_ != nullptr || static_cast<bool>(out_); }

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteIntVector(const std::vector<int>& v);
  // Raw bytes without a length prefix (callers that need one write it
  // themselves; WriteString is the prefixed form).
  void WriteBytes(const void* data, size_t size);

  // Flushes and reports any stream error.
  Status Close();

 private:
  std::ofstream out_;
  std::string* buffer_ = nullptr;  // not owned; non-null in buffer mode
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  // Reads from an in-memory byte range (not owned; must outlive the
  // reader).
  BinaryReader(const void* data, size_t size);

  bool ok() const { return ok_; }

  uint32_t ReadU32();
  uint64_t ReadU64();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<int> ReadIntVector();
  // Raw bytes without a length prefix (pairs with WriteBytes; the caller
  // supplies the count). Returns ok() after the read.
  bool ReadBytes(void* out, size_t size);

  // Bytes left before the end of the buffer; only meaningful in buffer
  // mode (returns 0 for file readers).
  size_t remaining() const;
  // True when the reader has consumed every byte (buffer mode only).
  bool AtEnd() const { return buffer_ != nullptr && remaining() == 0; }

  // True if every read so far succeeded and sizes were sane.
  Status status() const;

 private:
  template <typename T>
  T ReadPod();

  std::ifstream in_;
  const uint8_t* buffer_ = nullptr;  // non-null in buffer mode
  size_t size_ = 0;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_SERIALIZE_H_
