#ifndef CONTRATOPIC_UTIL_SERIALIZE_H_
#define CONTRATOPIC_UTIL_SERIALIZE_H_

// Tiny binary (de)serialization helpers used for saving trained models,
// embeddings, and precomputed NPMI matrices. Format: little-endian POD
// writes with explicit lengths; all readers validate sizes.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace contratopic {
namespace util {

class BinaryWriter {
 public:
  // Opens `path` for writing; check ok() before use.
  explicit BinaryWriter(const std::string& path);

  bool ok() const { return static_cast<bool>(out_); }

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteF32(float v);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteIntVector(const std::vector<int>& v);

  // Flushes and reports any stream error.
  Status Close();

 private:
  std::ofstream out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  bool ok() const { return ok_; }

  uint32_t ReadU32();
  uint64_t ReadU64();
  float ReadF32();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<int> ReadIntVector();

  // True if every read so far succeeded and sizes were sane.
  Status status() const;

 private:
  template <typename T>
  T ReadPod();

  std::ifstream in_;
  bool ok_ = true;
};

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_SERIALIZE_H_
