#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace contratopic {
namespace util {
namespace {

// SplitMix64; used for seeding xoshiro state from a single 64-bit seed.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::Rng(uint64_t seed, uint64_t stream_id) {
  // Hash the stream id through SplitMix64 before folding it into the seed so
  // that consecutive stream ids land in well-separated state space, then
  // seed the state exactly like the single-argument constructor.
  uint64_t h = stream_id;
  uint64_t x = seed ^ SplitMix64(h);
  for (auto& s : s_) s = SplitMix64(x);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  DCHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Gumbel() {
  double u = 0.0;
  while (u <= 1e-300) u = Uniform();
  return -std::log(-std::log(u));
}

double Rng::Gamma(double shape) {
  CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
    const double u = std::max(Uniform(), 1e-300);
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(std::max(u, 1e-300)) <
        0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::Dirichlet(double alpha, int dim) {
  return Dirichlet(std::vector<double>(dim, alpha));
}

std::vector<double> Rng::Dirichlet(const std::vector<double>& alpha) {
  std::vector<double> out(alpha.size());
  double sum = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    out[i] = Gamma(alpha[i]);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Degenerate draw (all gammas underflowed); fall back to uniform.
    const double uniform = 1.0 / static_cast<double>(alpha.size());
    for (auto& v : out) v = uniform;
    return out;
  }
  for (auto& v : out) v /= sum;
  return out;
}

int Rng::Categorical(const double* weights, int n) {
  DCHECK(n > 0);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    DCHECK(weights[i] >= 0.0);
    total += weights[i];
  }
  CHECK_GT(total, 0.0) << "Categorical weights must have positive sum";
  double target = Uniform() * total;
  for (int i = 0; i < n; ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return n - 1;
}

int Rng::Categorical(const std::vector<double>& weights) {
  return Categorical(weights.data(), static_cast<int>(weights.size()));
}

int Rng::Categorical(const float* weights, int n) {
  DCHECK(n > 0);
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += weights[i];
  CHECK_GT(total, 0.0) << "Categorical weights must have positive sum";
  double target = Uniform() * total;
  for (int i = 0; i < n; ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return n - 1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector.
  std::vector<int> indices(n);
  for (int i = 0; i < n; ++i) indices[i] = i;
  for (int i = 0; i < k; ++i) {
    const int j = i + static_cast<int>(UniformInt(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace util
}  // namespace contratopic
