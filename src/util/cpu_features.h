#ifndef CONTRATOPIC_UTIL_CPU_FEATURES_H_
#define CONTRATOPIC_UTIL_CPU_FEATURES_H_

// Runtime CPU capability probe for the SIMD kernel backends
// (tensor/backend.h). Probed once, at first use, via the compiler's CPU
// dispatch builtins; on non-x86 targets every flag is false and the scalar
// reference backend is the only one available.

#include <string>

namespace contratopic {
namespace util {

struct CpuFeatures {
  bool sse2 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;

  // Cached probe of the host CPU (thread-safe, runs once).
  static const CpuFeatures& Get();

  // "sse2 avx avx2 fma" style summary for logs and bench manifests.
  std::string ToString() const;
};

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_CPU_FEATURES_H_
