#ifndef CONTRATOPIC_UTIL_STRING_UTIL_H_
#define CONTRATOPIC_UTIL_STRING_UTIL_H_

// Small string helpers shared across modules.

#include <string>
#include <string_view>
#include <vector>

namespace contratopic {
namespace util {

// Splits on any character in `delims`; empty pieces are dropped.
std::vector<std::string> Split(std::string_view text, std::string_view delims);

// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

// ASCII lower-casing in place / by value.
void ToLowerInPlace(std::string& s);
std::string ToLower(std::string_view s);

// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Renders a double with `digits` significant decimals, e.g. for tables.
std::string FormatDouble(double value, int digits);

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_STRING_UTIL_H_
