#include "util/trace.h"

#include <algorithm>

namespace contratopic {
namespace util {

void TraceStats::Record(double seconds) {
  if (count == 0) {
    min_seconds = max_seconds = seconds;
  } else {
    min_seconds = std::min(min_seconds, seconds);
    max_seconds = std::max(max_seconds, seconds);
  }
  ++count;
  total_seconds += seconds;
}

void TraceStats::Merge(const TraceStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  total_seconds += other.total_seconds;
  min_seconds = std::min(min_seconds, other.min_seconds);
  max_seconds = std::max(max_seconds, other.max_seconds);
}

void TraceAggregate::Merge(const TraceAggregate& other) {
  for (const auto& [path, stats] : other.spans) {
    spans[path].Merge(stats);
  }
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadState* Tracer::LocalState() {
  // The shared_ptr in the registry keeps the state alive after the thread
  // exits (pool resizes), so its aggregated stats are never lost.
  thread_local std::shared_ptr<ThreadState> state = [this] {
    auto s = std::make_shared<ThreadState>();
    std::lock_guard<std::mutex> lock(mu_);
    states_.push_back(s);
    return s;
  }();
  return state.get();
}

TraceAggregate Tracer::Snapshot() const {
  std::vector<std::shared_ptr<ThreadState>> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    states = states_;
  }
  // Merging per-path is commutative (sums, min, max), and the result map
  // is name-ordered, so the snapshot does not depend on thread identity
  // or registration order.
  TraceAggregate merged;
  for (const auto& state : states) {
    std::lock_guard<std::mutex> lock(state->mu);
    merged.Merge(state->aggregate);
  }
  return merged;
}

void Tracer::Reset() {
  std::vector<std::shared_ptr<ThreadState>> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    states = states_;
  }
  for (const auto& state : states) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->aggregate.spans.clear();
  }
}

TraceSpan::TraceSpan(std::string_view name)
    : state_(Tracer::Global().LocalState()) {
  // `path` is only touched by this thread (spans are stack-scoped), so no
  // lock is needed to extend it.
  parent_path_size_ = state_->path.size();
  if (!state_->path.empty()) state_->path += '/';
  state_->path += name;
  path_ = state_->path;
  watch_.Restart();
}

TraceSpan::~TraceSpan() {
  const double seconds = watch_.ElapsedSeconds();
  state_->path.resize(parent_path_size_);
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->aggregate.spans[path_].Record(seconds);
}

}  // namespace util
}  // namespace contratopic
