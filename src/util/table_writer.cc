#include "util/table_writer.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace contratopic {
namespace util {
namespace {

void MakeDirs(const std::string& path) {
  std::string partial;
  for (const auto& piece : Split(path, "/")) {
    partial += piece + "/";
    ::mkdir(partial.c_str(), 0755);  // EEXIST is fine.
  }
}

}  // namespace

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> row) {
  CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TableWriter::AddRow(const std::string& label,
                         const std::vector<double>& values, int digits) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, digits));
  AddRow(std::move(row));
}

std::string TableWriter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  emit_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

Status TableWriter::WriteTsv(const std::string& path) const {
  const size_t slash = path.rfind('/');
  if (slash != std::string::npos) MakeDirs(path.substr(0, slash));
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << Join(header_, "\t") << "\n";
  for (const auto& row : rows_) out << Join(row, "\t") << "\n";
  return Status::OK();
}

}  // namespace util
}  // namespace contratopic
