#ifndef CONTRATOPIC_UTIL_TELEMETRY_H_
#define CONTRATOPIC_UTIL_TELEMETRY_H_

// RunTelemetry: the streaming sink of the observability layer (DESIGN.md
// §9). A run -- training a model, executing a bench pipeline -- emits one
// JSON object per line (JSONL):
//
//   {"type":"run_start", "run":..., "config":{...}}
//   {"type":"epoch", "epoch":1, "loss":..., "l_con":..., "npmi":...,
//    "diversity":..., "seconds":..., "stage_seconds":{...}}       (per epoch)
//   {"type":"stage", "name":"npmi_precompute", "seconds":...}     (per stage)
//   {"type":"manifest", "summary":{...}, "counters":{...}, "gauges":{...},
//    "histograms":{...}, "spans":{...}, "peak_rss_bytes":...}     (once, last)
//
// The CI bench-smoke job uploads this file as an artifact and fails the
// build when a tier-1 metric is NaN or the manifest is missing
// (scripts/check_telemetry.py).
//
// Determinism: with Options::deterministic set, every environmental field
// -- wall-clock durations, RSS, span/histogram timing stats -- is
// omitted, and what remains (record structure, losses, metrics, counters,
// span counts) is a pure function of the work performed. Doubles are
// rendered with "%.17g" (round-trip exact), so the deterministic stream
// is bitwise-identical at --threads=1 and --threads=N
// (tests/telemetry_test.cc locks this in).

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace contratopic {
namespace util {

// --- JSON rendering helpers (shared by telemetry and tests) -------------

// Appends `s` JSON-escaped, without surrounding quotes.
void AppendJsonEscaped(std::string_view s, std::string* out);

// Appends a double with "%.17g" (bit-exact round trip); non-finite values
// render as null -- JSON has no NaN literal, and a null metric is exactly
// what the CI telemetry check treats as a failed run.
void AppendJsonDouble(double value, std::string* out);

// Minimal insertion-ordered JSON object builder.
class JsonObject {
 public:
  JsonObject& Put(std::string_view key, std::string_view value);
  JsonObject& Put(std::string_view key, const char* value);
  JsonObject& Put(std::string_view key, double value);
  JsonObject& Put(std::string_view key, int64_t value);
  JsonObject& Put(std::string_view key, int value);
  JsonObject& Put(std::string_view key, bool value);
  // Inserts pre-rendered JSON (e.g. a nested object) verbatim.
  JsonObject& PutRaw(std::string_view key, std::string_view json);

  std::string Build() const;  // {"k":v,...}

 private:
  void Key(std::string_view key);
  std::string body_;
};

// Current peak resident set size of this process, in bytes (Linux
// ru_maxrss); 0 where unavailable.
int64_t PeakRssBytes();

// --- The sink ------------------------------------------------------------

// One epoch's worth of training telemetry (built by
// topicmodel::NeuralTopicModel::RunTrainingLoop).
struct EpochTelemetry {
  int epoch = 0;        // 1-based
  int total_epochs = 0;
  double loss = 0.0;    // mean batch loss over the epoch
  // Named loss components, e.g. {"l_con", ...} from ContraTopic,
  // {"recon"/"kl", ...} from the VAE backbones. Mean over the epoch.
  std::vector<std::pair<std::string, double>> loss_components;
  // Interpretability metrics from the epoch evaluator, e.g. "npmi",
  // "diversity" (empty when no evaluator is attached).
  std::vector<std::pair<std::string, double>> metrics;
  double seconds = 0.0;  // wall time of the epoch (environmental)
  // Per-stage wall time within the epoch: data / forward / backward /
  // optimizer (environmental).
  std::vector<std::pair<std::string, double>> stage_seconds;
};

// Counters and high-water marks of one serving run (built by
// serve::InferenceEngine::EmitTelemetry). The latency percentiles are
// environmental and omitted in deterministic mode; everything else is a
// pure function of the request stream.
struct ServeTelemetry {
  int64_t requests = 0;
  int64_t batches = 0;
  int64_t cache_hits = 0;
  int64_t shed = 0;
  int64_t invalid = 0;
  int max_batch_size = 0;
  int max_queue_depth = 0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
};

class RunTelemetry {
 public:
  struct Options {
    // Output JSONL path; empty keeps records in memory only (tests).
    std::string path;
    // Omit environmental fields so the stream is thread-count-invariant.
    bool deterministic = false;
  };

  explicit RunTelemetry(Options options);
  ~RunTelemetry();  // flushes; manifest omission is the caller's bug

  RunTelemetry(const RunTelemetry&) = delete;
  RunTelemetry& operator=(const RunTelemetry&) = delete;

  // First record of a run; `config` is echoed into the record so a
  // telemetry file is self-describing.
  void RecordRunStart(
      std::string_view run_name,
      const std::vector<std::pair<std::string, std::string>>& config);

  void RecordEpoch(const EpochTelemetry& epoch);

  // One pipeline stage ("npmi_precompute", "train", "infer_theta", ...),
  // optionally with named scalar results measured in that stage.
  void RecordStage(std::string_view name, double seconds);

  // One "serve_stats" record summarizing an InferenceEngine's lifetime.
  void RecordServeStats(const ServeTelemetry& stats);
  void RecordStage(
      std::string_view name, double seconds,
      const std::vector<std::pair<std::string, double>>& values);

  // Final record: run summary plus the global MetricsRegistry snapshot
  // and Tracer aggregate. Must be called exactly once, last.
  void RecordManifest(
      const std::vector<std::pair<std::string, double>>& summary);

  bool manifest_written() const { return manifest_written_; }

  // Every emitted line, in order (without trailing newlines).
  const std::vector<std::string>& lines() const { return lines_; }

  // Flushes the underlying file and reports stream errors. Also called by
  // the destructor (which logs instead of reporting).
  Status Flush();

 private:
  void Emit(std::string line);

  const Options options_;
  std::ofstream out_;
  std::vector<std::string> lines_;
  bool manifest_written_ = false;
  std::mutex mu_;
};

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_TELEMETRY_H_
