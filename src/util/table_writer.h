#ifndef CONTRATOPIC_UTIL_TABLE_WRITER_H_
#define CONTRATOPIC_UTIL_TABLE_WRITER_H_

// Aligned console tables + TSV export for the benchmark harness. Every
// bench binary prints a paper-style table to stdout and mirrors it as TSV
// under bench_results/ so plots can be regenerated.

#include <string>
#include <vector>

#include "util/status.h"

namespace contratopic {
namespace util {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with `digits` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int digits = 3);

  // Renders an aligned, pipe-separated table.
  std::string ToString() const;

  // Writes header+rows as TSV. Creates parent directories if needed.
  Status WriteTsv(const std::string& path) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_TABLE_WRITER_H_
