#include "util/logging.h"

#include <atomic>
#include <cstring>

namespace contratopic {
namespace util {
namespace {

std::atomic<int> g_min_severity{0};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogSeverity GetMinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load());
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity));
}

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : file_(file), line_(line), severity_(severity) {}

LogMessage::~LogMessage() {
  const bool enabled = static_cast<int>(severity_) >= g_min_severity.load();
  if (enabled || severity_ == LogSeverity::kFatal) {
    std::cerr << "[" << SeverityTag(severity_) << " " << Basename(file_) << ":"
              << line_ << "] " << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace util
}  // namespace contratopic
