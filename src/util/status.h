#ifndef CONTRATOPIC_UTIL_STATUS_H_
#define CONTRATOPIC_UTIL_STATUS_H_

// Lightweight Status / StatusOr for recoverable errors (file I/O, parsing,
// malformed user input). Programming errors use CHECK from logging.h.

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "util/logging.h"

namespace contratopic {
namespace util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  // The operation was refused because the service is overloaded or
  // paused (e.g. the serving queue shed a request); retrying later may
  // succeed.
  kUnavailable,
  // Stored data is unrecoverably corrupt (checksum mismatch, impossible
  // lengths); retrying will not help.
  kDataLoss,
  // The operation was abandoned because its owner shut down (e.g. a
  // batcher failed its pending queue on destruction). Not retryable
  // against the same instance.
  kCancelled,
  // The per-request deadline expired before the work ran; the caller may
  // retry with a longer deadline.
  kDeadlineExceeded,
};

// Returns a short human-readable name, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Value-or-error wrapper. Accessing the value of a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    CHECK(!status_.ok()) << "StatusOr constructed from OK status with no value";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace util
}  // namespace contratopic

#define CT_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::contratopic::util::Status _status = (expr); \
    if (!_status.ok()) return _status;           \
  } while (false)

#endif  // CONTRATOPIC_UTIL_STATUS_H_
