#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace contratopic {
namespace util {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 2;
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++pending_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t, int64_t)>& body,
                             int64_t min_chunk) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  const int workers = num_threads();
  if (workers <= 1 || range <= min_chunk) {
    body(begin, end);
    return;
  }
  const int64_t chunks = std::min<int64_t>(workers, (range + min_chunk - 1) / min_chunk);
  const int64_t chunk_size = (range + chunks - 1) / chunks;
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t lo = begin + c * chunk_size;
    const int64_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    Schedule([&body, lo, hi] { body(lo, hi); });
  }
  Wait();
}

ThreadPool& ThreadPool::Global() {
  // Never destroyed: avoids static-destruction-order issues (see style guide).
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --pending_;
      if (pending_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace util
}  // namespace contratopic
