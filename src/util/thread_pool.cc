#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "util/fault.h"
#include "util/logging.h"

namespace contratopic {
namespace util {

namespace {
// The pool (if any) whose WorkerLoop the current thread is running. Lets
// ParallelFor detect nested use and fall back to inline execution instead of
// deadlocking, and lets Wait() reject misuse loudly.
thread_local const ThreadPool* tls_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 2;
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++pending_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  CHECK(!InWorkerThread())
      << "ThreadPool::Wait called from a worker of the same pool (deadlock); "
         "nested parallel sections must go through ParallelFor";
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

bool ThreadPool::InWorkerThread() const { return tls_current_pool == this; }

int64_t ThreadPool::NumChunks(int64_t range, int64_t grain, int workers) {
  if (range <= 0) return 0;
  if (workers <= 1) return 1;
  CHECK_GT(grain, 0);
  return std::clamp<int64_t>(range / grain, 1, workers);
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t, int64_t)>& body,
                             int64_t grain) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  const int64_t chunks = NumChunks(range, grain, num_threads());
  if (chunks <= 1 || InWorkerThread()) {
    // Single chunk, single worker, or nested call from one of our own
    // workers: run inline on the calling thread.
    body(begin, end);
    return;
  }
  const int64_t chunk_size = (range + chunks - 1) / chunks;
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t lo = begin + c * chunk_size;
    const int64_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    Schedule([&body, lo, hi] { body(lo, hi); });
  }
  Wait();
}

namespace {
// Never destroyed: avoids static-destruction-order issues (style guide).
std::atomic<ThreadPool*> g_global_pool{nullptr};
std::mutex g_global_pool_mu;
}  // namespace

ThreadPool& ThreadPool::Global() {
  ThreadPool* pool = g_global_pool.load(std::memory_order_acquire);
  if (pool == nullptr) {
    std::lock_guard<std::mutex> lock(g_global_pool_mu);
    pool = g_global_pool.load(std::memory_order_relaxed);
    if (pool == nullptr) {
      pool = new ThreadPool();
      g_global_pool.store(pool, std::memory_order_release);
    }
  }
  return *pool;
}

ThreadPool& ThreadPool::SetGlobalNumThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  delete g_global_pool.exchange(nullptr);  // Joins workers after draining.
  ThreadPool* pool = new ThreadPool(num_threads);
  g_global_pool.store(pool, std::memory_order_release);
  return *pool;
}

void ThreadPool::WorkerLoop() {
  tls_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) break;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    // Chaos hook: a fired "threadpool.task_delay" stalls this worker
    // briefly before the task runs — a deterministic stand-in for a slow
    // batch / preempted core. The task still executes, so results are
    // unchanged; only timing-sensitive layers (deadlines, retries) see
    // the fault.
    if (FaultInjector::Global().ShouldFail("threadpool.task_delay")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --pending_;
      if (pending_ == 0) all_done_.notify_all();
    }
  }
  tls_current_pool = nullptr;
}

}  // namespace util
}  // namespace contratopic
