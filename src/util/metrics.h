#ifndef CONTRATOPIC_UTIL_METRICS_H_
#define CONTRATOPIC_UTIL_METRICS_H_

// Process-wide metrics registry: the counting half of the observability
// layer (DESIGN.md §9). Three instrument kinds, all named, all owned by
// the registry (instrument references stay valid for the process
// lifetime):
//
//   * Counter   -- monotonically increasing int64 ("documents counted",
//                  "training steps", "k-means iterations").
//   * Gauge     -- last-write-wins double ("current learning rate",
//                  "kernel memory bytes").
//   * Histogram -- fixed-bucket distribution with percentile estimates
//                  ("per-batch loss"). Bucket bounds are fixed at
//                  creation, so two runs that observe the same values
//                  produce identical snapshots.
//
// Determinism contract (mirrors DESIGN.md §8): instruments are only
// recorded from serial program points -- the training loop, the eval
// drivers -- never from inside ParallelFor bodies. Counter values and
// histogram contents are therefore a function of the work performed, not
// of the thread count, and MetricsSnapshot (minus wall-time gauges) is
// bitwise-identical at --threads=1 and --threads=N. Instruments are
// internally synchronized anyway, so incidental concurrent use is safe --
// it just forfeits the invariance guarantee for that instrument.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace contratopic {
namespace util {

class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Snapshot of one histogram: `counts` has bounds.size() + 1 entries, the
// last being the overflow bucket (> bounds.back()).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<int64_t> counts;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningful only when count > 0
  double max = 0.0;

  // Percentile estimate for p in [0, 1]: finds the bucket holding the
  // p-th ranked observation and interpolates linearly inside it. The
  // first bucket's lower edge is min; the overflow bucket's upper edge
  // is max. Returns 0 when empty.
  double Percentile(double p) const;

  bool operator==(const HistogramSnapshot& other) const = default;
};

class Histogram {
 public:
  // `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  const std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<int64_t> counts_;  // bounds_.size() + 1 (overflow last)
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Point-in-time copy of every instrument, ordered by name (std::map), so
// iteration -- and any serialization of it -- is deterministic.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool operator==(const MetricsSnapshot& other) const = default;

  // Binary round-trip via util::serialize (the same format the model
  // cache and saved embeddings use).
  void Save(BinaryWriter* writer) const;
  static Status Load(BinaryReader* reader, MetricsSnapshot* out);
};

class MetricsRegistry {
 public:
  // The process-wide registry every module records into.
  static MetricsRegistry& Global();

  // Returns the named instrument, creating it on first use. References
  // remain valid until the registry is destroyed (never, for Global()).
  // Histogram bounds apply only at creation; later calls with different
  // bounds return the existing instrument unchanged.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds = DefaultBounds());

  MetricsSnapshot Snapshot() const;

  // Zeroes every instrument (shape and bounds are kept). Run boundaries
  // (bench legs, tests) call this so snapshots cover exactly one run.
  void Reset();

  // Decade buckets covering loss/size magnitudes: 1e-3 .. 1e6.
  static std::vector<double> DefaultBounds();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_METRICS_H_
