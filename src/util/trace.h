#ifndef CONTRATOPIC_UTIL_TRACE_H_
#define CONTRATOPIC_UTIL_TRACE_H_

// RAII scoped timers that nest and aggregate per thread: the timing half
// of the observability layer (DESIGN.md §9). Replaces the ad-hoc
// util::Stopwatch scatter in the training loop, the eval pipeline, and
// the bench binaries.
//
//   {
//     util::TraceSpan train("train");
//     for (...) {
//       util::TraceSpan epoch("epoch");       // aggregates as "train/epoch"
//       { util::TraceSpan fwd("forward"); ... }  // "train/epoch/forward"
//     }
//   }
//   util::TraceAggregate agg = util::Tracer::Global().Snapshot();
//
// Each thread keeps its own span stack and aggregation table (no lock on
// the hot path except the per-thread mutex guarding its table against a
// concurrent Snapshot), and Snapshot() merges the per-thread tables into
// one name-ordered map. Span *counts* depend only on the work performed,
// so -- like every instrument in util/metrics.h -- they are identical at
// any --threads setting; durations are environmental by nature and are
// excluded from the telemetry determinism contract (see util/telemetry.h).
//
// Spans opened on a ThreadPool worker root at that worker (workers do not
// inherit the spawning thread's path); instrumentation in this codebase
// stays on the serial driver threads, consistent with the "RNG serial
// and above the pool" rule of DESIGN.md §8.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/stopwatch.h"

namespace contratopic {
namespace util {

struct TraceStats {
  int64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;

  void Record(double seconds);
  void Merge(const TraceStats& other);
  bool operator==(const TraceStats& other) const = default;
};

// Aggregated spans keyed by their '/'-joined nesting path
// ("train/epoch/backward"); map order makes iteration deterministic.
struct TraceAggregate {
  std::map<std::string, TraceStats> spans;

  void Merge(const TraceAggregate& other);
};

class TraceSpan;

class Tracer {
 public:
  // The process-wide tracer every TraceSpan records into.
  static Tracer& Global();

  // Merges every thread's aggregation table (including exited threads').
  TraceAggregate Snapshot() const;

  // Clears all aggregated stats; active spans still record on exit.
  void Reset();

 private:
  friend class TraceSpan;

  // One per thread that ever opened a span; kept alive by the registry
  // after the thread exits so its stats survive pool resizes.
  struct ThreadState {
    std::mutex mu;
    std::string path;  // current nesting prefix (this thread only)
    TraceAggregate aggregate;
  };

  ThreadState* LocalState();

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadState>> states_;
};

// RAII span: opening pushes `name` onto the calling thread's path, and
// destruction records the elapsed wall time under the full path.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Live reading since construction; the aggregate still receives the
  // full lifetime on destruction. Replaces Stopwatch::ElapsedSeconds at
  // call sites that also report the duration locally.
  double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }

  const std::string& path() const { return path_; }

 private:
  Tracer::ThreadState* state_;
  std::string path_;        // full path of this span
  size_t parent_path_size_; // restored on exit
  Stopwatch watch_;
};

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_TRACE_H_
