#include "util/flags.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace contratopic {
namespace util {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--")) {
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        // Bare flag, e.g. --help => "true". Values must use --key=value
        // (space-separated values would be ambiguous with positionals).
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int Flags::GetInt(const std::string& key, int default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::atoi(it->second.c_str());
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::atof(it->second.c_str());
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string v = ToLower(it->second);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace util
}  // namespace contratopic
