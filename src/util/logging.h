#ifndef CONTRATOPIC_UTIL_LOGGING_H_
#define CONTRATOPIC_UTIL_LOGGING_H_

// Minimal glog-style logging and CHECK macros.
//
// Usage:
//   LOG(INFO) << "trained " << n << " epochs";
//   CHECK(ptr != nullptr) << "ptr must be set";
//   CHECK_EQ(a, b);
//
// FATAL logs and CHECK failures abort the process: in this library they
// indicate programming errors (shape mismatches, out-of-range indices),
// not recoverable conditions. Recoverable errors use util::Status.

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace contratopic {
namespace util {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Global minimum severity that is actually printed. Tests can raise this
// to silence expected warnings.
LogSeverity GetMinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

// Accumulates one log line and emits it (with severity tag and location)
// on destruction. Aborts the process for kFatal.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed message; used for disabled log levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace util
}  // namespace contratopic

#define CT_LOG_INFO \
  ::contratopic::util::LogMessage(__FILE__, __LINE__, \
                                  ::contratopic::util::LogSeverity::kInfo)
#define CT_LOG_WARNING \
  ::contratopic::util::LogMessage(__FILE__, __LINE__, \
                                  ::contratopic::util::LogSeverity::kWarning)
#define CT_LOG_ERROR \
  ::contratopic::util::LogMessage(__FILE__, __LINE__, \
                                  ::contratopic::util::LogSeverity::kError)
#define CT_LOG_FATAL \
  ::contratopic::util::LogMessage(__FILE__, __LINE__, \
                                  ::contratopic::util::LogSeverity::kFatal)

#define LOG(severity) CT_LOG_##severity.stream()

#define CHECK(condition)                                                  \
  if (!(condition))                                                       \
  ::contratopic::util::LogMessage(__FILE__, __LINE__,                     \
                                  ::contratopic::util::LogSeverity::kFatal) \
          .stream()                                                       \
      << "Check failed: " #condition " "

#define CT_CHECK_OP(op, a, b)                                             \
  if (!((a)op(b)))                                                        \
  ::contratopic::util::LogMessage(__FILE__, __LINE__,                     \
                                  ::contratopic::util::LogSeverity::kFatal) \
          .stream()                                                       \
      << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " << (b)  \
      << ") "

#define CHECK_EQ(a, b) CT_CHECK_OP(==, a, b)
#define CHECK_NE(a, b) CT_CHECK_OP(!=, a, b)
#define CHECK_LT(a, b) CT_CHECK_OP(<, a, b)
#define CHECK_LE(a, b) CT_CHECK_OP(<=, a, b)
#define CHECK_GT(a, b) CT_CHECK_OP(>, a, b)
#define CHECK_GE(a, b) CT_CHECK_OP(>=, a, b)

#ifndef NDEBUG
#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#else
#define DCHECK(condition) \
  while (false) CHECK(condition)
#define DCHECK_EQ(a, b) \
  while (false) CHECK_EQ(a, b)
#define DCHECK_LT(a, b) \
  while (false) CHECK_LT(a, b)
#define DCHECK_LE(a, b) \
  while (false) CHECK_LE(a, b)
#define DCHECK_GE(a, b) \
  while (false) CHECK_GE(a, b)
#endif

#endif  // CONTRATOPIC_UTIL_LOGGING_H_
