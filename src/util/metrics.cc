#include "util/metrics.h"

#include <algorithm>
#include <bit>

#include "util/logging.h"

namespace contratopic {
namespace util {

double HistogramSnapshot::Percentile(double p) const {
  if (count <= 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target observation, 0-based, in [0, count - 1].
  const double rank = p * static_cast<double>(count - 1);
  int64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const int64_t next = seen + counts[b];
    if (rank < static_cast<double>(next)) {
      // Interpolate within bucket b between its edges.
      const double lower = b == 0 ? min : bounds[b - 1];
      const double upper = b == bounds.size() ? max : bounds[b];
      const double lo_clamped = std::max(lower, min);
      const double hi_clamped = std::min(upper, max);
      if (counts[b] == 1 || hi_clamped <= lo_clamped) return lo_clamped;
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(counts[b]);
      return lo_clamped + within * (hi_clamped - lo_clamped);
    }
    seen = next;
  }
  return max;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  CHECK(!bounds_.empty()) << "Histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CHECK_LT(bounds_[i - 1], bounds_[i])
        << "Histogram bounds must be strictly increasing";
  }
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[bucket];
  sum_ += value;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  return snap;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

void MetricsSnapshot::Save(BinaryWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(counters.size()));
  for (const auto& [name, value] : counters) {
    writer->WriteString(name);
    writer->WriteU64(static_cast<uint64_t>(value));
  }
  writer->WriteU32(static_cast<uint32_t>(gauges.size()));
  for (const auto& [name, value] : gauges) {
    writer->WriteString(name);
    writer->WriteU64(std::bit_cast<uint64_t>(value));
  }
  writer->WriteU32(static_cast<uint32_t>(histograms.size()));
  for (const auto& [name, hist] : histograms) {
    writer->WriteString(name);
    writer->WriteU32(static_cast<uint32_t>(hist.bounds.size()));
    for (double b : hist.bounds) writer->WriteU64(std::bit_cast<uint64_t>(b));
    writer->WriteU32(static_cast<uint32_t>(hist.counts.size()));
    for (int64_t c : hist.counts) writer->WriteU64(static_cast<uint64_t>(c));
    writer->WriteU64(static_cast<uint64_t>(hist.count));
    writer->WriteU64(std::bit_cast<uint64_t>(hist.sum));
    writer->WriteU64(std::bit_cast<uint64_t>(hist.min));
    writer->WriteU64(std::bit_cast<uint64_t>(hist.max));
  }
}

Status MetricsSnapshot::Load(BinaryReader* reader, MetricsSnapshot* out) {
  *out = MetricsSnapshot();
  const uint32_t num_counters = reader->ReadU32();
  for (uint32_t i = 0; i < num_counters && reader->ok(); ++i) {
    std::string name = reader->ReadString();
    out->counters[name] = static_cast<int64_t>(reader->ReadU64());
  }
  const uint32_t num_gauges = reader->ReadU32();
  for (uint32_t i = 0; i < num_gauges && reader->ok(); ++i) {
    std::string name = reader->ReadString();
    out->gauges[name] = std::bit_cast<double>(reader->ReadU64());
  }
  const uint32_t num_hists = reader->ReadU32();
  for (uint32_t i = 0; i < num_hists && reader->ok(); ++i) {
    std::string name = reader->ReadString();
    HistogramSnapshot hist;
    const uint32_t num_bounds = reader->ReadU32();
    for (uint32_t b = 0; b < num_bounds && reader->ok(); ++b) {
      hist.bounds.push_back(std::bit_cast<double>(reader->ReadU64()));
    }
    const uint32_t num_counts = reader->ReadU32();
    for (uint32_t c = 0; c < num_counts && reader->ok(); ++c) {
      hist.counts.push_back(static_cast<int64_t>(reader->ReadU64()));
    }
    hist.count = static_cast<int64_t>(reader->ReadU64());
    hist.sum = std::bit_cast<double>(reader->ReadU64());
    hist.min = std::bit_cast<double>(reader->ReadU64());
    hist.max = std::bit_cast<double>(reader->ReadU64());
    out->histograms[name] = std::move(hist);
  }
  return reader->status();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->Snapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

std::vector<double> MetricsRegistry::DefaultBounds() {
  return {1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6};
}

}  // namespace util
}  // namespace contratopic
