#ifndef CONTRATOPIC_UTIL_RNG_H_
#define CONTRATOPIC_UTIL_RNG_H_

// Deterministic, seedable random number generation used across the library.
//
// We implement xoshiro256** (Blackman & Vigna) rather than relying on
// std::mt19937 so results are bit-identical across standard libraries, which
// keeps the benchmark harness reproducible.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace contratopic {
namespace util {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Counter-based stream construction: (seed, stream_id) deterministically
  // names an independent generator, so parallel shards can each own a
  // reproducible stream regardless of thread count or creation order.
  // Stream 0 is NOT the same generator as Rng(seed): the stream id is hashed
  // into the state, keeping the plain single-argument behavior unchanged.
  Rng(uint64_t seed, uint64_t stream_id);
  static Rng Stream(uint64_t seed, uint64_t stream_id) {
    return Rng(seed, stream_id);
  }

  // Uniform 64-bit integer.
  uint64_t NextUint64();

  // Uniform in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n);

  // Uniform in [0, 1).
  double Uniform();
  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box-Muller (cached pair).
  double Normal();
  double Normal(double mean, double stddev);

  // Gumbel(0, 1): -log(-log(U)).
  double Gumbel();

  // Gamma(shape, 1) via Marsaglia-Tsang (with boost for shape < 1).
  double Gamma(double shape);

  // Draws from a symmetric Dirichlet(alpha) of dimension `dim`.
  std::vector<double> Dirichlet(double alpha, int dim);
  // Draws from Dirichlet with per-component concentration.
  std::vector<double> Dirichlet(const std::vector<double>& alpha);

  // Samples an index proportional to `weights` (need not be normalized).
  // Weights must be non-negative with a positive sum.
  int Categorical(const double* weights, int n);
  int Categorical(const std::vector<double>& weights);
  int Categorical(const float* weights, int n);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Returns k distinct indices sampled uniformly from [0, n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Derives an independent child generator; used to give each worker /
  // model its own deterministic stream.
  Rng Fork();

  // Complete generator state, for checkpoint/resume: the xoshiro words
  // plus the Box-Muller carry. Restoring a saved state makes the next
  // draw sequence bitwise-identical to what the saved generator would
  // have produced (the resumable-training contract, DESIGN.md §11).
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State SaveState() const;
  void RestoreState(const State& state);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_RNG_H_
