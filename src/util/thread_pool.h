#ifndef CONTRATOPIC_UTIL_THREAD_POOL_H_
#define CONTRATOPIC_UTIL_THREAD_POOL_H_

// Fixed-size thread pool with a ParallelFor helper. The tensor kernels, the
// co-occurrence counter, the evaluators, and the training engine all run on
// the process-wide Global() pool; everything degrades gracefully to inline
// execution when the pool has a single worker (or for small ranges).
//
// Determinism contract (see DESIGN.md "Parallelism & determinism"): every
// parallel region in this codebase either (a) writes disjoint output slots
// whose values do not depend on how the range was chunked, or (b) reduces
// per-chunk partials over a *fixed* chunk grid in a fixed order (see
// util/parallel.h). Consequently num_threads=1 and num_threads=N produce
// bitwise-identical results everywhere.
//
// Nested use: calling ParallelFor from inside a pool worker runs the body
// inline on the calling worker (re-scheduling onto the same pool would
// deadlock once all workers block in Wait). Calling Wait() directly from a
// worker is a programming error and CHECK-fails.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace contratopic {
namespace util {

class ThreadPool {
 public:
  // Default grain for ParallelFor: bodies cheaper than ~a few ns per item
  // should not be split finer than this many items per chunk.
  static constexpr int64_t kDefaultGrain = 1024;

  // num_threads <= 0 means hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task; tasks must not throw.
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has finished. Must not be called from
  // a worker thread of this pool (CHECK-fails: it would deadlock).
  void Wait();

  // The single chunking policy (satellite of ISSUE 1): how many chunks a
  // range of `range` items is split into on a pool with `workers` threads,
  // given that no chunk should hold fewer than `grain` items. Exposed so the
  // unit tests can pin the behavior.
  //   range <= 0            -> 0 chunks
  //   workers <= 1          -> 1 chunk (inline)
  //   otherwise             -> clamp(range / grain, 1, workers)
  static int64_t NumChunks(int64_t range, int64_t grain, int workers);

  // Splits [begin, end) into NumChunks(range, grain, num_threads()) chunks
  // and runs `body(chunk_begin, chunk_end)` on the pool; blocks until done.
  // Runs inline when only one chunk results, or when called from a worker of
  // this pool (nested case). `grain` is the minimum number of items per
  // chunk; pass a small grain (even 1) when each item is expensive.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& body,
                   int64_t grain = kDefaultGrain);

  // True when the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

  // Process-wide shared pool (created on first use, never destroyed).
  static ThreadPool& Global();

  // Replaces the global pool with one of `num_threads` workers (<= 0 means
  // hardware_concurrency). Drains the old pool first. Call this at startup
  // (e.g. from a --threads flag) before handing references to Global() to
  // other threads. Returns the new pool.
  static ThreadPool& SetGlobalNumThreads(int num_threads);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_THREAD_POOL_H_
