#ifndef CONTRATOPIC_UTIL_THREAD_POOL_H_
#define CONTRATOPIC_UTIL_THREAD_POOL_H_

// Fixed-size thread pool with a ParallelFor helper. The tensor kernels use
// it for large matmuls; everything degrades gracefully to inline execution
// when the pool has a single worker (or for small ranges).

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace contratopic {
namespace util {

class ThreadPool {
 public:
  // num_threads <= 0 means hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task; tasks must not throw.
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has finished.
  void Wait();

  // Splits [begin, end) into chunks and runs `body(chunk_begin, chunk_end)`
  // on the pool; blocks until done. Runs inline when the range is small.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& body,
                   int64_t min_chunk = 1024);

  // Process-wide shared pool (created on first use, never destroyed).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace util
}  // namespace contratopic

#endif  // CONTRATOPIC_UTIL_THREAD_POOL_H_
