#include "util/fault.h"

#include "util/metrics.h"

namespace contratopic {
namespace util {

uint64_t MixBits(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {

// FNV-1a over the site name; stable across platforms.
uint64_t HashSite(const std::string& site) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : site) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// Whether the `call`-th call at `site` fires under `probability`. A pure
// function of its arguments — no RNG stream — so the decision for a
// given call index cannot depend on how calls interleave across threads.
bool ProbabilityFires(uint64_t seed, uint64_t site_hash, int64_t call,
                      double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  const uint64_t h =
      MixBits(seed ^ MixBits(site_hash ^ static_cast<uint64_t>(call)));
  // 53 bits -> uniform double in [0, 1), same construction as Rng::Uniform.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < probability;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* const injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& site, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  if (!state.armed) armed_sites_.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.spec = spec;
  state.calls = 0;
  state.fires = 0;
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_sites_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  seed_ = 0;
  armed_sites_.store(0, std::memory_order_relaxed);
}

void FaultInjector::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

bool FaultInjector::ShouldFail(const std::string& site) {
  // Fast path: nothing armed anywhere — do not even register the site.
  // Registration only matters to chaos runs, which arm at least one site.
  if (armed_sites_.load(std::memory_order_relaxed) == 0) return false;
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SiteState& state = sites_[site];
    const int64_t call = state.calls++;
    if (!state.armed) return false;
    const FaultSpec& spec = state.spec;
    if (spec.max_fires >= 0 && state.fires >= spec.max_fires) return false;
    if (spec.every_nth > 0 && call % spec.every_nth == spec.every_nth - 1) {
      fired = true;
    }
    if (!fired && ProbabilityFires(seed_, HashSite(site), call,
                                   spec.probability)) {
      fired = true;
    }
    if (fired) ++state.fires;
  }
  if (fired) MetricsRegistry::Global().counter("fault.injected").Increment();
  return fired;
}

std::vector<std::string> FaultInjector::RegisteredSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, state] : sites_) names.push_back(name);
  return names;
}

int64_t FaultInjector::calls(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.calls;
}

int64_t FaultInjector::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

}  // namespace util
}  // namespace contratopic
