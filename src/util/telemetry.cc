#include "util/telemetry.h"

#include <sys/resource.h>

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace contratopic {
namespace util {

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendJsonDouble(double value, std::string* out) {
  if (!std::isfinite(value)) {
    *out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

void JsonObject::Key(std::string_view key) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  AppendJsonEscaped(key, &body_);
  body_ += "\":";
}

JsonObject& JsonObject::Put(std::string_view key, std::string_view value) {
  Key(key);
  body_ += '"';
  AppendJsonEscaped(value, &body_);
  body_ += '"';
  return *this;
}

JsonObject& JsonObject::Put(std::string_view key, const char* value) {
  return Put(key, std::string_view(value));
}

JsonObject& JsonObject::Put(std::string_view key, double value) {
  Key(key);
  AppendJsonDouble(value, &body_);
  return *this;
}

JsonObject& JsonObject::Put(std::string_view key, int64_t value) {
  Key(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::Put(std::string_view key, int value) {
  return Put(key, static_cast<int64_t>(value));
}

JsonObject& JsonObject::Put(std::string_view key, bool value) {
  Key(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::PutRaw(std::string_view key, std::string_view json) {
  Key(key);
  body_ += json;
  return *this;
}

std::string JsonObject::Build() const { return "{" + body_ + "}"; }

int64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;
}

namespace {

std::string RenderPairs(
    const std::vector<std::pair<std::string, double>>& pairs) {
  JsonObject obj;
  for (const auto& [key, value] : pairs) obj.Put(key, value);
  return obj.Build();
}

std::string RenderCounters(const std::map<std::string, int64_t>& counters) {
  JsonObject obj;
  for (const auto& [name, value] : counters) obj.Put(name, value);
  return obj.Build();
}

std::string RenderGauges(const std::map<std::string, double>& gauges) {
  JsonObject obj;
  for (const auto& [name, value] : gauges) obj.Put(name, value);
  return obj.Build();
}

std::string RenderHistogram(const HistogramSnapshot& hist,
                            bool deterministic) {
  JsonObject obj;
  obj.Put("count", hist.count);
  obj.Put("sum", hist.sum);
  if (hist.count > 0) {
    obj.Put("min", hist.min);
    obj.Put("max", hist.max);
    obj.Put("p50", hist.Percentile(0.5));
    obj.Put("p90", hist.Percentile(0.9));
    obj.Put("p99", hist.Percentile(0.99));
  }
  std::string buckets = "[";
  for (size_t i = 0; i < hist.counts.size(); ++i) {
    if (i > 0) buckets += ',';
    buckets += std::to_string(hist.counts[i]);
  }
  buckets += ']';
  obj.PutRaw("buckets", buckets);
  (void)deterministic;  // Histogram contents are deterministic by design.
  return obj.Build();
}

std::string RenderSpans(const TraceAggregate& aggregate, bool deterministic) {
  JsonObject obj;
  for (const auto& [path, stats] : aggregate.spans) {
    JsonObject span;
    span.Put("count", stats.count);
    if (!deterministic) {
      span.Put("total_seconds", stats.total_seconds);
      span.Put("min_seconds", stats.min_seconds);
      span.Put("max_seconds", stats.max_seconds);
    }
    obj.PutRaw(path, span.Build());
  }
  return obj.Build();
}

}  // namespace

RunTelemetry::RunTelemetry(Options options) : options_(std::move(options)) {
  if (!options_.path.empty()) {
    out_.open(options_.path, std::ios::out | std::ios::trunc);
    if (!out_) {
      LOG(WARNING) << "RunTelemetry: cannot open " << options_.path
                   << "; records stay in memory only";
    }
  }
}

RunTelemetry::~RunTelemetry() {
  if (out_.is_open()) {
    const Status status = Flush();
    if (!status.ok()) {
      LOG(WARNING) << "RunTelemetry: flush failed: " << status;
    }
  }
}

void RunTelemetry::Emit(std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_.is_open()) out_ << line << '\n';
  lines_.push_back(std::move(line));
}

void RunTelemetry::RecordRunStart(
    std::string_view run_name,
    const std::vector<std::pair<std::string, std::string>>& config) {
  JsonObject record;
  record.Put("type", "run_start");
  record.Put("run", run_name);
  JsonObject config_obj;
  for (const auto& [key, value] : config) config_obj.Put(key, value);
  record.PutRaw("config", config_obj.Build());
  Emit(record.Build());
}

void RunTelemetry::RecordEpoch(const EpochTelemetry& epoch) {
  JsonObject record;
  record.Put("type", "epoch");
  record.Put("epoch", epoch.epoch);
  record.Put("total_epochs", epoch.total_epochs);
  record.Put("loss", epoch.loss);
  for (const auto& [name, value] : epoch.loss_components) {
    record.Put(name, value);
  }
  for (const auto& [name, value] : epoch.metrics) {
    record.Put(name, value);
  }
  if (!options_.deterministic) {
    record.Put("seconds", epoch.seconds);
    record.PutRaw("stage_seconds", RenderPairs(epoch.stage_seconds));
  }
  Emit(record.Build());
}

void RunTelemetry::RecordServeStats(const ServeTelemetry& stats) {
  JsonObject record;
  record.Put("type", "serve_stats");
  record.Put("requests", stats.requests);
  record.Put("batches", stats.batches);
  record.Put("cache_hits", stats.cache_hits);
  record.Put("shed", stats.shed);
  record.Put("invalid", stats.invalid);
  record.Put("max_batch_size", stats.max_batch_size);
  record.Put("max_queue_depth", stats.max_queue_depth);
  if (!options_.deterministic) {
    JsonObject latency;
    latency.Put("p50", stats.latency_p50_ms);
    latency.Put("p95", stats.latency_p95_ms);
    latency.Put("p99", stats.latency_p99_ms);
    record.PutRaw("latency_ms", latency.Build());
  }
  Emit(record.Build());
}

void RunTelemetry::RecordStage(std::string_view name, double seconds) {
  RecordStage(name, seconds, {});
}

void RunTelemetry::RecordStage(
    std::string_view name, double seconds,
    const std::vector<std::pair<std::string, double>>& values) {
  JsonObject record;
  record.Put("type", "stage");
  record.Put("name", name);
  if (!options_.deterministic) record.Put("seconds", seconds);
  for (const auto& [key, value] : values) record.Put(key, value);
  Emit(record.Build());
}

void RunTelemetry::RecordManifest(
    const std::vector<std::pair<std::string, double>>& summary) {
  const MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
  const TraceAggregate spans = Tracer::Global().Snapshot();

  JsonObject record;
  record.Put("type", "manifest");
  record.PutRaw("summary", RenderPairs(summary));
  record.PutRaw("counters", RenderCounters(metrics.counters));
  if (!options_.deterministic) {
    // Gauges may hold environmental values (bytes are fine, but wall-time
    // gauges would break invariance); the deterministic stream keeps only
    // instruments that are invariant by construction.
    record.PutRaw("gauges", RenderGauges(metrics.gauges));
  }
  JsonObject hists;
  for (const auto& [name, hist] : metrics.histograms) {
    hists.PutRaw(name, RenderHistogram(hist, options_.deterministic));
  }
  record.PutRaw("histograms", hists.Build());
  record.PutRaw("spans", RenderSpans(spans, options_.deterministic));
  if (!options_.deterministic) {
    record.Put("peak_rss_bytes", PeakRssBytes());
  }
  Emit(record.Build());
  manifest_written_ = true;
}

Status RunTelemetry::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.path.empty()) return Status::OK();  // in-memory sink
  if (!out_.is_open()) {
    return Status::IOError("telemetry file never opened: " + options_.path);
  }
  out_.flush();
  if (!out_) {
    return Status::IOError("telemetry write failed: " + options_.path);
  }
  return Status::OK();
}

}  // namespace util
}  // namespace contratopic
