#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace contratopic {
namespace util {

std::vector<std::string> Split(std::string_view text,
                               std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || delims.find(text[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

void ToLowerInPlace(std::string& s) {
  for (auto& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  ToLowerInPlace(out);
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

}  // namespace util
}  // namespace contratopic
