#include "nn/serialization.h"

#include <unordered_map>

#include "util/serialize.h"
#include "util/string_util.h"

namespace contratopic {
namespace nn {

util::Status SaveParameters(const std::vector<Parameter>& params,
                            const std::string& path) {
  util::BinaryWriter writer(path);
  if (!writer.ok()) return util::Status::IOError("cannot open " + path);
  writer.WriteU64(params.size());
  for (const auto& p : params) {
    const tensor::Tensor& value = p.var.value();
    writer.WriteString(p.name);
    writer.WriteU64(static_cast<uint64_t>(value.rows()));
    writer.WriteU64(static_cast<uint64_t>(value.cols()));
    writer.WriteFloatVector(
        std::vector<float>(value.data(), value.data() + value.numel()));
  }
  return writer.Close();
}

util::Status LoadParameters(const std::vector<Parameter>& params,
                            const std::string& path, bool allow_partial) {
  util::BinaryReader reader(path);
  if (!reader.ok()) return util::Status::IOError("cannot open " + path);

  std::unordered_map<std::string, const Parameter*> by_name;
  for (const auto& p : params) by_name[p.name] = &p;

  const uint64_t count = reader.ReadU64();
  size_t restored = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const std::string name = reader.ReadString();
    const int64_t rows = static_cast<int64_t>(reader.ReadU64());
    const int64_t cols = static_cast<int64_t>(reader.ReadU64());
    std::vector<float> values = reader.ReadFloatVector();
    if (!reader.status().ok()) return reader.status();
    if (static_cast<int64_t>(values.size()) != rows * cols) {
      return util::Status::Internal("corrupt checkpoint entry: " + name);
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return util::Status::NotFound("parameter not in model: " + name);
    }
    tensor::Tensor& target = it->second->var.node()->value;
    if (target.rows() != rows || target.cols() != cols) {
      return util::Status::FailedPrecondition(util::StrFormat(
          "shape mismatch for %s: checkpoint [%lld x %lld] vs model %s",
          name.c_str(), static_cast<long long>(rows),
          static_cast<long long>(cols), target.ShapeString().c_str()));
    }
    target = tensor::Tensor(rows, cols, std::move(values));
    ++restored;
  }
  if (!allow_partial && restored != params.size()) {
    return util::Status::FailedPrecondition(util::StrFormat(
        "checkpoint restored %zu of %zu parameters", restored, params.size()));
  }
  return util::Status::OK();
}

}  // namespace nn
}  // namespace contratopic
