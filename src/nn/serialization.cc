#include "nn/serialization.h"

#include <unordered_map>
#include <unordered_set>

#include "util/serialize.h"
#include "util/string_util.h"

namespace contratopic {
namespace nn {

util::Status SaveParameters(const std::vector<Parameter>& params,
                            const std::string& path) {
  util::BinaryWriter writer(path);
  if (!writer.ok()) return util::Status::IOError("cannot open " + path);
  writer.WriteU64(params.size());
  for (const auto& p : params) {
    const tensor::Tensor& value = p.var.value();
    writer.WriteString(p.name);
    writer.WriteU64(static_cast<uint64_t>(value.rows()));
    writer.WriteU64(static_cast<uint64_t>(value.cols()));
    writer.WriteFloatVector(
        std::vector<float>(value.data(), value.data() + value.numel()));
  }
  return writer.Close();
}

util::Status LoadParameters(const std::vector<Parameter>& params,
                            const std::string& path, bool allow_partial) {
  util::BinaryReader reader(path);
  if (!reader.ok()) return util::Status::IOError("cannot open " + path);

  std::unordered_map<std::string, const Parameter*> by_name;
  for (const auto& p : params) by_name[p.name] = &p;

  const uint64_t count = reader.ReadU64();
  if (!reader.status().ok()) {
    return util::Status::IOError(path + ": truncated before parameter count");
  }
  if (count > by_name.size()) {
    // A stale file from a bigger model (or garbage where the count should
    // be) would otherwise spin through a bogus loop; fail up front with
    // the numbers so the mismatch is obvious.
    return util::Status::FailedPrecondition(util::StrFormat(
        "%s stores %llu parameters but the model has %zu", path.c_str(),
        static_cast<unsigned long long>(count), by_name.size()));
  }
  std::unordered_set<std::string> restored;
  for (uint64_t i = 0; i < count; ++i) {
    const std::string name = reader.ReadString();
    const int64_t rows = static_cast<int64_t>(reader.ReadU64());
    const int64_t cols = static_cast<int64_t>(reader.ReadU64());
    std::vector<float> values = reader.ReadFloatVector();
    if (!reader.status().ok()) {
      return util::Status::IOError(util::StrFormat(
          "%s: truncated or corrupt at parameter %llu of %llu", path.c_str(),
          static_cast<unsigned long long>(i),
          static_cast<unsigned long long>(count)));
    }
    if (rows < 0 || cols < 0 ||
        static_cast<int64_t>(values.size()) != rows * cols) {
      return util::Status::DataLoss(util::StrFormat(
          "%s: entry %s declares [%lld x %lld] but stores %zu values",
          path.c_str(), name.c_str(), static_cast<long long>(rows),
          static_cast<long long>(cols), values.size()));
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return util::Status::NotFound(
          util::StrFormat("%s: stored parameter %s does not exist in the "
                          "model (stale file or renamed layer?)",
                          path.c_str(), name.c_str()));
    }
    if (!restored.insert(name).second) {
      return util::Status::DataLoss(
          util::StrFormat("%s: duplicate entry for parameter %s",
                          path.c_str(), name.c_str()));
    }
    tensor::Tensor& target = it->second->var.node()->value;
    if (target.rows() != rows || target.cols() != cols) {
      return util::Status::FailedPrecondition(util::StrFormat(
          "shape mismatch for %s: checkpoint [%lld x %lld] vs model %s",
          name.c_str(), static_cast<long long>(rows),
          static_cast<long long>(cols), target.ShapeString().c_str()));
    }
    target = tensor::Tensor(rows, cols, std::move(values));
  }
  if (!allow_partial && restored.size() != params.size()) {
    std::string missing;
    for (const auto& p : params) {
      if (restored.count(p.name)) continue;
      if (!missing.empty()) missing += ", ";
      missing += p.name;
    }
    return util::Status::FailedPrecondition(util::StrFormat(
        "%s restored %zu of %zu parameters; missing: %s", path.c_str(),
        restored.size(), params.size(), missing.c_str()));
  }
  return util::Status::OK();
}

}  // namespace nn
}  // namespace contratopic
