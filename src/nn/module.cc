#include "nn/module.h"

#include <memory>
#include <mutex>

#include "util/string_util.h"

namespace contratopic {
namespace nn {

using autodiff::ApplyMask;
using autodiff::BroadcastRowAdd;
using autodiff::BroadcastRowMul;
using autodiff::BroadcastRowSub;
using autodiff::ColMean;
using autodiff::MatMul;
using autodiff::Rsqrt;
using autodiff::Square;

// Packed W^T (out x in rows, the layout the quantized GEMMs read) in each
// reduced precision, keyed on the weight node's version so any
// mutable_value() write (optimizer step, checkpoint restore) invalidates
// it. Guarded: eval-mode forwards run on serving pool workers.
struct LinearQuantCache {
  std::mutex mu;
  uint64_t bf16_version = ~0ull;
  tensor::Bf16Matrix bf16;
  uint64_t int8_version = ~0ull;
  tensor::Int8Matrix int8;
};

namespace {

// W is in x out; the serving GEMMs want W^T rows (one output feature's
// weights, contiguous).
Tensor TransposeWeight(const Tensor& w) {
  Tensor wt(w.cols(), w.rows());
  for (int64_t i = 0; i < w.rows(); ++i) {
    for (int64_t o = 0; o < w.cols(); ++o) {
      wt.data()[o * w.rows() + i] = w.data()[i * w.cols() + o];
    }
  }
  return wt;
}

}  // namespace

Linear::Linear(int64_t in_features, int64_t out_features, util::Rng& rng,
               std::string name, bool with_bias)
    : name_(std::move(name)),
      weight_(Var::Leaf(Tensor::GlorotUniform(in_features, out_features, rng),
                        /*requires_grad=*/true)),
      quant_cache_(std::make_shared<LinearQuantCache>()) {
  if (with_bias) {
    bias_ = Var::Leaf(Tensor::Zeros(1, out_features), /*requires_grad=*/true);
  }
}

Var Linear::Forward(const Var& x) {
  if (!training_) {
    const tensor::ServePrecision precision = tensor::ActiveServePrecision();
    if (precision != tensor::ServePrecision::kFp32 &&
        tensor::QuantizableShape(weight_.rows(), weight_.cols())) {
      return QuantizedForward(x, precision);
    }
  }
  Var out = MatMul(x, weight_);
  if (bias_.defined()) out = BroadcastRowAdd(out, bias_);
  return out;
}

Var Linear::QuantizedForward(const Var& x,
                             tensor::ServePrecision precision) {
  // Forcing the values keeps both execution engines on the same path: the
  // quantized GEMM runs outside the autodiff graph and the result re-
  // enters it as a constant (no eval-mode caller differentiates through
  // a frozen layer).
  const Tensor& xv = x.value();
  const float* bias =
      bias_.defined() ? bias_.value().data() : nullptr;
  LinearQuantCache& cache = *quant_cache_;
  std::lock_guard<std::mutex> lock(cache.mu);
  const uint64_t version = weight_.node()->version;
  if (precision == tensor::ServePrecision::kBf16) {
    if (cache.bf16_version != version) {
      cache.bf16 = tensor::Bf16FromTensor(TransposeWeight(weight_.value()));
      cache.bf16_version = version;
    }
    return Var::Constant(tensor::MatMulBf16T(xv, cache.bf16, bias));
  }
  if (cache.int8_version != version) {
    cache.int8 = tensor::Int8FromTensor(TransposeWeight(weight_.value()));
    cache.int8_version = version;
  }
  return Var::Constant(tensor::MatMulInt8T(xv, cache.int8, bias));
}

std::vector<Parameter> Linear::Parameters() {
  std::vector<Parameter> params = {{name_ + ".weight", weight_}};
  if (bias_.defined()) params.push_back({name_ + ".bias", bias_});
  return params;
}

BatchNorm1d::BatchNorm1d(int64_t features, std::string name, float momentum,
                         float eps)
    : name_(std::move(name)),
      momentum_(momentum),
      eps_(eps),
      gamma_(Var::Leaf(Tensor::Ones(1, features), /*requires_grad=*/true)),
      beta_(Var::Leaf(Tensor::Zeros(1, features), /*requires_grad=*/true)),
      running_mean_(Tensor::Zeros(1, features)),
      running_var_(Tensor::Ones(1, features)) {}

Var BatchNorm1d::Forward(const Var& x) {
  Var mean;
  Var var;
  if (training_ && x.rows() > 1) {
    mean = ColMean(x);
    var = ColMean(Square(BroadcastRowSub(x, mean)));
    // Update running statistics outside the graph.
    running_mean_.Scale(1.0f - momentum_);
    running_mean_.AddScaledInPlace(mean.value(), momentum_);
    running_var_.Scale(1.0f - momentum_);
    running_var_.AddScaledInPlace(var.value(), momentum_);
  } else {
    mean = Var::Constant(running_mean_);
    var = Var::Constant(running_var_);
  }
  Var normalized =
      BroadcastRowMul(BroadcastRowSub(x, mean), Rsqrt(var, eps_));
  return BroadcastRowAdd(BroadcastRowMul(normalized, gamma_), beta_);
}

std::vector<Parameter> BatchNorm1d::Parameters() {
  return {{name_ + ".gamma", gamma_}, {name_ + ".beta", beta_}};
}

std::vector<NamedTensor> BatchNorm1d::Buffers() {
  return {{name_ + ".running_mean", &running_mean_},
          {name_ + ".running_var", &running_var_}};
}

Dropout::Dropout(float rate, util::Rng& rng) : rate_(rate), rng_(&rng) {
  CHECK_GE(rate, 0.0f);
  CHECK_LT(rate, 1.0f);
}

Var Dropout::Forward(const Var& x) {
  if (!training_ || rate_ <= 0.0f) return x;
  const float keep = 1.0f - rate_;
  Tensor mask(x.rows(), x.cols());
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.data()[i] = rng_->Uniform() < keep ? 1.0f / keep : 0.0f;
  }
  return ApplyMask(x, mask);
}

Var Activate(const Var& x, Activation activation) {
  switch (activation) {
    case Activation::kRelu:
      return autodiff::Relu(x);
    case Activation::kSelu:
      return autodiff::Selu(x);
    case Activation::kSoftplus:
      return autodiff::Softplus(x);
    case Activation::kTanh:
      return autodiff::Tanh(x);
    case Activation::kSigmoid:
      return autodiff::Sigmoid(x);
    case Activation::kNone:
      return x;
  }
  return x;
}

Activation ActivationFromName(const std::string& name) {
  if (name == "relu") return Activation::kRelu;
  if (name == "selu") return Activation::kSelu;
  if (name == "softplus") return Activation::kSoftplus;
  if (name == "tanh") return Activation::kTanh;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "none") return Activation::kNone;
  LOG(FATAL) << "unknown activation: " << name;
  return Activation::kNone;
}

Mlp::Mlp(const Config& config, util::Rng& rng, std::string name)
    : config_(config) {
  CHECK_GE(config.layer_sizes.size(), 2u);
  for (size_t i = 0; i + 1 < config.layer_sizes.size(); ++i) {
    layers_.emplace_back(config.layer_sizes[i], config.layer_sizes[i + 1], rng,
                         util::StrFormat("%s.l%zu", name.c_str(), i));
  }
  if (config.dropout_rate > 0.0f) {
    dropout_ = std::make_unique<Dropout>(config.dropout_rate, rng);
  }
  if (config.batch_norm) {
    batch_norm_ = std::make_unique<BatchNorm1d>(config.layer_sizes.back(),
                                                name + ".bn");
  }
}

Var Mlp::Forward(const Var& x) {
  Var h = x;
  for (auto& layer : layers_) {
    h = Activate(layer.Forward(h), config_.activation);
  }
  if (dropout_ != nullptr) h = dropout_->Forward(h);
  if (batch_norm_ != nullptr) h = batch_norm_->Forward(h);
  return h;
}

std::vector<Parameter> Mlp::Parameters() {
  std::vector<Parameter> params;
  for (auto& layer : layers_) {
    for (auto& p : layer.Parameters()) params.push_back(p);
  }
  if (batch_norm_ != nullptr) {
    for (auto& p : batch_norm_->Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<NamedTensor> Mlp::Buffers() {
  if (batch_norm_ == nullptr) return {};
  return batch_norm_->Buffers();
}

void Mlp::SetTraining(bool training) {
  Module::SetTraining(training);
  for (auto& layer : layers_) layer.SetTraining(training);
  if (dropout_ != nullptr) dropout_->SetTraining(training);
  if (batch_norm_ != nullptr) batch_norm_->SetTraining(training);
}

}  // namespace nn
}  // namespace contratopic
