#ifndef CONTRATOPIC_NN_SERIALIZATION_H_
#define CONTRATOPIC_NN_SERIALIZATION_H_

// Checkpointing for module parameters: values are stored by parameter
// name, so a freshly constructed model with the same architecture can be
// restored without retraining.

#include <string>
#include <vector>

#include "nn/module.h"
#include "util/status.h"

namespace contratopic {
namespace nn {

// Writes every parameter (name, shape, values) to `path`.
util::Status SaveParameters(const std::vector<Parameter>& params,
                            const std::string& path);

// Restores parameter values by name. Fails if a stored name is missing
// from `params` or any shape mismatches; extra live parameters are left
// untouched only when `allow_partial` is set.
util::Status LoadParameters(const std::vector<Parameter>& params,
                            const std::string& path,
                            bool allow_partial = false);

}  // namespace nn
}  // namespace contratopic

#endif  // CONTRATOPIC_NN_SERIALIZATION_H_
