#ifndef CONTRATOPIC_NN_MODULE_H_
#define CONTRATOPIC_NN_MODULE_H_

// Minimal neural-network layer abstractions over the autodiff engine.
// Parameters are persistent leaf Vars; each forward pass builds a fresh
// graph that references them, so gradients land on the same nodes the
// optimizer sees.

#include <memory>
#include <string>
#include <vector>

#include "tensor/autodiff.h"
#include "tensor/quant.h"
#include "util/rng.h"

namespace contratopic {
namespace nn {

using autodiff::Var;
using tensor::Tensor;

// A named trainable parameter (name used for debugging/serialization).
struct Parameter {
  std::string name;
  Var var;
};

// A named reference to a persistent non-trainable tensor (e.g. batch-norm
// running statistics): state that evaluation-mode forward passes depend
// on but the optimizer never touches. Checkpoints must capture buffers
// alongside parameter values or a reloaded model infers differently
// (serve/checkpoint.h). The pointee is owned by the module and stays
// valid for the module's lifetime.
struct NamedTensor {
  std::string name;
  Tensor* tensor;
};

class Module {
 public:
  virtual ~Module() = default;

  // All trainable parameters of this module (recursively).
  virtual std::vector<Parameter> Parameters() = 0;

  // All persistent non-trainable tensors of this module (recursively).
  virtual std::vector<NamedTensor> Buffers() { return {}; }

  // Training vs evaluation mode (affects dropout / batch norm).
  virtual void SetTraining(bool training) { training_ = training; }
  bool training() const { return training_; }

  void ZeroGrad() {
    for (auto& p : Parameters()) p.var.ZeroGrad();
  }

 protected:
  bool training_ = true;
};

// Lazily built packed reduced-precision weights for a Linear layer's
// serving path (module.cc owns the definition). Shared across copies of
// the layer -- copies share the same weight node, so the cache, keyed on
// the node's version, stays valid for all of them.
struct LinearQuantCache;

// Fully connected layer: y = x W + b.
//
// In evaluation mode, when the active serving precision (tensor/quant.h)
// is bf16 or int8 and the weight passes the quantization policy, Forward
// computes y against a cached packed W^T in that precision and returns a
// constant: serving trades bits for throughput under the documented
// tolerance contract (DESIGN.md §15). Training-mode forwards -- and any
// weight too small to be worth quantizing -- always take the fp32
// bitwise path.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, util::Rng& rng,
         std::string name = "linear", bool with_bias = true);

  Var Forward(const Var& x);

  std::vector<Parameter> Parameters() override;

  const Var& weight() const { return weight_; }
  const Var& bias() const { return bias_; }

 private:
  Var QuantizedForward(const Var& x, tensor::ServePrecision precision);

  std::string name_;
  Var weight_;  // in x out
  Var bias_;    // 1 x out (undefined if with_bias == false)
  std::shared_ptr<LinearQuantCache> quant_cache_;
};

// 1-D batch normalization over feature columns, with running statistics
// for evaluation mode (matches the paper's encoder: MLP -> dropout -> BN).
class BatchNorm1d : public Module {
 public:
  explicit BatchNorm1d(int64_t features, std::string name = "bn",
                       float momentum = 0.1f, float eps = 1e-5f);

  Var Forward(const Var& x);

  std::vector<Parameter> Parameters() override;
  std::vector<NamedTensor> Buffers() override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  std::string name_;
  float momentum_;
  float eps_;
  Var gamma_;  // 1 x features
  Var beta_;   // 1 x features
  Tensor running_mean_;
  Tensor running_var_;
};

// Inverted dropout: scales kept activations by 1/(1-rate) during training.
class Dropout : public Module {
 public:
  Dropout(float rate, util::Rng& rng);

  Var Forward(const Var& x);

  std::vector<Parameter> Parameters() override { return {}; }

 private:
  float rate_;
  util::Rng* rng_;
};

enum class Activation { kRelu, kSelu, kSoftplus, kTanh, kSigmoid, kNone };

// Applies the activation as an autodiff op.
Var Activate(const Var& x, Activation activation);

// Parses "relu" / "selu" / ... (CHECK-fails on unknown names).
Activation ActivationFromName(const std::string& name);

// Multi-layer perceptron: [Linear -> activation] x N, with optional
// trailing dropout + batch norm (the paper's encoder configuration).
class Mlp : public Module {
 public:
  struct Config {
    std::vector<int64_t> layer_sizes;  // e.g. {V, 256, 256}
    Activation activation = Activation::kSelu;
    float dropout_rate = 0.0f;   // applied after the last activation
    bool batch_norm = false;     // applied after dropout
  };

  Mlp(const Config& config, util::Rng& rng, std::string name = "mlp");

  Var Forward(const Var& x);

  std::vector<Parameter> Parameters() override;
  std::vector<NamedTensor> Buffers() override;
  void SetTraining(bool training) override;

 private:
  Config config_;
  std::vector<Linear> layers_;
  std::unique_ptr<Dropout> dropout_;
  std::unique_ptr<BatchNorm1d> batch_norm_;
};

}  // namespace nn
}  // namespace contratopic

#endif  // CONTRATOPIC_NN_MODULE_H_
