#ifndef CONTRATOPIC_NN_OPTIMIZER_H_
#define CONTRATOPIC_NN_OPTIMIZER_H_

// First-order optimizers over persistent parameter Vars. State (Adam
// moments) is keyed by node identity, so parameters may be re-collected
// from modules on every step.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace contratopic {
namespace nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update using the gradients currently accumulated on the
  // parameters, then leaves gradients untouched (call ZeroGrad after).
  virtual void Step(const std::vector<Parameter>& params) = 0;

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }

 protected:
  explicit Optimizer(float learning_rate) : learning_rate_(learning_rate) {}
  float learning_rate_;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(float learning_rate, float momentum = 0.0f);

  void Step(const std::vector<Parameter>& params) override;

 private:
  float momentum_;
  std::unordered_map<const autodiff::Node*, Tensor> velocity_;
};

// Serializable snapshot of an Adam instance: the step count plus the
// first/second moments of every parameter it has stepped, keyed by
// parameter name. Part of the training checkpoint (DESIGN.md §11) — a
// resumed run restores this so its remaining updates are bitwise-
// identical to an uninterrupted run's.
struct AdamState {
  int64_t t = 0;
  std::vector<std::pair<std::string, Tensor>> m;
  std::vector<std::pair<std::string, Tensor>> v;
};

// Adam (Kingma & Ba) with bias correction; the paper trains every neural
// model with Adam at lr 5e-4.
class Adam : public Optimizer {
 public:
  explicit Adam(float learning_rate, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f, float weight_decay = 0.0f);

  void Step(const std::vector<Parameter>& params) override;

  // Snapshots the moments of `params` (in their given order; parameters
  // never stepped are saved as zero moments, matching lazy init).
  AdamState ExportState(const std::vector<Parameter>& params) const;
  // Restores a snapshot onto `params`, matching by parameter name.
  // Fails (Status) on a name missing from `params` or a shape mismatch.
  util::Status ImportState(const AdamState& state,
                           const std::vector<Parameter>& params);

 private:
  struct State {
    Tensor m;
    Tensor v;
  };
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::unordered_map<const autodiff::Node*, State> state_;
};

// Rescales gradients in place so their global L2 norm is at most max_norm.
// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<Parameter>& params, float max_norm);

}  // namespace nn
}  // namespace contratopic

#endif  // CONTRATOPIC_NN_OPTIMIZER_H_
