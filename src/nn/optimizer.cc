#include "nn/optimizer.h"

#include <cmath>

#include "tensor/kernels.h"

namespace contratopic {
namespace nn {

Sgd::Sgd(float learning_rate, float momentum)
    : Optimizer(learning_rate), momentum_(momentum) {}

void Sgd::Step(const std::vector<Parameter>& params) {
  for (const auto& p : params) {
    autodiff::Node* node = p.var.node().get();
    if (node->grad.empty()) continue;
    if (momentum_ > 0.0f) {
      auto [it, inserted] = velocity_.try_emplace(
          node, Tensor::Zeros(node->value.rows(), node->value.cols()));
      Tensor& vel = it->second;
      vel.Scale(momentum_);
      vel.AddInPlace(node->grad);
      node->value.AddScaledInPlace(vel, -learning_rate_);
    } else {
      node->value.AddScaledInPlace(node->grad, -learning_rate_);
    }
  }
}

Adam::Adam(float learning_rate, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {}

void Adam::Step(const std::vector<Parameter>& params) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (const auto& p : params) {
    autodiff::Node* node = p.var.node().get();
    if (node->grad.empty()) continue;
    auto [it, inserted] = state_.try_emplace(node);
    State& s = it->second;
    if (inserted) {
      s.m = Tensor::Zeros(node->value.rows(), node->value.cols());
      s.v = Tensor::Zeros(node->value.rows(), node->value.cols());
    }
    float* value = node->value.data();
    const float* grad = node->grad.data();
    float* m = s.m.data();
    float* v = s.v.data();
    const int64_t n = node->value.numel();
    // Each element's update chain is independent, so parallel chunks give
    // identical results at any thread count.
    tensor::ParallelElems(n, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        float g = grad[i];
        if (weight_decay_ > 0.0f) g += weight_decay_ * value[i];
        m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
        v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
        const float m_hat = m[i] / bc1;
        const float v_hat = v[i] / bc2;
        value[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + eps_);
      }
    });
  }
}

float ClipGradNorm(const std::vector<Parameter>& params, float max_norm) {
  double total_sq = 0.0;
  for (const auto& p : params) {
    const Tensor& g = p.var.node()->grad;
    for (int64_t i = 0; i < g.numel(); ++i) {
      total_sq += static_cast<double>(g.data()[i]) * g.data()[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const auto& p : params) {
      Tensor& g = p.var.node()->grad;
      if (!g.empty()) g.Scale(scale);
    }
  }
  return norm;
}

}  // namespace nn
}  // namespace contratopic
