#include "nn/optimizer.h"

#include <cmath>

#include "tensor/kernels.h"

namespace contratopic {
namespace nn {

Sgd::Sgd(float learning_rate, float momentum)
    : Optimizer(learning_rate), momentum_(momentum) {}

void Sgd::Step(const std::vector<Parameter>& params) {
  for (const auto& p : params) {
    autodiff::Node* node = p.var.node().get();
    if (node->grad.empty()) continue;
    if (momentum_ > 0.0f) {
      auto [it, inserted] = velocity_.try_emplace(
          node, Tensor::Zeros(node->value.rows(), node->value.cols()));
      Tensor& vel = it->second;
      vel.Scale(momentum_);
      vel.AddInPlace(node->grad);
      node->value.AddScaledInPlace(vel, -learning_rate_);
    } else {
      node->value.AddScaledInPlace(node->grad, -learning_rate_);
    }
  }
}

Adam::Adam(float learning_rate, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {}

void Adam::Step(const std::vector<Parameter>& params) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (const auto& p : params) {
    autodiff::Node* node = p.var.node().get();
    if (node->grad.empty()) continue;
    auto [it, inserted] = state_.try_emplace(node);
    State& s = it->second;
    if (inserted) {
      s.m = Tensor::Zeros(node->value.rows(), node->value.cols());
      s.v = Tensor::Zeros(node->value.rows(), node->value.cols());
    }
    float* value = node->value.data();
    const float* grad = node->grad.data();
    float* m = s.m.data();
    float* v = s.v.data();
    const int64_t n = node->value.numel();
    // Each element's update chain is independent, so parallel chunks give
    // identical results at any thread count.
    tensor::ParallelElems(n, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        float g = grad[i];
        if (weight_decay_ > 0.0f) g += weight_decay_ * value[i];
        m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
        v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
        const float m_hat = m[i] / bc1;
        const float v_hat = v[i] / bc2;
        value[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + eps_);
      }
    });
  }
}

AdamState Adam::ExportState(const std::vector<Parameter>& params) const {
  AdamState out;
  out.t = t_;
  for (const auto& p : params) {
    const autodiff::Node* node = p.var.node().get();
    auto it = state_.find(node);
    if (it != state_.end()) {
      out.m.emplace_back(p.name, it->second.m);
      out.v.emplace_back(p.name, it->second.v);
    } else {
      // Never stepped: lazy init would have produced zeros.
      out.m.emplace_back(
          p.name, Tensor::Zeros(node->value.rows(), node->value.cols()));
      out.v.emplace_back(
          p.name, Tensor::Zeros(node->value.rows(), node->value.cols()));
    }
  }
  return out;
}

util::Status Adam::ImportState(const AdamState& state,
                               const std::vector<Parameter>& params) {
  if (state.m.size() != state.v.size()) {
    return util::Status::InvalidArgument(
        "Adam state has mismatched moment counts");
  }
  std::unordered_map<std::string, const autodiff::Node*> by_name;
  for (const auto& p : params) by_name[p.name] = p.var.node().get();
  std::unordered_map<const autodiff::Node*, State> restored;
  for (size_t i = 0; i < state.m.size(); ++i) {
    const auto& [name, m] = state.m[i];
    const auto& [v_name, v] = state.v[i];
    if (name != v_name) {
      return util::Status::InvalidArgument(
          "Adam state moment names disagree: '" + name + "' vs '" + v_name +
          "'");
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return util::Status::FailedPrecondition(
          "Adam state names unknown parameter '" + name + "'");
    }
    const autodiff::Node* node = it->second;
    if (m.rows() != node->value.rows() || m.cols() != node->value.cols() ||
        v.rows() != node->value.rows() || v.cols() != node->value.cols()) {
      return util::Status::FailedPrecondition(
          "Adam state for '" + name + "' has the wrong shape");
    }
    restored[node] = State{m, v};
  }
  t_ = state.t;
  state_ = std::move(restored);
  return util::Status::OK();
}

float ClipGradNorm(const std::vector<Parameter>& params, float max_norm) {
  double total_sq = 0.0;
  for (const auto& p : params) {
    const Tensor& g = p.var.node()->grad;
    for (int64_t i = 0; i < g.numel(); ++i) {
      total_sq += static_cast<double>(g.data()[i]) * g.data()[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const auto& p : params) {
      Tensor& g = p.var.node()->grad;
      if (!g.empty()) g.Scale(scale);
    }
  }
  return norm;
}

}  // namespace nn
}  // namespace contratopic
