#ifndef CONTRATOPIC_EVAL_METRICS_H_
#define CONTRATOPIC_EVAL_METRICS_H_

// Topic interpretability metrics (paper §V.B):
//  * Topic coherence: average NPMI over the top K_TC = 10 words per topic.
//  * Topic diversity: fraction of unique words among the top K_TD = 25
//    words of the selected topics.
// Following NSTM, both are reported over the best p% of topics (by their
// own NPMI), for p = 10%..100% -- the x axis of the paper's Figure 2.

#include <vector>

#include "eval/npmi.h"
#include "tensor/tensor.h"

namespace contratopic {
namespace eval {

inline constexpr int kCoherenceTopWords = 10;  // K_TC
inline constexpr int kDiversityTopWords = 25;  // K_TD

// Per-topic coherence: mean pairwise NPMI of the topic's top words.
std::vector<double> PerTopicCoherence(const tensor::Tensor& beta,
                                      const NpmiMatrix& npmi,
                                      int top_words = kCoherenceTopWords);

// Topics sorted by descending coherence; returns topic indices.
std::vector<int> TopicsByCoherence(const std::vector<double>& coherence);

// Mean coherence of the best `proportion` of topics (0 < proportion <= 1).
double CoherenceAtProportion(const std::vector<double>& coherence,
                             double proportion);

// Diversity of the best `proportion` of topics: unique top-25 words over
// total top-25 slots.
double DiversityAtProportion(const tensor::Tensor& beta,
                             const std::vector<double>& coherence,
                             double proportion,
                             int top_words = kDiversityTopWords);

// Full Figure-2 style sweep at the given proportions.
struct InterpretabilityCurve {
  std::vector<double> proportions;  // e.g. 0.1, 0.2, ..., 1.0
  std::vector<double> coherence;
  std::vector<double> diversity;
};
InterpretabilityCurve EvaluateInterpretability(
    const tensor::Tensor& beta, const NpmiMatrix& npmi,
    const std::vector<double>& proportions = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                              0.7, 0.8, 0.9, 1.0});

}  // namespace eval
}  // namespace contratopic

#endif  // CONTRATOPIC_EVAL_METRICS_H_
