#include "eval/npmi.h"

#include <cmath>

#include "embed/cooccurrence.h"
#include "tensor/kernels.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace contratopic {
namespace eval {

NpmiMatrix NpmiMatrix::Compute(const text::BowCorpus& corpus) {
  embed::CooccurrenceCounts counts(corpus.vocab_size());
  counts.AddPresence(corpus);
  return FromCounts(counts);
}

NpmiMatrix NpmiMatrix::FromCounts(const embed::CooccurrenceCounts& counts) {
  const double n_docs = static_cast<double>(counts.num_docs());
  CHECK_GT(n_docs, 0.0);

  util::TraceSpan span("npmi_matrix");
  const int v = counts.vocab_size();
  util::MetricsRegistry::Global()
      .counter("eval.npmi.cells")
      .Increment(static_cast<int64_t>(v) * v);
  tensor::Tensor npmi(v, v);
  // Each row is computed independently (the mirror cell (j, i) is recomputed
  // rather than scattered across rows, so writes stay disjoint under
  // row-parallelism); the per-cell math is symmetric in (i, j), so the
  // matrix stays exactly symmetric.
  tensor::ParallelRows(v, v, [&](int64_t r_lo, int64_t r_hi) {
    for (int64_t row = r_lo; row < r_hi; ++row) {
      const int i = static_cast<int>(row);
      const double pi = counts.marginal(i) / n_docs;
      npmi.at(i, i) = 1.0f;
      for (int j = 0; j < v; ++j) {
        if (j == i) continue;
        const double pj = counts.marginal(j) / n_docs;
        const double cij = counts.pair(i, j);
        float value = -1.0f;
        if (cij > 0.0 && pi > 0.0 && pj > 0.0) {
          const double pij = cij / n_docs;
          const double pmi = std::log(pij / (pi * pj));
          const double denom = -std::log(pij);
          value = denom > 1e-12 ? static_cast<float>(pmi / denom) : 1.0f;
        }
        npmi.at(i, j) = value;
      }
    }
  });
  return NpmiMatrix(std::move(npmi));
}

tensor::Tensor NpmiMatrix::SubMatrix(const std::vector<int>& indices) const {
  const int n = static_cast<int>(indices.size());
  tensor::Tensor sub(n, n);
  for (int a = 0; a < n; ++a) {
    CHECK_GE(indices[a], 0);
    CHECK_LT(indices[a], vocab_size());
    for (int b = 0; b < n; ++b) {
      sub.at(a, b) = matrix_.at(indices[a], indices[b]);
    }
  }
  return sub;
}

double NpmiMatrix::MeanPairwise(const std::vector<int>& word_ids) const {
  const int n = static_cast<int>(word_ids.size());
  if (n < 2) return 0.0;
  double total = 0.0;
  int pairs = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      total += value(word_ids[a], word_ids[b]);
      ++pairs;
    }
  }
  return total / pairs;
}

}  // namespace eval
}  // namespace contratopic
