#ifndef CONTRATOPIC_EVAL_INTRUSION_H_
#define CONTRATOPIC_EVAL_INTRUSION_H_

// Word-intrusion evaluation (paper §V.J / Table III). The paper runs the
// task with 20 human annotators; we substitute a *simulated annotator*
// that, for each question, picks the word with the lowest mean held-out
// NPMI to the five topic words -- the semantic odd-one-out heuristic that
// Chang et al. (2009) and Hoyle et al. (2021) show tracks human raters.
// The question-generation protocol follows the paper: topics sampled per
// coherence decile, intruders drawn from low-probability words in the
// current topic that rank high in an *unselected* topic.

#include <vector>

#include "eval/npmi.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace contratopic {
namespace eval {

struct IntrusionQuestion {
  int topic = -1;
  std::vector<int> topic_words;  // the 5 top words shown
  int intruder = -1;             // the injected word
  std::vector<int> shuffled;     // all 6 words in presentation order
};

struct IntrusionConfig {
  int questions_per_decile = 3;  // paper: 3 topics per coherence decile
  int words_per_question = 5;    // paper: top-5 words + 1 intruder
  uint64_t seed = 99;
};

// Builds the questionnaire from a model's topic-word matrix.
std::vector<IntrusionQuestion> GenerateIntrusionQuestions(
    const tensor::Tensor& beta, const NpmiMatrix& train_npmi,
    const IntrusionConfig& config);

// The simulated annotator's answer: index into `question.shuffled`.
int SimulatedAnnotatorAnswer(const IntrusionQuestion& question,
                             const NpmiMatrix& heldout_npmi);

// Word Intrusion Score: fraction of questions whose simulated answer is
// the true intruder.
double WordIntrusionScore(const std::vector<IntrusionQuestion>& questions,
                          const NpmiMatrix& heldout_npmi);

}  // namespace eval
}  // namespace contratopic

#endif  // CONTRATOPIC_EVAL_INTRUSION_H_
