#include "eval/clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace contratopic {
namespace eval {
namespace {

// Point-loop grain for the distance computations below: each point costs
// O(clusters * dim), so split eagerly.
constexpr int64_t kPointGrain = 64;

double SquaredDistance(const float* a, const float* b, int64_t dim) {
  double acc = 0.0;
  for (int64_t i = 0; i < dim; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

KMeansResult KMeans(const tensor::Tensor& points, int num_clusters,
                    util::Rng& rng, int max_iterations, double tolerance) {
  util::TraceSpan span("kmeans");
  const int64_t n = points.rows();
  const int64_t dim = points.cols();
  CHECK_GT(n, 0);
  CHECK_GT(num_clusters, 0);
  num_clusters = std::min<int>(num_clusters, static_cast<int>(n));

  // k-means++ seeding.
  tensor::Tensor centroids(num_clusters, dim);
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  int64_t first = static_cast<int64_t>(rng.UniformInt(n));
  std::copy(points.row(first), points.row(first) + dim, centroids.row(0));
  util::ThreadPool& pool = util::ThreadPool::Global();
  for (int c = 1; c < num_clusters; ++c) {
    // Disjoint per-point writes; the rng draw below stays on this thread.
    pool.ParallelFor(
        0, n,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            min_dist[i] = std::min(
                min_dist[i],
                SquaredDistance(points.row(i), centroids.row(c - 1), dim));
          }
        },
        kPointGrain);
    const int64_t next = rng.Categorical(
        [&] {
          std::vector<double> w(min_dist);
          // Guard: if all points coincide with chosen centroids, uniform.
          double total = 0.0;
          for (double v : w) total += v;
          if (total <= 0.0) std::fill(w.begin(), w.end(), 1.0);
          return w;
        }());
    std::copy(points.row(next), points.row(next) + dim, centroids.row(c));
  }

  KMeansResult result;
  result.assignments.assign(n, -1);
  std::vector<double> best_dist(n, 0.0);
  double prev_inertia = std::numeric_limits<double>::max();
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Assign: the expensive O(n * k * dim) scan fills per-point slots in
    // parallel; the cheap inertia fold below stays serial in point order so
    // the sum is identical to the single-threaded accumulation.
    std::vector<int> best_c(n, 0);
    pool.ParallelFor(
        0, n,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            double best = std::numeric_limits<double>::max();
            int bc = 0;
            for (int c = 0; c < num_clusters; ++c) {
              const double d =
                  SquaredDistance(points.row(i), centroids.row(c), dim);
              if (d < best) {
                best = d;
                bc = c;
              }
            }
            best_dist[i] = best;
            best_c[i] = bc;
          }
        },
        kPointGrain);
    double inertia = 0.0;
    bool changed = false;
    for (int64_t i = 0; i < n; ++i) {
      if (result.assignments[i] != best_c[i]) {
        result.assignments[i] = best_c[i];
        changed = true;
      }
      inertia += best_dist[i];
    }
    result.inertia = inertia;
    result.iterations = iter + 1;

    // Update: each worker owns a cluster range and scans all points, so every
    // centroid accumulates its members in point order — the same order as the
    // serial loop — while writes stay disjoint across workers.
    centroids.Fill(0.0f);
    std::vector<int64_t> counts(num_clusters, 0);
    pool.ParallelFor(
        0, num_clusters,
        [&](int64_t c_lo, int64_t c_hi) {
          for (int64_t i = 0; i < n; ++i) {
            const int c = result.assignments[i];
            if (c < c_lo || c >= c_hi) continue;
            ++counts[c];
            float* cr = centroids.row(c);
            const float* pr = points.row(i);
            for (int64_t d = 0; d < dim; ++d) cr[d] += pr[d];
          }
        },
        /*grain=*/1);
    for (int c = 0; c < num_clusters; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty cluster at a random point.
        const int64_t pick = static_cast<int64_t>(rng.UniformInt(n));
        std::copy(points.row(pick), points.row(pick) + dim, centroids.row(c));
        continue;
      }
      const float inv = 1.0f / static_cast<float>(counts[c]);
      float* cr = centroids.row(c);
      for (int64_t d = 0; d < dim; ++d) cr[d] *= inv;
    }

    if (!changed || std::fabs(prev_inertia - inertia) <
                        tolerance * std::max(1.0, prev_inertia)) {
      break;
    }
    prev_inertia = inertia;
  }
  result.centroids = std::move(centroids);
  util::MetricsRegistry::Global()
      .counter("eval.kmeans.iterations")
      .Increment(result.iterations);
  return result;
}

double Purity(const std::vector<int>& assignments,
              const std::vector<int>& labels) {
  CHECK_EQ(assignments.size(), labels.size());
  CHECK(!assignments.empty());
  std::map<int, std::unordered_map<int, int>> cluster_label_counts;
  for (size_t i = 0; i < assignments.size(); ++i) {
    ++cluster_label_counts[assignments[i]][labels[i]];
  }
  int64_t majority_total = 0;
  for (const auto& [cluster, label_counts] : cluster_label_counts) {
    int best = 0;
    for (const auto& [label, count] : label_counts) {
      best = std::max(best, count);
    }
    majority_total += best;
  }
  return static_cast<double>(majority_total) / assignments.size();
}

double NormalizedMutualInformation(const std::vector<int>& assignments,
                                   const std::vector<int>& labels) {
  CHECK_EQ(assignments.size(), labels.size());
  CHECK(!assignments.empty());
  const double n = static_cast<double>(assignments.size());

  std::unordered_map<int, int> cluster_counts;
  std::unordered_map<int, int> label_counts;
  std::map<std::pair<int, int>, int> joint_counts;
  for (size_t i = 0; i < assignments.size(); ++i) {
    ++cluster_counts[assignments[i]];
    ++label_counts[labels[i]];
    ++joint_counts[{assignments[i], labels[i]}];
  }

  double mi = 0.0;
  for (const auto& [pair, count] : joint_counts) {
    const double pxy = count / n;
    const double px = cluster_counts[pair.first] / n;
    const double py = label_counts[pair.second] / n;
    mi += pxy * std::log(pxy / (px * py));
  }
  double h_c = 0.0;
  for (const auto& [cluster, count] : cluster_counts) {
    const double p = count / n;
    h_c -= p * std::log(p);
  }
  double h_l = 0.0;
  for (const auto& [label, count] : label_counts) {
    const double p = count / n;
    h_l -= p * std::log(p);
  }
  const double denom = std::sqrt(h_c * h_l);
  return denom > 1e-12 ? mi / denom : 0.0;
}

ClusteringScore EvaluateClustering(const tensor::Tensor& theta,
                                   const std::vector<int>& labels,
                                   int num_clusters, util::Rng& rng) {
  KMeansResult km = KMeans(theta, num_clusters, rng);
  return {Purity(km.assignments, labels),
          NormalizedMutualInformation(km.assignments, labels)};
}

}  // namespace eval
}  // namespace contratopic
