#include "eval/intrusion.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "eval/metrics.h"
#include "util/logging.h"

namespace contratopic {
namespace eval {

std::vector<IntrusionQuestion> GenerateIntrusionQuestions(
    const tensor::Tensor& beta, const NpmiMatrix& train_npmi,
    const IntrusionConfig& config) {
  const int num_topics = static_cast<int>(beta.rows());
  const int vocab = static_cast<int>(beta.cols());
  util::Rng rng(config.seed);

  // Rank topics by coherence, then sample per decile (paper §V.J.2).
  const std::vector<double> coherence = PerTopicCoherence(beta, train_npmi);
  const std::vector<int> order = TopicsByCoherence(coherence);

  std::vector<int> selected;
  const int decile_size = std::max(1, num_topics / 10);
  for (int decile = 0; decile < 10; ++decile) {
    const int begin = decile * decile_size;
    if (begin >= num_topics) break;
    const int end = std::min(num_topics, begin + decile_size);
    std::vector<int> pool(order.begin() + begin, order.begin() + end);
    rng.Shuffle(pool);
    const int take = std::min<int>(config.questions_per_decile,
                                   static_cast<int>(pool.size()));
    for (int i = 0; i < take; ++i) selected.push_back(pool[i]);
  }
  const std::unordered_set<int> selected_set(selected.begin(), selected.end());

  std::vector<IntrusionQuestion> questions;
  for (int topic : selected) {
    IntrusionQuestion q;
    q.topic = topic;
    q.topic_words = beta.TopKIndicesOfRow(topic, config.words_per_question);
    const std::unordered_set<int> shown(q.topic_words.begin(),
                                        q.topic_words.end());

    // Intruder: high rank in an unselected topic, low probability here.
    // Walk unselected topics in random order; take their best word that is
    // below the median probability in the current topic.
    std::vector<int> other_topics;
    for (int t = 0; t < num_topics; ++t) {
      if (selected_set.count(t) == 0) other_topics.push_back(t);
    }
    if (other_topics.empty()) {
      // Degenerate small-K case: fall back to any other topic.
      for (int t = 0; t < num_topics; ++t) {
        if (t != topic) other_topics.push_back(t);
      }
    }
    rng.Shuffle(other_topics);

    // Median beta of the current topic as the "low probability" cutoff.
    std::vector<float> row(beta.row(topic), beta.row(topic) + vocab);
    std::nth_element(row.begin(), row.begin() + vocab / 2, row.end());
    const float median = row[vocab / 2];

    for (int other : other_topics) {
      for (int w : beta.TopKIndicesOfRow(other, 10)) {
        if (shown.count(w) > 0) continue;
        if (beta.at(topic, w) <= median) {
          q.intruder = w;
          break;
        }
      }
      if (q.intruder >= 0) break;
    }
    if (q.intruder < 0) continue;  // Could not build a valid question.

    q.shuffled = q.topic_words;
    q.shuffled.push_back(q.intruder);
    rng.Shuffle(q.shuffled);
    questions.push_back(std::move(q));
  }
  return questions;
}

int SimulatedAnnotatorAnswer(const IntrusionQuestion& question,
                             const NpmiMatrix& heldout_npmi) {
  // Pick the word with the lowest mean NPMI to the other shown words.
  int best = 0;
  double best_score = 1e30;
  const auto& words = question.shuffled;
  for (size_t i = 0; i < words.size(); ++i) {
    double total = 0.0;
    for (size_t j = 0; j < words.size(); ++j) {
      if (i == j) continue;
      total += heldout_npmi.value(words[i], words[j]);
    }
    const double mean = total / static_cast<double>(words.size() - 1);
    if (mean < best_score) {
      best_score = mean;
      best = static_cast<int>(i);
    }
  }
  return best;
}

double WordIntrusionScore(const std::vector<IntrusionQuestion>& questions,
                          const NpmiMatrix& heldout_npmi) {
  if (questions.empty()) return 0.0;
  int correct = 0;
  for (const auto& q : questions) {
    const int answer = SimulatedAnnotatorAnswer(q, heldout_npmi);
    if (q.shuffled[answer] == q.intruder) ++correct;
  }
  return static_cast<double>(correct) / questions.size();
}

}  // namespace eval
}  // namespace contratopic
