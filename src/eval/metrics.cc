#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace contratopic {
namespace eval {

std::vector<double> PerTopicCoherence(const tensor::Tensor& beta,
                                      const NpmiMatrix& npmi, int top_words) {
  CHECK_EQ(beta.cols(), npmi.vocab_size());
  util::TraceSpan span("coherence");
  util::MetricsRegistry::Global()
      .counter("eval.coherence.topics")
      .Increment(beta.rows());
  // Topics are independent (top-k selection + pairwise NPMI mean per topic),
  // so each writes its own slot.
  std::vector<double> coherence(beta.rows());
  util::ThreadPool::Global().ParallelFor(
      0, beta.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t k = lo; k < hi; ++k) {
          coherence[k] = npmi.MeanPairwise(beta.TopKIndicesOfRow(k, top_words));
        }
      },
      /*grain=*/1);
  return coherence;
}

std::vector<int> TopicsByCoherence(const std::vector<double>& coherence) {
  std::vector<int> order(coherence.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return coherence[a] > coherence[b]; });
  return order;
}

namespace {
int NumSelected(size_t num_topics, double proportion) {
  CHECK_GT(proportion, 0.0);
  CHECK_LE(proportion, 1.0);
  return std::max(1, static_cast<int>(std::ceil(
                          proportion * static_cast<double>(num_topics))));
}
}  // namespace

double CoherenceAtProportion(const std::vector<double>& coherence,
                             double proportion) {
  const std::vector<int> order = TopicsByCoherence(coherence);
  const int n = NumSelected(coherence.size(), proportion);
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += coherence[order[i]];
  return total / n;
}

double DiversityAtProportion(const tensor::Tensor& beta,
                             const std::vector<double>& coherence,
                             double proportion, int top_words) {
  const std::vector<int> order = TopicsByCoherence(coherence);
  const int n = NumSelected(coherence.size(), proportion);
  std::unordered_set<int> unique_words;
  int total_slots = 0;
  for (int i = 0; i < n; ++i) {
    for (int w : beta.TopKIndicesOfRow(order[i], top_words)) {
      unique_words.insert(w);
      ++total_slots;
    }
  }
  return total_slots > 0
             ? static_cast<double>(unique_words.size()) / total_slots
             : 0.0;
}

InterpretabilityCurve EvaluateInterpretability(
    const tensor::Tensor& beta, const NpmiMatrix& npmi,
    const std::vector<double>& proportions) {
  const std::vector<double> coherence = PerTopicCoherence(beta, npmi);
  InterpretabilityCurve curve;
  curve.proportions = proportions;
  for (double p : proportions) {
    curve.coherence.push_back(CoherenceAtProportion(coherence, p));
    curve.diversity.push_back(DiversityAtProportion(beta, coherence, p));
  }
  return curve;
}

}  // namespace eval
}  // namespace contratopic
