#ifndef CONTRATOPIC_EVAL_CLUSTERING_H_
#define CONTRATOPIC_EVAL_CLUSTERING_H_

// Document-representation evaluation (paper §V.B / Figure 3): KMeans over
// inferred document-topic distributions, scored against ground-truth labels
// with Purity and Normalized Mutual Information (km-Purity / km-NMI).

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace contratopic {
namespace eval {

struct KMeansResult {
  std::vector<int> assignments;  // cluster id per row
  tensor::Tensor centroids;      // num_clusters x dim
  double inertia = 0.0;          // sum of squared distances to centroids
  int iterations = 0;
};

// Lloyd's algorithm with k-means++ seeding.
KMeansResult KMeans(const tensor::Tensor& points, int num_clusters,
                    util::Rng& rng, int max_iterations = 100,
                    double tolerance = 1e-6);

// Purity: sum over clusters of the majority label count, divided by N.
double Purity(const std::vector<int>& assignments,
              const std::vector<int>& labels);

// NMI with sqrt(H(C) H(L)) normalization; 0 when either entropy is 0.
double NormalizedMutualInformation(const std::vector<int>& assignments,
                                   const std::vector<int>& labels);

// Convenience: KMeans at `num_clusters`, returning (purity, nmi).
struct ClusteringScore {
  double purity = 0.0;
  double nmi = 0.0;
};
ClusteringScore EvaluateClustering(const tensor::Tensor& theta,
                                   const std::vector<int>& labels,
                                   int num_clusters, util::Rng& rng);

}  // namespace eval
}  // namespace contratopic

#endif  // CONTRATOPIC_EVAL_CLUSTERING_H_
