#ifndef CONTRATOPIC_EVAL_NPMI_H_
#define CONTRATOPIC_EVAL_NPMI_H_

// Normalized Pointwise Mutual Information over document-level word
// co-occurrence. Doubles as (a) the coherence evaluation metric and (b) the
// pre-computed similarity kernel K(.,.) of ContraTopic's contrastive
// regularizer (paper §IV.A). The paper computes the kernel on the training
// split and evaluates coherence on the test split; both uses share this
// class.

#include <memory>
#include <vector>

#include "embed/cooccurrence.h"
#include "tensor/tensor.h"
#include "text/corpus.h"

namespace contratopic {
namespace eval {

class NpmiMatrix {
 public:
  // Counts document co-occurrence and materializes the dense V x V NPMI
  // matrix. O(V^2) memory -- the paper discusses exactly this cost (§V.E).
  static NpmiMatrix Compute(const text::BowCorpus& corpus);

  // Builds NPMI from an externally maintained (possibly decayed)
  // co-occurrence accumulator -- the online extension's path.
  static NpmiMatrix FromCounts(const embed::CooccurrenceCounts& counts);

  int vocab_size() const { return static_cast<int>(matrix_.rows()); }

  // NPMI in [-1, 1]; pairs that never co-occur give -1; i == j gives +1.
  float value(int i, int j) const { return matrix_.at(i, j); }

  const tensor::Tensor& matrix() const { return matrix_; }

  // Dense submatrix over a candidate word set (for the CPU-efficient
  // restricted contrastive kernel; DESIGN.md §5).
  tensor::Tensor SubMatrix(const std::vector<int>& indices) const;

  // Mean pairwise NPMI among `word_ids` (the coherence of one topic).
  double MeanPairwise(const std::vector<int>& word_ids) const;

  // Approximate bytes held by the dense matrix (computational analysis).
  int64_t MemoryBytes() const { return matrix_.numel() * sizeof(float); }

 private:
  explicit NpmiMatrix(tensor::Tensor matrix) : matrix_(std::move(matrix)) {}
  tensor::Tensor matrix_;
};

}  // namespace eval
}  // namespace contratopic

#endif  // CONTRATOPIC_EVAL_NPMI_H_
