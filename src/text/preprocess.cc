#include "text/preprocess.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace contratopic {
namespace text {
namespace {

const std::unordered_set<std::string>& StopWords() {
  // Never destroyed (static-destruction safety).
  static const auto* words = new std::unordered_set<std::string>({
      "a",     "about",  "above",  "after",   "again",   "against", "all",
      "am",    "an",     "and",    "any",     "are",     "as",      "at",
      "be",    "because", "been",  "before",  "being",   "below",   "between",
      "both",  "but",    "by",     "can",     "cannot",  "could",   "did",
      "do",    "does",   "doing",  "down",    "during",  "each",    "few",
      "for",   "from",   "further", "had",    "has",     "have",    "having",
      "he",    "her",    "here",   "hers",    "herself", "him",     "himself",
      "his",   "how",    "i",      "if",      "in",      "into",    "is",
      "it",    "its",    "itself", "just",    "me",      "more",    "most",
      "my",    "myself", "no",     "nor",     "not",     "now",     "of",
      "off",   "on",     "once",   "only",    "or",      "other",   "our",
      "ours",  "ourselves", "out", "over",    "own",     "same",    "she",
      "should", "so",    "some",   "such",    "than",    "that",    "the",
      "their", "theirs", "them",   "themselves", "then", "there",   "these",
      "they",  "this",   "those",  "through", "to",      "too",     "under",
      "until", "up",     "very",   "was",     "we",      "were",    "what",
      "when",  "where",  "which",  "while",   "who",     "whom",    "why",
      "will",  "with",   "would",  "you",     "your",    "yours",   "yourself",
      "yourselves", "also", "may", "one",     "two",     "like",    "said",
      "says",  "get",    "got",    "much",    "many",    "even",    "well",
  });
  return *words;
}

}  // namespace

std::vector<std::string> Tokenize(const std::string& text, bool lowercase) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalpha(c) || raw == '_') {
      current.push_back(
          lowercase ? static_cast<char>(std::tolower(c)) : raw);
    } else if (std::isdigit(c) && !current.empty()) {
      // Keep digits inside identifiers like "mp3"/"w10".
      current.push_back(raw);
    } else if (!current.empty()) {
      if (current.size() > 1) tokens.push_back(current);
      current.clear();
    }
  }
  if (current.size() > 1) tokens.push_back(current);
  return tokens;
}

bool IsStopWord(const std::string& word) {
  return StopWords().count(word) > 0;
}

BowCorpus PreprocessTokenized(
    const std::vector<std::vector<std::string>>& docs,
    const std::vector<int>& labels, const PreprocessOptions& options,
    std::vector<std::string> label_names) {
  CHECK(labels.empty() || labels.size() == docs.size());

  // Pass 1: document frequencies over non-stop-word tokens.
  std::unordered_map<std::string, int> doc_freq;
  for (const auto& doc : docs) {
    std::unordered_set<std::string> seen;
    for (const auto& token : doc) {
      if (options.remove_stop_words && IsStopWord(token)) continue;
      if (seen.insert(token).second) ++doc_freq[token];
    }
  }

  // Decide the kept vocabulary. Iterate in sorted order for determinism.
  const int max_df =
      static_cast<int>(options.max_doc_frequency_fraction * docs.size());
  std::map<std::string, int> sorted_df(doc_freq.begin(), doc_freq.end());
  Vocabulary vocab;
  for (const auto& [word, df] : sorted_df) {
    if (df < options.min_doc_frequency) continue;
    if (df > max_df) continue;
    vocab.AddWord(word);
  }

  // Pass 2: build documents, dropping ones that became too short.
  std::vector<Document> out_docs;
  out_docs.reserve(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    std::unordered_map<int, int> counts;
    for (const auto& token : docs[i]) {
      const int id = vocab.GetId(token);
      if (id >= 0) ++counts[id];
    }
    Document d;
    d.label = labels.empty() ? -1 : labels[i];
    int total = 0;
    d.entries.reserve(counts.size());
    for (const auto& [id, count] : counts) {
      d.entries.push_back({id, count});
      total += count;
    }
    if (total < options.min_doc_length) continue;
    std::sort(d.entries.begin(), d.entries.end(),
              [](const BowEntry& a, const BowEntry& b) {
                return a.word_id < b.word_id;
              });
    out_docs.push_back(std::move(d));
  }
  return BowCorpus(std::move(vocab), std::move(out_docs),
                   std::move(label_names));
}

BowCorpus Preprocess(const std::vector<RawDocument>& raw_docs,
                     const PreprocessOptions& options,
                     std::vector<std::string> label_names) {
  std::vector<std::vector<std::string>> tokenized;
  std::vector<int> labels;
  tokenized.reserve(raw_docs.size());
  labels.reserve(raw_docs.size());
  for (const auto& raw : raw_docs) {
    tokenized.push_back(Tokenize(raw.text, options.lowercase));
    labels.push_back(raw.label);
  }
  return PreprocessTokenized(tokenized, labels, options,
                             std::move(label_names));
}

}  // namespace text
}  // namespace contratopic
