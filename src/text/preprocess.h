#ifndef CONTRATOPIC_TEXT_PREPROCESS_H_
#define CONTRATOPIC_TEXT_PREPROCESS_H_

// Corpus preprocessing mirroring the paper (§V.A): tokenize, lower-case,
// drop stop words, drop words with document frequency above a fraction or
// below an absolute count, drop documents shorter than a minimum length.

#include <string>
#include <vector>

#include "text/corpus.h"

namespace contratopic {
namespace text {

struct PreprocessOptions {
  // Words appearing in more than this fraction of documents are removed
  // (the paper uses 0.70).
  double max_doc_frequency_fraction = 0.70;
  // Words appearing in fewer than this many documents are removed
  // (the paper uses "around 100", scaled here).
  int min_doc_frequency = 5;
  // Documents with fewer than this many remaining tokens are removed
  // (the paper removes documents shorter than 2 words).
  int min_doc_length = 2;
  bool remove_stop_words = true;
  bool lowercase = true;
};

// A raw document: whitespace-joined text plus optional label.
struct RawDocument {
  std::string text;
  int label = -1;
};

// Splits text into lower-cased alphabetic tokens (digits and punctuation
// are separators; single-character tokens are dropped).
std::vector<std::string> Tokenize(const std::string& text, bool lowercase);

// True if `word` is in the built-in English stop-word list.
bool IsStopWord(const std::string& word);

// Full pipeline: tokenize -> stop words -> document-frequency filters ->
// short-document filter -> bag-of-words with a fresh vocabulary.
BowCorpus Preprocess(const std::vector<RawDocument>& raw_docs,
                     const PreprocessOptions& options,
                     std::vector<std::string> label_names = {});

// Variant starting from pre-tokenized documents (used by the synthetic
// generator, which produces tokens directly).
BowCorpus PreprocessTokenized(
    const std::vector<std::vector<std::string>>& docs,
    const std::vector<int>& labels, const PreprocessOptions& options,
    std::vector<std::string> label_names = {});

}  // namespace text
}  // namespace contratopic

#endif  // CONTRATOPIC_TEXT_PREPROCESS_H_
