#include "text/themes.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace contratopic {
namespace text {

const std::vector<Theme>& CuratedThemes() {
  // Never destroyed (static-destruction safety).
  static const auto* themes = new std::vector<Theme>({
      {"space",
       {"space", "nasa", "launch", "orbit", "earth", "satellite", "lunar",
        "shuttle", "moon", "rocket", "astronaut", "mission", "spacecraft",
        "mars", "telescope", "gravity"}},
      {"medicine",
       {"patients", "health", "medical", "disease", "cancer", "drug",
        "study", "drugs", "symptoms", "treatment", "doctor", "blood",
        "pain", "diagnosis", "clinical", "therapy"}},
      {"religion",
       {"god", "jesus", "bible", "church", "christian", "faith", "christ",
        "christians", "holy", "heaven", "scripture", "prayer", "belief",
        "worship", "gospel", "sin"}},
      {"mideast",
       {"israel", "jews", "israeli", "war", "jewish", "arab", "palestinian",
        "arafat", "peace", "jerusalem", "land", "conflict", "territory",
        "gaza", "borders", "settlement"}},
      {"armenia",
       {"armenian", "armenians", "turkish", "turkey", "genocide",
        "azerbaijan", "turks", "ottoman", "greek", "massacre", "soviet",
        "caucasus", "refugees", "empire", "village", "deportation"}},
      {"graphics",
       {"image", "graphics", "images", "jpeg", "color", "gif", "format",
        "picture", "pixel", "rendering", "bitmap", "resolution", "display",
        "animation", "texture", "vector"}},
      {"hardware",
       {"drive", "scsi", "disk", "hard", "controller", "drives", "bus",
        "floppy", "motherboard", "ram", "processor", "cpu", "card",
        "memory", "chipset", "firmware"}},
      {"encryption",
       {"key", "encryption", "chip", "keys", "clipper", "security",
        "privacy", "crypto", "cipher", "escrow", "algorithm", "secure",
        "wiretap", "nsa", "decrypt", "secret"}},
      {"hockey",
       {"game", "team", "hockey", "season", "league", "players", "goal",
        "playoff", "nhl", "coach", "rangers", "detroit", "score", "puck",
        "ice", "defenseman"}},
      {"baseball",
       {"baseball", "pitcher", "inning", "hit", "runs", "bat", "league",
        "braves", "yankees", "dodgers", "catcher", "homer", "bullpen",
        "outfield", "shortstop", "slugger"}},
      {"autos",
       {"car", "engine", "cars", "dealer", "ford", "honda", "toyota",
        "brakes", "tires", "mileage", "transmission", "sedan", "driving",
        "fuel", "motor", "wheel"}},
      {"guns",
       {"gun", "guns", "firearms", "weapon", "weapons", "amendment",
        "rifle", "pistol", "ammunition", "hunting", "shooting", "crime",
        "police", "violence", "permit", "holster"}},
      {"cooking",
       {"cup", "add", "salt", "sugar", "butter", "cream", "minutes", "oil",
        "sauce", "pepper", "garlic", "cheese", "flour", "recipe", "bake",
        "chicken"}},
      {"baking",
       {"preheat", "oven", "dough", "chocolate", "baking", "vanilla",
        "frosting", "cookies", "cake", "yeast", "whisk", "batter", "grated",
        "parmesan", "mozzarella", "saute"}},
      {"diet",
       {"weight", "body", "fat", "lose", "eat", "healthy", "diet",
        "exercise", "calories", "protein", "nutrition", "meals", "fitness",
        "muscle", "vitamins", "carbs"}},
      {"pets",
       {"dog", "dogs", "cat", "vet", "puppy", "cats", "animals", "pet",
        "feed", "kitten", "breed", "leash", "litter", "groom", "paws",
        "adopt"}},
      {"mobile",
       {"phone", "number", "send", "email", "mail", "cell", "plan",
        "service", "text", "carrier", "sim", "prepaid", "roaming",
        "voicemail", "messaging", "contract"}},
      {"music",
       {"ipod", "music", "song", "itunes", "album", "band", "guitar",
        "concert", "lyrics", "playlist", "singer", "melody", "drums",
        "chorus", "vinyl", "tour"}},
      {"gaming",
       {"pokemon", "game", "xbox", "nintendo", "playstation", "console",
        "diamond", "pearl", "battle", "trade", "level", "quest", "player",
        "multiplayer", "controller", "arcade"}},
      {"computing",
       {"laptop", "pc", "card", "memory", "graphics", "ram", "mb",
        "processor", "pentium", "mhz", "nvidia", "ghz", "intel", "geforce",
        "desktop", "cooling"}},
      {"video",
       {"video", "dvd", "download", "format", "convert", "videos", "movie",
        "player", "file", "files", "codec", "stream", "subtitles", "burn",
        "resolution", "playback"}},
      {"fashion",
       {"stores", "shoes", "shirt", "outfit", "category", "aeropostale",
        "abercrombie", "pacsun", "jeans", "dress", "brand", "style",
        "clothing", "catalog", "mall", "wardrobe"}},
      {"wrestling",
       {"wwe", "cena", "batista", "wrestler", "smackdown", "raw", "match",
        "championship", "umaga", "orton", "khali", "ring", "tag",
        "heavyweight", "wrestlemania", "feud"}},
      {"software",
       {"server", "motif", "application", "widget", "export", "client",
        "applications", "unix", "linux", "code", "compiler", "library",
        "interface", "debug", "runtime", "script"}},
      {"politics",
       {"bush", "republican", "campaign", "bill", "clinton", "gore",
        "house", "senate", "election", "votes", "congress", "democrat",
        "governor", "candidate", "policy", "ballot"}},
      {"russia",
       {"russian", "russia", "soviet", "vladimir", "putin", "moscow",
        "union", "chechnya", "kremlin", "yeltsin", "oligarch", "siberia",
        "duma", "tsar", "ruble", "perestroika"}},
      {"afghanistan",
       {"taliban", "afghanistan", "laden", "afghan", "bin", "pakistan",
        "islamic", "osama", "kabul", "terrorism", "militant", "qaeda",
        "insurgent", "tribal", "warlord", "madrassa"}},
      {"football",
       {"game", "coach", "quarterback", "yard", "football", "bowl",
        "touchdown", "defensive", "offense", "receiver", "linebacker",
        "kickoff", "fumble", "punt", "huddle", "endzone"}},
      {"basketball",
       {"laker", "nba", "shaquille", "bryant", "kobe", "jackson", "court",
        "rebound", "dunk", "playoffs", "celtics", "jordan", "dribble",
        "backboard", "forward", "rookie"}},
      {"economy",
       {"economy", "trade", "market", "stocks", "inflation", "commerce",
        "export", "imports", "tariff", "investment", "banking", "deficit",
        "currency", "growth", "recession", "interest"}},
  });
  return *themes;
}

std::vector<Theme> MakeThemes(int count, int words_per_theme) {
  CHECK_GT(count, 0);
  CHECK_GT(words_per_theme, 0);
  const auto& curated = CuratedThemes();
  std::vector<Theme> themes;
  themes.reserve(count);
  for (int t = 0; t < count; ++t) {
    Theme theme;
    if (t < static_cast<int>(curated.size())) {
      theme.name = curated[t].name;
      theme.words = curated[t].words;
    } else {
      theme.name = util::StrFormat("theme%02d", t);
    }
    // Pad (or truncate) to the requested size with procedural words. The
    // procedural words are unique per theme, so they only co-occur with
    // their own theme -- exactly the structure NPMI rewards.
    while (static_cast<int>(theme.words.size()) < words_per_theme) {
      theme.words.push_back(util::StrFormat(
          "%s_w%02d", theme.name.c_str(),
          static_cast<int>(theme.words.size())));
    }
    theme.words.resize(words_per_theme);
    themes.push_back(std::move(theme));
  }
  return themes;
}

}  // namespace text
}  // namespace contratopic
