#include "text/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"
#include "util/string_util.h"

namespace contratopic {
namespace text {
namespace {

// Zipf weights over `n` ranks: w_r = 1 / (r+1)^s.
std::vector<double> ZipfWeights(int n, double s) {
  std::vector<double> w(n);
  for (int r = 0; r < n; ++r) w[r] = 1.0 / std::pow(r + 1.0, s);
  return w;
}

// Poisson draw; Knuth's method is fine for the lambdas used here (< 500).
int Poisson(double lambda, util::Rng& rng) {
  CHECK_GT(lambda, 0.0);
  if (lambda > 400.0) {
    // Normal approximation for large means.
    return std::max(1, static_cast<int>(std::lround(
                           rng.Normal(lambda, std::sqrt(lambda)))));
  }
  const double limit = std::exp(-lambda);
  double product = rng.Uniform();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= rng.Uniform();
  }
  return count;
}

const char* const kInjectedStopWords[] = {"the", "and", "of",  "to",  "in",
                                          "that", "is", "was", "for", "with"};

}  // namespace

SyntheticConfig Preset20NG(double scale) {
  SyntheticConfig config;
  config.name = "20ng-sim";
  config.num_themes = 30;
  config.words_per_theme = 40;
  config.num_background_words = 240;
  config.num_docs = static_cast<int>(4000 * scale);
  config.avg_doc_length = 60.0;
  config.theme_alpha = 0.08;
  config.noise_rate = 0.25;
  config.seed = 20;
  config.preprocess.min_doc_frequency = 5;
  return config;
}

SyntheticConfig PresetYahoo(double scale) {
  SyntheticConfig config;
  config.name = "yahoo-sim";
  config.num_themes = 34;
  config.words_per_theme = 44;
  config.num_background_words = 300;
  config.num_docs = static_cast<int>(5600 * scale);
  config.avg_doc_length = 46.0;
  config.theme_alpha = 0.06;
  config.noise_rate = 0.22;
  config.seed = 46;
  config.preprocess.min_doc_frequency = 5;
  return config;
}

SyntheticConfig PresetNYTimes(double scale) {
  SyntheticConfig config;
  config.name = "nytimes-sim";
  config.num_themes = 40;
  config.words_per_theme = 56;
  config.num_background_words = 420;
  config.num_docs = static_cast<int>(6400 * scale);
  config.avg_doc_length = 100.0;
  config.theme_alpha = 0.10;
  config.noise_rate = 0.28;
  config.seed = 345;
  config.preprocess.min_doc_frequency = 6;
  return config;
}

SyntheticConfig PresetByName(const std::string& name, double scale) {
  if (name == "20ng-sim" || name == "20ng") return Preset20NG(scale);
  if (name == "yahoo-sim" || name == "yahoo") return PresetYahoo(scale);
  if (name == "nytimes-sim" || name == "nytimes") return PresetNYTimes(scale);
  LOG(FATAL) << "unknown dataset preset: " << name;
  return {};
}

std::vector<std::string> AllPresetNames() {
  return {"20ng-sim", "yahoo-sim", "nytimes-sim"};
}

namespace {

// Runs the theme-mixture generative process; fills `docs` and `labels`.
void GenerateRawTokens(const SyntheticConfig& config, util::Rng& rng,
                       std::vector<std::vector<std::string>>* docs,
                       std::vector<int>* labels) {
  std::vector<Theme> themes =
      MakeThemes(config.num_themes, config.words_per_theme);
  const std::vector<double> theme_word_weights =
      ZipfWeights(config.words_per_theme, config.zipf_exponent);
  const std::vector<double> background_weights =
      ZipfWeights(config.num_background_words, config.zipf_exponent);

  std::vector<std::string> background_words(config.num_background_words);
  for (int i = 0; i < config.num_background_words; ++i) {
    background_words[i] = util::StrFormat("bg_word%03d", i);
  }

  docs->reserve(config.num_docs);
  labels->reserve(config.num_docs);
  constexpr int kNumInjectedStopWords =
      sizeof(kInjectedStopWords) / sizeof(kInjectedStopWords[0]);

  for (int d = 0; d < config.num_docs; ++d) {
    const std::vector<double> theta =
        rng.Dirichlet(config.theme_alpha, config.num_themes);
    const int length = std::max(3, Poisson(config.avg_doc_length, rng));

    std::vector<std::string> tokens;
    tokens.reserve(length);
    std::vector<int> theme_counts(config.num_themes, 0);
    for (int t = 0; t < length; ++t) {
      const double u = rng.Uniform();
      if (u < config.stopword_rate) {
        tokens.push_back(
            kInjectedStopWords[rng.UniformInt(kNumInjectedStopWords)]);
      } else if (u < config.stopword_rate + config.noise_rate) {
        tokens.push_back(background_words[rng.Categorical(background_weights)]);
      } else {
        const int z = rng.Categorical(theta);
        ++theme_counts[z];
        const int w = rng.Categorical(theme_word_weights);
        if (rng.Uniform() < config.theme_overlap) {
          // Borrow the same-rank word from one of the two neighboring
          // themes: related topics share vocabulary.
          const int offset = 1 + static_cast<int>(rng.UniformInt(2));
          const int neighbor = (z + offset) % config.num_themes;
          tokens.push_back(themes[neighbor].words[w]);
        } else {
          tokens.push_back(themes[z].words[w]);
        }
      }
    }
    // Label: the theme that actually generated the most tokens (falls back
    // to argmax theta when no theme token was drawn).
    int label = 0;
    int best = -1;
    for (int k = 0; k < config.num_themes; ++k) {
      if (theme_counts[k] > best) {
        best = theme_counts[k];
        label = k;
      }
    }
    if (best == 0) {
      double best_theta = -1.0;
      for (int k = 0; k < config.num_themes; ++k) {
        if (theta[k] > best_theta) {
          best_theta = theta[k];
          label = k;
        }
      }
    }
    docs->push_back(std::move(tokens));
    labels->push_back(label);
  }
}

}  // namespace

SyntheticDataset GenerateSynthetic(const SyntheticConfig& config) {
  CHECK_GT(config.num_docs, 0);
  util::Rng rng(config.seed);
  std::vector<std::vector<std::string>> docs;
  std::vector<int> labels;
  GenerateRawTokens(config, rng, &docs, &labels);

  std::vector<std::string> theme_names;
  for (const auto& t : MakeThemes(config.num_themes, config.words_per_theme)) {
    theme_names.push_back(t.name);
  }

  BowCorpus full =
      PreprocessTokenized(docs, labels, config.preprocess, theme_names);
  util::Rng split_rng(config.seed ^ 0xABCDEF);
  TrainTestSplit split = SplitCorpus(full, config.train_fraction, split_rng);

  SyntheticDataset dataset;
  dataset.name = config.name;
  dataset.train = std::move(split.train);
  dataset.test = std::move(split.test);
  dataset.theme_names = std::move(theme_names);
  return dataset;
}

BowCorpus GenerateReferenceCorpus(const SyntheticConfig& config,
                                  const Vocabulary& target_vocab) {
  SyntheticConfig reference = config;
  reference.seed = config.seed ^ 0x5EEDull;
  // Noisier, flatter mixtures: generic text rather than the evaluation
  // corpus itself.
  reference.noise_rate = std::min(0.6, config.noise_rate + 0.15);
  reference.theme_alpha = config.theme_alpha * 2.5;

  util::Rng rng(reference.seed);
  std::vector<std::vector<std::string>> docs;
  std::vector<int> labels;
  GenerateRawTokens(reference, rng, &docs, &labels);

  // Map tokens onto the target vocabulary (unknown words are dropped).
  std::vector<Document> out_docs;
  out_docs.reserve(docs.size());
  for (const auto& tokens : docs) {
    std::unordered_map<int, int> counts;
    for (const auto& token : tokens) {
      const int id = target_vocab.GetId(token);
      if (id >= 0) ++counts[id];
    }
    if (counts.size() < 2) continue;
    Document d;
    d.entries.reserve(counts.size());
    for (const auto& [id, count] : counts) d.entries.push_back({id, count});
    std::sort(d.entries.begin(), d.entries.end(),
              [](const BowEntry& a, const BowEntry& b) {
                return a.word_id < b.word_id;
              });
    out_docs.push_back(std::move(d));
  }
  return BowCorpus(target_vocab, std::move(out_docs));
}

CorpusStats ComputeStats(const SyntheticDataset& dataset) {
  CorpusStats stats;
  stats.vocab_size = dataset.train.vocab_size();
  stats.train_samples = dataset.train.num_docs();
  stats.test_samples = dataset.test.num_docs();
  const int64_t total =
      dataset.train.TotalTokens() + dataset.test.TotalTokens();
  stats.num_tokens = total;
  const int n_docs = dataset.train.num_docs() + dataset.test.num_docs();
  stats.average_length =
      n_docs > 0 ? static_cast<double>(total) / n_docs : 0.0;
  return stats;
}

}  // namespace text
}  // namespace contratopic
