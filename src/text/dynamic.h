#ifndef CONTRATOPIC_TEXT_DYNAMIC_H_
#define CONTRATOPIC_TEXT_DYNAMIC_H_

// Time-sliced corpus generator for the online topic-modeling extension
// (paper §VI future work, citing AlSumait et al. 2008 / Lau et al. 2012).
// Documents arrive in slices; theme *popularity* drifts between slices via
// a log-space random walk, so early slices are dominated by different
// themes than late ones. All slices share one vocabulary (built over the
// full stream), which lets a single model be trained incrementally.

#include <cstdint>
#include <vector>

#include "text/corpus.h"
#include "text/synthetic.h"

namespace contratopic {
namespace text {

struct DynamicConfig {
  SyntheticConfig base;        // per-slice generative knobs
  int num_slices = 5;
  int docs_per_slice = 800;
  // Stddev of the per-slice log-popularity random walk; 0 = static stream.
  double drift = 0.8;
  uint64_t seed = 97;
};

struct DynamicDataset {
  std::vector<BowCorpus> slices;       // chronological
  Vocabulary vocab;                    // shared
  std::vector<std::string> theme_names;
  // Per-slice theme popularity used by the generator (num_slices x themes);
  // ground truth for trend-detection evaluations.
  std::vector<std::vector<double>> popularity;
};

DynamicDataset GenerateDynamic(const DynamicConfig& config);

}  // namespace text
}  // namespace contratopic

#endif  // CONTRATOPIC_TEXT_DYNAMIC_H_
