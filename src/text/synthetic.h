#ifndef CONTRATOPIC_TEXT_SYNTHETIC_H_
#define CONTRATOPIC_TEXT_SYNTHETIC_H_

// Synthetic theme-structured corpus generator. Stands in for the paper's
// 20NG / Yahoo / NYTimes corpora (see DESIGN.md §2): documents are drawn
// from an LDA-style generative process over a library of word themes, so
// the corpora carry the co-occurrence structure (within-theme NPMI high,
// cross-theme NPMI ~0) that every evaluated metric depends on. Ground-truth
// document labels (the dominant theme) replace the 20NG/Yahoo class labels
// used for clustering evaluation.

#include <cstdint>
#include <string>
#include <vector>

#include "text/corpus.h"
#include "text/preprocess.h"
#include "text/themes.h"

namespace contratopic {
namespace text {

struct SyntheticConfig {
  std::string name = "synthetic";
  int num_themes = 20;
  int words_per_theme = 40;
  int num_background_words = 240;  // Zipf-distributed words shared by all docs.
  int num_docs = 4000;
  double train_fraction = 0.6;
  double avg_doc_length = 60.0;
  // Sparse document-theme prior: small alpha => 1-3 dominant themes/doc.
  double theme_alpha = 0.08;
  // Probability a token is drawn from the background distribution.
  double noise_rate = 0.25;
  // Probability a theme token is borrowed from a *neighboring* theme.
  // Real topics share vocabulary; overlap produces the mixed/duplicated
  // topics that the paper's baselines exhibit on 20NG/Yahoo/NYTimes.
  double theme_overlap = 0.2;
  // Probability a token is an injected stop word (removed by preprocessing;
  // exercises the full pipeline end to end).
  double stopword_rate = 0.08;
  // Zipf exponent for within-theme and background word distributions.
  double zipf_exponent = 1.05;
  uint64_t seed = 17;
  PreprocessOptions preprocess;
};

struct SyntheticDataset {
  std::string name;
  BowCorpus train;
  BowCorpus test;
  std::vector<std::string> theme_names;
};

// Dataset presets mirroring the relative statistics of the paper's Table I
// at CPU scale. `scale` multiplies document counts (1.0 = default size).
SyntheticConfig Preset20NG(double scale = 1.0);
SyntheticConfig PresetYahoo(double scale = 1.0);
SyntheticConfig PresetNYTimes(double scale = 1.0);
// Accepts "20ng-sim", "yahoo-sim", "nytimes-sim".
SyntheticConfig PresetByName(const std::string& name, double scale = 1.0);
// All three preset names, in paper order.
std::vector<std::string> AllPresetNames();

// Runs the generative process, then the real preprocessing pipeline, then
// the train/test split.
SyntheticDataset GenerateSynthetic(const SyntheticConfig& config);

// A *reference* corpus for training word embeddings: same theme library
// (so word clusters match), but different seed, noisier mixing, and mapped
// onto `target_vocab`. This mirrors the paper's use of GloVe vectors
// pretrained on Wikipedia rather than on the evaluation corpus itself --
// embeddings carry generic semantic structure, while corpus-specific
// co-occurrence (the NPMI kernel) stays exclusive to ContraTopic.
BowCorpus GenerateReferenceCorpus(const SyntheticConfig& config,
                                  const Vocabulary& target_vocab);

// Corpus statistics row (Table I): vocab size, #train, #test, avg length,
// total tokens.
struct CorpusStats {
  int vocab_size;
  int train_samples;
  int test_samples;
  double average_length;
  int64_t num_tokens;
};
CorpusStats ComputeStats(const SyntheticDataset& dataset);

}  // namespace text
}  // namespace contratopic

#endif  // CONTRATOPIC_TEXT_SYNTHETIC_H_
