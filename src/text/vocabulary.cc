#include "text/vocabulary.h"

namespace contratopic {
namespace text {

int Vocabulary::AddWord(const std::string& word) {
  auto it = ids_.find(word);
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(words_.size());
  words_.push_back(word);
  ids_.emplace(word, id);
  return id;
}

int Vocabulary::GetId(const std::string& word) const {
  auto it = ids_.find(word);
  return it == ids_.end() ? -1 : it->second;
}

}  // namespace text
}  // namespace contratopic
