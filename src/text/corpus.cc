#include "text/corpus.h"

#include <algorithm>
#include <cmath>

namespace contratopic {
namespace text {

int64_t BowCorpus::TotalTokens() const {
  int64_t total = 0;
  for (const auto& d : docs_) total += d.TotalTokens();
  return total;
}

double BowCorpus::AverageDocLength() const {
  if (docs_.empty()) return 0.0;
  return static_cast<double>(TotalTokens()) / num_docs();
}

bool BowCorpus::HasLabels() const {
  if (docs_.empty()) return false;
  for (const auto& d : docs_) {
    if (d.label < 0) return false;
  }
  return true;
}

tensor::Tensor BowCorpus::DenseBatch(const std::vector<int>& indices) const {
  tensor::Tensor batch(static_cast<int64_t>(indices.size()), vocab_size());
  for (size_t r = 0; r < indices.size(); ++r) {
    CHECK_GE(indices[r], 0);
    CHECK_LT(indices[r], num_docs());
    float* row = batch.row(static_cast<int64_t>(r));
    for (const auto& e : docs_[indices[r]].entries) {
      row[e.word_id] = static_cast<float>(e.count);
    }
  }
  return batch;
}

tensor::Tensor BowCorpus::NormalizedBatch(
    const std::vector<int>& indices) const {
  tensor::Tensor batch = DenseBatch(indices);
  // Sparse-aware but bitwise identical to the dense loop it replaced:
  // skipped columns are exactly +0.0, an IEEE addition identity, so
  // summing only the document's columns in ascending order reproduces the
  // dense left-to-right sum; and 0 * inv is +0.0 for the finite inv below
  // (integer counts give sum >= 1, hence inv in (0, 1]), so scaling only
  // those columns leaves the zeros unchanged. Documents touch a few dozen
  // of the vocab's thousands of columns, and the serial double-add chain
  // over the full row was a measurable slice of serving time.
  std::vector<int64_t> cols;
  for (size_t r = 0; r < indices.size(); ++r) {
    const Document& d = docs_[indices[r]];
    cols.clear();
    cols.reserve(d.entries.size());
    for (const auto& e : d.entries) cols.push_back(e.word_id);
    // Entries are not guaranteed sorted or unique; the dense row already
    // holds the post-scatter (last-wins) value per column, so visiting
    // each distinct column once in ascending order matches the dense scan.
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    float* row = batch.row(static_cast<int64_t>(r));
    double sum = 0.0;
    for (const int64_t c : cols) sum += row[c];
    if (sum <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / sum);
    for (const int64_t c : cols) row[c] *= inv;
  }
  return batch;
}

std::vector<int> BowCorpus::DocumentFrequencies() const {
  std::vector<int> df(vocab_size(), 0);
  for (const auto& d : docs_) {
    for (const auto& e : d.entries) ++df[e.word_id];
  }
  return df;
}

tensor::Tensor BowCorpus::TfIdfBatch(const std::vector<int>& indices,
                                     const std::vector<int>& doc_freq) const {
  CHECK_EQ(static_cast<int>(doc_freq.size()), vocab_size());
  tensor::Tensor batch(static_cast<int64_t>(indices.size()), vocab_size());
  const double n_docs = std::max(1, num_docs());
  for (size_t r = 0; r < indices.size(); ++r) {
    const Document& d = docs_[indices[r]];
    const double total = std::max(1, d.TotalTokens());
    float* row = batch.row(static_cast<int64_t>(r));
    for (const auto& e : d.entries) {
      const double tf = e.count / total;
      const double idf = std::log((1.0 + n_docs) / (1.0 + doc_freq[e.word_id]));
      row[e.word_id] = static_cast<float>(tf * idf);
    }
  }
  return batch;
}

std::vector<int> BowCorpus::Labels(const std::vector<int>& indices) const {
  std::vector<int> labels(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    const int label = docs_[indices[i]].label;
    CHECK_GE(label, 0) << "document " << indices[i] << " is unlabeled";
    labels[i] = label;
  }
  return labels;
}

TrainTestSplit SplitCorpus(const BowCorpus& corpus, double train_fraction,
                           util::Rng& rng) {
  CHECK_GT(train_fraction, 0.0);
  CHECK_LT(train_fraction, 1.0);
  std::vector<int> order(corpus.num_docs());
  for (int i = 0; i < corpus.num_docs(); ++i) order[i] = i;
  rng.Shuffle(order);
  const int n_train = static_cast<int>(corpus.num_docs() * train_fraction);
  std::vector<Document> train_docs;
  std::vector<Document> test_docs;
  train_docs.reserve(n_train);
  test_docs.reserve(corpus.num_docs() - n_train);
  for (int i = 0; i < corpus.num_docs(); ++i) {
    if (i < n_train) {
      train_docs.push_back(corpus.doc(order[i]));
    } else {
      test_docs.push_back(corpus.doc(order[i]));
    }
  }
  return {
      BowCorpus(corpus.vocab(), std::move(train_docs), corpus.label_names()),
      BowCorpus(corpus.vocab(), std::move(test_docs), corpus.label_names())};
}

BatchIterator::BatchIterator(int num_docs, int batch_size, util::Rng& rng)
    : num_docs_(num_docs),
      batch_size_(std::min(batch_size, num_docs)),
      rng_(&rng),
      order_(num_docs) {
  CHECK_GT(num_docs, 0);
  CHECK_GT(batch_size, 0);
  for (int i = 0; i < num_docs; ++i) order_[i] = i;
  rng_->Shuffle(order_);
}

std::vector<int> BatchIterator::Next() {
  if (cursor_ + batch_size_ > num_docs_) {
    rng_->Shuffle(order_);
    cursor_ = 0;
  }
  std::vector<int> batch(order_.begin() + cursor_,
                         order_.begin() + cursor_ + batch_size_);
  cursor_ += batch_size_;
  return batch;
}

int BatchIterator::batches_per_epoch() const {
  return std::max(1, num_docs_ / batch_size_);
}

void BatchIterator::RestoreState(std::vector<int> order, int cursor) {
  CHECK_EQ(static_cast<int>(order.size()), num_docs_)
      << "restored batch order is for a different corpus size";
  CHECK_GE(cursor, 0);
  CHECK_LE(cursor, num_docs_);
  order_ = std::move(order);
  cursor_ = cursor;
}

}  // namespace text
}  // namespace contratopic
