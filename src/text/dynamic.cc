#include "text/dynamic.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace contratopic {
namespace text {

DynamicDataset GenerateDynamic(const DynamicConfig& config) {
  CHECK_GT(config.num_slices, 0);
  CHECK_GT(config.docs_per_slice, 0);
  util::Rng rng(config.seed);

  const int num_themes = config.base.num_themes;
  const std::vector<Theme> themes =
      MakeThemes(num_themes, config.base.words_per_theme);

  // Popularity random walk in log space, renormalized per slice.
  std::vector<double> log_pop(num_themes, 0.0);
  DynamicDataset dataset;
  dataset.popularity.resize(config.num_slices);

  // Generate token documents slice by slice, tagging each with its slice.
  std::vector<std::vector<std::string>> all_docs;
  std::vector<int> all_labels;
  std::vector<int> all_slices;
  for (int s = 0; s < config.num_slices; ++s) {
    for (auto& lp : log_pop) lp += rng.Normal(0.0, config.drift);
    std::vector<double> pop(num_themes);
    double max_lp = *std::max_element(log_pop.begin(), log_pop.end());
    double total = 0.0;
    for (int t = 0; t < num_themes; ++t) {
      pop[t] = std::exp(log_pop[t] - max_lp);
      total += pop[t];
    }
    for (auto& p : pop) p /= total;
    dataset.popularity[s] = pop;

    SyntheticConfig slice_config = config.base;
    slice_config.num_docs = config.docs_per_slice;
    for (int d = 0; d < config.docs_per_slice; ++d) {
      // Theme mixture: Dirichlet weighted by the slice popularity.
      std::vector<double> alpha(num_themes);
      for (int t = 0; t < num_themes; ++t) {
        alpha[t] = std::max(1e-4, slice_config.theme_alpha * num_themes *
                                      pop[t]);
      }
      const std::vector<double> theta = rng.Dirichlet(alpha);
      const int length = std::max(
          3,
          static_cast<int>(rng.Normal(
              slice_config.avg_doc_length,
              std::sqrt(slice_config.avg_doc_length))));
      std::vector<std::string> tokens;
      std::vector<int> theme_counts(num_themes, 0);
      for (int i = 0; i < length; ++i) {
        const double u = rng.Uniform();
        if (u < slice_config.noise_rate) {
          tokens.push_back(util::StrFormat(
              "bg_word%03d",
              static_cast<int>(rng.UniformInt(
                  slice_config.num_background_words))));
        } else {
          const int z = rng.Categorical(theta);
          ++theme_counts[z];
          const int w = static_cast<int>(
              rng.UniformInt(slice_config.words_per_theme));
          tokens.push_back(themes[z].words[w]);
        }
      }
      int label = 0;
      for (int t = 1; t < num_themes; ++t) {
        if (theme_counts[t] > theme_counts[label]) label = t;
      }
      all_docs.push_back(std::move(tokens));
      all_labels.push_back(label);
      all_slices.push_back(s);
    }
  }

  for (const auto& t : themes) dataset.theme_names.push_back(t.name);

  // One vocabulary over the whole stream, then split back into slices.
  BowCorpus full = PreprocessTokenized(all_docs, all_labels,
                                       config.base.preprocess,
                                       dataset.theme_names);
  dataset.vocab = full.vocab();

  // PreprocessTokenized may drop short documents, so re-map by replaying
  // the same pipeline per document: simpler and robust -- build slices
  // directly from the token lists using the shared vocabulary.
  dataset.slices.assign(config.num_slices, BowCorpus());
  std::vector<std::vector<Document>> slice_docs(config.num_slices);
  for (size_t i = 0; i < all_docs.size(); ++i) {
    std::unordered_map<int, int> counts;
    for (const auto& token : all_docs[i]) {
      const int id = dataset.vocab.GetId(token);
      if (id >= 0) ++counts[id];
    }
    if (static_cast<int>(counts.size()) <
        config.base.preprocess.min_doc_length) {
      continue;
    }
    Document d;
    d.label = all_labels[i];
    for (const auto& [id, count] : counts) d.entries.push_back({id, count});
    std::sort(d.entries.begin(), d.entries.end(),
              [](const BowEntry& a, const BowEntry& b) {
                return a.word_id < b.word_id;
              });
    slice_docs[all_slices[i]].push_back(std::move(d));
  }
  for (int s = 0; s < config.num_slices; ++s) {
    dataset.slices[s] = BowCorpus(dataset.vocab, std::move(slice_docs[s]),
                                  dataset.theme_names);
  }
  return dataset;
}

}  // namespace text
}  // namespace contratopic
