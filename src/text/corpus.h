#ifndef CONTRATOPIC_TEXT_CORPUS_H_
#define CONTRATOPIC_TEXT_CORPUS_H_

// Sparse bag-of-words corpus representation shared by every topic model.

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "text/vocabulary.h"
#include "util/rng.h"

namespace contratopic {
namespace text {

// One (word_id, count) entry of a document.
struct BowEntry {
  int word_id;
  int count;
};

struct Document {
  std::vector<BowEntry> entries;
  int label = -1;  // Ground-truth class (dominant theme); -1 if unlabeled.

  int TotalTokens() const {
    int total = 0;
    for (const auto& e : entries) total += e.count;
    return total;
  }
  int NumUniqueWords() const { return static_cast<int>(entries.size()); }
};

class BowCorpus {
 public:
  BowCorpus() = default;
  BowCorpus(Vocabulary vocab, std::vector<Document> docs,
            std::vector<std::string> label_names = {})
      : vocab_(std::move(vocab)),
        docs_(std::move(docs)),
        label_names_(std::move(label_names)) {}

  int num_docs() const { return static_cast<int>(docs_.size()); }
  int vocab_size() const { return vocab_.size(); }
  int num_labels() const { return static_cast<int>(label_names_.size()); }

  const Vocabulary& vocab() const { return vocab_; }
  Vocabulary& mutable_vocab() { return vocab_; }
  const std::vector<Document>& docs() const { return docs_; }
  const Document& doc(int i) const {
    CHECK_GE(i, 0);
    CHECK_LT(i, num_docs());
    return docs_[i];
  }
  std::vector<Document>& mutable_docs() { return docs_; }
  const std::vector<std::string>& label_names() const { return label_names_; }

  int64_t TotalTokens() const;
  double AverageDocLength() const;

  // True if every document carries a non-negative label.
  bool HasLabels() const;

  // Dense (len(indices) x V) count matrix for the given documents.
  tensor::Tensor DenseBatch(const std::vector<int>& indices) const;
  // Same, but each row normalized to sum 1 (empty docs left as zero).
  tensor::Tensor NormalizedBatch(const std::vector<int>& indices) const;
  // Per-word document frequency (number of docs containing each word).
  std::vector<int> DocumentFrequencies() const;
  // tf-idf matrix for the given documents (used by CLNTM's augmentations).
  tensor::Tensor TfIdfBatch(const std::vector<int>& indices,
                            const std::vector<int>& doc_freq) const;

  // Labels of the given documents (CHECK-fails if unlabeled).
  std::vector<int> Labels(const std::vector<int>& indices) const;

 private:
  Vocabulary vocab_;
  std::vector<Document> docs_;
  std::vector<std::string> label_names_;
};

// Deterministic shuffled split of `corpus` into train/test by fraction.
struct TrainTestSplit {
  BowCorpus train;
  BowCorpus test;
};
TrainTestSplit SplitCorpus(const BowCorpus& corpus, double train_fraction,
                           util::Rng& rng);

// Shuffled minibatch index iterator.
class BatchIterator {
 public:
  BatchIterator(int num_docs, int batch_size, util::Rng& rng);

  // Returns the next batch of document indices; reshuffles each epoch.
  std::vector<int> Next();

  int batches_per_epoch() const;

  // Shuffle position, for checkpoint/resume: restoring (order, cursor) —
  // together with the shared Rng's state — makes the subsequent Next()
  // sequence bitwise-identical to the saved iterator's.
  const std::vector<int>& order() const { return order_; }
  int cursor() const { return cursor_; }
  // `order` must be a permutation of [0, num_docs); cursor in
  // [0, num_docs].
  void RestoreState(std::vector<int> order, int cursor);

 private:
  int num_docs_;
  int batch_size_;
  util::Rng* rng_;
  std::vector<int> order_;
  int cursor_ = 0;
};

}  // namespace text
}  // namespace contratopic

#endif  // CONTRATOPIC_TEXT_CORPUS_H_
