#ifndef CONTRATOPIC_TEXT_VOCABULARY_H_
#define CONTRATOPIC_TEXT_VOCABULARY_H_

// Bidirectional word <-> id mapping.

#include <string>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace contratopic {
namespace text {

class Vocabulary {
 public:
  Vocabulary() = default;

  // Returns the id of `word`, adding it if absent.
  int AddWord(const std::string& word);

  // Returns the id or -1 if unknown.
  int GetId(const std::string& word) const;

  bool Contains(const std::string& word) const { return GetId(word) >= 0; }

  const std::string& Word(int id) const {
    CHECK_GE(id, 0);
    CHECK_LT(id, static_cast<int>(words_.size()));
    return words_[id];
  }

  int size() const { return static_cast<int>(words_.size()); }

  const std::vector<std::string>& words() const { return words_; }

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace text
}  // namespace contratopic

#endif  // CONTRATOPIC_TEXT_VOCABULARY_H_
