#ifndef CONTRATOPIC_TEXT_THEMES_H_
#define CONTRATOPIC_TEXT_THEMES_H_

// A library of human-readable word themes used to synthesize corpora with
// realistic co-occurrence structure. The first entries mirror the topical
// domains visible in the paper's case studies (Tables IV-VI: space,
// medicine, religion, Middle-East politics, graphics, sports, cooking,
// hardware, wrestling, ...). When a dataset preset needs more themes than
// the curated list provides, additional themes are generated procedurally
// ("themeN_wordM"), which keeps co-occurrence structure without hand data.

#include <string>
#include <vector>

namespace contratopic {
namespace text {

struct Theme {
  std::string name;                 // e.g. "space"
  std::vector<std::string> words;   // theme vocabulary, most-central first
};

// The curated themes (30 themes, 16 words each).
const std::vector<Theme>& CuratedThemes();

// Returns `count` themes: curated first, then procedurally generated ones
// with `words_per_theme` words each (curated themes are truncated/padded
// procedurally to `words_per_theme`).
std::vector<Theme> MakeThemes(int count, int words_per_theme);

}  // namespace text
}  // namespace contratopic

#endif  // CONTRATOPIC_TEXT_THEMES_H_
