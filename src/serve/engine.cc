#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "tensor/tensor.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace contratopic {
namespace serve {

namespace {

using tensor::Tensor;
using util::Status;
using util::StatusOr;

// Latency buckets in milliseconds: CPU inference on tiny batches lands in
// the sub-millisecond to tens-of-ms range.
std::vector<double> LatencyBoundsMs() {
  return {0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
          2.5,  5.0,   10.0, 25.0, 50.0, 100.0, 250.0, 1000.0};
}

std::vector<double> BatchSizeBounds() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0};
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StatusOr<std::unique_ptr<InferenceEngine>> InferenceEngine::Load(
    const std::string& path, const Options& options) {
  StatusOr<Checkpoint> ckpt = ReadCheckpoint(path);
  if (!ckpt.ok()) return ckpt.status();
  return FromCheckpoint(std::move(ckpt).value(), options);
}

StatusOr<std::unique_ptr<InferenceEngine>> InferenceEngine::FromCheckpoint(
    Checkpoint checkpoint, const Options& options) {
  StatusOr<std::unique_ptr<topicmodel::NeuralTopicModel>> model =
      RestoreModel(checkpoint);
  if (!model.ok()) return model.status();
  return std::unique_ptr<InferenceEngine>(new InferenceEngine(
      std::move(checkpoint), std::move(model).value(), options));
}

InferenceEngine::InferenceEngine(
    Checkpoint checkpoint,
    std::unique_ptr<topicmodel::NeuralTopicModel> model,
    const Options& options)
    : options_(options),
      checkpoint_(std::move(checkpoint)),
      model_(std::move(model)),
      breaker_(options.breaker) {
  MicroBatcher::Options batcher_options;
  batcher_options.max_batch_size = options_.max_batch_size;
  batcher_options.max_queue_depth = options_.max_queue_depth;
  batcher_options.retry = options_.retry;
  batcher_options.on_batch_done = [this](const util::Status& status) {
    if (status.ok()) {
      breaker_.RecordSuccess();
    } else {
      breaker_.RecordFailure();
    }
  };
  util::Histogram& batch_hist = util::MetricsRegistry::Global().histogram(
      "serve.batch_size", BatchSizeBounds());
  util::Counter& batch_counter =
      util::MetricsRegistry::Global().counter("serve.batches");
  batcher_options.on_batch = [&batch_hist, &batch_counter](int batch_size) {
    batch_hist.Observe(static_cast<double>(batch_size));
    batch_counter.Increment();
  };
  batcher_ = std::make_unique<MicroBatcher>(
      [this](const std::vector<MicroBatcher::Request>& requests) {
        return RunBatch(requests);
      },
      batcher_options);
  // Pre-create the remaining instruments so a manifest snapshot lists
  // them even for an idle engine.
  util::MetricsRegistry::Global().counter("serve.requests");
  util::MetricsRegistry::Global().counter("serve.cache_hits");
  util::MetricsRegistry::Global().counter("serve.shed");
  util::MetricsRegistry::Global().counter("serve.retries");
  util::MetricsRegistry::Global().counter("serve.degraded");
  util::MetricsRegistry::Global().gauge("serve.queue_depth");
  util::MetricsRegistry::Global().histogram("serve.latency_ms",
                                            LatencyBoundsMs());
}

InferenceEngine::~InferenceEngine() = default;

StatusOr<MicroBatcher::Request> InferenceEngine::Canonicalize(
    const BowDoc& doc) const {
  if (doc.empty()) {
    return Status::InvalidArgument("empty document: no (word, count) pairs");
  }
  MicroBatcher::Request request(doc);
  std::sort(request.begin(), request.end());
  MicroBatcher::Request merged;
  merged.reserve(request.size());
  for (const auto& [word, count] : request) {
    if (word < 0 || word >= vocab_size()) {
      return Status::InvalidArgument(
          "word id " + std::to_string(word) + " outside vocabulary [0, " +
          std::to_string(vocab_size()) + ")");
    }
    if (count <= 0) {
      return Status::InvalidArgument("non-positive count " +
                                     std::to_string(count) + " for word " +
                                     std::to_string(word));
    }
    if (!merged.empty() && merged.back().first == word) {
      merged.back().second += count;
    } else {
      merged.emplace_back(word, count);
    }
  }
  return merged;
}

MicroBatcher::BatchResult InferenceEngine::RunBatch(
    const std::vector<MicroBatcher::Request>& requests) {
  // Chaos hook: a fired "serve.batch" stands in for a transient model
  // failure (bad page-in, OOM-killed worker). The batcher retries on the
  // configured schedule before giving up.
  if (util::FaultInjector::Global().ShouldFail("serve.batch")) {
    return Status::Unavailable("injected model batch failure");
  }
  const int64_t v = vocab_size();
  Tensor batch(static_cast<int64_t>(requests.size()), v);
  for (size_t r = 0; r < requests.size(); ++r) {
    float* row = batch.row(static_cast<int64_t>(r));
    for (const auto& [word, count] : requests[r]) {
      row[word] = static_cast<float>(count);
    }
    // Exactly text::BowCorpus::NormalizedBatch: a full-row double sum
    // (zeros add exactly) and one float reciprocal, so served results
    // are bitwise-identical to training-side InferTheta.
    double sum = 0.0;
    for (int64_t c = 0; c < v; ++c) sum += row[c];
    if (sum <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t c = 0; c < v; ++c) row[c] *= inv;
  }
  Tensor theta;
  if (options_.precision.has_value()) {
    // Pin the batch to the engine's precision; the scope restores the
    // process-wide setting for whoever shares this pool worker.
    tensor::ScopedServePrecision scoped(*options_.precision);
    theta = model_->InferThetaBatch(batch);
  } else {
    theta = model_->InferThetaBatch(batch);
  }
  CHECK_EQ(theta.rows(), static_cast<int64_t>(requests.size()));
  CHECK_EQ(theta.cols(), static_cast<int64_t>(num_topics()));
  std::vector<std::vector<float>> rows;
  rows.reserve(requests.size());
  for (int64_t r = 0; r < theta.rows(); ++r) {
    rows.emplace_back(theta.row(r), theta.row(r) + theta.cols());
  }
  return rows;
}

std::string InferenceEngine::CacheKey(const MicroBatcher::Request& request) {
  // The canonical form is unique per document, so its bytes are an exact
  // key (no collision handling needed).
  std::string key(request.size() * sizeof(request[0]), '\0');
  if (!request.empty()) {
    std::memcpy(key.data(), request.data(), key.size());
  }
  return key;
}

bool InferenceEngine::CacheLookup(const std::string& key,
                                  std::vector<float>* theta) {
  if (options_.cache_capacity <= 0) return false;
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) return false;
  cache_.splice(cache_.begin(), cache_, it->second);  // bump to front
  *theta = it->second->theta;
  return true;
}

void InferenceEngine::CacheInsert(const std::string& key,
                                  const std::vector<float>& theta) {
  if (options_.cache_capacity <= 0) return;
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    cache_.splice(cache_.begin(), cache_, it->second);
    return;
  }
  cache_.push_front({key, theta});
  cache_index_[key] = cache_.begin();
  while (static_cast<int>(cache_.size()) > options_.cache_capacity) {
    cache_index_.erase(cache_.back().key);
    cache_.pop_back();
  }
}

void InferenceEngine::InferThetaAsync(
    const BowDoc& doc, std::function<void(ThetaResult)> done) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  StatusOr<MicroBatcher::Request> canonical = Canonicalize(doc);
  if (!canonical.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++invalid_;
    }
    done(canonical.status());
    return;
  }
  metrics.counter("serve.requests").Increment();
  const std::string key = CacheKey(*canonical);
  std::vector<float> cached;
  if (CacheLookup(key, &cached)) {
    metrics.counter("serve.cache_hits").Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++cache_hits_;
    }
    done(std::move(cached));
    return;
  }
  // Degraded mode: a cache miss needs the (failing) model. Fast-fail
  // unless the breaker lets this call through as a recovery probe.
  if (!breaker_.AllowRequest()) {
    metrics.counter("serve.degraded").Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++degraded_;
    }
    done(util::Status::Unavailable(
        "engine is degraded (circuit breaker open after repeated model "
        "failures); cached documents and TopicTopWords remain available"));
    return;
  }
  const double start_ms = NowMs();
  batcher_->Submit(
      std::move(canonical).value(),
      [this, key, done = std::move(done), start_ms](
          MicroBatcher::Result result) {
        util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
        if (result.ok()) {
          CacheInsert(key, *result);
          metrics.histogram("serve.latency_ms").Observe(NowMs() - start_ms);
        } else if (result.status().code() ==
                   util::StatusCode::kUnavailable) {
          metrics.counter("serve.shed").Increment();
        }
        done(std::move(result));
      });
  metrics.gauge("serve.queue_depth")
      .Set(static_cast<double>(batcher_->queue_depth()));
}

InferenceEngine::ThetaResult InferenceEngine::InferTheta(const BowDoc& doc) {
  std::promise<ThetaResult> promise;
  std::future<ThetaResult> future = promise.get_future();
  InferThetaAsync(doc, [&promise](ThetaResult result) {
    promise.set_value(std::move(result));
  });
  return future.get();
}

StatusOr<std::vector<std::pair<int, float>>> InferenceEngine::TopTopics(
    const BowDoc& doc, int k) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  ThetaResult theta = InferTheta(doc);
  if (!theta.ok()) return theta.status();
  Tensor row(1, static_cast<int64_t>(theta->size()));
  std::copy(theta->begin(), theta->end(), row.data());
  std::vector<std::pair<int, float>> top;
  for (int t : row.TopKIndicesOfRow(0, std::min(k, num_topics()))) {
    top.emplace_back(t, (*theta)[t]);
  }
  return top;
}

StatusOr<std::vector<std::string>> InferenceEngine::TopicTopWords(
    int topic, int k) const {
  if (topic < 0 || topic >= num_topics()) {
    return Status::InvalidArgument(
        "topic " + std::to_string(topic) + " outside [0, " +
        std::to_string(num_topics()) + ")");
  }
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  const std::vector<int>& ids = checkpoint_.top_words[topic];
  std::vector<std::string> words;
  words.reserve(std::min<size_t>(ids.size(), k));
  for (size_t i = 0; i < ids.size() && i < static_cast<size_t>(k); ++i) {
    words.push_back(checkpoint_.vocab[ids[i]]);
  }
  return words;
}

InferenceEngine::HealthState InferenceEngine::health() const {
  switch (breaker_.state()) {
    case CircuitBreaker::State::kClosed:
      return HealthState::kHealthy;
    case CircuitBreaker::State::kOpen:
      return HealthState::kDegraded;
    case CircuitBreaker::State::kHalfOpen:
      return HealthState::kRecovering;
  }
  return HealthState::kHealthy;  // unreachable
}

InferenceEngine::Stats InferenceEngine::stats() const {
  const MicroBatcher::Stats batcher_stats = batcher_->stats();
  Stats stats;
  stats.shed = batcher_stats.shed;
  stats.batches = batcher_stats.batches;
  stats.retries = batcher_stats.retries;
  stats.deadline_expired = batcher_stats.deadline_expired;
  stats.max_batch_size_seen = batcher_stats.max_batch_size_seen;
  stats.max_queue_depth_seen = batcher_stats.max_queue_depth_seen;
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats.cache_hits = cache_hits_;
  stats.invalid = invalid_;
  stats.degraded = degraded_;
  // Cache hits never reach the batcher, so total accepted requests are
  // the batcher's plus the cache's.
  stats.requests = batcher_stats.requests + cache_hits_;
  return stats;
}

void InferenceEngine::EmitTelemetry(util::RunTelemetry* telemetry) const {
  if (telemetry == nullptr) return;
  const Stats s = stats();
  util::ServeTelemetry record;
  record.requests = s.requests;
  record.batches = s.batches;
  record.cache_hits = s.cache_hits;
  record.shed = s.shed;
  record.invalid = s.invalid;
  record.max_batch_size = s.max_batch_size_seen;
  record.max_queue_depth = s.max_queue_depth_seen;
  const util::HistogramSnapshot latency =
      util::MetricsRegistry::Global().histogram("serve.latency_ms")
          .Snapshot();
  if (latency.count > 0) {
    record.latency_p50_ms = latency.Percentile(0.50);
    record.latency_p95_ms = latency.Percentile(0.95);
    record.latency_p99_ms = latency.Percentile(0.99);
  }
  telemetry->RecordServeStats(record);
}

}  // namespace serve
}  // namespace contratopic
