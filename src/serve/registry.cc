#include "serve/registry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <unordered_set>

#include "util/fault.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

namespace contratopic {
namespace serve {

namespace {

using util::Status;
using util::StatusOr;

// Stage failures worth retrying: everything else (kDataLoss corruption,
// kFailedPrecondition gate verdicts, kInvalidArgument structure) is a
// property of the candidate and retrying cannot change it.
bool IsTransient(const Status& status) {
  return status.code() == util::StatusCode::kUnavailable ||
         status.code() == util::StatusCode::kIOError;
}

// Rollback is an in-memory pointer swap and must always complete; the
// fault site models transient failures around it (e.g. persisting the
// rollback decision). After this many consecutive fires the rollback
// proceeds anyway rather than leaving a sick model published.
constexpr int kMaxRollbackRetries = 64;

}  // namespace

Status ScanCheckpointFinite(const Checkpoint& checkpoint) {
  auto scan = [](const tensor::Tensor& t, const std::string& name) -> Status {
    const float* data = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
      if (!std::isfinite(data[i])) {
        return Status::DataLoss("non-finite value in checkpoint tensor '" +
                                name + "' at index " + std::to_string(i));
      }
    }
    return Status::OK();
  };
  for (const auto& [name, t] : checkpoint.tensors) {
    CT_RETURN_IF_ERROR(scan(t, name));
  }
  return scan(checkpoint.beta, "beta");
}

double TopWordChurn(const std::vector<std::vector<int>>& incumbent,
                    const std::vector<std::vector<int>>& candidate, int k) {
  const size_t topics = std::min(incumbent.size(), candidate.size());
  if (topics == 0 || k <= 0) return 0.0;
  double total = 0.0;
  for (size_t t = 0; t < topics; ++t) {
    const size_t inc_k =
        std::min<size_t>(incumbent[t].size(), static_cast<size_t>(k));
    if (inc_k == 0) continue;
    std::unordered_set<int> cand(
        candidate[t].begin(),
        candidate[t].begin() +
            std::min<size_t>(candidate[t].size(), static_cast<size_t>(k)));
    size_t missing = 0;
    for (size_t i = 0; i < inc_k; ++i) {
      if (cand.find(incumbent[t][i]) == cand.end()) ++missing;
    }
    total += static_cast<double>(missing) / static_cast<double>(inc_k);
  }
  return total / static_cast<double>(topics);
}

double MeanTopicCoherence(const std::vector<std::vector<int>>& top_words,
                          const eval::NpmiMatrix& npmi, int k) {
  if (top_words.empty() || k <= 0) return 0.0;
  double total = 0.0;
  for (const std::vector<int>& topic : top_words) {
    std::vector<int> ids;
    ids.reserve(static_cast<size_t>(k));
    for (int id : topic) {
      if (static_cast<int>(ids.size()) >= k) break;
      if (id >= 0 && id < npmi.vocab_size()) ids.push_back(id);
    }
    total += npmi.MeanPairwise(ids);
  }
  return total / static_cast<double>(top_words.size());
}

ModelRegistry::ModelRegistry(const Options& options) : options_(options) {
  CHECK_GE(options_.max_history, 1);
  CHECK_GE(options_.probation_requests, 0);
  // Pre-create the swap instruments so a manifest snapshot lists them
  // even when no swap has happened yet.
  util::MetricsRegistry::Global().counter("swap.published");
  util::MetricsRegistry::Global().counter("swap.rejected");
  util::MetricsRegistry::Global().counter("swap.rolled_back");
  util::MetricsRegistry::Global().counter("swap.retries");
}

ModelRegistry::~ModelRegistry() = default;

StatusOr<std::unique_ptr<ModelRegistry>> ModelRegistry::Create(
    const std::string& initial_checkpoint, const Options& options) {
  std::unique_ptr<ModelRegistry> registry(new ModelRegistry(options));
  StatusOr<SwapReport> report = registry->TryPublish(initial_checkpoint);
  if (!report.ok()) return report.status();
  if (report->outcome != SwapOutcome::kPublished) {
    return report->reject_reason;
  }
  return registry;
}

Status ModelRegistry::RunStage(const std::string& site,
                               const std::function<Status()>& fn,
                               int* retries) {
  const int attempts = std::max(1, options_.swap_retry.max_attempts);
  Status status = Status::OK();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      ++*retries;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.swap_retries;
      }
      util::MetricsRegistry::Global().counter("swap.retries").Increment();
      // BackoffMs(k) is the deterministic wait before attempt k+1.
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.swap_retry.BackoffMs(attempt - 1)));
    }
    if (util::FaultInjector::Global().ShouldFail(site)) {
      status = Status::Unavailable("injected " + site + " failure");
    } else {
      status = fn();
    }
    if (status.ok() || !IsTransient(status)) return status;
  }
  return status;
}

Status ModelRegistry::ValidateCandidate(const Checkpoint& candidate,
                                        InferenceEngine& engine,
                                        const Slot* incumbent,
                                        SwapReport* report) const {
  CT_RETURN_IF_ERROR(ScanCheckpointFinite(candidate));

  // Theta sanity on the pinned probe batch: every row must be a finite,
  // non-negative, ~normalized distribution before the model may serve.
  for (size_t p = 0; p < options_.gate.probe_docs.size(); ++p) {
    ThetaResult theta = engine.InferTheta(options_.gate.probe_docs[p]);
    if (!theta.ok()) {
      return Status::FailedPrecondition("probe document " + std::to_string(p) +
                                        " failed: " +
                                        theta.status().ToString());
    }
    double sum = 0.0;
    for (float v : *theta) {
      if (!std::isfinite(v) || v < 0.0f) {
        return Status::FailedPrecondition(
            "probe document " + std::to_string(p) +
            " produced a non-finite or negative theta entry");
      }
      sum += v;
    }
    if (std::fabs(sum - 1.0) > 1e-3) {
      return Status::FailedPrecondition(
          "probe document " + std::to_string(p) +
          " produced an unnormalized theta (sum " + std::to_string(sum) + ")");
    }
  }

  if (incumbent == nullptr) return Status::OK();
  const Checkpoint& current = incumbent->engine->checkpoint();

  // A swap may not change the serving contract out from under clients.
  if (candidate.descriptor.vocab_size != current.descriptor.vocab_size) {
    return Status::FailedPrecondition(
        "candidate vocabulary size " +
        std::to_string(candidate.descriptor.vocab_size) +
        " differs from the incumbent's " +
        std::to_string(current.descriptor.vocab_size));
  }
  if (candidate.descriptor.config.num_topics !=
      current.descriptor.config.num_topics) {
    return Status::FailedPrecondition(
        "candidate topic count " +
        std::to_string(candidate.descriptor.config.num_topics) +
        " differs from the incumbent's " +
        std::to_string(current.descriptor.config.num_topics));
  }

  report->top_word_churn = TopWordChurn(current.top_words, candidate.top_words,
                                        options_.gate.churn_top_words);
  if (report->top_word_churn > options_.gate.max_top_word_churn) {
    return Status::FailedPrecondition(
        "top-word churn " + std::to_string(report->top_word_churn) +
        " exceeds the gate's " +
        std::to_string(options_.gate.max_top_word_churn));
  }

  if (coherence_reference_ != nullptr) {
    report->candidate_coherence =
        MeanTopicCoherence(candidate.top_words, *coherence_reference_,
                           options_.gate.churn_top_words);
    report->incumbent_coherence =
        MeanTopicCoherence(current.top_words, *coherence_reference_,
                           options_.gate.churn_top_words);
    if (report->candidate_coherence <
        report->incumbent_coherence - options_.gate.max_coherence_drop) {
      return Status::FailedPrecondition(
          "candidate coherence " +
          std::to_string(report->candidate_coherence) + " drops more than " +
          std::to_string(options_.gate.max_coherence_drop) +
          " below the incumbent's " +
          std::to_string(report->incumbent_coherence));
    }
  }
  return Status::OK();
}

void ModelRegistry::EmitSwapEvent(const char* name, const SwapReport& report) {
  util::MetricsRegistry::Global().counter(name).Increment();
  if (telemetry_ == nullptr) return;
  telemetry_->RecordStage(
      name, 0.0,
      {{"version", static_cast<double>(report.version)},
       {"top_word_churn", report.top_word_churn},
       {"candidate_coherence", report.candidate_coherence},
       {"incumbent_coherence", report.incumbent_coherence},
       {"retries", static_cast<double>(report.retries)}});
}

void ModelRegistry::Publish(std::shared_ptr<Slot> slot) {
  std::shared_ptr<Slot> old = current_.load(std::memory_order_acquire);
  if (old != nullptr) {
    history_.push_back(old);
    while (static_cast<int>(history_.size()) > options_.max_history) {
      // Dropping the oldest slot releases the registry's reference; the
      // engine drains and dies when the last in-flight reader lets go.
      history_.pop_front();
    }
  }
  current_.store(std::move(slot), std::memory_order_release);
}

StatusOr<ModelRegistry::SwapReport> ModelRegistry::TryPublish(
    const std::string& checkpoint_path) {
  std::lock_guard<std::mutex> lock(swap_mu_);
  SwapReport report;
  const std::shared_ptr<Slot> incumbent =
      current_.load(std::memory_order_acquire);

  auto reject = [&](Status why) -> SwapReport {
    report.outcome = SwapOutcome::kRejected;
    report.version = -1;
    report.reject_reason = std::move(why);
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.rejected;
    }
    EmitSwapEvent("swap.rejected", report);
    return report;
  };

  // Stage 1: load. ReadCheckpoint verifies magic, version, and the
  // payload checksum, so a truncated or bit-flipped candidate surfaces
  // here as kDataLoss -- permanent, never retried, incumbent untouched.
  Checkpoint checkpoint;
  bool loaded = false;
  Status status = RunStage(
      "registry.load",
      [&]() -> Status {
        if (loaded) return Status::OK();
        StatusOr<Checkpoint> read = ReadCheckpoint(checkpoint_path);
        if (!read.ok()) return read.status();
        checkpoint = std::move(read).value();
        loaded = true;
        return Status::OK();
      },
      &report.retries);
  if (!status.ok()) return reject(std::move(status));

  // Stage 2: validate. Restoring the model (engine construction) is part
  // of validation -- a candidate that cannot be restored can certainly
  // not serve. The engine is built once and reused across retry attempts.
  std::shared_ptr<InferenceEngine> engine;
  status = RunStage(
      "registry.validate",
      [&]() -> Status {
        if (engine == nullptr) {
          StatusOr<std::unique_ptr<InferenceEngine>> built =
              InferenceEngine::FromCheckpoint(std::move(checkpoint),
                                              options_.engine);
          if (!built.ok()) return built.status();
          engine = std::move(built).value();
        }
        return ValidateCandidate(engine->checkpoint(), *engine,
                                 incumbent.get(), &report);
      },
      &report.retries);
  if (!status.ok()) return reject(std::move(status));

  // Stage 3: swap. Assemble the slot that will carry the new version.
  std::shared_ptr<Slot> slot;
  status = RunStage(
      "registry.swap",
      [&]() -> Status {
        if (slot == nullptr) {
          slot = std::make_shared<Slot>();
          slot->engine = std::move(engine);
        }
        return Status::OK();
      },
      &report.retries);
  if (!status.ok()) return reject(std::move(status));

  // Stage 4: publish. The fault site fires *before* the pointer store:
  // a failed publication leaves the incumbent serving, bitwise
  // untouched. The store itself is the single atomic publication point.
  status = RunStage(
      "registry.publish", [&]() -> Status { return Status::OK(); },
      &report.retries);
  if (!status.ok()) return reject(std::move(status));

  slot->version = next_version_++;
  slot->probation_remaining.store(
      incumbent != nullptr ? options_.probation_requests : 0,
      std::memory_order_relaxed);
  report.outcome = SwapOutcome::kPublished;
  report.version = slot->version;
  Publish(std::move(slot));
  if (incumbent != nullptr) {
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.published;
    }
    EmitSwapEvent("swap.published", report);
  }
  return report;
}

std::shared_ptr<ModelRegistry::Slot> ModelRegistry::RollBack(
    const std::shared_ptr<Slot>& sick) {
  std::lock_guard<std::mutex> lock(swap_mu_);
  std::shared_ptr<Slot> current = current_.load(std::memory_order_acquire);
  if (current != sick) return current;  // raced: already swapped away
  if (history_.empty()) return current;  // nothing to roll back to
  // The rollback fault site is retried until it clears (bounded): the
  // pointer swap itself cannot fail, and a sick model must never stay
  // published because chaos was armed.
  for (int spin = 0; spin < kMaxRollbackRetries &&
                     util::FaultInjector::Global().ShouldFail(
                         "registry.rollback");
       ++spin) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.swap_retries;
  }
  std::shared_ptr<Slot> restored = history_.back();
  history_.pop_back();
  restored->probation_remaining.store(0, std::memory_order_relaxed);
  current_.store(restored, std::memory_order_release);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.rolled_back;
  }
  SwapReport report;
  report.version = restored->version;
  EmitSwapEvent("swap.rolled_back", report);
  return restored;
}

ModelRegistry::ThetaResult ModelRegistry::InferTheta(const BowDoc& doc) {
  std::shared_ptr<Slot> slot = current_.load(std::memory_order_acquire);
  CHECK(slot != nullptr) << "registry has no published model";
  // Post-swap watchdog: a probationary slot whose breaker has opened is
  // rolled back *before* dispatch, so this request is served by the
  // restored incumbent instead of failing on the sick model.
  if (slot->probation_remaining.load(std::memory_order_relaxed) > 0 &&
      slot->engine->health() == InferenceEngine::HealthState::kDegraded) {
    slot = RollBack(slot);
  }
  ThetaResult result = slot->engine->InferTheta(doc);
  if (!result.ok() &&
      result.status().code() == util::StatusCode::kUnavailable &&
      slot->probation_remaining.load(std::memory_order_relaxed) > 0 &&
      slot->engine->health() == InferenceEngine::HealthState::kDegraded) {
    // The model went sick mid-request during probation: roll back and
    // re-serve from the restored incumbent so the swap costs no request.
    std::shared_ptr<Slot> restored = RollBack(slot);
    if (restored != slot) result = restored->engine->InferTheta(doc);
    slot = std::move(restored);
  }
  if (result.ok() &&
      slot->probation_remaining.load(std::memory_order_relaxed) > 0) {
    slot->probation_remaining.fetch_sub(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }
  return result;
}

StatusOr<std::vector<std::pair<int, float>>> ModelRegistry::TopTopics(
    const BowDoc& doc, int k) {
  std::shared_ptr<Slot> slot = current_.load(std::memory_order_acquire);
  CHECK(slot != nullptr) << "registry has no published model";
  if (slot->probation_remaining.load(std::memory_order_relaxed) > 0 &&
      slot->engine->health() == InferenceEngine::HealthState::kDegraded) {
    slot = RollBack(slot);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }
  return slot->engine->TopTopics(doc, k);
}

StatusOr<std::vector<std::string>> ModelRegistry::TopicTopWords(int topic,
                                                                int k) {
  std::shared_ptr<Slot> slot = current_.load(std::memory_order_acquire);
  CHECK(slot != nullptr) << "registry has no published model";
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }
  return slot->engine->TopicTopWords(topic, k);
}

int64_t ModelRegistry::current_version() const {
  std::shared_ptr<Slot> slot = current_.load(std::memory_order_acquire);
  return slot != nullptr ? slot->version : -1;
}

std::shared_ptr<InferenceEngine> ModelRegistry::current_engine() const {
  std::shared_ptr<Slot> slot = current_.load(std::memory_order_acquire);
  return slot != nullptr ? slot->engine : nullptr;
}

int ModelRegistry::probation_remaining() const {
  std::shared_ptr<Slot> slot = current_.load(std::memory_order_acquire);
  if (slot == nullptr) return 0;
  const int64_t left = slot->probation_remaining.load(std::memory_order_relaxed);
  return left > 0 ? static_cast<int>(left) : 0;
}

ModelRegistry::Stats ModelRegistry::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void ModelRegistry::SetCoherenceReference(
    std::shared_ptr<const eval::NpmiMatrix> npmi) {
  std::lock_guard<std::mutex> lock(swap_mu_);
  coherence_reference_ = std::move(npmi);
}

void ModelRegistry::SetTelemetry(util::RunTelemetry* telemetry) {
  std::lock_guard<std::mutex> lock(swap_mu_);
  telemetry_ = telemetry;
}

}  // namespace serve
}  // namespace contratopic
