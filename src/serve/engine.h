#ifndef CONTRATOPIC_SERVE_ENGINE_H_
#define CONTRATOPIC_SERVE_ENGINE_H_

// InferenceEngine: the serving front door (DESIGN.md §10). Loads a frozen
// checkpoint (serve/checkpoint.h) and answers three query shapes:
//
//   InferTheta     bag-of-words -> topic proportions (micro-batched)
//   TopTopics      bag-of-words -> top-k (topic, weight) pairs
//   TopicTopWords  topic id     -> its top words as strings
//
// Requests flow through a MicroBatcher on the global thread pool, with an
// LRU result cache keyed by the canonicalized document in front of it.
// When the bounded queue fills, requests are shed with kUnavailable
// rather than queued without bound.
//
// Determinism: a loaded engine's InferTheta is bitwise-identical to the
// in-memory model it was checkpointed from, at any thread count, batched
// or one-at-a-time (tests/serve_test.cc). Document normalization
// replicates text::BowCorpus::NormalizedBatch exactly (double row sum,
// float reciprocal) so served results match training-side InferTheta.
//
// Observability: the engine feeds util::MetricsRegistry (serve.requests,
// serve.cache_hits, serve.shed, serve.batches, serve.retries,
// serve.degraded counters; serve.queue_depth gauge; serve.batch_size and
// serve.latency_ms histograms) and can emit a "serve_stats" JSONL record
// through util::RunTelemetry.
//
// Resilience (DESIGN.md §11): failed model batches (e.g. the injected
// "serve.batch" fault) are retried on Options::retry's deterministic
// backoff schedule; persistent failures trip a count-based circuit
// breaker. While the breaker is open the engine is *degraded*: cache
// hits are still served, InferTheta misses fast-fail with kUnavailable
// (except deterministic probes that test recovery), and TopicTopWords
// keeps answering from the checkpoint's frozen precomputed top-word
// lists, which need no model call. health() exposes the state.

#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/batcher.h"
#include "serve/checkpoint.h"
#include "serve/resilience.h"
#include "topicmodel/neural_base.h"
#include "util/status.h"
#include "util/telemetry.h"

namespace contratopic {
namespace serve {

class InferenceEngine {
 public:
  // A raw request: (word_id, count) pairs in any order, duplicates
  // allowed (they are summed).
  using BowDoc = std::vector<std::pair<int, int>>;
  using ThetaResult = util::StatusOr<std::vector<float>>;

  struct Options {
    int max_batch_size = 32;
    int max_queue_depth = 1024;
    // Distinct documents kept in the LRU result cache; 0 disables it.
    int cache_capacity = 1024;
    // Retry schedule for failed model batches (default: no retries).
    RetryPolicy retry;
    // Circuit breaker tripped by batches that fail after retries.
    CircuitBreaker::Options breaker;
    // Serving precision for this engine's model batches (DESIGN.md §15).
    // Unset inherits the process-wide setting (CT_SERVE_PRECISION,
    // default fp32); set, it pins every InferTheta batch to that
    // precision regardless of the global. TopicTopWords is unaffected --
    // it answers from the checkpoint's exact top-word lists either way.
    std::optional<tensor::ServePrecision> precision;
  };

  // Coarse health, derived from the circuit breaker: kDegraded means
  // InferTheta misses fast-fail while TopicTopWords stays available.
  enum class HealthState { kHealthy, kDegraded, kRecovering };

  struct Stats {
    int64_t requests = 0;    // InferTheta/TopTopics calls accepted
    int64_t cache_hits = 0;  // answered without touching the model
    int64_t shed = 0;        // refused with kUnavailable
    int64_t invalid = 0;     // refused with kInvalidArgument
    int64_t batches = 0;     // model calls
    int64_t retries = 0;     // extra model attempts after failures
    int64_t degraded = 0;    // misses fast-failed while the breaker was open
    int64_t deadline_expired = 0;  // requests expired in the queue
    int max_batch_size_seen = 0;
    int max_queue_depth_seen = 0;
  };

  // Reads, validates, and restores `path`, then wraps it in an engine.
  static util::StatusOr<std::unique_ptr<InferenceEngine>> Load(
      const std::string& path, const Options& options);
  static util::StatusOr<std::unique_ptr<InferenceEngine>> Load(
      const std::string& path) {
    return Load(path, Options());
  }
  // Serves an in-memory checkpoint (e.g. straight from BuildCheckpoint;
  // tests use this to compare against the file round trip).
  static util::StatusOr<std::unique_ptr<InferenceEngine>> FromCheckpoint(
      Checkpoint checkpoint, const Options& options);
  static util::StatusOr<std::unique_ptr<InferenceEngine>> FromCheckpoint(
      Checkpoint checkpoint) {
    return FromCheckpoint(std::move(checkpoint), Options());
  }

  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  // Topic proportions for one document (blocks; batching happens across
  // concurrent callers). Errors: kInvalidArgument for empty docs,
  // out-of-vocabulary ids, or non-positive counts; kUnavailable when
  // shed.
  ThetaResult InferTheta(const BowDoc& doc);
  // Non-blocking form; `done` runs exactly once, possibly inline (cache
  // hit, invalid doc, shed) or on a pool worker.
  void InferThetaAsync(const BowDoc& doc,
                       std::function<void(ThetaResult)> done);

  // The k highest-probability topics for `doc`, as (topic, weight),
  // descending (ties broken by topic id, matching Tensor::TopKIndicesOfRow).
  util::StatusOr<std::vector<std::pair<int, float>>> TopTopics(
      const BowDoc& doc, int k);

  // The top-`k` words of `topic` as strings (from the checkpoint's
  // precomputed lists; k is capped at kCheckpointTopWords).
  util::StatusOr<std::vector<std::string>> TopicTopWords(int topic,
                                                         int k) const;

  const topicmodel::ModelDescriptor& descriptor() const {
    return checkpoint_.descriptor;
  }
  // The checkpoint this engine was restored from (the registry's
  // validation gate compares candidates against the incumbent's).
  const Checkpoint& checkpoint() const { return checkpoint_; }
  int num_topics() const { return checkpoint_.descriptor.config.num_topics; }
  int vocab_size() const { return checkpoint_.descriptor.vocab_size; }
  const std::vector<std::string>& vocab() const { return checkpoint_.vocab; }

  // The underlying batcher, exposed for tests (Pause/Resume make
  // queue-shedding deterministic).
  MicroBatcher& batcher() { return *batcher_; }
  // The circuit breaker, exposed for tests.
  CircuitBreaker& breaker() { return breaker_; }

  HealthState health() const;

  Stats stats() const;

  // Emits a "serve_stats" record (requests, batches, cache hits, shed,
  // queue/batch high-water marks; latency percentiles unless the sink is
  // deterministic).
  void EmitTelemetry(util::RunTelemetry* telemetry) const;

 private:
  InferenceEngine(Checkpoint checkpoint,
                  std::unique_ptr<topicmodel::NeuralTopicModel> model,
                  const Options& options);

  // Sorts by word id, merges duplicate ids; Status on invalid entries.
  util::StatusOr<MicroBatcher::Request> Canonicalize(const BowDoc& doc) const;
  // The MicroBatcher::BatchFn: canonical requests -> theta rows, or a
  // Status when the model call fails (the "serve.batch" fault site).
  MicroBatcher::BatchResult RunBatch(
      const std::vector<MicroBatcher::Request>& requests);

  // LRU cache (most recent at front).
  struct CacheEntry {
    std::string key;
    std::vector<float> theta;
  };
  static std::string CacheKey(const MicroBatcher::Request& request);
  bool CacheLookup(const std::string& key, std::vector<float>* theta);
  void CacheInsert(const std::string& key, const std::vector<float>& theta);

  const Options options_;
  const Checkpoint checkpoint_;
  // Declared before batcher_ so the batcher (whose BatchFn runs the
  // model) is destroyed -- and drained -- first.
  std::unique_ptr<topicmodel::NeuralTopicModel> model_;
  CircuitBreaker breaker_;
  std::unique_ptr<MicroBatcher> batcher_;

  mutable std::mutex cache_mu_;
  std::list<CacheEntry> cache_;  // front = most recently used
  std::unordered_map<std::string, std::list<CacheEntry>::iterator>
      cache_index_;

  mutable std::mutex stats_mu_;
  int64_t cache_hits_ = 0;
  int64_t invalid_ = 0;
  int64_t degraded_ = 0;
};

}  // namespace serve
}  // namespace contratopic

#endif  // CONTRATOPIC_SERVE_ENGINE_H_
