#include "serve/batcher.h"

#include <algorithm>
#include <memory>
#include <string>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace serve {

MicroBatcher::MicroBatcher(BatchFn fn, Options options)
    : fn_(std::move(fn)), options_(options) {
  CHECK(fn_ != nullptr);
  CHECK_GT(options_.max_batch_size, 0);
  CHECK_GT(options_.max_queue_depth, 0);
}

MicroBatcher::~MicroBatcher() {
  Resume();
  Drain();
}

void MicroBatcher::Submit(Request request, Callback done) {
  CHECK(done != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<int>(queue_.size()) < options_.max_queue_depth) {
      queue_.emplace_back(std::move(request), std::move(done));
      ++stats_.requests;
      stats_.max_queue_depth_seen = std::max(
          stats_.max_queue_depth_seen, static_cast<int>(queue_.size()));
      MaybeScheduleDispatch();
      return;
    }
    ++stats_.shed;
  }
  // Shed outside the lock: the callback may be arbitrarily heavy.
  done(util::Status::Unavailable(
      "serving queue is full (" + std::to_string(options_.max_queue_depth) +
      " waiting requests); retry later"));
}

std::future<MicroBatcher::Result> MicroBatcher::Submit(Request request) {
  auto promise = std::make_shared<std::promise<Result>>();
  std::future<Result> future = promise->get_future();
  Submit(std::move(request),
         [promise](Result result) { promise->set_value(std::move(result)); });
  return future;
}

void MicroBatcher::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void MicroBatcher::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  MaybeScheduleDispatch();
}

void MicroBatcher::Drain() {
  CHECK(!util::ThreadPool::Global().InWorkerThread())
      << "MicroBatcher::Drain would deadlock on a pool worker";
  std::unique_lock<std::mutex> lock(mu_);
  CHECK(!(paused_ && !queue_.empty()))
      << "Drain while paused with queued work would never return";
  idle_.wait(lock, [this] { return queue_.empty() && !dispatching_; });
}

int MicroBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

MicroBatcher::Stats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MicroBatcher::MaybeScheduleDispatch() {
  if (dispatching_ || paused_ || queue_.empty()) return;
  dispatching_ = true;
  util::ThreadPool::Global().Schedule([this] { DispatchLoop(); });
}

void MicroBatcher::DispatchLoop() {
  while (true) {
    std::vector<Request> requests;
    std::vector<Callback> callbacks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (paused_ || queue_.empty()) {
        dispatching_ = false;
        idle_.notify_all();
        return;
      }
      const int n = std::min(options_.max_batch_size,
                             static_cast<int>(queue_.size()));
      requests.reserve(n);
      callbacks.reserve(n);
      for (int i = 0; i < n; ++i) {
        requests.push_back(std::move(queue_.front().first));
        callbacks.push_back(std::move(queue_.front().second));
        queue_.pop_front();
      }
      ++stats_.batches;
      stats_.max_batch_size_seen = std::max(stats_.max_batch_size_seen, n);
    }

    std::vector<std::vector<float>> rows = fn_(requests);
    if (options_.on_batch) {
      options_.on_batch(static_cast<int>(requests.size()));
    }
    if (rows.size() != requests.size()) {
      // A BatchFn contract violation is a bug, but requests must still
      // complete: fail them rather than hang their futures.
      for (auto& done : callbacks) {
        done(util::Status::Internal(
            "batch function returned " + std::to_string(rows.size()) +
            " rows for " + std::to_string(requests.size()) + " requests"));
      }
      continue;
    }
    for (size_t i = 0; i < callbacks.size(); ++i) {
      callbacks[i](std::move(rows[i]));
    }
  }
}

}  // namespace serve
}  // namespace contratopic
