#include "serve/batcher.h"

#include <algorithm>
#include <memory>
#include <string>
#include <thread>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace serve {

MicroBatcher::MicroBatcher(BatchFn fn, Options options)
    : fn_(std::move(fn)), options_(options) {
  CHECK(fn_ != nullptr);
  CHECK_GT(options_.max_batch_size, 0);
  CHECK_GT(options_.max_queue_depth, 0);
  CHECK_GE(options_.retry.max_attempts, 1);
}

MicroBatcher::~MicroBatcher() { Shutdown(/*drain_pending=*/true); }

void MicroBatcher::Submit(Request request, Callback done) {
  SubmitEntry({std::move(request), std::move(done), /*has_deadline=*/false,
               {}});
}

void MicroBatcher::Submit(Request request, double deadline_ms,
                          Callback done) {
  Entry entry{std::move(request), std::move(done), /*has_deadline=*/true,
              std::chrono::steady_clock::now()};
  if (deadline_ms > 0) {
    entry.deadline += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(deadline_ms));
  }
  SubmitEntry(std::move(entry));
}

void MicroBatcher::SubmitEntry(Entry entry) {
  CHECK(entry.done != nullptr);
  bool refused_shutdown = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ++stats_.cancelled;
      refused_shutdown = true;
    } else if (static_cast<int>(queue_.size()) < options_.max_queue_depth) {
      queue_.push_back(std::move(entry));
      ++stats_.requests;
      stats_.max_queue_depth_seen = std::max(
          stats_.max_queue_depth_seen, static_cast<int>(queue_.size()));
      MaybeScheduleDispatch();
      return;
    } else {
      ++stats_.shed;
    }
  }
  // Complete outside the lock: the callback may be arbitrarily heavy.
  if (refused_shutdown) {
    entry.done(util::Status::Cancelled("batcher is shut down"));
    return;
  }
  entry.done(util::Status::Unavailable(
      "serving queue is full (" + std::to_string(options_.max_queue_depth) +
      " waiting requests); retry later"));
}

std::future<MicroBatcher::Result> MicroBatcher::Submit(Request request) {
  auto promise = std::make_shared<std::promise<Result>>();
  std::future<Result> future = promise->get_future();
  Submit(std::move(request),
         [promise](Result result) { promise->set_value(std::move(result)); });
  return future;
}

std::future<MicroBatcher::Result> MicroBatcher::Submit(Request request,
                                                       double deadline_ms) {
  auto promise = std::make_shared<std::promise<Result>>();
  std::future<Result> future = promise->get_future();
  Submit(std::move(request), deadline_ms,
         [promise](Result result) { promise->set_value(std::move(result)); });
  return future;
}

void MicroBatcher::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void MicroBatcher::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  MaybeScheduleDispatch();
}

void MicroBatcher::Shutdown(bool drain_pending) {
  if (drain_pending) {
    Resume();
    Drain();
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    return;
  }
  std::deque<Entry> cancelled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    cancelled.swap(queue_);
    stats_.cancelled += static_cast<int64_t>(cancelled.size());
  }
  for (Entry& entry : cancelled) {
    entry.done(util::Status::Cancelled(
        "batcher shut down with the request still queued"));
  }
  // Let the in-flight batch (if any) finish so the model is quiescent.
  CHECK(!util::ThreadPool::Global().InWorkerThread())
      << "MicroBatcher::Shutdown would deadlock on a pool worker";
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return !dispatching_; });
}

void MicroBatcher::Drain() {
  CHECK(!util::ThreadPool::Global().InWorkerThread())
      << "MicroBatcher::Drain would deadlock on a pool worker";
  std::unique_lock<std::mutex> lock(mu_);
  CHECK(!(paused_ && !queue_.empty()))
      << "Drain while paused with queued work would never return";
  idle_.wait(lock, [this] { return queue_.empty() && !dispatching_; });
}

int MicroBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

MicroBatcher::Stats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MicroBatcher::MaybeScheduleDispatch() {
  if (dispatching_ || paused_ || queue_.empty()) return;
  dispatching_ = true;
  util::ThreadPool::Global().Schedule([this] { DispatchLoop(); });
}

void MicroBatcher::DispatchLoop() {
  while (true) {
    std::vector<Request> requests;
    std::vector<Callback> callbacks;
    std::vector<Callback> expired;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (paused_ || queue_.empty()) {
        dispatching_ = false;
        idle_.notify_all();
        return;
      }
      const auto now = std::chrono::steady_clock::now();
      const int n = std::min(options_.max_batch_size,
                             static_cast<int>(queue_.size()));
      requests.reserve(n);
      callbacks.reserve(n);
      for (int i = 0; i < n; ++i) {
        Entry entry = std::move(queue_.front());
        queue_.pop_front();
        if (entry.has_deadline && now > entry.deadline) {
          expired.push_back(std::move(entry.done));
          ++stats_.deadline_expired;
          continue;
        }
        requests.push_back(std::move(entry.request));
        callbacks.push_back(std::move(entry.done));
      }
      if (!requests.empty()) {
        ++stats_.batches;
        stats_.max_batch_size_seen = std::max(
            stats_.max_batch_size_seen, static_cast<int>(requests.size()));
      }
    }
    for (auto& done : expired) {
      done(util::Status::DeadlineExceeded(
          "request expired while waiting in the serving queue"));
    }
    if (requests.empty()) continue;

    BatchResult result = fn_(requests);
    for (int attempt = 1;
         !result.ok() && attempt < options_.retry.max_attempts; ++attempt) {
      const double backoff_ms = options_.retry.BackoffMs(attempt);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.retries;
      }
      util::MetricsRegistry::Global().counter("serve.retries").Increment();
      result = fn_(requests);
    }
    if (options_.on_batch_done) {
      options_.on_batch_done(result.ok() ? util::Status::OK()
                                         : result.status());
    }
    if (!result.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.failed_batches;
      }
      for (auto& done : callbacks) done(result.status());
      continue;
    }
    std::vector<std::vector<float>> rows = std::move(result).value();
    if (options_.on_batch) {
      options_.on_batch(static_cast<int>(requests.size()));
    }
    if (rows.size() != requests.size()) {
      // A BatchFn contract violation is a bug, but requests must still
      // complete: fail them rather than hang their futures.
      for (auto& done : callbacks) {
        done(util::Status::Internal(
            "batch function returned " + std::to_string(rows.size()) +
            " rows for " + std::to_string(requests.size()) + " requests"));
      }
      continue;
    }
    for (size_t i = 0; i < callbacks.size(); ++i) {
      callbacks[i](std::move(rows[i]));
    }
  }
}

}  // namespace serve
}  // namespace contratopic
