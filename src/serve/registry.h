#ifndef CONTRATOPIC_SERVE_REGISTRY_H_
#define CONTRATOPIC_SERVE_REGISTRY_H_

// ModelRegistry: validation-gated hot-swap serving (DESIGN.md §16). The
// registry owns a sequence of versioned model *slots*, each wrapping a
// fully constructed InferenceEngine, and publishes the current one
// through an RCU-style atomic shared_ptr swap:
//
//   readers   copy the current slot pointer (one atomic acquire), serve
//             from its engine, and release it when done -- a swap never
//             interrupts an in-flight batch, which finishes on the model
//             it started on (the old engine drains when its last
//             reference drops);
//   writers   (TryPublish / rollback) build the next slot off to the
//             side and install it with a single release store -- new
//             requests see the new model immediately, with zero serving
//             gap and no request ever failing because a swap is in
//             progress.
//
// Every candidate passes a pre-swap validation gate before publication:
//   1. checkpoint integrity -- ReadCheckpoint verifies magic, version,
//      and the payload checksum, so a truncated or bit-flipped candidate
//      is rejected as kDataLoss without ever unseating the incumbent;
//   2. a NaN/Inf scan of every state tensor and beta;
//   3. theta sanity on a pinned probe batch (finite, non-negative rows
//      summing to ~1);
//   4. an interpretability gate against the incumbent: per-topic
//      top-word churn above Gate::max_top_word_churn rejects, and, when
//      a coherence reference (eval::NpmiMatrix) is set, candidate mean
//      NPMI coherence may not drop more than Gate::max_coherence_drop
//      below the incumbent's.
// A rejected candidate emits "swap.rejected" telemetry and leaves
// serving bitwise-identical to the incumbent.
//
// After publication the slot is on *probation*: for the next
// Options::probation_requests requests the registry watches the new
// engine's CircuitBreaker, and if it opens, automatically rolls back to
// the previous slot -- bitwise-identical to pre-swap serving. The
// watchdog runs before the request is dispatched, so the request that
// detects the sick model is served by the restored incumbent instead of
// failing.
//
// Chaos: the whole reload path is sprinkled with util::FaultInjector
// sites -- "registry.load", "registry.validate", "registry.swap",
// "registry.publish", "registry.rollback". Injected (or genuinely
// transient: kUnavailable / kIOError) stage failures retry on
// Options::swap_retry's deterministic backoff schedule; permanent
// failures (kDataLoss, kInvalidArgument, ...) reject immediately.
// The rollback site is retried until it clears: a rollback is an
// in-memory pointer swap and must always complete.
//
// Telemetry: "swap.published" / "swap.rejected" / "swap.rolled_back"
// counters in util::MetricsRegistry, matching RecordStage events on an
// attached util::RunTelemetry sink (validated by
// scripts/check_telemetry.py --mode=swaps).

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "eval/npmi.h"
#include "serve/engine.h"
#include "serve/resilience.h"
#include "util/status.h"
#include "util/telemetry.h"

namespace contratopic {
namespace serve {

class ModelRegistry {
 public:
  using BowDoc = InferenceEngine::BowDoc;
  using ThetaResult = InferenceEngine::ThetaResult;

  // Pre-swap validation-gate thresholds (DESIGN.md §16).
  struct Gate {
    // Top words compared per topic for the churn metric.
    int churn_top_words = 10;
    // Mean fraction of the incumbent's per-topic top words replaced by
    // the candidate; above this the swap is rejected. 1.0 disables.
    double max_top_word_churn = 0.8;
    // With a coherence reference set, reject when the candidate's mean
    // top-word NPMI falls more than this below the incumbent's.
    double max_coherence_drop = 0.05;
    // Pinned probe documents; every candidate must produce a finite,
    // non-negative, ~normalized theta row for each before publication.
    std::vector<BowDoc> probe_docs;
  };

  struct Options {
    // Applied to every slot's engine (batcher, cache, retry, breaker).
    InferenceEngine::Options engine;
    Gate gate;
    // Retry schedule for transient / injected faults in the
    // load->validate->swap->publish pipeline.
    RetryPolicy swap_retry;
    // Requests after a publication during which an opening breaker on
    // the new engine triggers automatic rollback; 0 disables the
    // watchdog.
    int probation_requests = 64;
    // Previous slots retained as rollback targets / to let in-flight
    // work drain (>= 1).
    int max_history = 2;
  };

  enum class SwapOutcome { kPublished, kRejected };

  // What one TryPublish attempt did. `reject_reason` is OK for a
  // published swap; for a rejected one it carries the gate's verdict
  // (kDataLoss for corruption, kFailedPrecondition for gate failures,
  // the exhausted stage's status for persistent transient faults).
  struct SwapReport {
    SwapOutcome outcome = SwapOutcome::kRejected;
    int64_t version = -1;  // the published version; -1 when rejected
    util::Status reject_reason;
    double top_word_churn = 0.0;
    double candidate_coherence = 0.0;
    double incumbent_coherence = 0.0;
    // Transient stage failures retried through (injected or real).
    int retries = 0;
  };

  struct Stats {
    int64_t published = 0;    // successful swaps (excluding the initial)
    int64_t rejected = 0;     // candidates stopped by the gate
    int64_t rolled_back = 0;  // probation rollbacks
    int64_t swap_retries = 0;
    int64_t requests = 0;     // front-door requests routed to a slot
  };

  // Loads `initial_checkpoint` as version 1. The initial model passes
  // the integrity + NaN + probe stages of the gate (there is no
  // incumbent to compare interpretability against).
  static util::StatusOr<std::unique_ptr<ModelRegistry>> Create(
      const std::string& initial_checkpoint, const Options& options);

  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // The validation-gated swap: load `checkpoint_path`, run the gate
  // against the incumbent, and publish on success. Returns a SwapReport
  // for both outcomes; a non-OK StatusOr means the registry itself is
  // unusable (never caused by a bad candidate). Thread-safe; concurrent
  // publishers are serialized.
  util::StatusOr<SwapReport> TryPublish(const std::string& checkpoint_path);

  // Serving front door: routes to the current slot. A probationary slot
  // whose breaker has opened is rolled back first, so the request is
  // served by the restored incumbent.
  ThetaResult InferTheta(const BowDoc& doc);
  util::StatusOr<std::vector<std::pair<int, float>>> TopTopics(
      const BowDoc& doc, int k);
  util::StatusOr<std::vector<std::string>> TopicTopWords(int topic, int k);

  // Monotone version of the currently published slot (1 = initial).
  int64_t current_version() const;
  // The engine serving new requests right now (tests pin breakers and
  // compare bitwise through this).
  std::shared_ptr<InferenceEngine> current_engine() const;
  // Requests left in the current slot's probation window (0 when
  // established).
  int probation_remaining() const;

  Stats stats() const;

  // Coherence reference for gate stage 4; null disables that check.
  // Typically rebuilt per time slice from the decayed co-occurrence
  // accumulator (core::OnlineContraTopic::counts()).
  void SetCoherenceReference(std::shared_ptr<const eval::NpmiMatrix> npmi);

  // Swap outcomes are mirrored as RecordStage events on this sink (not
  // owned; may be null).
  void SetTelemetry(util::RunTelemetry* telemetry);

 private:
  struct Slot {
    int64_t version = 0;
    std::shared_ptr<InferenceEngine> engine;
    // Requests left before the slot is considered established; counts
    // down from Options::probation_requests after publication.
    std::atomic<int64_t> probation_remaining{0};
  };

  explicit ModelRegistry(const Options& options);

  // One gate stage with its fault site: runs `fn` (after consulting
  // `site`), retrying transient failures on swap_retry. Returns the
  // final status; bumps *retries per extra attempt.
  util::Status RunStage(const std::string& site,
                        const std::function<util::Status()>& fn,
                        int* retries);

  // Stages 2-4 of the gate (NaN scan, probe theta, churn/coherence).
  // `incumbent` is null for the initial load.
  util::Status ValidateCandidate(const Checkpoint& candidate,
                                 InferenceEngine& engine, const Slot* incumbent,
                                 SwapReport* report) const;

  // Installs `slot`, retiring the incumbent into history.
  void Publish(std::shared_ptr<Slot> slot);

  // Rolls back if `sick` is still current; returns the slot now serving.
  std::shared_ptr<Slot> RollBack(const std::shared_ptr<Slot>& sick);

  void EmitSwapEvent(const char* name, const SwapReport& report);

  const Options options_;

  // RCU publication point: readers acquire, writers release.
  std::atomic<std::shared_ptr<Slot>> current_;

  // Serializes writers (TryPublish / RollBack) and guards the fields
  // below.
  mutable std::mutex swap_mu_;
  std::deque<std::shared_ptr<Slot>> history_;  // newest last
  int64_t next_version_ = 1;
  std::shared_ptr<const eval::NpmiMatrix> coherence_reference_;
  util::RunTelemetry* telemetry_ = nullptr;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

// --- Gate helpers (exposed for tests) -----------------------------------

// kDataLoss when any state tensor or beta holds a NaN/Inf.
util::Status ScanCheckpointFinite(const Checkpoint& checkpoint);

// Mean over topics of the fraction of `incumbent` top-k words absent
// from the matching candidate topic's top-k. Both lists are the
// checkpoints' precomputed per-topic top-word ids.
double TopWordChurn(const std::vector<std::vector<int>>& incumbent,
                    const std::vector<std::vector<int>>& candidate, int k);

// Mean per-topic MeanPairwise NPMI over each topic's top-k words.
double MeanTopicCoherence(const std::vector<std::vector<int>>& top_words,
                          const eval::NpmiMatrix& npmi, int k);

}  // namespace serve
}  // namespace contratopic

#endif  // CONTRATOPIC_SERVE_REGISTRY_H_
