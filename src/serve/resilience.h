#ifndef CONTRATOPIC_SERVE_RESILIENCE_H_
#define CONTRATOPIC_SERVE_RESILIENCE_H_

// Serving-side resilience primitives (DESIGN.md §11):
//
//   RetryPolicy     exponential backoff with *deterministic* jitter -- the
//                   wait before attempt k is a pure function of
//                   (jitter_seed, k), so two runs retry on the same
//                   schedule.
//   CircuitBreaker  a count-based breaker (no wall clock): it opens after
//                   N consecutive failures, lets every Mth request probe
//                   while open, and closes again after enough probe
//                   successes. Count-based transitions keep chaos tests
//                   reproducible where a time-based breaker would flake.
//
// Both are used by MicroBatcher/InferenceEngine and are exposed here so
// tests can exercise their state machines directly.

#include <cstdint>
#include <mutex>

namespace contratopic {
namespace serve {

// Backoff schedule for retrying a failed batch. Attempt 1 is the original
// call; BackoffMs(k) is the wait before attempt k+1.
struct RetryPolicy {
  // Total attempts, including the first; 1 disables retries.
  int max_attempts = 1;
  double base_backoff_ms = 1.0;
  double max_backoff_ms = 50.0;
  double backoff_multiplier = 2.0;
  // Folded into the jitter hash; change it to shift every wait.
  uint64_t jitter_seed = 0;

  // base * multiplier^(attempt-1), capped at max, plus a deterministic
  // jitter in [0, 50%) of the capped value derived from
  // (jitter_seed, attempt) -- no RNG stream, no wall clock.
  double BackoffMs(int attempt) const;
};

// A deterministic circuit breaker. State machine:
//
//   kClosed    all requests allowed. `failure_threshold` consecutive
//              failures -> kOpen.
//   kOpen      requests denied, except every `probe_interval`-th
//              AllowRequest() call, which is let through as a probe and
//              moves the breaker to kHalfOpen.
//   kHalfOpen  requests allowed (the recovery window is short-lived).
//              `success_threshold` consecutive successes -> kClosed; any
//              failure -> kOpen again.
//
// The engine maps these to its health accessor: open means degraded
// (InferTheta misses fast-fail; TopicTopWords still serves the frozen
// checkpoint lists).
class CircuitBreaker {
 public:
  struct Options {
    int failure_threshold = 3;
    int probe_interval = 8;
    int success_threshold = 2;
  };
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const Options& options);

  // Whether this request may proceed; counts denied requests toward the
  // next probe when open.
  bool AllowRequest();
  // Report the outcome of work the breaker guards (e.g. one model batch).
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  int64_t denied() const;

 private:
  const Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  int64_t open_calls_ = 0;  // AllowRequest calls while open
  int64_t denied_ = 0;
};

}  // namespace serve
}  // namespace contratopic

#endif  // CONTRATOPIC_SERVE_RESILIENCE_H_
