#ifndef CONTRATOPIC_SERVE_CHECKPOINT_H_
#define CONTRATOPIC_SERVE_CHECKPOINT_H_

// Versioned serving checkpoint (DESIGN.md §10). A checkpoint freezes a
// trained topic model into a single self-describing file that a fresh
// process can reload without the training corpus or the original word
// embeddings:
//
//   header   magic "CTCK" (u32) | format version (u32) |
//            FNV-1a-64 checksum of payload (u64) | payload size (u64)
//   payload  ModelDescriptor (zoo type + TrainConfig + extras) |
//            vocabulary words | every state tensor (named; parameters
//            plus inference buffers such as batch-norm running stats and
//            frozen embedding constants) | trained beta (K x V) |
//            per-topic top-word ids |
//            [v2+] has-training-state flag (u32), and when set a
//            topicmodel::TrainingState blob (optimizer moments, RNG
//            stream, batch-iterator position, epoch accumulators) that
//            makes the checkpoint resumable mid-training (DESIGN.md §11)
//
// v3 (DESIGN.md §15) is the quantized serving format: every tensor
// record (state tensors and beta) is prefixed with a dtype tag
// (fp32 / bf16 / int8); int8 records carry a per-row scale table, and
// both reduced forms load 2-4x smaller than fp32. The per-topic
// top-word id lists stay exact in every version, so a server restored
// from a quantized checkpoint answers TopicTopWords with the identical
// ranked words the fp32 model computed. Quantized checkpoints are
// serving-only: combining them with training state is refused, because
// resumed training must stay fp32-bitwise.
//
// The writer emits v2 for fp32 checkpoints -- byte-for-byte the same
// file as before v3 existed -- and v3 only when
// Checkpoint::storage_precision requests a reduced format. The reader
// accepts v1 through v3. The checksum covers the exact payload bytes,
// so truncation and single-byte corruption are both detected before any
// field is trusted. Files are written atomically -- serialized to
// `path.tmp`, fsync'd, then renamed -- so a crash mid-write can never
// replace a good checkpoint with a torn one. All failure modes surface
// as util::Status -- never a crash:
//   bad magic            -> kInvalidArgument (not a checkpoint)
//   version skew         -> kFailedPrecondition (newer writer)
//   short file           -> kIOError (truncated)
//   checksum / structure -> kDataLoss (corrupt)
//
// Restore rebuilds the architecture via core::CreateModel from the
// descriptor (using placeholder embeddings), then overwrites every state
// tensor bitwise, so a restored model's InferTheta is bitwise-identical
// to the in-memory model it was saved from.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "text/vocabulary.h"
#include "topicmodel/neural_base.h"
#include "topicmodel/topic_model.h"
#include "util/status.h"

namespace contratopic {
namespace serve {

// "CTCK" little-endian.
inline constexpr uint32_t kCheckpointMagic = 0x4B435443u;
// Newest format version this build reads. The writer stamps fp32 files
// with kFp32CheckpointVersion (so fp32 output is bitwise-unchanged) and
// quantized files with kCheckpointVersion.
inline constexpr uint32_t kCheckpointVersion = 3;
inline constexpr uint32_t kFp32CheckpointVersion = 2;
// Oldest format version the reader still understands.
inline constexpr uint32_t kMinCheckpointVersion = 1;
// Top words stored per topic (enough for diversity@25, the largest
// top-word metric in eval/metrics.h).
inline constexpr int kCheckpointTopWords = 25;

// FNV-1a 64-bit over a byte range (the checkpoint payload checksum).
uint64_t Fnv1a64(const void* data, size_t size);

// In-memory form of a checkpoint file.
struct Checkpoint {
  topicmodel::ModelDescriptor descriptor;
  // Every tensor InferTheta reads: trainable parameters plus inference
  // buffers, by their model-assigned names.
  std::vector<std::pair<std::string, tensor::Tensor>> tensors;
  tensor::Tensor beta;                      // K x V topic-word distribution
  std::vector<std::string> vocab;           // word string per id
  std::vector<std::vector<int>> top_words;  // per topic, kCheckpointTopWords
  // v2: present when the checkpoint froze a run mid-training (beta is
  // then the latest step's, not a final one) and ResumeModel +
  // NeuralTopicModel::ResumeTraining can continue it bitwise.
  bool has_training_state = false;
  topicmodel::TrainingState training_state;
  // v3: the on-disk precision of the tensor records. kFp32 round-trips
  // bitwise; bf16/int8 checkpoints dequantize on load (tensors above the
  // tensor::QuantizableShape floor lose their low bits, small tensors
  // stay exact) and are refused when has_training_state is set.
  tensor::ServePrecision storage_precision = tensor::ServePrecision::kFp32;
};

// Snapshots `model` (which must be trained and checkpointable, i.e.
// Describe().type is a model-zoo name) into an in-memory Checkpoint.
util::StatusOr<Checkpoint> BuildCheckpoint(topicmodel::TopicModel& model,
                                           const text::Vocabulary& vocab);

// Serializes `checkpoint` to `path` in the format described above.
util::Status WriteCheckpoint(const Checkpoint& checkpoint,
                             const std::string& path);

// BuildCheckpoint + WriteCheckpoint.
util::Status SaveCheckpoint(topicmodel::TopicModel& model,
                            const text::Vocabulary& vocab,
                            const std::string& path);

// BuildCheckpoint + WriteCheckpoint with the tensor records stored at
// `storage` precision (kFp32 is exactly SaveCheckpoint). The file keeps
// exact top-word id lists, so TopicTopWords from the restored server is
// invariant across storage precisions.
util::Status SaveQuantizedCheckpoint(topicmodel::TopicModel& model,
                                     const text::Vocabulary& vocab,
                                     const std::string& path,
                                     tensor::ServePrecision storage);

// Reads and fully validates a checkpoint file (header, checksum, and
// structural sanity of every field).
util::StatusOr<Checkpoint> ReadCheckpoint(const std::string& path);

// Rebuilds the model described by `checkpoint` and restores its trained
// state bitwise. The result is frozen (eval mode, trained) and ready for
// InferTheta; it must not be trained further.
util::StatusOr<std::unique_ptr<topicmodel::NeuralTopicModel>> RestoreModel(
    const Checkpoint& checkpoint);

// --- Resumable training checkpoints (DESIGN.md §11) ---------------------

// Snapshots a model mid-training together with `state` (typically handed
// to a CheckpointSink by the training loop). The model need not be
// trained; beta/top-words freeze the latest step's beta so a degraded
// server can still answer TopicTopWords from the file.
util::StatusOr<Checkpoint> BuildTrainingCheckpoint(
    topicmodel::NeuralTopicModel& model, const text::Vocabulary& vocab,
    const topicmodel::TrainingState& state);

// BuildTrainingCheckpoint + WriteCheckpoint. Bind this to a path to get a
// CheckpointSink:
//   model.SetAutoCheckpoint(0, [&](const topicmodel::TrainingState& s) {
//     return serve::SaveTrainingCheckpoint(model, vocab, s, path);
//   });
util::Status SaveTrainingCheckpoint(topicmodel::NeuralTopicModel& model,
                                    const text::Vocabulary& vocab,
                                    const topicmodel::TrainingState& state,
                                    const std::string& path);

// Rebuilds the model from a v2 checkpoint carrying training state and
// restores every state tensor bitwise -- but does NOT mark it trained.
// Continue with model->ResumeTraining(corpus, checkpoint.training_state);
// the remaining steps are bitwise-identical to an uninterrupted run's.
util::StatusOr<std::unique_ptr<topicmodel::NeuralTopicModel>> ResumeModel(
    const Checkpoint& checkpoint);

}  // namespace serve
}  // namespace contratopic

#endif  // CONTRATOPIC_SERVE_CHECKPOINT_H_
