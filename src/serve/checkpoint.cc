#include "serve/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <unordered_map>

#include "core/model_zoo.h"
#include "embed/word_embeddings.h"
#include "util/fault.h"
#include "util/serialize.h"
#include "util/string_util.h"

namespace contratopic {
namespace serve {

namespace {

using tensor::Tensor;
using topicmodel::ModelDescriptor;
using topicmodel::NeuralTopicModel;
using topicmodel::TrainConfig;
using util::Status;
using util::StatusOr;

// Every zoo name RestoreModel is willing to hand to core::CreateModel
// (which LOG(FATAL)s on unknown names -- a checkpoint must never reach
// that). LDA is absent on purpose: it has no neural state dict.
const std::set<std::string>& RestorableTypes() {
  static const std::set<std::string>* const kTypes = new std::set<std::string>{
      "prodlda",       "wlda",          "etm",
      "nstm",          "wete",          "ntmr",
      "vtmrl",         "clntm",         "tsctm",
      "contratopic",
      "contratopic-p", "contratopic-n", "contratopic-i",
      "contratopic-s", "contratopic-wlda", "contratopic-wete"};
  return *kTypes;
}

void WriteConfig(util::BinaryWriter* writer, const TrainConfig& config) {
  writer->WriteU32(static_cast<uint32_t>(config.num_topics));
  writer->WriteU32(static_cast<uint32_t>(config.epochs));
  writer->WriteU32(static_cast<uint32_t>(config.batch_size));
  writer->WriteF32(config.learning_rate);
  writer->WriteU32(static_cast<uint32_t>(config.encoder_hidden));
  writer->WriteU32(static_cast<uint32_t>(config.encoder_layers));
  writer->WriteF32(config.dropout);
  writer->WriteU32(config.batch_norm ? 1 : 0);
  writer->WriteF32(config.grad_clip);
  writer->WriteU64(config.seed);
  writer->WriteU32(config.verbose ? 1 : 0);
}

TrainConfig ReadConfig(util::BinaryReader* reader) {
  TrainConfig config;
  config.num_topics = static_cast<int>(reader->ReadU32());
  config.epochs = static_cast<int>(reader->ReadU32());
  config.batch_size = static_cast<int>(reader->ReadU32());
  config.learning_rate = reader->ReadF32();
  config.encoder_hidden = static_cast<int>(reader->ReadU32());
  config.encoder_layers = static_cast<int>(reader->ReadU32());
  config.dropout = reader->ReadF32();
  config.batch_norm = reader->ReadU32() != 0;
  config.grad_clip = reader->ReadF32();
  config.seed = reader->ReadU64();
  config.verbose = reader->ReadU32() != 0;
  return config;
}

void WriteTensor(util::BinaryWriter* writer, const Tensor& t) {
  writer->WriteU32(static_cast<uint32_t>(t.rows()));
  writer->WriteU32(static_cast<uint32_t>(t.cols()));
  std::vector<float> values(t.data(), t.data() + t.rows() * t.cols());
  writer->WriteFloatVector(values);
}

// v3 tensor-record dtype tags.
constexpr uint32_t kDtypeFp32 = 0;
constexpr uint32_t kDtypeBf16 = 1;
constexpr uint32_t kDtypeInt8 = 2;

// v3 tensor record: dtype tag, then a dtype-specific body. Tensors below
// the quantization floor are written fp32 even in a quantized file --
// biases, batch-norm vectors, and tiny heads cost nothing and quantizing
// running statistics would wreck the theta tolerance.
void WriteTensorV3(util::BinaryWriter* writer, const Tensor& t,
                   tensor::ServePrecision storage) {
  if (storage == tensor::ServePrecision::kFp32 ||
      !tensor::QuantizableShape(t.rows(), t.cols())) {
    writer->WriteU32(kDtypeFp32);
    WriteTensor(writer, t);
    return;
  }
  if (storage == tensor::ServePrecision::kBf16) {
    const tensor::Bf16Matrix m = tensor::Bf16FromTensor(t);
    writer->WriteU32(kDtypeBf16);
    writer->WriteU32(static_cast<uint32_t>(m.rows));
    writer->WriteU32(static_cast<uint32_t>(m.cols));
    writer->WriteU64(m.data.size() * sizeof(uint16_t));
    writer->WriteBytes(m.data.data(), m.data.size() * sizeof(uint16_t));
    return;
  }
  const tensor::Int8Matrix m = tensor::Int8FromTensor(t);
  writer->WriteU32(kDtypeInt8);
  writer->WriteU32(static_cast<uint32_t>(m.rows));
  writer->WriteU32(static_cast<uint32_t>(m.cols));
  writer->WriteFloatVector(m.scales);
  writer->WriteU64(m.data.size());
  writer->WriteBytes(m.data.data(), m.data.size());
}

// Returns a corrupt-payload error; the payload checksum already matched,
// so a structural violation means the writer (not the wire) was broken.
Status Corrupt(const std::string& what) {
  return Status::DataLoss("corrupt checkpoint payload: " + what);
}

StatusOr<Tensor> ReadTensor(util::BinaryReader* reader,
                            const std::string& what) {
  const int64_t rows = static_cast<int64_t>(reader->ReadU32());
  const int64_t cols = static_cast<int64_t>(reader->ReadU32());
  std::vector<float> values = reader->ReadFloatVector();
  if (!reader->ok()) return Corrupt(what + ": short tensor data");
  if (rows <= 0 || cols <= 0 ||
      values.size() != static_cast<size_t>(rows * cols)) {
    return Corrupt(what + ": tensor shape " + std::to_string(rows) + "x" +
                   std::to_string(cols) + " does not match " +
                   std::to_string(values.size()) + " values");
  }
  Tensor t(rows, cols);
  std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  return t;
}

// Reads a v3 tensor record, dequantizing reduced forms to fp32.
// `storage` reports the most reduced dtype seen so the caller can record
// the file's storage precision. Every structural violation -- bad tag,
// shape/scale-table mismatch, short data -- is kDataLoss via Corrupt():
// a corrupt scale table must never silently become garbage weights.
StatusOr<Tensor> ReadTensorV3(util::BinaryReader* reader,
                              const std::string& what,
                              tensor::ServePrecision* storage) {
  const uint32_t dtype = reader->ReadU32();
  if (!reader->ok()) return Corrupt(what + ": short dtype tag");
  if (dtype == kDtypeFp32) return ReadTensor(reader, what);
  if (dtype != kDtypeBf16 && dtype != kDtypeInt8) {
    return Corrupt(what + ": unknown tensor dtype tag " +
                   std::to_string(dtype));
  }
  const int64_t rows = static_cast<int64_t>(reader->ReadU32());
  const int64_t cols = static_cast<int64_t>(reader->ReadU32());
  if (!reader->ok()) return Corrupt(what + ": short tensor header");
  if (rows <= 0 || cols <= 0 || rows > (1 << 24) || cols > (1 << 24)) {
    return Corrupt(what + ": implausible tensor shape " +
                   std::to_string(rows) + "x" + std::to_string(cols));
  }
  const size_t numel = static_cast<size_t>(rows * cols);
  if (dtype == kDtypeBf16) {
    const uint64_t bytes = reader->ReadU64();
    if (!reader->ok()) return Corrupt(what + ": short bf16 data");
    if (bytes != numel * sizeof(uint16_t)) {
      return Corrupt(what + ": bf16 data holds " + std::to_string(bytes) +
                     " bytes for a " + std::to_string(rows) + "x" +
                     std::to_string(cols) + " tensor");
    }
    if (bytes > reader->remaining()) {
      return Corrupt(what + ": short bf16 data");
    }
    tensor::Bf16Matrix m;
    m.rows = rows;
    m.cols = cols;
    m.data.resize(numel);
    if (!reader->ReadBytes(m.data.data(), bytes)) {
      return Corrupt(what + ": short bf16 data");
    }
    if (*storage == tensor::ServePrecision::kFp32) {
      *storage = tensor::ServePrecision::kBf16;
    }
    return tensor::TensorFromBf16(m);
  }
  std::vector<float> scales = reader->ReadFloatVector();
  if (!reader->ok()) return Corrupt(what + ": short int8 scale table");
  if (scales.size() != static_cast<size_t>(rows)) {
    return Corrupt(what + ": int8 scale table has " +
                   std::to_string(scales.size()) + " entries for " +
                   std::to_string(rows) + " rows");
  }
  for (float s : scales) {
    if (!(s >= 0.0f) || !std::isfinite(s)) {
      return Corrupt(what + ": int8 scale table entry is not a finite "
                            "non-negative float");
    }
  }
  const uint64_t bytes = reader->ReadU64();
  if (!reader->ok()) return Corrupt(what + ": short int8 data");
  if (bytes != numel) {
    return Corrupt(what + ": int8 data holds " + std::to_string(bytes) +
                   " bytes for a " + std::to_string(rows) + "x" +
                   std::to_string(cols) + " tensor");
  }
  if (bytes > reader->remaining()) {
    return Corrupt(what + ": short int8 data");
  }
  tensor::Int8Matrix m;
  m.rows = rows;
  m.cols = cols;
  m.scales = std::move(scales);
  m.data.resize(numel);
  if (!reader->ReadBytes(m.data.data(), bytes)) {
    return Corrupt(what + ": short int8 data");
  }
  *storage = tensor::ServePrecision::kInt8;
  return tensor::TensorFromInt8(m);
}

void WriteTrainingState(util::BinaryWriter* writer,
                        const topicmodel::TrainingState& s) {
  writer->WriteU32(static_cast<uint32_t>(s.num_docs));
  writer->WriteU32(static_cast<uint32_t>(s.total_epochs));
  writer->WriteU32(static_cast<uint32_t>(s.next_global_step));
  writer->WriteU64(static_cast<uint64_t>(s.adam.t));
  writer->WriteU32(static_cast<uint32_t>(s.adam.m.size()));
  for (size_t i = 0; i < s.adam.m.size(); ++i) {
    writer->WriteString(s.adam.m[i].first);
    WriteTensor(writer, s.adam.m[i].second);
    WriteTensor(writer, s.adam.v[i].second);
  }
  writer->WriteU32(static_cast<uint32_t>(s.rngs.size()));
  for (const util::Rng::State& rng : s.rngs) {
    for (int i = 0; i < 4; ++i) writer->WriteU64(rng.s[i]);
    writer->WriteU32(rng.has_cached_normal ? 1 : 0);
    writer->WriteF64(rng.cached_normal);
  }
  writer->WriteIntVector(s.batch_order);
  writer->WriteU32(static_cast<uint32_t>(s.batch_cursor));
  writer->WriteF64(s.epoch_loss_sum);
  writer->WriteU32(static_cast<uint32_t>(s.component_sums.size()));
  for (const auto& [name, sum] : s.component_sums) {
    writer->WriteString(name);
    writer->WriteF64(sum);
  }
  writer->WriteF64(s.last_epoch_loss);
}

StatusOr<topicmodel::TrainingState> ReadTrainingState(
    util::BinaryReader* reader) {
  topicmodel::TrainingState s;
  s.num_docs = static_cast<int>(reader->ReadU32());
  s.total_epochs = static_cast<int>(reader->ReadU32());
  s.next_global_step = static_cast<int>(reader->ReadU32());
  s.adam.t = static_cast<int64_t>(reader->ReadU64());
  const uint32_t num_moments = reader->ReadU32();
  if (!reader->ok()) return Corrupt("short training state");
  if (s.num_docs <= 0 || s.total_epochs <= 0 || s.next_global_step < 0) {
    return Corrupt("training state has a non-positive run shape");
  }
  if (num_moments > 4096) {
    return Corrupt("implausible optimizer moment count " +
                   std::to_string(num_moments));
  }
  s.adam.m.reserve(num_moments);
  s.adam.v.reserve(num_moments);
  for (uint32_t i = 0; i < num_moments; ++i) {
    std::string name = reader->ReadString();
    if (!reader->ok() || name.empty()) {
      return Corrupt("optimizer moment " + std::to_string(i) + ": bad name");
    }
    StatusOr<Tensor> m =
        ReadTensor(reader, "optimizer moment m of '" + name + "'");
    if (!m.ok()) return m.status();
    StatusOr<Tensor> v =
        ReadTensor(reader, "optimizer moment v of '" + name + "'");
    if (!v.ok()) return v.status();
    s.adam.m.emplace_back(name, std::move(m).value());
    s.adam.v.emplace_back(std::move(name), std::move(v).value());
  }
  const uint32_t num_rngs = reader->ReadU32();
  if (!reader->ok()) return Corrupt("short training state");
  if (num_rngs == 0 || num_rngs > 64) {
    return Corrupt("implausible RNG stream count " +
                   std::to_string(num_rngs));
  }
  s.rngs.resize(num_rngs);
  for (uint32_t i = 0; i < num_rngs; ++i) {
    for (int j = 0; j < 4; ++j) s.rngs[i].s[j] = reader->ReadU64();
    s.rngs[i].has_cached_normal = reader->ReadU32() != 0;
    s.rngs[i].cached_normal = reader->ReadF64();
  }
  s.batch_order = reader->ReadIntVector();
  s.batch_cursor = static_cast<int>(reader->ReadU32());
  if (!reader->ok()) return Corrupt("short training state");
  if (s.batch_order.size() != static_cast<size_t>(s.num_docs)) {
    return Corrupt("batch order covers " +
                   std::to_string(s.batch_order.size()) + " docs, not " +
                   std::to_string(s.num_docs));
  }
  std::vector<bool> seen(s.num_docs, false);
  for (int doc : s.batch_order) {
    if (doc < 0 || doc >= s.num_docs || seen[doc]) {
      return Corrupt("batch order is not a permutation of the corpus");
    }
    seen[doc] = true;
  }
  if (s.batch_cursor < 0 || s.batch_cursor > s.num_docs) {
    return Corrupt("batch cursor out of range");
  }
  s.epoch_loss_sum = reader->ReadF64();
  const uint32_t num_components = reader->ReadU32();
  if (!reader->ok()) return Corrupt("short training state");
  if (num_components > 1024) {
    return Corrupt("implausible loss component count");
  }
  for (uint32_t i = 0; i < num_components; ++i) {
    std::string name = reader->ReadString();
    const double sum = reader->ReadF64();
    if (!reader->ok()) return Corrupt("short training state");
    s.component_sums.emplace_back(std::move(name), sum);
  }
  s.last_epoch_loss = reader->ReadF64();
  if (!reader->ok()) return Corrupt("short training state");
  return s;
}

// Parses the payload of a checksum-validated checkpoint. `version` is the
// (already range-checked) header version: v1 payloads end after the
// top-word lists, v2 appends the optional training state, v3 prefixes
// every tensor record with a dtype tag (quantized serving format).
StatusOr<Checkpoint> ParsePayload(const std::string& payload,
                                  uint32_t version) {
  util::BinaryReader reader(payload.data(), payload.size());
  Checkpoint ckpt;
  ckpt.descriptor.type = reader.ReadString();
  ckpt.descriptor.display_name = reader.ReadString();
  ckpt.descriptor.config = ReadConfig(&reader);
  ckpt.descriptor.vocab_size = static_cast<int>(reader.ReadU32());
  ckpt.descriptor.embedding_dim = static_cast<int>(reader.ReadU32());
  const uint32_t num_extras = reader.ReadU32();
  if (!reader.ok()) return Corrupt("short descriptor");
  if (ckpt.descriptor.type.empty()) return Corrupt("empty model type");
  if (ckpt.descriptor.config.num_topics <= 0) {
    return Corrupt("non-positive topic count");
  }
  if (ckpt.descriptor.vocab_size <= 0) {
    return Corrupt("non-positive vocabulary size");
  }
  if (num_extras > 1024) return Corrupt("implausible extras count");
  for (uint32_t i = 0; i < num_extras; ++i) {
    std::string key = reader.ReadString();
    std::string value = reader.ReadString();
    if (!reader.ok()) return Corrupt("short descriptor extras");
    ckpt.descriptor.extras.emplace_back(std::move(key), std::move(value));
  }

  const uint32_t num_words = reader.ReadU32();
  if (!reader.ok()) return Corrupt("short vocabulary");
  if (num_words != static_cast<uint32_t>(ckpt.descriptor.vocab_size)) {
    return Corrupt("vocabulary has " + std::to_string(num_words) +
                   " words but descriptor says " +
                   std::to_string(ckpt.descriptor.vocab_size));
  }
  ckpt.vocab.reserve(num_words);
  for (uint32_t i = 0; i < num_words; ++i) {
    ckpt.vocab.push_back(reader.ReadString());
    if (!reader.ok()) return Corrupt("short vocabulary");
  }

  const uint32_t num_tensors = reader.ReadU32();
  if (!reader.ok()) return Corrupt("short state dict");
  if (num_tensors == 0 || num_tensors > 4096) {
    return Corrupt("implausible state tensor count " +
                   std::to_string(num_tensors));
  }
  ckpt.tensors.reserve(num_tensors);
  for (uint32_t i = 0; i < num_tensors; ++i) {
    std::string name = reader.ReadString();
    if (!reader.ok() || name.empty()) {
      return Corrupt("state tensor " + std::to_string(i) + ": bad name");
    }
    const std::string what = "state tensor '" + name + "'";
    StatusOr<Tensor> t =
        version >= 3 ? ReadTensorV3(&reader, what, &ckpt.storage_precision)
                     : ReadTensor(&reader, what);
    if (!t.ok()) return t.status();
    ckpt.tensors.emplace_back(std::move(name), std::move(t).value());
  }

  StatusOr<Tensor> beta =
      version >= 3 ? ReadTensorV3(&reader, "beta", &ckpt.storage_precision)
                   : ReadTensor(&reader, "beta");
  if (!beta.ok()) return beta.status();
  ckpt.beta = std::move(beta).value();
  if (ckpt.beta.rows() != ckpt.descriptor.config.num_topics ||
      ckpt.beta.cols() != ckpt.descriptor.vocab_size) {
    return Corrupt("beta shape does not match descriptor");
  }

  const uint32_t num_topic_lists = reader.ReadU32();
  if (!reader.ok()) return Corrupt("short top-word lists");
  if (num_topic_lists !=
      static_cast<uint32_t>(ckpt.descriptor.config.num_topics)) {
    return Corrupt("top-word list count does not match topic count");
  }
  ckpt.top_words.reserve(num_topic_lists);
  for (uint32_t k = 0; k < num_topic_lists; ++k) {
    std::vector<int> words = reader.ReadIntVector();
    if (!reader.ok()) return Corrupt("short top-word lists");
    for (int w : words) {
      if (w < 0 || w >= ckpt.descriptor.vocab_size) {
        return Corrupt("top word id out of vocabulary range");
      }
    }
    ckpt.top_words.push_back(std::move(words));
  }
  if (version >= 2) {
    const uint32_t has_state = reader.ReadU32();
    if (!reader.ok()) return Corrupt("short training-state flag");
    if (has_state > 1) return Corrupt("bad training-state flag");
    if (has_state == 1 && version >= 3) {
      // The writer refuses this combination; a v3 file claiming training
      // state was produced by a broken (or tampered-with) writer.
      return Corrupt("quantized checkpoint carries training state");
    }
    if (has_state == 1) {
      StatusOr<topicmodel::TrainingState> state = ReadTrainingState(&reader);
      if (!state.ok()) return state.status();
      ckpt.training_state = std::move(state).value();
      ckpt.has_training_state = true;
    }
  }
  if (!reader.AtEnd()) return Corrupt("trailing bytes after payload");
  return ckpt;
}

// Writes `bytes` to `path` atomically: serialize to `path.tmp`, fsync,
// then rename over `path`. A crash (or an injected "checkpoint.write"
// fault) at any point leaves either the previous file or no file at the
// destination -- never a torn one.
Status AtomicWriteFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open for writing: " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IOError("write failed: " + tmp);
    }
  }
  if (util::FaultInjector::Global().ShouldFail("checkpoint.write")) {
    std::remove(tmp.c_str());
    return Status::IOError("injected checkpoint write failure: " + path);
  }
  // The data must be durable before the new name points at it, or a
  // power loss after the rename could expose an empty file.
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

// Reads the named extra as a float/int, or the fallback when absent.
// Returns false (corrupt) when present but unparsable.
bool ExtraFloat(const ModelDescriptor& d, const std::string& key,
                float* out) {
  for (const auto& [k, v] : d.extras) {
    if (k != key) continue;
    char* end = nullptr;
    const float parsed = std::strtof(v.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == v.c_str()) return false;
    *out = parsed;
    return true;
  }
  return true;  // absent: keep the default
}

bool ExtraInt(const ModelDescriptor& d, const std::string& key, int* out) {
  for (const auto& [k, v] : d.extras) {
    if (k != key) continue;
    char* end = nullptr;
    const long parsed = std::strtol(v.c_str(), &end, 10);  // NOLINT
    if (end == nullptr || *end != '\0' || end == v.c_str()) return false;
    *out = static_cast<int>(parsed);
    return true;
  }
  return true;
}

// Rebuilds the ContraTopicOptions recorded by ContraTopicModel::Describe.
Status ParseContraOptions(const ModelDescriptor& d,
                          core::ContraTopicOptions* options) {
  int clip = options->clip_kernel_at_zero ? 1 : 0;
  int straight = options->straight_through ? 1 : 0;
  const bool ok =
      ExtraFloat(d, "lambda", &options->lambda) &&
      ExtraInt(d, "v", &options->v) &&
      ExtraFloat(d, "tau_gumbel", &options->tau_gumbel) &&
      ExtraFloat(d, "tau_contrast", &options->tau_contrast) &&
      ExtraInt(d, "candidate_words", &options->candidate_words) &&
      ExtraInt(d, "clip_kernel_at_zero", &clip) &&
      ExtraFloat(d, "warmup_fraction", &options->warmup_fraction) &&
      ExtraInt(d, "straight_through", &straight) &&
      ExtraFloat(d, "document_contrast_weight",
                 &options->document_contrast_weight) &&
      ExtraFloat(d, "document_contrast_temperature",
                 &options->document_contrast_temperature);
  if (!ok || options->v <= 0) {
    return Status::DataLoss(
        "corrupt checkpoint: unparsable contratopic options");
  }
  options->clip_kernel_at_zero = clip != 0;
  options->straight_through = straight != 0;
  return Status::OK();
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

StatusOr<Checkpoint> BuildCheckpoint(topicmodel::TopicModel& model,
                                     const text::Vocabulary& vocab) {
  auto* neural = dynamic_cast<NeuralTopicModel*>(&model);
  if (neural == nullptr) {
    return Status::InvalidArgument(model.name() +
                                   " is not a neural model; only neural "
                                   "models are checkpointable");
  }
  if (!neural->trained()) {
    return Status::FailedPrecondition(model.name() +
                                      " is not trained; checkpoints freeze "
                                      "a finished model");
  }
  Checkpoint ckpt;
  ckpt.descriptor = neural->Describe();
  if (ckpt.descriptor.type.empty()) {
    return Status::InvalidArgument(
        model.name() + " does not describe itself as a model-zoo type; "
                       "it cannot be rebuilt from a checkpoint");
  }
  if (ckpt.descriptor.vocab_size != vocab.size()) {
    return Status::InvalidArgument(
        "vocabulary has " + std::to_string(vocab.size()) +
        " words but the model was built for " +
        std::to_string(ckpt.descriptor.vocab_size));
  }
  for (const auto& t : neural->StateTensors()) {
    ckpt.tensors.emplace_back(t.name, *t.tensor);
  }
  ckpt.beta = neural->Beta();
  ckpt.vocab = vocab.words();
  const int top_k =
      std::min(kCheckpointTopWords, ckpt.descriptor.vocab_size);
  for (int k = 0; k < ckpt.descriptor.config.num_topics; ++k) {
    ckpt.top_words.push_back(ckpt.beta.TopKIndicesOfRow(k, top_k));
  }
  return ckpt;
}

Status WriteCheckpoint(const Checkpoint& checkpoint,
                       const std::string& path) {
  const bool quantized =
      checkpoint.storage_precision != tensor::ServePrecision::kFp32;
  if (quantized && checkpoint.has_training_state) {
    return Status::InvalidArgument(
        "quantized checkpoints are serving-only: training state requires "
        "fp32 storage so resumed training stays bitwise");
  }
  std::string payload;
  util::BinaryWriter body(&payload);
  body.WriteString(checkpoint.descriptor.type);
  body.WriteString(checkpoint.descriptor.display_name);
  WriteConfig(&body, checkpoint.descriptor.config);
  body.WriteU32(static_cast<uint32_t>(checkpoint.descriptor.vocab_size));
  body.WriteU32(static_cast<uint32_t>(checkpoint.descriptor.embedding_dim));
  body.WriteU32(static_cast<uint32_t>(checkpoint.descriptor.extras.size()));
  for (const auto& [key, value] : checkpoint.descriptor.extras) {
    body.WriteString(key);
    body.WriteString(value);
  }
  body.WriteU32(static_cast<uint32_t>(checkpoint.vocab.size()));
  for (const auto& word : checkpoint.vocab) body.WriteString(word);
  body.WriteU32(static_cast<uint32_t>(checkpoint.tensors.size()));
  for (const auto& [name, t] : checkpoint.tensors) {
    body.WriteString(name);
    if (quantized) {
      WriteTensorV3(&body, t, checkpoint.storage_precision);
    } else {
      WriteTensor(&body, t);
    }
  }
  if (quantized) {
    WriteTensorV3(&body, checkpoint.beta, checkpoint.storage_precision);
  } else {
    WriteTensor(&body, checkpoint.beta);
  }
  body.WriteU32(static_cast<uint32_t>(checkpoint.top_words.size()));
  for (const auto& words : checkpoint.top_words) body.WriteIntVector(words);
  body.WriteU32(checkpoint.has_training_state ? 1 : 0);
  if (checkpoint.has_training_state) {
    WriteTrainingState(&body, checkpoint.training_state);
  }

  std::string file_bytes;
  util::BinaryWriter writer(&file_bytes);
  writer.WriteU32(kCheckpointMagic);
  // fp32 files keep the pre-v3 stamp so their bytes are unchanged.
  writer.WriteU32(quantized ? kCheckpointVersion : kFp32CheckpointVersion);
  writer.WriteU64(Fnv1a64(payload.data(), payload.size()));
  writer.WriteU64(payload.size());
  writer.WriteBytes(payload.data(), payload.size());
  return AtomicWriteFile(path, file_bytes);
}

Status SaveCheckpoint(topicmodel::TopicModel& model,
                      const text::Vocabulary& vocab,
                      const std::string& path) {
  StatusOr<Checkpoint> ckpt = BuildCheckpoint(model, vocab);
  if (!ckpt.ok()) return ckpt.status();
  return WriteCheckpoint(*ckpt, path);
}

Status SaveQuantizedCheckpoint(topicmodel::TopicModel& model,
                               const text::Vocabulary& vocab,
                               const std::string& path,
                               tensor::ServePrecision storage) {
  StatusOr<Checkpoint> ckpt = BuildCheckpoint(model, vocab);
  if (!ckpt.ok()) return ckpt.status();
  ckpt->storage_precision = storage;
  return WriteCheckpoint(*ckpt, path);
}

StatusOr<Checkpoint> ReadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open checkpoint: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed: " + path);

  constexpr size_t kHeaderSize = 4 + 4 + 8 + 8;
  if (bytes.size() < kHeaderSize) {
    return Status::IOError("truncated checkpoint: " + path + " holds " +
                           std::to_string(bytes.size()) +
                           " bytes, header needs " +
                           std::to_string(kHeaderSize));
  }
  util::BinaryReader header(bytes.data(), bytes.size());
  const uint32_t magic = header.ReadU32();
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument(path + " is not a checkpoint (magic " +
                                   util::StrFormat("0x%08x", magic) + ")");
  }
  const uint32_t version = header.ReadU32();
  if (version < kMinCheckpointVersion || version > kCheckpointVersion) {
    return Status::FailedPrecondition(
        path + " uses checkpoint format v" + std::to_string(version) +
        "; this build reads v" + std::to_string(kMinCheckpointVersion) +
        " through v" + std::to_string(kCheckpointVersion));
  }
  const uint64_t checksum = header.ReadU64();
  const uint64_t payload_size = header.ReadU64();
  if (payload_size != bytes.size() - kHeaderSize) {
    if (payload_size > bytes.size() - kHeaderSize) {
      return Status::IOError(
          "truncated checkpoint: " + path + " promises " +
          std::to_string(payload_size) + " payload bytes but holds " +
          std::to_string(bytes.size() - kHeaderSize));
    }
    return Status::DataLoss("checkpoint " + path +
                            " has trailing bytes after the payload");
  }
  const char* payload_data = bytes.data() + kHeaderSize;
  if (Fnv1a64(payload_data, payload_size) != checksum) {
    return Status::DataLoss("checkpoint " + path +
                            " failed its payload checksum; the file is "
                            "corrupt");
  }
  return ParsePayload(std::string(payload_data, payload_size), version);
}

namespace {

// Shared by RestoreModel and ResumeModel: rebuilds the architecture from
// the descriptor and overwrites every state tensor bitwise. The returned
// model is NOT yet marked trained (still in training mode).
StatusOr<std::unique_ptr<NeuralTopicModel>> RebuildFromCheckpoint(
    const Checkpoint& ckpt) {
  const ModelDescriptor& d = ckpt.descriptor;
  if (d.type.empty()) {
    return Status::InvalidArgument("checkpoint has no model type");
  }
  if (RestorableTypes().count(d.type) == 0) {
    return Status::FailedPrecondition(
        "checkpoint model type '" + d.type +
        "' is unknown to this build (newer writer?)");
  }
  // The true embedding-derived tensors ride in the state dict; the
  // architecture only needs placeholders of the right shape. Ones (not
  // zeros) keep any normalization in constructors finite.
  const int dim = d.embedding_dim > 0 ? d.embedding_dim : 1;
  embed::WordEmbeddings placeholder(Tensor::Full(d.vocab_size, dim, 1.0f),
                                    ckpt.vocab);

  core::ContraTopicOptions contra;
  if (d.type.rfind("contratopic", 0) == 0) {
    Status status = ParseContraOptions(d, &contra);
    if (!status.ok()) return status;
  }
  std::unique_ptr<topicmodel::TopicModel> model =
      core::CreateModel(d.type, d.config, placeholder, contra);
  auto* neural = dynamic_cast<NeuralTopicModel*>(model.get());
  if (neural == nullptr) {
    return Status::Internal("restored '" + d.type +
                            "' is not a neural model");
  }

  std::unordered_map<std::string, Tensor*> by_name;
  for (const auto& t : neural->StateTensors()) by_name[t.name] = t.tensor;
  std::set<std::string> restored;
  for (const auto& [name, value] : ckpt.tensors) {
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::FailedPrecondition(
          "checkpoint tensor '" + name + "' does not exist in a freshly "
          "built '" + d.type + "' (architecture drift?)");
    }
    Tensor* target = it->second;
    if (target->rows() != value.rows() || target->cols() != value.cols()) {
      return Status::FailedPrecondition(
          "checkpoint tensor '" + name + "' is " +
          std::to_string(value.rows()) + "x" + std::to_string(value.cols()) +
          " but the model expects " + std::to_string(target->rows()) + "x" +
          std::to_string(target->cols()));
    }
    *target = value;
    restored.insert(name);
  }
  for (const auto& [name, tensor] : by_name) {
    (void)tensor;
    if (restored.count(name) == 0) {
      return Status::FailedPrecondition(
          "checkpoint is missing state tensor '" + name +
          "' required by '" + d.type + "'");
    }
  }

  model.release();
  return std::unique_ptr<NeuralTopicModel>(neural);
}

}  // namespace

StatusOr<std::unique_ptr<NeuralTopicModel>> RestoreModel(
    const Checkpoint& ckpt) {
  StatusOr<std::unique_ptr<NeuralTopicModel>> model =
      RebuildFromCheckpoint(ckpt);
  if (!model.ok()) return model.status();
  (*model)->RestoreTrainedState(ckpt.beta);
  return model;
}

StatusOr<Checkpoint> BuildTrainingCheckpoint(
    NeuralTopicModel& model, const text::Vocabulary& vocab,
    const topicmodel::TrainingState& state) {
  Checkpoint ckpt;
  ckpt.descriptor = model.Describe();
  if (ckpt.descriptor.type.empty()) {
    return Status::InvalidArgument(
        model.name() + " does not describe itself as a model-zoo type; "
                       "it cannot be rebuilt from a checkpoint");
  }
  if (ckpt.descriptor.vocab_size != vocab.size()) {
    return Status::InvalidArgument(
        "vocabulary has " + std::to_string(vocab.size()) +
        " words but the model was built for " +
        std::to_string(ckpt.descriptor.vocab_size));
  }
  if (state.adam.m.size() != state.adam.v.size()) {
    return Status::InvalidArgument(
        "training state has mismatched optimizer moment counts");
  }
  const Tensor& beta = model.LatestBeta();
  if (beta.rows() != ckpt.descriptor.config.num_topics ||
      beta.cols() != ckpt.descriptor.vocab_size) {
    return Status::FailedPrecondition(
        model.name() +
        " has not completed a training step yet; nothing to checkpoint");
  }
  for (const auto& t : model.StateTensors()) {
    ckpt.tensors.emplace_back(t.name, *t.tensor);
  }
  ckpt.beta = beta;
  ckpt.vocab = vocab.words();
  const int top_k = std::min(kCheckpointTopWords, ckpt.descriptor.vocab_size);
  for (int k = 0; k < ckpt.descriptor.config.num_topics; ++k) {
    ckpt.top_words.push_back(ckpt.beta.TopKIndicesOfRow(k, top_k));
  }
  ckpt.has_training_state = true;
  ckpt.training_state = state;
  return ckpt;
}

Status SaveTrainingCheckpoint(NeuralTopicModel& model,
                              const text::Vocabulary& vocab,
                              const topicmodel::TrainingState& state,
                              const std::string& path) {
  StatusOr<Checkpoint> ckpt = BuildTrainingCheckpoint(model, vocab, state);
  if (!ckpt.ok()) return ckpt.status();
  return WriteCheckpoint(*ckpt, path);
}

StatusOr<std::unique_ptr<NeuralTopicModel>> ResumeModel(
    const Checkpoint& ckpt) {
  if (!ckpt.has_training_state) {
    return Status::FailedPrecondition(
        "checkpoint carries no training state; it cannot be resumed (use "
        "RestoreModel for serving)");
  }
  return RebuildFromCheckpoint(ckpt);
}

}  // namespace serve
}  // namespace contratopic
