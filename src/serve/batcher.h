#ifndef CONTRATOPIC_SERVE_BATCHER_H_
#define CONTRATOPIC_SERVE_BATCHER_H_

// MicroBatcher: the request queue of the inference engine. Callers submit
// single bag-of-words requests; a dispatch loop running on the global
// util::ThreadPool drains the queue in arrival order, up to
// max_batch_size requests per model call, and completes each request via
// its callback (or future).
//
// Graceful degradation: the queue is bounded. Once max_queue_depth
// requests are waiting, further submissions are shed immediately with
// util::Status kUnavailable instead of growing the backlog -- the caller
// decides whether to retry.
//
// Determinism: every eval-mode forward pass in this codebase is
// row-independent (matmul rows, batch-norm running stats, row softmax),
// so how requests happen to be grouped into batches cannot change any
// per-request result; batched and one-at-a-time serving are
// bitwise-identical (tests/serve_test.cc locks this in).
//
// Resilience (DESIGN.md §11): the batch function is fallible; a failed
// batch is retried on the Options::retry schedule (deterministic backoff
// jitter; "serve.retries" counter) before its requests are failed.
// Requests may carry a deadline -- one that expires while queued is
// completed with kDeadlineExceeded instead of occupying a model slot.
// Shutdown() stops the batcher, either draining queued work or failing
// it with kCancelled; submissions after shutdown are refused with
// kCancelled.
//
// Pause()/Resume() stop and restart the dispatch loop; they exist so
// tests can deterministically fill the queue to the shedding point.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <utility>
#include <vector>

#include "serve/resilience.h"
#include "util/status.h"

namespace contratopic {
namespace serve {

class MicroBatcher {
 public:
  // A canonical bag-of-words document: (word_id, count) pairs, sorted by
  // word id, each id at most once (InferenceEngine canonicalizes).
  using Request = std::vector<std::pair<int, int>>;
  // A topic-proportion row, or why it was not computed.
  using Result = util::StatusOr<std::vector<float>>;
  // Runs the model on a batch; on success must return one row per
  // request, in request order. Called from a pool worker (nested
  // ParallelFor runs inline there, per the ThreadPool contract). A
  // non-OK result fails the whole batch (after retries).
  using BatchResult = util::StatusOr<std::vector<std::vector<float>>>;
  using BatchFn = std::function<BatchResult(const std::vector<Request>&)>;
  using Callback = std::function<void(Result)>;

  struct Options {
    int max_batch_size = 32;
    // Submissions beyond this many waiting requests are shed.
    int max_queue_depth = 1024;
    // Observability hook, invoked after each successful batch with its
    // size (e.g. to feed a batch-size histogram). May be empty.
    std::function<void(int)> on_batch;
    // Retry schedule for failed batches; the default (max_attempts = 1)
    // fails a batch on its first error.
    RetryPolicy retry;
    // Invoked once per batch with its final status (after retries), e.g.
    // to feed a circuit breaker. May be empty.
    std::function<void(const util::Status&)> on_batch_done;
  };

  struct Stats {
    int64_t requests = 0;  // accepted (not shed)
    int64_t batches = 0;
    int64_t shed = 0;
    int64_t retries = 0;            // extra BatchFn attempts
    int64_t failed_batches = 0;     // batches failed after retries
    int64_t deadline_expired = 0;   // requests expired while queued
    int64_t cancelled = 0;          // requests failed by shutdown
    int max_batch_size_seen = 0;
    int max_queue_depth_seen = 0;
  };

  MicroBatcher(BatchFn fn, Options options);
  // Shutdown(/*drain=*/true): resumes (if paused) and drains outstanding
  // work.
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  // Enqueues `request`; `done` runs exactly once, on a pool worker (or
  // inline, immediately, when the request is shed).
  void Submit(Request request, Callback done);
  // Future-returning form of Submit.
  std::future<Result> Submit(Request request);
  // Deadline forms: the request has `deadline_ms` from submission to
  // *start* executing; if it is still queued when dispatch reaches it
  // after that, it completes with kDeadlineExceeded (deadline_ms <= 0:
  // only an immediately dispatched request survives).
  void Submit(Request request, double deadline_ms, Callback done);
  std::future<Result> Submit(Request request, double deadline_ms);

  // Stops the batcher permanently. With `drain_pending`, resumes (if
  // paused) and processes everything queued first; without it, every
  // queued request is completed with kCancelled (the in-flight batch, if
  // any, still finishes). Submissions after shutdown are refused with
  // kCancelled. Idempotent.
  void Shutdown(bool drain_pending);

  // Stops the dispatch loop after the in-flight batch; the queue then
  // accumulates (and sheds past max_queue_depth) until Resume().
  void Pause();
  void Resume();

  // Blocks until the queue is empty and no batch is in flight. Must not
  // be called while paused with work queued (it would never return), nor
  // from a pool worker.
  void Drain();

  int queue_depth() const;
  Stats stats() const;

 private:
  struct Entry {
    Request request;
    Callback done;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
  };

  void SubmitEntry(Entry entry);
  // Schedules the dispatch loop if it is not already running (mu_ held).
  void MaybeScheduleDispatch();
  void DispatchLoop();

  const BatchFn fn_;
  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable idle_;
  std::deque<Entry> queue_;
  bool dispatching_ = false;
  bool paused_ = false;
  bool shutdown_ = false;
  Stats stats_;
};

}  // namespace serve
}  // namespace contratopic

#endif  // CONTRATOPIC_SERVE_BATCHER_H_
