#ifndef CONTRATOPIC_SERVE_BATCHER_H_
#define CONTRATOPIC_SERVE_BATCHER_H_

// MicroBatcher: the request queue of the inference engine. Callers submit
// single bag-of-words requests; a dispatch loop running on the global
// util::ThreadPool drains the queue in arrival order, up to
// max_batch_size requests per model call, and completes each request via
// its callback (or future).
//
// Graceful degradation: the queue is bounded. Once max_queue_depth
// requests are waiting, further submissions are shed immediately with
// util::Status kUnavailable instead of growing the backlog -- the caller
// decides whether to retry.
//
// Determinism: every eval-mode forward pass in this codebase is
// row-independent (matmul rows, batch-norm running stats, row softmax),
// so how requests happen to be grouped into batches cannot change any
// per-request result; batched and one-at-a-time serving are
// bitwise-identical (tests/serve_test.cc locks this in).
//
// Pause()/Resume() stop and restart the dispatch loop; they exist so
// tests can deterministically fill the queue to the shedding point.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <utility>
#include <vector>

#include "util/status.h"

namespace contratopic {
namespace serve {

class MicroBatcher {
 public:
  // A canonical bag-of-words document: (word_id, count) pairs, sorted by
  // word id, each id at most once (InferenceEngine canonicalizes).
  using Request = std::vector<std::pair<int, int>>;
  // A topic-proportion row, or why it was not computed.
  using Result = util::StatusOr<std::vector<float>>;
  // Runs the model on a batch; must return one row per request, in
  // request order. Called from a pool worker (nested ParallelFor runs
  // inline there, per the ThreadPool contract).
  using BatchFn =
      std::function<std::vector<std::vector<float>>(
          const std::vector<Request>&)>;
  using Callback = std::function<void(Result)>;

  struct Options {
    int max_batch_size = 32;
    // Submissions beyond this many waiting requests are shed.
    int max_queue_depth = 1024;
    // Observability hook, invoked after each batch with its size (e.g.
    // to feed a batch-size histogram). May be empty.
    std::function<void(int)> on_batch;
  };

  struct Stats {
    int64_t requests = 0;  // accepted (not shed)
    int64_t batches = 0;
    int64_t shed = 0;
    int max_batch_size_seen = 0;
    int max_queue_depth_seen = 0;
  };

  MicroBatcher(BatchFn fn, Options options);
  // Resumes (if paused) and drains outstanding work.
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  // Enqueues `request`; `done` runs exactly once, on a pool worker (or
  // inline, immediately, when the request is shed).
  void Submit(Request request, Callback done);
  // Future-returning form of Submit.
  std::future<Result> Submit(Request request);

  // Stops the dispatch loop after the in-flight batch; the queue then
  // accumulates (and sheds past max_queue_depth) until Resume().
  void Pause();
  void Resume();

  // Blocks until the queue is empty and no batch is in flight. Must not
  // be called while paused with work queued (it would never return), nor
  // from a pool worker.
  void Drain();

  int queue_depth() const;
  Stats stats() const;

 private:
  // Schedules the dispatch loop if it is not already running (mu_ held).
  void MaybeScheduleDispatch();
  void DispatchLoop();

  const BatchFn fn_;
  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable idle_;
  std::deque<std::pair<Request, Callback>> queue_;
  bool dispatching_ = false;
  bool paused_ = false;
  Stats stats_;
};

}  // namespace serve
}  // namespace contratopic

#endif  // CONTRATOPIC_SERVE_BATCHER_H_
