#include "serve/resilience.h"

#include <algorithm>
#include <cmath>

#include "util/fault.h"
#include "util/logging.h"

namespace contratopic {
namespace serve {

double RetryPolicy::BackoffMs(int attempt) const {
  CHECK_GE(attempt, 1);
  // pow(multiplier, attempt-1) overflows to inf around attempt ~ 350 for
  // multiplier 2.0, and 0 * inf is NaN (which std::min then propagates),
  // so clamp the exponent first: once base * multiplier^e reaches
  // max_backoff_ms, a larger exponent cannot change the capped result.
  // The +1 margin absorbs log() rounding; small attempts hit the same
  // pow() call as before, so existing schedules are bitwise-unchanged.
  double exponent = static_cast<double>(attempt - 1);
  if (backoff_multiplier > 1.0 && base_backoff_ms > 0.0 &&
      max_backoff_ms > 0.0) {
    const double cap = std::ceil(std::log(max_backoff_ms / base_backoff_ms) /
                                 std::log(backoff_multiplier)) +
                       1.0;
    exponent = std::min(exponent, std::max(cap, 1.0));
  }
  double backoff = base_backoff_ms * std::pow(backoff_multiplier, exponent);
  if (!std::isfinite(backoff)) {
    backoff = base_backoff_ms == 0.0 ? 0.0 : max_backoff_ms;
  }
  backoff = std::min(std::max(backoff, 0.0), max_backoff_ms);
  const uint64_t h =
      util::MixBits(jitter_seed ^ util::MixBits(static_cast<uint64_t>(attempt)));
  // 53 bits -> uniform double in [0, 1), same construction as Rng::Uniform.
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return backoff * (1.0 + 0.5 * unit);
}

CircuitBreaker::CircuitBreaker(const Options& options) : options_(options) {
  CHECK_GT(options_.failure_threshold, 0);
  CHECK_GT(options_.probe_interval, 0);
  CHECK_GT(options_.success_threshold, 0);
}

bool CircuitBreaker::AllowRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return true;
    case State::kOpen: {
      const int64_t call = open_calls_++;
      if (call % options_.probe_interval == options_.probe_interval - 1) {
        state_ = State::kHalfOpen;
        half_open_successes_ = 0;
        return true;
      }
      ++denied_;
      return false;
    }
  }
  return true;  // unreachable
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    if (++half_open_successes_ >= options_.success_threshold) {
      state_ = State::kClosed;
    }
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // The probe failed: straight back to open, restarting the probe count.
    state_ = State::kOpen;
    open_calls_ = 0;
    consecutive_failures_ = 0;
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    open_calls_ = 0;
    consecutive_failures_ = 0;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int64_t CircuitBreaker::denied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return denied_;
}

}  // namespace serve
}  // namespace contratopic
