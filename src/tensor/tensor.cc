#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "tensor/arena.h"
#include "tensor/backend.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace tensor {

namespace {
// Grain for the parallel in-place helpers below: cheap elementwise bodies
// only split when the buffer is large enough to amortize dispatch. Each
// element is written independently, so results are identical at any thread
// count.
constexpr int64_t kElemGrain = 1 << 14;
}  // namespace

Tensor::Tensor(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols),
      data_(detail::AcquireBufferZero(static_cast<size_t>(rows * cols))) {
  CHECK_GE(rows, 0);
  CHECK_GE(cols, 0);
}

Tensor::Tensor(const Tensor& other)
    : rows_(other.rows_), cols_(other.cols_),
      data_(detail::AcquireBufferCopy(other.data_.data(),
                                      other.data_.size())) {}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  if (data_.capacity() >= other.data_.size()) {
    data_.assign(other.data_.begin(), other.data_.end());
  } else {
    detail::ReleaseBuffer(std::move(data_));
    data_ = detail::AcquireBufferCopy(other.data_.data(), other.data_.size());
  }
  return *this;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  detail::ReleaseBuffer(std::move(data_));
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = std::move(other.data_);
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_.clear();
  return *this;
}

Tensor::~Tensor() { detail::ReleaseBuffer(std::move(data_)); }

Tensor Tensor::Full(int64_t rows, int64_t cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Identity(int64_t n) {
  Tensor t(n, n);
  for (int64_t i = 0; i < n; ++i) t.at(i, i) = 1.0f;
  return t;
}

Tensor Tensor::RandNormal(int64_t rows, int64_t cols, util::Rng& rng,
                          float mean, float stddev) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::RandUniform(int64_t rows, int64_t cols, util::Rng& rng,
                           float lo, float hi) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::RandGumbel(int64_t rows, int64_t cols, util::Rng& rng) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.Gumbel());
  }
  return t;
}

Tensor Tensor::GlorotUniform(int64_t rows, int64_t cols, util::Rng& rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  return RandUniform(rows, cols, rng, -limit, limit);
}

Tensor Tensor::Reshaped(int64_t rows, int64_t cols) const {
  CHECK_EQ(rows * cols, numel());
  Tensor t = *this;
  t.rows_ = rows;
  t.cols_ = cols;
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::Scale(float factor) {
  float* d = data_.data();
  const KernelTable& kt = ActiveKernels();
  util::ThreadPool::Global().ParallelFor(
      0, numel(),
      [d, factor, &kt](int64_t lo, int64_t hi) {
        kt.scale(d + lo, hi - lo, factor);
      },
      kElemGrain);
}

void Tensor::AddInPlace(const Tensor& other) {
  CHECK(same_shape(other)) << ShapeString() << " vs " << other.ShapeString();
  float* d = data_.data();
  const float* src = other.data();
  const KernelTable& kt = ActiveKernels();
  util::ThreadPool::Global().ParallelFor(
      0, numel(),
      [d, src, &kt](int64_t lo, int64_t hi) {
        kt.add(d + lo, src + lo, hi - lo);
      },
      kElemGrain);
}

void Tensor::AddScaledInPlace(const Tensor& other, float factor) {
  CHECK(same_shape(other)) << ShapeString() << " vs " << other.ShapeString();
  float* d = data_.data();
  const float* src = other.data();
  const KernelTable& kt = ActiveKernels();
  util::ThreadPool::Global().ParallelFor(
      0, numel(),
      [d, src, factor, &kt](int64_t lo, int64_t hi) {
        kt.axpy(d + lo, src + lo, hi - lo, factor);
      },
      kElemGrain);
}

void Tensor::Apply(const std::function<float(float)>& fn) {
  // fn must be pure: chunks may run on pool workers concurrently.
  float* d = data_.data();
  util::ThreadPool::Global().ParallelFor(
      0, numel(),
      [d, &fn](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) d[i] = fn(d[i]);
      },
      kElemGrain);
}

float Tensor::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::Mean() const {
  CHECK_GT(numel(), 0);
  return Sum() / static_cast<float>(numel());
}

float Tensor::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::L2Norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

std::vector<int> Tensor::TopKIndicesOfRow(int64_t r, int k) const {
  CHECK_GE(r, 0);
  CHECK_LT(r, rows_);
  k = std::min<int>(k, static_cast<int>(cols_));
  std::vector<int> idx(static_cast<size_t>(cols_));
  std::iota(idx.begin(), idx.end(), 0);
  const float* values = row(r);
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [values](int a, int b) { return values[a] > values[b]; });
  idx.resize(k);
  return idx;
}

std::string Tensor::ShapeString() const {
  return util::StrFormat("[%lld x %lld]", static_cast<long long>(rows_),
                         static_cast<long long>(cols_));
}

std::string Tensor::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "Tensor" << ShapeString() << " {\n";
  const int64_t r_show = std::min<int64_t>(rows_, max_rows);
  const int64_t c_show = std::min<int64_t>(cols_, max_cols);
  for (int64_t r = 0; r < r_show; ++r) {
    os << "  ";
    for (int64_t c = 0; c < c_show; ++c) {
      os << util::StrFormat("%9.4f ", at(r, c));
    }
    if (c_show < cols_) os << "...";
    os << "\n";
  }
  if (r_show < rows_) os << "  ...\n";
  os << "}";
  return os.str();
}

bool AllClose(const Tensor& a, const Tensor& b, float atol) {
  if (!a.same_shape(b)) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > atol) return false;
  }
  return true;
}

}  // namespace tensor
}  // namespace contratopic
