#include "tensor/backend.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "tensor/kernel_tables.h"
#include "util/cpu_features.h"
#include "util/logging.h"

namespace contratopic {
namespace tensor {

namespace {

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* ResolveStartupTable() {
  const char* env = std::getenv("CT_KERNEL_BACKEND");
  const std::string name = env != nullptr ? env : "auto";
  KernelBackendKind kind;
  CHECK(ParseKernelBackendName(name, &kind))
      << "CT_KERNEL_BACKEND=" << name
      << " is not one of auto, scalar, sse2, avx2";
  CHECK(BackendSupported(kind))
      << "CT_KERNEL_BACKEND=" << name
      << " requests a backend this host does not support (cpu: "
      << util::CpuFeatures::Get().ToString() << ")";
  return &TableFor(kind);
}

}  // namespace

const KernelTable& ActiveKernels() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    static std::once_flag once;
    std::call_once(once, [] {
      g_active.store(ResolveStartupTable(), std::memory_order_release);
    });
    table = g_active.load(std::memory_order_acquire);
  }
  return *table;
}

bool BackendSupported(KernelBackendKind kind) {
  switch (kind) {
    case KernelBackendKind::kScalar:
      return true;
    case KernelBackendKind::kSse2:
      return CT_KERNEL_X86 != 0 && util::CpuFeatures::Get().sse2;
    case KernelBackendKind::kAvx2:
      return CT_KERNEL_X86 != 0 && util::CpuFeatures::Get().avx2;
  }
  return false;
}

std::vector<KernelBackendKind> SupportedBackends() {
  std::vector<KernelBackendKind> out;
  for (KernelBackendKind kind :
       {KernelBackendKind::kScalar, KernelBackendKind::kSse2,
        KernelBackendKind::kAvx2}) {
    if (BackendSupported(kind)) out.push_back(kind);
  }
  return out;
}

KernelBackendKind BestSupportedBackend() {
  return SupportedBackends().back();
}

const KernelTable& TableFor(KernelBackendKind kind) {
  CHECK(BackendSupported(kind))
      << "kernel backend " << KernelBackendName(kind)
      << " is not supported on this host (cpu: "
      << util::CpuFeatures::Get().ToString() << ")";
#if CT_KERNEL_X86
  switch (kind) {
    case KernelBackendKind::kScalar:
      return ScalarKernelTable();
    case KernelBackendKind::kSse2:
      return Sse2KernelTable();
    case KernelBackendKind::kAvx2:
      return Avx2KernelTable();
  }
#endif
  return ScalarKernelTable();
}

void SetKernelBackend(KernelBackendKind kind) {
  g_active.store(&TableFor(kind), std::memory_order_release);
}

const char* KernelBackendName(KernelBackendKind kind) {
  switch (kind) {
    case KernelBackendKind::kScalar:
      return "scalar";
    case KernelBackendKind::kSse2:
      return "sse2";
    case KernelBackendKind::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseKernelBackendName(const std::string& name,
                            KernelBackendKind* kind) {
  if (name == "auto") {
    *kind = BestSupportedBackend();
    return true;
  }
  if (name == "scalar") {
    *kind = KernelBackendKind::kScalar;
    return true;
  }
  if (name == "sse2") {
    *kind = KernelBackendKind::kSse2;
    return true;
  }
  if (name == "avx2") {
    *kind = KernelBackendKind::kAvx2;
    return true;
  }
  return false;
}

ScopedKernelBackend::ScopedKernelBackend(KernelBackendKind kind)
    : prev_(ActiveKernels().kind) {
  SetKernelBackend(kind);
}

ScopedKernelBackend::~ScopedKernelBackend() { SetKernelBackend(prev_); }

float CanonicalExpf(float x) { return ScalarKernelTable().expf1(x); }

}  // namespace tensor
}  // namespace contratopic
