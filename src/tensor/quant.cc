#include "tensor/quant.h"

#include <atomic>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <vector>

#include "tensor/backend.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace tensor {

namespace {

// Mirrors backend.cc's g_active: resolved lazily from the environment,
// then a plain atomic so Scoped overrides are cheap.
std::atomic<int> g_precision{-1};

ServePrecision ResolveStartupPrecision() {
  const char* env = std::getenv("CT_SERVE_PRECISION");
  const std::string name = env != nullptr ? env : "fp32";
  ServePrecision p;
  CHECK(ParseServePrecisionName(name, &p))
      << "CT_SERVE_PRECISION=" << name
      << " is not one of fp32, bf16, int8";
  return p;
}

// Below this many float products per output matrix the pool dispatch
// costs more than the math (matches kernels.cc's MatMul threshold).
constexpr int64_t kParallelFlops = 1 << 22;

void ParallelOverRows(int64_t rows, int64_t flops,
                      const std::function<void(int64_t, int64_t)>& body) {
  if (flops > kParallelFlops) {
    util::ThreadPool::Global().ParallelFor(0, rows, body, /*grain=*/1);
  } else {
    body(0, rows);
  }
}

}  // namespace

ServePrecision ActiveServePrecision() {
  int p = g_precision.load(std::memory_order_acquire);
  if (p < 0) {
    static std::once_flag once;
    std::call_once(once, [] {
      g_precision.store(static_cast<int>(ResolveStartupPrecision()),
                        std::memory_order_release);
    });
    p = g_precision.load(std::memory_order_acquire);
  }
  return static_cast<ServePrecision>(p);
}

void SetServePrecision(ServePrecision p) {
  ActiveServePrecision();  // Force env resolution first (mirrors backend.cc).
  g_precision.store(static_cast<int>(p), std::memory_order_release);
}

const char* ServePrecisionName(ServePrecision p) {
  switch (p) {
    case ServePrecision::kFp32:
      return "fp32";
    case ServePrecision::kBf16:
      return "bf16";
    case ServePrecision::kInt8:
      return "int8";
  }
  return "unknown";
}

bool ParseServePrecisionName(const std::string& name, ServePrecision* p) {
  if (name == "fp32") {
    *p = ServePrecision::kFp32;
    return true;
  }
  if (name == "bf16") {
    *p = ServePrecision::kBf16;
    return true;
  }
  if (name == "int8") {
    *p = ServePrecision::kInt8;
    return true;
  }
  return false;
}

ScopedServePrecision::ScopedServePrecision(ServePrecision p)
    : prev_(ActiveServePrecision()) {
  SetServePrecision(p);
}

ScopedServePrecision::~ScopedServePrecision() { SetServePrecision(prev_); }

Bf16Matrix Bf16FromTensor(const Tensor& t) {
  Bf16Matrix m;
  m.rows = t.rows();
  m.cols = t.cols();
  m.data.resize(static_cast<size_t>(t.numel()));
  ActiveKernels().bf16_encode(t.data(), m.data.data(), t.numel());
  return m;
}

Tensor TensorFromBf16(const Bf16Matrix& m) {
  Tensor t(m.rows, m.cols);
  CHECK_EQ(static_cast<int64_t>(m.data.size()), t.numel());
  ActiveKernels().bf16_decode(m.data.data(), t.data(), t.numel());
  return t;
}

Int8Matrix Int8FromTensor(const Tensor& t) {
  const KernelTable& kt = ActiveKernels();
  Int8Matrix m;
  m.rows = t.rows();
  m.cols = t.cols();
  m.data.resize(static_cast<size_t>(t.numel()));
  m.scales.resize(static_cast<size_t>(t.rows()));
  for (int64_t r = 0; r < t.rows(); ++r) {
    const float* row = t.data() + r * t.cols();
    int8_t* out = m.data.data() + r * t.cols();
    const float absmax = kt.row_absmax(row, t.cols());
    if (absmax > 0.0f) {
      m.scales[static_cast<size_t>(r)] = absmax / 127.0f;
      kt.quantize_i8(row, out, t.cols(), 127.0f / absmax);
    } else {
      // All-zero (or empty) row; also the deterministic fallback when
      // absmax is NaN (comparison false).
      m.scales[static_cast<size_t>(r)] = 0.0f;
      for (int64_t c = 0; c < t.cols(); ++c) out[c] = 0;
    }
  }
  return m;
}

Tensor TensorFromInt8(const Int8Matrix& m) {
  Tensor t(m.rows, m.cols);
  CHECK_EQ(static_cast<int64_t>(m.data.size()), t.numel());
  CHECK_EQ(static_cast<int64_t>(m.scales.size()), m.rows);
  for (int64_t r = 0; r < m.rows; ++r) {
    const int8_t* row = m.data.data() + r * m.cols;
    const float scale = m.scales[static_cast<size_t>(r)];
    float* out = t.data() + r * m.cols;
    for (int64_t c = 0; c < m.cols; ++c) {
      out[c] = static_cast<float>(row[c]) * scale;
    }
  }
  return t;
}

Tensor MatMulBf16T(const Tensor& x, const Bf16Matrix& wt,
                   const float* bias) {
  CHECK_EQ(x.cols(), wt.cols);
  const int64_t k = x.cols();
  const int64_t n = wt.rows;
  Tensor out(x.rows(), n);
  const KernelTable& kt = ActiveKernels();
  auto body = [&](int64_t row_begin, int64_t row_end) {
    for (int64_t r = row_begin; r < row_end; ++r) {
      const float* x_row = x.data() + r * k;
      float* out_row = out.data() + r * n;
      int64_t o = 0;
      for (; o + 4 <= n; o += 4) {
        float dots[4];
        kt.dot4_bf16(x_row, wt.data.data() + o * k,
                     wt.data.data() + (o + 1) * k,
                     wt.data.data() + (o + 2) * k,
                     wt.data.data() + (o + 3) * k, k, dots);
        for (int j = 0; j < 4; ++j) {
          out_row[o + j] = bias != nullptr ? dots[j] + bias[o + j] : dots[j];
        }
      }
      for (; o < n; ++o) {
        const float d = kt.dot_bf16(x_row, wt.data.data() + o * k, k);
        out_row[o] = bias != nullptr ? d + bias[o] : d;
      }
    }
  };
  ParallelOverRows(x.rows(), x.rows() * n * k, body);
  return out;
}

Tensor MatMulInt8T(const Tensor& x, const Int8Matrix& wt,
                   const float* bias) {
  CHECK_EQ(x.cols(), wt.cols);
  const int64_t k = x.cols();
  const int64_t n = wt.rows;
  Tensor out(x.rows(), n);
  const KernelTable& kt = ActiveKernels();
  auto body = [&](int64_t row_begin, int64_t row_end) {
    std::vector<int8_t> xq(static_cast<size_t>(k));
    for (int64_t r = row_begin; r < row_end; ++r) {
      const float* x_row = x.data() + r * k;
      float* out_row = out.data() + r * n;
      const float absmax = kt.row_absmax(x_row, k);
      if (!(absmax > 0.0f)) {
        // Zero activation row: every dot is exactly 0 + bias.
        for (int64_t o = 0; o < n; ++o) {
          out_row[o] = bias != nullptr ? bias[o] : 0.0f;
        }
        continue;
      }
      const float x_scale = absmax / 127.0f;
      // Non-negative activation rows (normalized bag-of-words, ReLU
      // outputs) take the unsigned dot, which is bitwise identical but
      // cheaper on AVX2.
      const bool nonneg = kt.quantize_i8(x_row, xq.data(), k, 127.0f / absmax);
      const auto dot4 = nonneg ? kt.dot4_i8u : kt.dot4_i8;
      const auto dot1 = nonneg ? kt.dot_i8u : kt.dot_i8;
      int64_t o = 0;
      for (; o + 4 <= n; o += 4) {
        int64_t accs[4];
        dot4(xq.data(), wt.data.data() + o * k,
             wt.data.data() + (o + 1) * k,
             wt.data.data() + (o + 2) * k,
             wt.data.data() + (o + 3) * k, k, accs);
        for (int j = 0; j < 4; ++j) {
          const double s = static_cast<double>(x_scale) *
                           static_cast<double>(
                               wt.scales[static_cast<size_t>(o + j)]);
          const float d =
              static_cast<float>(static_cast<double>(accs[j]) * s);
          out_row[o + j] = bias != nullptr ? d + bias[o + j] : d;
        }
      }
      for (; o < n; ++o) {
        const int64_t acc = dot1(xq.data(), wt.data.data() + o * k, k);
        const double s =
            static_cast<double>(x_scale) *
            static_cast<double>(wt.scales[static_cast<size_t>(o)]);
        const float d = static_cast<float>(static_cast<double>(acc) * s);
        out_row[o] = bias != nullptr ? d + bias[o] : d;
      }
    }
  };
  ParallelOverRows(x.rows(), x.rows() * n * k, body);
  return out;
}

bool QuantizableShape(int64_t rows, int64_t cols) {
  return rows >= 2 && cols >= 2 && rows * cols >= 256;
}

}  // namespace tensor
}  // namespace contratopic
