#include "tensor/autodiff.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <unordered_set>
#include <utility>

#include "tensor/graph.h"
#include "tensor/kernels.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace autodiff {

using tensor::BinaryOp;
using tensor::ParallelElems;
using tensor::ParallelRows;

namespace {
// Fixed row grid for backward reductions over the batch dimension (the
// BroadcastRowOp bias gradient). Matches the ColSum grid in kernels.cc: the
// grid depends only on the range, never on thread count, so the reduction
// order — and the result — is identical at any parallelism level.
constexpr int64_t kGradReduceGridRows = 256;
}  // namespace

Node::Node() = default;
Node::~Node() = default;

void Node::AccumGrad(const Tensor& g) {
  if (grad.empty()) {
    grad = Tensor::Zeros(rows, cols);
  }
  grad.AddInPlace(g);
}

Var Var::Leaf(Tensor value, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->rows = value.rows();
  node->cols = value.cols();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  return Var(std::move(node));
}

void Var::ZeroGrad() {
  if (!node_->grad.empty()) node_->grad.Fill(0.0f);
}

void MarkInvariant(const Var& leaf) {
  static std::atomic<uint64_t> next_uid{1};
  CHECK(leaf.defined());
  CHECK(leaf.node()->parents.empty())
      << "MarkInvariant expects a leaf, not an op node";
  CHECK(!leaf.requires_grad())
      << "MarkInvariant expects a frozen (requires_grad=false) leaf";
  if (leaf.node()->leaf_uid == 0) {
    leaf.node()->leaf_uid = next_uid.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {

// Materializes `src` into *out unless the graph engine already seeded *out
// (fusion moved the parent's buffer in, leaving `src` empty). On the tape
// path *out is always empty, so this is the plain output copy every
// copy-then-transform op starts with.
void CopyInto(const Tensor& src, Tensor* out) {
  if (src.empty()) return;
  if (out->data() == src.data() && !out->empty()) return;
  *out = src;
}

uint64_t HashName(const char* s) {
  uint64_t h = 1469598103934665603ull;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*s));
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t FloatBits(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

// Hoist-cache attribute key: op kind plus its scalar attributes. Zero
// disables hoisting (ops with non-hashable attributes: masks, indices).
uint64_t AttrKey(const OpTraits& traits,
                 std::initializer_list<uint64_t> attrs = {}) {
  uint64_t h = HashName(traits.name);
  for (uint64_t a : attrs) {
    h ^= a + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h != 0 ? h : 1;
}

// Builds an op node with record-time shape inference. Under an active
// GraphSession the forward is deferred (recorded as a pending IR node);
// otherwise — the tape engine, and any pool-worker thread — the exact same
// forward runs immediately. One code path computes in both engines, which
// is what makes them bitwise-identical by construction.
Var MakeNode(int64_t rows, int64_t cols, std::vector<Var> parents,
             const OpTraits& traits, uint64_t attr_key, ForwardFn forward,
             std::function<void(Node*)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->rows = rows;
  node->cols = cols;
  for (auto& p : parents) {
    if (p.requires_grad()) node->requires_grad = true;
    node->parents.push_back(p.node());
  }
  if (node->requires_grad) node->backward_fn = std::move(backward_fn);
  graph::GraphSession* session = graph::GraphSession::Active();
  if (session != nullptr) {
    auto pending = std::make_unique<graph::PendingOp>();
    pending->forward = std::move(forward);
    pending->traits = &traits;
    pending->attr_key = attr_key;
    node->pending = std::move(pending);
    Var v(std::move(node));
    session->Record(v.node());
    return v;
  }
  forward(node.get(), &node->value);
  DCHECK_EQ(node->value.rows(), rows) << traits.name;
  DCHECK_EQ(node->value.cols(), cols) << traits.name;
  return Var(std::move(node));
}

void TopoSort(Node* root, std::vector<Node*>* order) {
  // Iterative DFS post-order.
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->parents.size()) {
      Node* next = node->parents[child].get();
      ++child;
      if (next->requires_grad && visited.insert(next).second) {
        stack.emplace_back(next, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Var& loss) {
  CHECK_EQ(loss.value().numel(), 1) << "Backward expects a scalar loss";
  if (!loss.requires_grad()) return;
  std::vector<Node*> order;
  TopoSort(loss.node().get(), &order);
  loss.node()->AccumGrad(Tensor::Scalar(1.0f));
  // Under a graph session, release each intermediate gradient as soon as
  // its backward_fn has consumed it: in reverse topological order a node's
  // grad is complete before its backward_fn runs and is never read after,
  // so this is a linear-scan liveness release along the fixed backward
  // schedule. Leaves keep their grads for the optimizer.
  const bool release_intermediates = graph::GraphSession::Active() != nullptr;
  // Post-order puts the loss last; walk backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn(node);
    }
    if (release_intermediates && !node->parents.empty()) {
      node->grad = Tensor();
    }
  }
}

void ClearGraphGrads(const Var& root) {
  if (!root.defined() || !root.requires_grad()) return;
  std::vector<Node*> order;
  TopoSort(root.node().get(), &order);
  for (Node* node : order) node->grad = Tensor();
}

// ---------------------------------------------------------------------------
// Elementwise binary ops.
// ---------------------------------------------------------------------------

namespace {
constexpr OpTraits kAddTraits = {"add", false, 0u, true};
constexpr OpTraits kSubTraits = {"sub", false, 0u, true};
constexpr OpTraits kMulTraits = {"mul", false, 0b11u, true};
constexpr OpTraits kDivTraits = {"div", false, 0b11u, true};
constexpr OpTraits kAddScalarTraits = {"add_scalar", false, 0u, true};
constexpr OpTraits kMulScalarTraits = {"mul_scalar", false, 0u, true};
}  // namespace

Var Add(const Var& a, const Var& b) {
  CHECK_EQ(a.rows(), b.rows());
  CHECK_EQ(a.cols(), b.cols());
  return MakeNode(
      a.rows(), a.cols(), {a, b}, kAddTraits, AttrKey(kAddTraits),
      [](Node* n, Tensor* out) {
        CopyInto(n->parents[0]->value, out);
        out->AddInPlace(n->parents[1]->value);
      },
      [](Node* n) {
        if (n->parents[0]->requires_grad) n->parents[0]->AccumGrad(n->grad);
        if (n->parents[1]->requires_grad) n->parents[1]->AccumGrad(n->grad);
      });
}

Var Sub(const Var& a, const Var& b) {
  CHECK_EQ(a.rows(), b.rows());
  CHECK_EQ(a.cols(), b.cols());
  return MakeNode(
      a.rows(), a.cols(), {a, b}, kSubTraits, AttrKey(kSubTraits),
      [](Node* n, Tensor* out) {
        CopyInto(n->parents[0]->value, out);
        out->AddScaledInPlace(n->parents[1]->value, -1.0f);
      },
      [](Node* n) {
        if (n->parents[0]->requires_grad) n->parents[0]->AccumGrad(n->grad);
        if (n->parents[1]->requires_grad) {
          Tensor g = n->grad;
          g.Scale(-1.0f);
          n->parents[1]->AccumGrad(g);
        }
      });
}

Var Mul(const Var& a, const Var& b) {
  CHECK_EQ(a.rows(), b.rows());
  CHECK_EQ(a.cols(), b.cols());
  return MakeNode(
      a.rows(), a.cols(), {a, b}, kMulTraits, AttrKey(kMulTraits),
      [](Node* n, Tensor* out) {
        CopyInto(n->parents[0]->value, out);
        float* op = out->data();
        const float* bp = n->parents[1]->value.data();
        ParallelElems(out->numel(), [op, bp](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) op[i] *= bp[i];
        });
      },
      [](Node* n) {
        const Tensor& av = n->parents[0]->value;
        const Tensor& bv = n->parents[1]->value;
        if (n->parents[0]->requires_grad) {
          Tensor g = n->grad;
          float* gp = g.data();
          const float* bp = bv.data();
          ParallelElems(g.numel(), [gp, bp](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) gp[i] *= bp[i];
          });
          n->parents[0]->AccumGrad(g);
        }
        if (n->parents[1]->requires_grad) {
          Tensor g = n->grad;
          float* gp = g.data();
          const float* ap = av.data();
          ParallelElems(g.numel(), [gp, ap](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) gp[i] *= ap[i];
          });
          n->parents[1]->AccumGrad(g);
        }
      });
}

Var Div(const Var& a, const Var& b) {
  CHECK_EQ(a.rows(), b.rows());
  CHECK_EQ(a.cols(), b.cols());
  return MakeNode(
      a.rows(), a.cols(), {a, b}, kDivTraits, AttrKey(kDivTraits),
      [](Node* n, Tensor* out) {
        CopyInto(n->parents[0]->value, out);
        float* op = out->data();
        const float* bp = n->parents[1]->value.data();
        ParallelElems(out->numel(), [op, bp](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) op[i] /= bp[i];
        });
      },
      [](Node* n) {
        const Tensor& av = n->parents[0]->value;
        const Tensor& bv = n->parents[1]->value;
        if (n->parents[0]->requires_grad) {
          Tensor g = n->grad;
          float* gp = g.data();
          const float* bp = bv.data();
          ParallelElems(g.numel(), [gp, bp](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) gp[i] /= bp[i];
          });
          n->parents[0]->AccumGrad(g);
        }
        if (n->parents[1]->requires_grad) {
          Tensor g = n->grad;
          float* gp = g.data();
          const float* ap = av.data();
          const float* bp = bv.data();
          ParallelElems(g.numel(), [gp, ap, bp](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
              const float bi = bp[i];
              gp[i] *= -ap[i] / (bi * bi);
            }
          });
          n->parents[1]->AccumGrad(g);
        }
      });
}

Var AddScalar(const Var& a, float s) {
  return MakeNode(
      a.rows(), a.cols(), {a}, kAddScalarTraits,
      AttrKey(kAddScalarTraits, {FloatBits(s)}),
      [s](Node* n, Tensor* out) {
        CopyInto(n->parents[0]->value, out);
        out->Apply([s](float v) { return v + s; });
      },
      [](Node* n) { n->parents[0]->AccumGrad(n->grad); });
}

Var MulScalar(const Var& a, float s) {
  return MakeNode(
      a.rows(), a.cols(), {a}, kMulScalarTraits,
      AttrKey(kMulScalarTraits, {FloatBits(s)}),
      [s](Node* n, Tensor* out) {
        CopyInto(n->parents[0]->value, out);
        out->Scale(s);
      },
      [s](Node* n) {
        Tensor g = n->grad;
        g.Scale(s);
        n->parents[0]->AccumGrad(g);
      });
}

Var Neg(const Var& a) { return MulScalar(a, -1.0f); }

// ---------------------------------------------------------------------------
// MatMul.
// ---------------------------------------------------------------------------

namespace {
constexpr OpTraits kMatMulTraits = {"matmul", false, 0b11u, false};
constexpr OpTraits kTransposeTraits = {"transpose", false, 0u, false};
}  // namespace

Var MatMul(const Var& a, const Var& b, bool trans_a, bool trans_b) {
  const int64_t rows = trans_a ? a.cols() : a.rows();
  const int64_t cols = trans_b ? b.rows() : b.cols();
  const int64_t inner_a = trans_a ? a.rows() : a.cols();
  const int64_t inner_b = trans_b ? b.cols() : b.rows();
  CHECK_EQ(inner_a, inner_b);
  return MakeNode(
      rows, cols, {a, b}, kMatMulTraits,
      AttrKey(kMatMulTraits,
              {static_cast<uint64_t>(trans_a), static_cast<uint64_t>(trans_b)}),
      [trans_a, trans_b](Node* n, Tensor* out) {
        *out = Tensor(n->rows, n->cols);
        tensor::MatMul(n->parents[0]->value, trans_a, n->parents[1]->value,
                       trans_b, out);
      },
      [trans_a, trans_b](Node* n) {
        const Tensor& g = n->grad;
        const Tensor& av = n->parents[0]->value;
        const Tensor& bv = n->parents[1]->value;
        if (n->parents[0]->requires_grad) {
          Tensor da;
          if (!trans_a && !trans_b) {
            da = tensor::MatMulNew(g, false, bv, true);  // g B^T
          } else if (!trans_a && trans_b) {
            da = tensor::MatMulNew(g, false, bv, false);  // g B
          } else if (trans_a && !trans_b) {
            da = tensor::MatMulNew(bv, false, g, true);  // B g^T
          } else {
            da = tensor::MatMulNew(bv, true, g, true);  // B^T g^T
          }
          n->parents[0]->AccumGrad(da);
        }
        if (n->parents[1]->requires_grad) {
          Tensor db;
          if (!trans_a && !trans_b) {
            db = tensor::MatMulNew(av, true, g, false);  // A^T g
          } else if (!trans_a && trans_b) {
            db = tensor::MatMulNew(g, true, av, false);  // g^T A
          } else if (trans_a && !trans_b) {
            db = tensor::MatMulNew(av, false, g, false);  // A g
          } else {
            db = tensor::MatMulNew(g, true, av, true);  // g^T A^T
          }
          n->parents[1]->AccumGrad(db);
        }
      });
}

Var Transpose(const Var& a) {
  return MakeNode(
      a.cols(), a.rows(), {a}, kTransposeTraits, AttrKey(kTransposeTraits),
      [](Node* n, Tensor* out) {
        *out = tensor::Transposed(n->parents[0]->value);
      },
      [](Node* n) {
        n->parents[0]->AccumGrad(tensor::Transposed(n->grad));
      });
}

// ---------------------------------------------------------------------------
// Elementwise nonlinearities.
// ---------------------------------------------------------------------------

namespace {

// Helper for unary ops whose gradient only needs input and/or output values
// (which of the two is declared per-op in `traits`, so the graph engine's
// fusion pass knows which buffers must stay live). The forward callback
// transforms the span in place -- one indirect call per tensor, so the
// per-element math inlines into the caller's loop (a per-element
// std::function made SELU as expensive as the encoder's small GEMMs). The
// backward callback fills dx over the element sub-range [lo, hi); it is
// invoked from pool workers on disjoint ranges, so it must write only
// dx[lo, hi) and be pure otherwise.
Var UnaryOp(const Var& a, const OpTraits& traits, uint64_t attr_key,
            std::function<void(float* d, int64_t count)> fwd,
            std::function<void(const float* x, const float* y, const float* g,
                               float* dx, int64_t lo, int64_t hi)>
                bwd) {
  return MakeNode(
      a.rows(), a.cols(), {a}, traits, attr_key,
      [fwd](Node* n, Tensor* out) {
        // Copy-then-transform-in-place: after the copy the parent's value
        // is never read again, which is what lets the graph engine's
        // fusion pass steal the parent's buffer for `out`.
        CopyInto(n->parents[0]->value, out);
        fwd(out->data(), out->numel());
      },
      [bwd](Node* n) {
        Tensor dx(n->rows, n->cols);
        const float* xp = n->parents[0]->value.data();
        const float* yp = n->value.data();
        const float* gp = n->grad.data();
        float* dp = dx.data();
        ParallelElems(dx.numel(),
                      [&bwd, xp, yp, gp, dp](int64_t lo, int64_t hi) {
                        bwd(xp, yp, gp, dp, lo, hi);
                      });
        n->parents[0]->AccumGrad(dx);
      });
}

constexpr OpTraits kExpTraits = {"exp", true, 0u, true};
constexpr OpTraits kLogTraits = {"log", false, 0b1u, true};
constexpr OpTraits kSquareTraits = {"square", false, 0b1u, true};
constexpr OpTraits kSqrtTraits = {"sqrt", true, 0u, true};
constexpr OpTraits kRsqrtTraits = {"rsqrt", true, 0u, true};
constexpr OpTraits kReluTraits = {"relu", false, 0b1u, true};
constexpr OpTraits kSeluTraits = {"selu", false, 0b1u, true};
constexpr OpTraits kSoftplusTraits = {"softplus", false, 0b1u, true};
constexpr OpTraits kTanhTraits = {"tanh", true, 0u, true};
constexpr OpTraits kSigmoidTraits = {"sigmoid", true, 0u, true};

}  // namespace

Var Exp(const Var& a) {
  return UnaryOp(
      a, kExpTraits, AttrKey(kExpTraits),
      [](float* d, int64_t count) {
        for (int64_t i = 0; i < count; ++i) d[i] = std::exp(d[i]);
      },
      [](const float*, const float* y, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) dx[i] = g[i] * y[i];
      });
}

Var Log(const Var& a, float eps) {
  return UnaryOp(
      a, kLogTraits, AttrKey(kLogTraits, {FloatBits(eps)}),
      [eps](float* d, int64_t count) {
        for (int64_t i = 0; i < count; ++i) d[i] = std::log(d[i] + eps);
      },
      [eps](const float* x, const float*, const float* g, float* dx,
            int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) dx[i] = g[i] / (x[i] + eps);
      });
}

Var Square(const Var& a) {
  return UnaryOp(
      a, kSquareTraits, AttrKey(kSquareTraits),
      [](float* d, int64_t count) {
        for (int64_t i = 0; i < count; ++i) d[i] = d[i] * d[i];
      },
      [](const float* x, const float*, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) dx[i] = 2.0f * g[i] * x[i];
      });
}

Var Sqrt(const Var& a, float eps) {
  return UnaryOp(
      a, kSqrtTraits, AttrKey(kSqrtTraits, {FloatBits(eps)}),
      [eps](float* d, int64_t count) {
        for (int64_t i = 0; i < count; ++i) d[i] = std::sqrt(d[i] + eps);
      },
      [](const float*, const float* y, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) dx[i] = 0.5f * g[i] / y[i];
      });
}

Var Rsqrt(const Var& a, float eps) {
  return UnaryOp(
      a, kRsqrtTraits, AttrKey(kRsqrtTraits, {FloatBits(eps)}),
      [eps](float* d, int64_t count) {
        for (int64_t i = 0; i < count; ++i) {
          d[i] = 1.0f / std::sqrt(d[i] + eps);
        }
      },
      [](const float*, const float* y, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float yi = y[i];
          dx[i] = -0.5f * g[i] * yi * yi * yi;
        }
      });
}

Var Relu(const Var& a) {
  return UnaryOp(
      a, kReluTraits, AttrKey(kReluTraits),
      [](float* d, int64_t count) {
        for (int64_t i = 0; i < count; ++i) d[i] = d[i] > 0.0f ? d[i] : 0.0f;
      },
      [](const float* x, const float*, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          dx[i] = x[i] > 0.0f ? g[i] : 0.0f;
        }
      });
}

namespace {
constexpr float kSeluScale = 1.0507009873554805f;
constexpr float kSeluAlpha = 1.6732632423543772f;
}  // namespace

Var Selu(const Var& a) {
  return UnaryOp(
      a, kSeluTraits, AttrKey(kSeluTraits),
      [](float* d, int64_t count) {
        for (int64_t i = 0; i < count; ++i) {
          const float v = d[i];
          d[i] = v > 0.0f ? kSeluScale * v
                          : kSeluScale * kSeluAlpha * (std::exp(v) - 1.0f);
        }
      },
      [](const float* x, const float*, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float xi = x[i];
          const float d = xi > 0.0f
                              ? kSeluScale
                              : kSeluScale * kSeluAlpha * std::exp(xi);
          dx[i] = g[i] * d;
        }
      });
}

Var Softplus(const Var& a) {
  return UnaryOp(
      a, kSoftplusTraits, AttrKey(kSoftplusTraits),
      [](float* d, int64_t count) {
        for (int64_t i = 0; i < count; ++i) {
          // Numerically stable log(1 + e^x).
          const float v = d[i];
          d[i] = v > 20.0f ? v : std::log1p(std::exp(v));
        }
      },
      [](const float* x, const float*, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float s = 1.0f / (1.0f + std::exp(-x[i]));
          dx[i] = g[i] * s;
        }
      });
}

Var Tanh(const Var& a) {
  return UnaryOp(
      a, kTanhTraits, AttrKey(kTanhTraits),
      [](float* d, int64_t count) {
        for (int64_t i = 0; i < count; ++i) d[i] = std::tanh(d[i]);
      },
      [](const float*, const float* y, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float yi = y[i];
          dx[i] = g[i] * (1.0f - yi * yi);
        }
      });
}

Var Sigmoid(const Var& a) {
  return UnaryOp(
      a, kSigmoidTraits, AttrKey(kSigmoidTraits),
      [](float* d, int64_t count) {
        for (int64_t i = 0; i < count; ++i) {
          d[i] = 1.0f / (1.0f + std::exp(-d[i]));
        }
      },
      [](const float*, const float* y, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float yi = y[i];
          dx[i] = g[i] * yi * (1.0f - yi);
        }
      });
}

// ---------------------------------------------------------------------------
// Softmax family.
// ---------------------------------------------------------------------------

namespace {
constexpr OpTraits kSoftmaxTraits = {"softmax_rows", true, 0u, true};
constexpr OpTraits kLogSoftmaxTraits = {"log_softmax_rows", true, 0u, true};
constexpr OpTraits kMaskedLseTraits = {"masked_lse_rows", true, 0b1u, false};
}  // namespace

Var SoftmaxRows(const Var& a) {
  return MakeNode(
      a.rows(), a.cols(), {a}, kSoftmaxTraits, AttrKey(kSoftmaxTraits),
      [](Node* n, Tensor* out) {
        CopyInto(n->parents[0]->value, out);
        tensor::SoftmaxRowsInPlace(out);
      },
      [](Node* n) {
        const Tensor& y = n->value;
        const Tensor& g = n->grad;
        Tensor dx(y.rows(), y.cols());
        ParallelRows(y.rows(), y.cols(), [&](int64_t r_lo, int64_t r_hi) {
          for (int64_t r = r_lo; r < r_hi; ++r) {
            const float* yr = y.row(r);
            const float* gr = g.row(r);
            double dot = 0.0;
            for (int64_t c = 0; c < y.cols(); ++c) {
              dot += static_cast<double>(gr[c]) * yr[c];
            }
            float* dr = dx.row(r);
            for (int64_t c = 0; c < y.cols(); ++c) {
              dr[c] = yr[c] * (gr[c] - static_cast<float>(dot));
            }
          }
        });
        n->parents[0]->AccumGrad(dx);
      });
}

Var LogSoftmaxRows(const Var& a) {
  return MakeNode(
      a.rows(), a.cols(), {a}, kLogSoftmaxTraits, AttrKey(kLogSoftmaxTraits),
      [](Node* n, Tensor* out) {
        CopyInto(n->parents[0]->value, out);
        tensor::LogSoftmaxRowsInPlace(out);
      },
      [](Node* n) {
        const Tensor& y = n->value;  // log-softmax
        const Tensor& g = n->grad;
        Tensor dx(y.rows(), y.cols());
        ParallelRows(y.rows(), y.cols(), [&](int64_t r_lo, int64_t r_hi) {
          for (int64_t r = r_lo; r < r_hi; ++r) {
            const float* yr = y.row(r);
            const float* gr = g.row(r);
            double gsum = 0.0;
            for (int64_t c = 0; c < y.cols(); ++c) gsum += gr[c];
            float* dr = dx.row(r);
            for (int64_t c = 0; c < y.cols(); ++c) {
              dr[c] = gr[c] - static_cast<float>(gsum) * std::exp(yr[c]);
            }
          }
        });
        n->parents[0]->AccumGrad(dx);
      });
}

Var MaskedLogSumExpRows(const Var& a, const Tensor& mask) {
  // One shared copy of the mask serves both closures.
  auto mask_ptr = std::make_shared<const Tensor>(mask);
  return MakeNode(
      a.rows(), 1, {a}, kMaskedLseTraits, /*attr_key=*/0,
      [mask_ptr](Node* n, Tensor* out) {
        *out = Tensor(n->rows, 1);
        tensor::LogSumExpRows(n->parents[0]->value, mask_ptr.get(), out);
      },
      [mask_ptr](Node* n) {
        const Tensor& mask = *mask_ptr;
        const Tensor& x = n->parents[0]->value;
        const Tensor& lse = n->value;
        const Tensor& g = n->grad;  // rows x 1
        Tensor dx(x.rows(), x.cols());
        ParallelRows(x.rows(), x.cols(), [&](int64_t r_lo, int64_t r_hi) {
          for (int64_t r = r_lo; r < r_hi; ++r) {
            const float out_r = lse.at(r, 0);
            if (out_r <= -1e29f) continue;  // Empty mask row: no gradient.
            const float gr = g.at(r, 0);
            const float* xr = x.row(r);
            const float* mr = mask.row(r);
            float* dr = dx.row(r);
            for (int64_t c = 0; c < x.cols(); ++c) {
              dr[c] =
                  mr[c] > 0.0f ? gr * mr[c] * std::exp(xr[c] - out_r) : 0.0f;
            }
          }
        });
        n->parents[0]->AccumGrad(dx);
      });
}

Var LogSumExpRows(const Var& a) {
  return MaskedLogSumExpRows(a, Tensor::Ones(a.rows(), a.cols()));
}

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

namespace {
constexpr OpTraits kSumAllTraits = {"sum_all", false, 0u, false};
constexpr OpTraits kRowSumTraits = {"row_sum", false, 0u, false};
constexpr OpTraits kColSumTraits = {"col_sum", false, 0u, false};
}  // namespace

Var SumAll(const Var& a) {
  return MakeNode(
      1, 1, {a}, kSumAllTraits, AttrKey(kSumAllTraits),
      [](Node* n, Tensor* out) {
        *out = Tensor::Scalar(n->parents[0]->value.Sum());
      },
      [](Node* n) {
        const float g = n->grad.scalar();
        Tensor dx =
            Tensor::Full(n->parents[0]->rows, n->parents[0]->cols, g);
        n->parents[0]->AccumGrad(dx);
      });
}

Var MeanAll(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a.rows() * a.cols());
  return MulScalar(SumAll(a), inv);
}

Var RowSum(const Var& a) {
  return MakeNode(
      a.rows(), 1, {a}, kRowSumTraits, AttrKey(kRowSumTraits),
      [](Node* n, Tensor* out) {
        *out = tensor::RowSum(n->parents[0]->value);
      },
      [](Node* n) {
        const Tensor& g = n->grad;  // rows x 1
        const int64_t rows = n->parents[0]->rows;
        const int64_t cols = n->parents[0]->cols;
        Tensor dx(rows, cols);
        ParallelRows(rows, cols, [&](int64_t r_lo, int64_t r_hi) {
          for (int64_t r = r_lo; r < r_hi; ++r) {
            const float gr = g.at(r, 0);
            float* dr = dx.row(r);
            for (int64_t c = 0; c < cols; ++c) dr[c] = gr;
          }
        });
        n->parents[0]->AccumGrad(dx);
      });
}

Var ColSum(const Var& a) {
  return MakeNode(
      1, a.cols(), {a}, kColSumTraits, AttrKey(kColSumTraits),
      [](Node* n, Tensor* out) {
        *out = tensor::ColSum(n->parents[0]->value);
      },
      [](Node* n) {
        const Tensor& g = n->grad;  // 1 x cols
        const int64_t rows = n->parents[0]->rows;
        const int64_t cols = n->parents[0]->cols;
        Tensor dx(rows, cols);
        ParallelRows(rows, cols, [&](int64_t r_lo, int64_t r_hi) {
          for (int64_t r = r_lo; r < r_hi; ++r) {
            float* dr = dx.row(r);
            for (int64_t c = 0; c < cols; ++c) dr[c] = g.at(0, c);
          }
        });
        n->parents[0]->AccumGrad(dx);
      });
}

Var ColMean(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a.rows());
  return MulScalar(ColSum(a), inv);
}

// ---------------------------------------------------------------------------
// Broadcast ops.
// ---------------------------------------------------------------------------

namespace {

// Conservative: backward reads both operands for the mul/div variants and
// the shared grid reduction reads the matrix operand, so neither parent's
// buffer may be elided.
constexpr OpTraits kBroadcastColTraits = {"broadcast_col", false, 0b11u,
                                          false};
constexpr OpTraits kBroadcastRowTraits = {"broadcast_row", false, 0b11u,
                                          false};

Var BroadcastColOp(const Var& a, const Var& col, BinaryOp op) {
  CHECK_EQ(col.rows(), a.rows());
  CHECK_EQ(col.cols(), 1);
  return MakeNode(
      a.rows(), a.cols(), {a, col}, kBroadcastColTraits,
      AttrKey(kBroadcastColTraits, {static_cast<uint64_t>(op)}),
      [op](Node* n, Tensor* out) {
        *out = Tensor(n->rows, n->cols);
        tensor::BroadcastCol(n->parents[0]->value, n->parents[1]->value, op,
                             out);
      },
      [op](Node* n) {
        const Tensor& g = n->grad;
        const Tensor& av = n->parents[0]->value;
        const Tensor& cv = n->parents[1]->value;
        if (n->parents[0]->requires_grad) {
          Tensor da(av.rows(), av.cols());
          ParallelRows(av.rows(), av.cols(), [&](int64_t r_lo, int64_t r_hi) {
            for (int64_t r = r_lo; r < r_hi; ++r) {
              const float c = cv.at(r, 0);
              const float* gr = g.row(r);
              float* dr = da.row(r);
              for (int64_t j = 0; j < av.cols(); ++j) {
                switch (op) {
                  case BinaryOp::kAdd:
                  case BinaryOp::kSub:
                    dr[j] = gr[j];
                    break;
                  case BinaryOp::kMul:
                    dr[j] = gr[j] * c;
                    break;
                  case BinaryOp::kDiv:
                    dr[j] = gr[j] / c;
                    break;
                }
              }
            }
          });
          n->parents[0]->AccumGrad(da);
        }
        if (n->parents[1]->requires_grad) {
          // Each dc row is a reduction over one input row only, so rows are
          // independent and the per-row serial accumulation order is
          // unchanged.
          Tensor dc(cv.rows(), 1);
          ParallelRows(av.rows(), av.cols(), [&](int64_t r_lo, int64_t r_hi) {
            for (int64_t r = r_lo; r < r_hi; ++r) {
              const float c = cv.at(r, 0);
              const float* gr = g.row(r);
              const float* ar = av.row(r);
              double acc = 0.0;
              for (int64_t j = 0; j < av.cols(); ++j) {
                switch (op) {
                  case BinaryOp::kAdd:
                    acc += gr[j];
                    break;
                  case BinaryOp::kSub:
                    acc -= gr[j];
                    break;
                  case BinaryOp::kMul:
                    acc += static_cast<double>(gr[j]) * ar[j];
                    break;
                  case BinaryOp::kDiv:
                    acc += -static_cast<double>(gr[j]) * ar[j] / (c * c);
                    break;
                }
              }
              dc.at(r, 0) = static_cast<float>(acc);
            }
          });
          n->parents[1]->AccumGrad(dc);
        }
      });
}

Var BroadcastRowOp(const Var& a, const Var& row, BinaryOp op) {
  CHECK_EQ(row.cols(), a.cols());
  CHECK_EQ(row.rows(), 1);
  return MakeNode(
      a.rows(), a.cols(), {a, row}, kBroadcastRowTraits,
      AttrKey(kBroadcastRowTraits, {static_cast<uint64_t>(op)}),
      [op](Node* n, Tensor* out) {
        *out = Tensor(n->rows, n->cols);
        tensor::BroadcastRow(n->parents[0]->value, n->parents[1]->value, op,
                             out);
      },
      [op](Node* n) {
        const Tensor& g = n->grad;
        const Tensor& av = n->parents[0]->value;
        const Tensor& rv = n->parents[1]->value;
        if (n->parents[0]->requires_grad) {
          Tensor da(av.rows(), av.cols());
          ParallelRows(av.rows(), av.cols(), [&](int64_t r_lo, int64_t r_hi) {
            for (int64_t r = r_lo; r < r_hi; ++r) {
              const float* gr = g.row(r);
              float* dr = da.row(r);
              for (int64_t j = 0; j < av.cols(); ++j) {
                const float b = rv.at(0, j);
                switch (op) {
                  case BinaryOp::kAdd:
                  case BinaryOp::kSub:
                    dr[j] = gr[j];
                    break;
                  case BinaryOp::kMul:
                    dr[j] = gr[j] * b;
                    break;
                  case BinaryOp::kDiv:
                    dr[j] = gr[j] / b;
                    break;
                }
              }
            }
          });
          n->parents[0]->AccumGrad(da);
        }
        if (n->parents[1]->requires_grad) {
          // Bias-style gradient: reduce over the batch dimension. Per-chunk
          // partials over a fixed row grid, folded in fixed tree order, keep
          // the result bitwise-identical at any thread count
          // (util/parallel.h).
          Tensor dr = util::ParallelReduceOrdered(
              util::ThreadPool::Global(), 0, av.rows(), kGradReduceGridRows,
              Tensor(1, rv.cols()),
              [&](int64_t r_lo, int64_t r_hi) {
                Tensor partial(1, rv.cols());
                for (int64_t r = r_lo; r < r_hi; ++r) {
                  const float* gr = g.row(r);
                  const float* ar = av.row(r);
                  for (int64_t j = 0; j < av.cols(); ++j) {
                    const float b = rv.at(0, j);
                    switch (op) {
                      case BinaryOp::kAdd:
                        partial.at(0, j) += gr[j];
                        break;
                      case BinaryOp::kSub:
                        partial.at(0, j) -= gr[j];
                        break;
                      case BinaryOp::kMul:
                        partial.at(0, j) += gr[j] * ar[j];
                        break;
                      case BinaryOp::kDiv:
                        partial.at(0, j) += -gr[j] * ar[j] / (b * b);
                        break;
                    }
                  }
                }
                return partial;
              },
              [](Tensor& acc, Tensor&& part) { acc.AddInPlace(part); });
          n->parents[1]->AccumGrad(dr);
        }
      });
}

}  // namespace

Var BroadcastColAdd(const Var& a, const Var& col) {
  return BroadcastColOp(a, col, BinaryOp::kAdd);
}
Var BroadcastColSub(const Var& a, const Var& col) {
  return BroadcastColOp(a, col, BinaryOp::kSub);
}
Var BroadcastColMul(const Var& a, const Var& col) {
  return BroadcastColOp(a, col, BinaryOp::kMul);
}
Var BroadcastColDiv(const Var& a, const Var& col) {
  return BroadcastColOp(a, col, BinaryOp::kDiv);
}
Var BroadcastRowAdd(const Var& a, const Var& row) {
  return BroadcastRowOp(a, row, BinaryOp::kAdd);
}
Var BroadcastRowSub(const Var& a, const Var& row) {
  return BroadcastRowOp(a, row, BinaryOp::kSub);
}
Var BroadcastRowMul(const Var& a, const Var& row) {
  return BroadcastRowOp(a, row, BinaryOp::kMul);
}
Var BroadcastRowDiv(const Var& a, const Var& row) {
  return BroadcastRowOp(a, row, BinaryOp::kDiv);
}

// ---------------------------------------------------------------------------
// Structured ops.
// ---------------------------------------------------------------------------

namespace {
constexpr OpTraits kRowL2NormalizeTraits = {"row_l2_normalize", true, 0b1u,
                                            true};
constexpr OpTraits kConcatRowsTraits = {"concat_rows", false, 0u, false};
constexpr OpTraits kSelectColumnsTraits = {"select_columns", false, 0u,
                                           false};
constexpr OpTraits kGatherRowsTraits = {"gather_rows", false, 0u, false};
constexpr OpTraits kApplyMaskTraits = {"apply_mask", false, 0u, true};
}  // namespace

Var RowL2Normalize(const Var& a, float eps) {
  return MakeNode(
      a.rows(), a.cols(), {a}, kRowL2NormalizeTraits,
      AttrKey(kRowL2NormalizeTraits, {FloatBits(eps)}),
      [eps](Node* n, Tensor* out) {
        CopyInto(n->parents[0]->value, out);
        tensor::RowL2NormalizeInPlace(out, eps);
      },
      [eps](Node* n) {
        const Tensor& x = n->parents[0]->value;
        const Tensor& y = n->value;
        const Tensor& g = n->grad;
        Tensor dx(x.rows(), x.cols());
        ParallelRows(x.rows(), x.cols(), [&](int64_t r_lo, int64_t r_hi) {
          for (int64_t r = r_lo; r < r_hi; ++r) {
            const float* xr = x.row(r);
            const float* yr = y.row(r);
            const float* gr = g.row(r);
            double norm_sq = 0.0;
            for (int64_t c = 0; c < x.cols(); ++c) {
              norm_sq += static_cast<double>(xr[c]) * xr[c];
            }
            const float norm = static_cast<float>(std::sqrt(norm_sq));
            float* dr = dx.row(r);
            if (norm <= eps) {
              for (int64_t c = 0; c < x.cols(); ++c) dr[c] = 0.0f;
              continue;
            }
            double dot = 0.0;
            for (int64_t c = 0; c < x.cols(); ++c) {
              dot += static_cast<double>(gr[c]) * yr[c];
            }
            const float inv = 1.0f / norm;
            for (int64_t c = 0; c < x.cols(); ++c) {
              dr[c] = (gr[c] - static_cast<float>(dot) * yr[c]) * inv;
            }
          }
        });
        n->parents[0]->AccumGrad(dx);
      });
}

Var ConcatRows(const std::vector<Var>& parts) {
  CHECK(!parts.empty());
  const int64_t cols = parts[0].cols();
  int64_t rows = 0;
  for (const auto& p : parts) {
    CHECK_EQ(p.cols(), cols);
    rows += p.rows();
  }
  return MakeNode(
      rows, cols, parts, kConcatRowsTraits, AttrKey(kConcatRowsTraits),
      [](Node* n, Tensor* out) {
        *out = Tensor(n->rows, n->cols);
        const int64_t cols = n->cols;
        int64_t offset = 0;
        for (const auto& parent : n->parents) {
          const Tensor& v = parent->value;
          std::copy(v.data(), v.data() + v.numel(),
                    out->data() + offset * cols);
          offset += v.rows();
        }
      },
      [](Node* n) {
        const Tensor& g = n->grad;
        const int64_t cols = g.cols();
        int64_t offset = 0;
        for (auto& parent : n->parents) {
          const int64_t r = parent->rows;
          if (parent->requires_grad) {
            Tensor dg(r, cols);
            std::copy(g.data() + offset * cols,
                      g.data() + (offset + r) * cols, dg.data());
            parent->AccumGrad(dg);
          }
          offset += r;
        }
      });
}

Var SelectColumns(const Var& a, const std::vector<int>& indices) {
  // One shared copy of the index list serves both closures.
  auto idx = std::make_shared<const std::vector<int>>(indices);
  return MakeNode(
      a.rows(), static_cast<int64_t>(indices.size()), {a},
      kSelectColumnsTraits, /*attr_key=*/0,
      [idx](Node* n, Tensor* out) {
        const Tensor& x = n->parents[0]->value;
        *out = Tensor(n->rows, n->cols);
        Tensor* outp = out;
        ParallelRows(x.rows(), x.cols(), [&x, outp, &idx](int64_t r_lo,
                                                          int64_t r_hi) {
          for (int64_t r = r_lo; r < r_hi; ++r) {
            const float* xr = x.row(r);
            float* outr = outp->row(r);
            for (size_t j = 0; j < idx->size(); ++j) {
              DCHECK_GE((*idx)[j], 0);
              DCHECK_LT((*idx)[j], x.cols());
              outr[j] = xr[(*idx)[j]];
            }
          }
        });
      },
      [idx](Node* n) {
        const Tensor& g = n->grad;
        const int64_t rows = n->parents[0]->rows;
        const int64_t cols = n->parents[0]->cols;
        // The scatter stays within each row (duplicate indices accumulate
        // in serial j-order per row), so row-parallelism is
        // partition-independent.
        Tensor dx(rows, cols);
        ParallelRows(rows, cols, [&](int64_t r_lo, int64_t r_hi) {
          for (int64_t r = r_lo; r < r_hi; ++r) {
            const float* gr = g.row(r);
            float* dr = dx.row(r);
            for (size_t j = 0; j < idx->size(); ++j) {
              dr[(*idx)[j]] += gr[j];
            }
          }
        });
        n->parents[0]->AccumGrad(dx);
      });
}

Var GatherRows(const Var& a, const std::vector<int>& indices) {
  CHECK(!indices.empty());
  // One shared copy of the index list serves both closures.
  auto idx = std::make_shared<const std::vector<int>>(indices);
  return MakeNode(
      static_cast<int64_t>(indices.size()), a.cols(), {a}, kGatherRowsTraits,
      /*attr_key=*/0,
      [idx](Node* n, Tensor* out) {
        const Tensor& x = n->parents[0]->value;
        *out = Tensor(n->rows, n->cols);
        Tensor* outp = out;
        ParallelRows(n->rows, n->cols,
                     [&x, outp, &idx](int64_t r_lo, int64_t r_hi) {
                       for (int64_t r = r_lo; r < r_hi; ++r) {
                         DCHECK_GE((*idx)[r], 0);
                         DCHECK_LT((*idx)[r], x.rows());
                         const float* src = x.row((*idx)[r]);
                         std::copy(src, src + x.cols(), outp->row(r));
                       }
                     });
      },
      [idx](Node* n) {
        const Tensor& g = n->grad;
        Tensor dx(n->parents[0]->rows, n->parents[0]->cols);
        // Serial scatter in gather order: duplicate indices land on the
        // same destination row, so the accumulation order must not depend
        // on a thread partition.
        for (size_t j = 0; j < idx->size(); ++j) {
          float* dst = dx.row((*idx)[j]);
          const float* src = g.row(static_cast<int64_t>(j));
          for (int64_t c = 0; c < dx.cols(); ++c) dst[c] += src[c];
        }
        n->parents[0]->AccumGrad(dx);
      });
}

Var ApplyMask(const Var& a, const Tensor& mask) {
  CHECK_EQ(a.rows(), mask.rows());
  CHECK_EQ(a.cols(), mask.cols());
  // One shared copy of the mask serves both closures.
  auto mask_ptr = std::make_shared<const Tensor>(mask);
  return MakeNode(
      a.rows(), a.cols(), {a}, kApplyMaskTraits, /*attr_key=*/0,
      [mask_ptr](Node* n, Tensor* out) {
        CopyInto(n->parents[0]->value, out);
        float* op = out->data();
        const float* mp = mask_ptr->data();
        ParallelElems(out->numel(), [op, mp](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) op[i] *= mp[i];
        });
      },
      [mask_ptr](Node* n) {
        Tensor g = n->grad;
        float* gp = g.data();
        const float* mp = mask_ptr->data();
        ParallelElems(g.numel(), [gp, mp](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) gp[i] *= mp[i];
        });
        n->parents[0]->AccumGrad(g);
      });
}

}  // namespace autodiff
}  // namespace contratopic
