#include "tensor/autodiff.h"

#include <cmath>
#include <unordered_set>

#include "tensor/kernels.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace autodiff {

using tensor::BinaryOp;
using tensor::ParallelElems;
using tensor::ParallelRows;

namespace {
// Fixed row grid for backward reductions over the batch dimension (the
// BroadcastRowOp bias gradient). Matches the ColSum grid in kernels.cc: the
// grid depends only on the range, never on thread count, so the reduction
// order — and the result — is identical at any parallelism level.
constexpr int64_t kGradReduceGridRows = 256;
}  // namespace

void Node::AccumGrad(const Tensor& g) {
  if (grad.empty()) {
    grad = Tensor::Zeros(value.rows(), value.cols());
  }
  grad.AddInPlace(g);
}

Var Var::Leaf(Tensor value, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  return Var(std::move(node));
}

void Var::ZeroGrad() {
  if (!node_->grad.empty()) node_->grad.Fill(0.0f);
}

namespace {

// Builds a unary/binary op node.
Var MakeNode(Tensor value, std::vector<Var> parents,
             std::function<void(Node*)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  for (auto& p : parents) {
    if (p.requires_grad()) node->requires_grad = true;
    node->parents.push_back(p.node());
  }
  if (node->requires_grad) node->backward_fn = std::move(backward_fn);
  return Var(std::move(node));
}

void TopoSort(Node* root, std::vector<Node*>* order) {
  // Iterative DFS post-order.
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->parents.size()) {
      Node* next = node->parents[child].get();
      ++child;
      if (next->requires_grad && visited.insert(next).second) {
        stack.emplace_back(next, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Var& loss) {
  CHECK_EQ(loss.value().numel(), 1) << "Backward expects a scalar loss";
  if (!loss.requires_grad()) return;
  std::vector<Node*> order;
  TopoSort(loss.node().get(), &order);
  loss.node()->AccumGrad(Tensor::Scalar(1.0f));
  // Post-order puts the loss last; walk backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn(node);
    }
  }
}

// ---------------------------------------------------------------------------
// Elementwise binary ops.
// ---------------------------------------------------------------------------

Var Add(const Var& a, const Var& b) {
  CHECK(a.value().same_shape(b.value()));
  Tensor out = a.value();
  out.AddInPlace(b.value());
  return MakeNode(std::move(out), {a, b}, [](Node* n) {
    if (n->parents[0]->requires_grad) n->parents[0]->AccumGrad(n->grad);
    if (n->parents[1]->requires_grad) n->parents[1]->AccumGrad(n->grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  CHECK(a.value().same_shape(b.value()));
  Tensor out = a.value();
  out.AddScaledInPlace(b.value(), -1.0f);
  return MakeNode(std::move(out), {a, b}, [](Node* n) {
    if (n->parents[0]->requires_grad) n->parents[0]->AccumGrad(n->grad);
    if (n->parents[1]->requires_grad) {
      Tensor g = n->grad;
      g.Scale(-1.0f);
      n->parents[1]->AccumGrad(g);
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  CHECK(a.value().same_shape(b.value()));
  Tensor out = a.value();
  float* op = out.data();
  const float* bp = b.value().data();
  ParallelElems(out.numel(), [op, bp](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) op[i] *= bp[i];
  });
  return MakeNode(std::move(out), {a, b}, [](Node* n) {
    const Tensor& av = n->parents[0]->value;
    const Tensor& bv = n->parents[1]->value;
    if (n->parents[0]->requires_grad) {
      Tensor g = n->grad;
      float* gp = g.data();
      const float* bp = bv.data();
      ParallelElems(g.numel(), [gp, bp](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) gp[i] *= bp[i];
      });
      n->parents[0]->AccumGrad(g);
    }
    if (n->parents[1]->requires_grad) {
      Tensor g = n->grad;
      float* gp = g.data();
      const float* ap = av.data();
      ParallelElems(g.numel(), [gp, ap](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) gp[i] *= ap[i];
      });
      n->parents[1]->AccumGrad(g);
    }
  });
}

Var Div(const Var& a, const Var& b) {
  CHECK(a.value().same_shape(b.value()));
  Tensor out = a.value();
  float* op = out.data();
  const float* bp = b.value().data();
  ParallelElems(out.numel(), [op, bp](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) op[i] /= bp[i];
  });
  return MakeNode(std::move(out), {a, b}, [](Node* n) {
    const Tensor& av = n->parents[0]->value;
    const Tensor& bv = n->parents[1]->value;
    if (n->parents[0]->requires_grad) {
      Tensor g = n->grad;
      float* gp = g.data();
      const float* bp = bv.data();
      ParallelElems(g.numel(), [gp, bp](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) gp[i] /= bp[i];
      });
      n->parents[0]->AccumGrad(g);
    }
    if (n->parents[1]->requires_grad) {
      Tensor g = n->grad;
      float* gp = g.data();
      const float* ap = av.data();
      const float* bp = bv.data();
      ParallelElems(g.numel(), [gp, ap, bp](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float bi = bp[i];
          gp[i] *= -ap[i] / (bi * bi);
        }
      });
      n->parents[1]->AccumGrad(g);
    }
  });
}

Var AddScalar(const Var& a, float s) {
  Tensor out = a.value();
  out.Apply([s](float v) { return v + s; });
  return MakeNode(std::move(out), {a}, [](Node* n) {
    n->parents[0]->AccumGrad(n->grad);
  });
}

Var MulScalar(const Var& a, float s) {
  Tensor out = a.value();
  out.Scale(s);
  return MakeNode(std::move(out), {a}, [s](Node* n) {
    Tensor g = n->grad;
    g.Scale(s);
    n->parents[0]->AccumGrad(g);
  });
}

Var Neg(const Var& a) { return MulScalar(a, -1.0f); }

// ---------------------------------------------------------------------------
// MatMul.
// ---------------------------------------------------------------------------

Var MatMul(const Var& a, const Var& b, bool trans_a, bool trans_b) {
  Tensor out = tensor::MatMulNew(a.value(), trans_a, b.value(), trans_b);
  return MakeNode(std::move(out), {a, b}, [trans_a, trans_b](Node* n) {
    const Tensor& g = n->grad;
    const Tensor& av = n->parents[0]->value;
    const Tensor& bv = n->parents[1]->value;
    if (n->parents[0]->requires_grad) {
      Tensor da;
      if (!trans_a && !trans_b) {
        da = tensor::MatMulNew(g, false, bv, true);  // g B^T
      } else if (!trans_a && trans_b) {
        da = tensor::MatMulNew(g, false, bv, false);  // g B
      } else if (trans_a && !trans_b) {
        da = tensor::MatMulNew(bv, false, g, true);  // B g^T
      } else {
        da = tensor::MatMulNew(bv, true, g, true);  // B^T g^T
      }
      n->parents[0]->AccumGrad(da);
    }
    if (n->parents[1]->requires_grad) {
      Tensor db;
      if (!trans_a && !trans_b) {
        db = tensor::MatMulNew(av, true, g, false);  // A^T g
      } else if (!trans_a && trans_b) {
        db = tensor::MatMulNew(g, true, av, false);  // g^T A
      } else if (trans_a && !trans_b) {
        db = tensor::MatMulNew(av, false, g, false);  // A g
      } else {
        db = tensor::MatMulNew(g, true, av, true);  // g^T A^T
      }
      n->parents[1]->AccumGrad(db);
    }
  });
}

Var Transpose(const Var& a) {
  Tensor out = tensor::Transposed(a.value());
  return MakeNode(std::move(out), {a}, [](Node* n) {
    n->parents[0]->AccumGrad(tensor::Transposed(n->grad));
  });
}

// ---------------------------------------------------------------------------
// Elementwise nonlinearities.
// ---------------------------------------------------------------------------

namespace {

// Helper for unary ops whose gradient only needs input and/or output values.
// The backward callback fills dx over the element sub-range [lo, hi); it is
// invoked from pool workers on disjoint ranges, so it must write only
// dx[lo, hi) and be pure otherwise.
Var UnaryOp(const Var& a, const std::function<float(float)>& fwd,
            std::function<void(const float* x, const float* y, const float* g,
                               float* dx, int64_t lo, int64_t hi)>
                bwd) {
  Tensor out = a.value();
  out.Apply(fwd);
  // The output tensor is captured via the node itself (n->value).
  return MakeNode(std::move(out), {a}, [bwd](Node* n) {
    Tensor dx(n->parents[0]->value.rows(), n->parents[0]->value.cols());
    const float* xp = n->parents[0]->value.data();
    const float* yp = n->value.data();
    const float* gp = n->grad.data();
    float* dp = dx.data();
    ParallelElems(dx.numel(), [&bwd, xp, yp, gp, dp](int64_t lo, int64_t hi) {
      bwd(xp, yp, gp, dp, lo, hi);
    });
    n->parents[0]->AccumGrad(dx);
  });
}

}  // namespace

Var Exp(const Var& a) {
  return UnaryOp(
      a, [](float v) { return std::exp(v); },
      [](const float*, const float* y, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) dx[i] = g[i] * y[i];
      });
}

Var Log(const Var& a, float eps) {
  return UnaryOp(
      a, [eps](float v) { return std::log(v + eps); },
      [eps](const float* x, const float*, const float* g, float* dx,
            int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) dx[i] = g[i] / (x[i] + eps);
      });
}

Var Square(const Var& a) {
  return UnaryOp(
      a, [](float v) { return v * v; },
      [](const float* x, const float*, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) dx[i] = 2.0f * g[i] * x[i];
      });
}

Var Sqrt(const Var& a, float eps) {
  return UnaryOp(
      a, [eps](float v) { return std::sqrt(v + eps); },
      [](const float*, const float* y, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) dx[i] = 0.5f * g[i] / y[i];
      });
}

Var Rsqrt(const Var& a, float eps) {
  return UnaryOp(
      a, [eps](float v) { return 1.0f / std::sqrt(v + eps); },
      [](const float*, const float* y, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float yi = y[i];
          dx[i] = -0.5f * g[i] * yi * yi * yi;
        }
      });
}

Var Relu(const Var& a) {
  return UnaryOp(
      a, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](const float* x, const float*, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          dx[i] = x[i] > 0.0f ? g[i] : 0.0f;
        }
      });
}

namespace {
constexpr float kSeluScale = 1.0507009873554805f;
constexpr float kSeluAlpha = 1.6732632423543772f;
}  // namespace

Var Selu(const Var& a) {
  return UnaryOp(
      a,
      [](float v) {
        return v > 0.0f ? kSeluScale * v
                        : kSeluScale * kSeluAlpha * (std::exp(v) - 1.0f);
      },
      [](const float* x, const float*, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float xi = x[i];
          const float d = xi > 0.0f
                              ? kSeluScale
                              : kSeluScale * kSeluAlpha * std::exp(xi);
          dx[i] = g[i] * d;
        }
      });
}

Var Softplus(const Var& a) {
  return UnaryOp(
      a,
      [](float v) {
        // Numerically stable log(1 + e^x).
        return v > 20.0f ? v : std::log1p(std::exp(v));
      },
      [](const float* x, const float*, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float s = 1.0f / (1.0f + std::exp(-x[i]));
          dx[i] = g[i] * s;
        }
      });
}

Var Tanh(const Var& a) {
  return UnaryOp(
      a, [](float v) { return std::tanh(v); },
      [](const float*, const float* y, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float yi = y[i];
          dx[i] = g[i] * (1.0f - yi * yi);
        }
      });
}

Var Sigmoid(const Var& a) {
  return UnaryOp(
      a, [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](const float*, const float* y, const float* g, float* dx, int64_t lo,
         int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float yi = y[i];
          dx[i] = g[i] * yi * (1.0f - yi);
        }
      });
}

// ---------------------------------------------------------------------------
// Softmax family.
// ---------------------------------------------------------------------------

Var SoftmaxRows(const Var& a) {
  Tensor out = tensor::SoftmaxRows(a.value());
  return MakeNode(std::move(out), {a}, [](Node* n) {
    const Tensor& y = n->value;
    const Tensor& g = n->grad;
    Tensor dx(y.rows(), y.cols());
    ParallelRows(y.rows(), y.cols(), [&](int64_t r_lo, int64_t r_hi) {
      for (int64_t r = r_lo; r < r_hi; ++r) {
        const float* yr = y.row(r);
        const float* gr = g.row(r);
        double dot = 0.0;
        for (int64_t c = 0; c < y.cols(); ++c) {
          dot += static_cast<double>(gr[c]) * yr[c];
        }
        float* dr = dx.row(r);
        for (int64_t c = 0; c < y.cols(); ++c) {
          dr[c] = yr[c] * (gr[c] - static_cast<float>(dot));
        }
      }
    });
    n->parents[0]->AccumGrad(dx);
  });
}

Var LogSoftmaxRows(const Var& a) {
  Tensor out = a.value();
  tensor::LogSoftmaxRowsInPlace(&out);
  return MakeNode(std::move(out), {a}, [](Node* n) {
    const Tensor& y = n->value;  // log-softmax
    const Tensor& g = n->grad;
    Tensor dx(y.rows(), y.cols());
    ParallelRows(y.rows(), y.cols(), [&](int64_t r_lo, int64_t r_hi) {
      for (int64_t r = r_lo; r < r_hi; ++r) {
        const float* yr = y.row(r);
        const float* gr = g.row(r);
        double gsum = 0.0;
        for (int64_t c = 0; c < y.cols(); ++c) gsum += gr[c];
        float* dr = dx.row(r);
        for (int64_t c = 0; c < y.cols(); ++c) {
          dr[c] = gr[c] - static_cast<float>(gsum) * std::exp(yr[c]);
        }
      }
    });
    n->parents[0]->AccumGrad(dx);
  });
}

Var MaskedLogSumExpRows(const Var& a, const Tensor& mask) {
  Tensor out(a.rows(), 1);
  tensor::LogSumExpRows(a.value(), &mask, &out);
  return MakeNode(std::move(out), {a}, [mask](Node* n) {
    const Tensor& x = n->parents[0]->value;
    const Tensor& lse = n->value;
    const Tensor& g = n->grad;  // rows x 1
    Tensor dx(x.rows(), x.cols());
    ParallelRows(x.rows(), x.cols(), [&](int64_t r_lo, int64_t r_hi) {
      for (int64_t r = r_lo; r < r_hi; ++r) {
        const float out_r = lse.at(r, 0);
        if (out_r <= -1e29f) continue;  // Empty mask row: no gradient.
        const float gr = g.at(r, 0);
        const float* xr = x.row(r);
        const float* mr = mask.row(r);
        float* dr = dx.row(r);
        for (int64_t c = 0; c < x.cols(); ++c) {
          dr[c] = mr[c] > 0.0f ? gr * mr[c] * std::exp(xr[c] - out_r) : 0.0f;
        }
      }
    });
    n->parents[0]->AccumGrad(dx);
  });
}

Var LogSumExpRows(const Var& a) {
  return MaskedLogSumExpRows(
      a, Tensor::Ones(a.rows(), a.cols()));
}

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

Var SumAll(const Var& a) {
  Tensor out = Tensor::Scalar(a.value().Sum());
  return MakeNode(std::move(out), {a}, [](Node* n) {
    const float g = n->grad.scalar();
    Tensor dx = Tensor::Full(n->parents[0]->value.rows(),
                             n->parents[0]->value.cols(), g);
    n->parents[0]->AccumGrad(dx);
  });
}

Var MeanAll(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a.value().numel());
  return MulScalar(SumAll(a), inv);
}

Var RowSum(const Var& a) {
  Tensor out = tensor::RowSum(a.value());
  return MakeNode(std::move(out), {a}, [](Node* n) {
    const Tensor& g = n->grad;  // rows x 1
    const Tensor& x = n->parents[0]->value;
    Tensor dx(x.rows(), x.cols());
    ParallelRows(x.rows(), x.cols(), [&](int64_t r_lo, int64_t r_hi) {
      for (int64_t r = r_lo; r < r_hi; ++r) {
        const float gr = g.at(r, 0);
        float* dr = dx.row(r);
        for (int64_t c = 0; c < x.cols(); ++c) dr[c] = gr;
      }
    });
    n->parents[0]->AccumGrad(dx);
  });
}

Var ColSum(const Var& a) {
  Tensor out = tensor::ColSum(a.value());
  return MakeNode(std::move(out), {a}, [](Node* n) {
    const Tensor& g = n->grad;  // 1 x cols
    const Tensor& x = n->parents[0]->value;
    Tensor dx(x.rows(), x.cols());
    ParallelRows(x.rows(), x.cols(), [&](int64_t r_lo, int64_t r_hi) {
      for (int64_t r = r_lo; r < r_hi; ++r) {
        float* dr = dx.row(r);
        for (int64_t c = 0; c < x.cols(); ++c) dr[c] = g.at(0, c);
      }
    });
    n->parents[0]->AccumGrad(dx);
  });
}

Var ColMean(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a.rows());
  return MulScalar(ColSum(a), inv);
}

// ---------------------------------------------------------------------------
// Broadcast ops.
// ---------------------------------------------------------------------------

namespace {

Var BroadcastColOp(const Var& a, const Var& col, BinaryOp op) {
  Tensor out(a.rows(), a.cols());
  tensor::BroadcastCol(a.value(), col.value(), op, &out);
  return MakeNode(std::move(out), {a, col}, [op](Node* n) {
    const Tensor& g = n->grad;
    const Tensor& av = n->parents[0]->value;
    const Tensor& cv = n->parents[1]->value;
    if (n->parents[0]->requires_grad) {
      Tensor da(av.rows(), av.cols());
      ParallelRows(av.rows(), av.cols(), [&](int64_t r_lo, int64_t r_hi) {
        for (int64_t r = r_lo; r < r_hi; ++r) {
          const float c = cv.at(r, 0);
          const float* gr = g.row(r);
          float* dr = da.row(r);
          for (int64_t j = 0; j < av.cols(); ++j) {
            switch (op) {
              case BinaryOp::kAdd:
              case BinaryOp::kSub:
                dr[j] = gr[j];
                break;
              case BinaryOp::kMul:
                dr[j] = gr[j] * c;
                break;
              case BinaryOp::kDiv:
                dr[j] = gr[j] / c;
                break;
            }
          }
        }
      });
      n->parents[0]->AccumGrad(da);
    }
    if (n->parents[1]->requires_grad) {
      // Each dc row is a reduction over one input row only, so rows are
      // independent and the per-row serial accumulation order is unchanged.
      Tensor dc(cv.rows(), 1);
      ParallelRows(av.rows(), av.cols(), [&](int64_t r_lo, int64_t r_hi) {
        for (int64_t r = r_lo; r < r_hi; ++r) {
          const float c = cv.at(r, 0);
          const float* gr = g.row(r);
          const float* ar = av.row(r);
          double acc = 0.0;
          for (int64_t j = 0; j < av.cols(); ++j) {
            switch (op) {
              case BinaryOp::kAdd:
                acc += gr[j];
                break;
              case BinaryOp::kSub:
                acc -= gr[j];
                break;
              case BinaryOp::kMul:
                acc += static_cast<double>(gr[j]) * ar[j];
                break;
              case BinaryOp::kDiv:
                acc += -static_cast<double>(gr[j]) * ar[j] / (c * c);
                break;
            }
          }
          dc.at(r, 0) = static_cast<float>(acc);
        }
      });
      n->parents[1]->AccumGrad(dc);
    }
  });
}

Var BroadcastRowOp(const Var& a, const Var& row, BinaryOp op) {
  Tensor out(a.rows(), a.cols());
  tensor::BroadcastRow(a.value(), row.value(), op, &out);
  return MakeNode(std::move(out), {a, row}, [op](Node* n) {
    const Tensor& g = n->grad;
    const Tensor& av = n->parents[0]->value;
    const Tensor& rv = n->parents[1]->value;
    if (n->parents[0]->requires_grad) {
      Tensor da(av.rows(), av.cols());
      ParallelRows(av.rows(), av.cols(), [&](int64_t r_lo, int64_t r_hi) {
        for (int64_t r = r_lo; r < r_hi; ++r) {
          const float* gr = g.row(r);
          float* dr = da.row(r);
          for (int64_t j = 0; j < av.cols(); ++j) {
            const float b = rv.at(0, j);
            switch (op) {
              case BinaryOp::kAdd:
              case BinaryOp::kSub:
                dr[j] = gr[j];
                break;
              case BinaryOp::kMul:
                dr[j] = gr[j] * b;
                break;
              case BinaryOp::kDiv:
                dr[j] = gr[j] / b;
                break;
            }
          }
        }
      });
      n->parents[0]->AccumGrad(da);
    }
    if (n->parents[1]->requires_grad) {
      // Bias-style gradient: reduce over the batch dimension. Per-chunk
      // partials over a fixed row grid, folded in fixed tree order, keep the
      // result bitwise-identical at any thread count (util/parallel.h).
      Tensor dr = util::ParallelReduceOrdered(
          util::ThreadPool::Global(), 0, av.rows(), kGradReduceGridRows,
          Tensor(1, rv.cols()),
          [&](int64_t r_lo, int64_t r_hi) {
            Tensor partial(1, rv.cols());
            for (int64_t r = r_lo; r < r_hi; ++r) {
              const float* gr = g.row(r);
              const float* ar = av.row(r);
              for (int64_t j = 0; j < av.cols(); ++j) {
                const float b = rv.at(0, j);
                switch (op) {
                  case BinaryOp::kAdd:
                    partial.at(0, j) += gr[j];
                    break;
                  case BinaryOp::kSub:
                    partial.at(0, j) -= gr[j];
                    break;
                  case BinaryOp::kMul:
                    partial.at(0, j) += gr[j] * ar[j];
                    break;
                  case BinaryOp::kDiv:
                    partial.at(0, j) += -gr[j] * ar[j] / (b * b);
                    break;
                }
              }
            }
            return partial;
          },
          [](Tensor& acc, Tensor&& part) { acc.AddInPlace(part); });
      n->parents[1]->AccumGrad(dr);
    }
  });
}

}  // namespace

Var BroadcastColAdd(const Var& a, const Var& col) {
  return BroadcastColOp(a, col, BinaryOp::kAdd);
}
Var BroadcastColSub(const Var& a, const Var& col) {
  return BroadcastColOp(a, col, BinaryOp::kSub);
}
Var BroadcastColMul(const Var& a, const Var& col) {
  return BroadcastColOp(a, col, BinaryOp::kMul);
}
Var BroadcastColDiv(const Var& a, const Var& col) {
  return BroadcastColOp(a, col, BinaryOp::kDiv);
}
Var BroadcastRowAdd(const Var& a, const Var& row) {
  return BroadcastRowOp(a, row, BinaryOp::kAdd);
}
Var BroadcastRowSub(const Var& a, const Var& row) {
  return BroadcastRowOp(a, row, BinaryOp::kSub);
}
Var BroadcastRowMul(const Var& a, const Var& row) {
  return BroadcastRowOp(a, row, BinaryOp::kMul);
}
Var BroadcastRowDiv(const Var& a, const Var& row) {
  return BroadcastRowOp(a, row, BinaryOp::kDiv);
}

// ---------------------------------------------------------------------------
// Structured ops.
// ---------------------------------------------------------------------------

Var RowL2Normalize(const Var& a, float eps) {
  Tensor out = tensor::RowL2Normalized(a.value(), eps);
  return MakeNode(std::move(out), {a}, [eps](Node* n) {
    const Tensor& x = n->parents[0]->value;
    const Tensor& y = n->value;
    const Tensor& g = n->grad;
    Tensor dx(x.rows(), x.cols());
    ParallelRows(x.rows(), x.cols(), [&](int64_t r_lo, int64_t r_hi) {
      for (int64_t r = r_lo; r < r_hi; ++r) {
        const float* xr = x.row(r);
        const float* yr = y.row(r);
        const float* gr = g.row(r);
        double norm_sq = 0.0;
        for (int64_t c = 0; c < x.cols(); ++c) {
          norm_sq += static_cast<double>(xr[c]) * xr[c];
        }
        const float norm = static_cast<float>(std::sqrt(norm_sq));
        float* dr = dx.row(r);
        if (norm <= eps) {
          for (int64_t c = 0; c < x.cols(); ++c) dr[c] = 0.0f;
          continue;
        }
        double dot = 0.0;
        for (int64_t c = 0; c < x.cols(); ++c) {
          dot += static_cast<double>(gr[c]) * yr[c];
        }
        const float inv = 1.0f / norm;
        for (int64_t c = 0; c < x.cols(); ++c) {
          dr[c] = (gr[c] - static_cast<float>(dot) * yr[c]) * inv;
        }
      }
    });
    n->parents[0]->AccumGrad(dx);
  });
}

Var ConcatRows(const std::vector<Var>& parts) {
  CHECK(!parts.empty());
  const int64_t cols = parts[0].cols();
  int64_t rows = 0;
  for (const auto& p : parts) {
    CHECK_EQ(p.cols(), cols);
    rows += p.rows();
  }
  Tensor out(rows, cols);
  int64_t offset = 0;
  for (const auto& p : parts) {
    const Tensor& v = p.value();
    std::copy(v.data(), v.data() + v.numel(), out.data() + offset * cols);
    offset += v.rows();
  }
  return MakeNode(std::move(out), parts, [](Node* n) {
    const Tensor& g = n->grad;
    const int64_t cols = g.cols();
    int64_t offset = 0;
    for (auto& parent : n->parents) {
      const int64_t r = parent->value.rows();
      if (parent->requires_grad) {
        Tensor dg(r, cols);
        std::copy(g.data() + offset * cols, g.data() + (offset + r) * cols,
                  dg.data());
        parent->AccumGrad(dg);
      }
      offset += r;
    }
  });
}

Var SelectColumns(const Var& a, const std::vector<int>& indices) {
  const Tensor& x = a.value();
  Tensor out(x.rows(), static_cast<int64_t>(indices.size()));
  ParallelRows(x.rows(), x.cols(), [&](int64_t r_lo, int64_t r_hi) {
    for (int64_t r = r_lo; r < r_hi; ++r) {
      const float* xr = x.row(r);
      float* outr = out.row(r);
      for (size_t j = 0; j < indices.size(); ++j) {
        DCHECK_GE(indices[j], 0);
        DCHECK_LT(indices[j], x.cols());
        outr[j] = xr[indices[j]];
      }
    }
  });
  return MakeNode(std::move(out), {a}, [indices](Node* n) {
    const Tensor& g = n->grad;
    const Tensor& x = n->parents[0]->value;
    // The scatter stays within each row (duplicate indices accumulate in
    // serial j-order per row), so row-parallelism is partition-independent.
    Tensor dx(x.rows(), x.cols());
    ParallelRows(x.rows(), x.cols(), [&](int64_t r_lo, int64_t r_hi) {
      for (int64_t r = r_lo; r < r_hi; ++r) {
        const float* gr = g.row(r);
        float* dr = dx.row(r);
        for (size_t j = 0; j < indices.size(); ++j) {
          dr[indices[j]] += gr[j];
        }
      }
    });
    n->parents[0]->AccumGrad(dx);
  });
}

Var ApplyMask(const Var& a, const Tensor& mask) {
  CHECK(a.value().same_shape(mask));
  Tensor out = a.value();
  float* op = out.data();
  const float* mp = mask.data();
  ParallelElems(out.numel(), [op, mp](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) op[i] *= mp[i];
  });
  return MakeNode(std::move(out), {a}, [mask](Node* n) {
    Tensor g = n->grad;
    float* gp = g.data();
    const float* mp = mask.data();
    ParallelElems(g.numel(), [gp, mp](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) gp[i] *= mp[i];
    });
    n->parents[0]->AccumGrad(g);
  });
}

}  // namespace autodiff
}  // namespace contratopic
