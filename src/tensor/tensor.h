#ifndef CONTRATOPIC_TENSOR_TENSOR_H_
#define CONTRATOPIC_TENSOR_TENSOR_H_

// Dense row-major float32 matrix. The whole library is written against 2-D
// tensors: scalars are 1x1, row vectors 1xN, column vectors Nx1. Restricting
// to rank 2 keeps every kernel simple and fast, and is sufficient for the
// bag-of-words topic models reproduced here (batch x vocab, topics x vocab,
// topics x embedding, ...).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace contratopic {
namespace tensor {

class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  // Zero-filled. Storage routes through the thread's installed BufferPool
  // when one is present (tensor/arena.h): recycled buffers are re-zeroed,
  // so semantics match a fresh allocation bit for bit.
  Tensor(int64_t rows, int64_t cols);
  Tensor(int64_t rows, int64_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    CHECK_EQ(static_cast<int64_t>(data_.size()), rows * cols);
  }

  // Pool-aware rule of five: copies acquire (and the destructor releases)
  // buffers through the installed pool; moves transfer storage as before.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept
      : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_.clear();
  }
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  // Factories.
  static Tensor Zeros(int64_t rows, int64_t cols) { return Tensor(rows, cols); }
  static Tensor Full(int64_t rows, int64_t cols, float value);
  static Tensor Ones(int64_t rows, int64_t cols) {
    return Full(rows, cols, 1.0f);
  }
  static Tensor Scalar(float value) { return Full(1, 1, value); }
  static Tensor Identity(int64_t n);
  // I.i.d. samples.
  static Tensor RandNormal(int64_t rows, int64_t cols, util::Rng& rng,
                           float mean = 0.0f, float stddev = 1.0f);
  static Tensor RandUniform(int64_t rows, int64_t cols, util::Rng& rng,
                            float lo = 0.0f, float hi = 1.0f);
  static Tensor RandGumbel(int64_t rows, int64_t cols, util::Rng& rng);
  // Glorot/Xavier uniform init for a (fan_in -> fan_out) weight.
  static Tensor GlorotUniform(int64_t rows, int64_t cols, util::Rng& rng);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t numel() const { return rows_ * cols_; }
  bool empty() const { return numel() == 0; }
  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t r, int64_t c) {
    DCHECK_GE(r, 0);
    DCHECK_LT(r, rows_);
    DCHECK_GE(c, 0);
    DCHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float at(int64_t r, int64_t c) const {
    DCHECK_GE(r, 0);
    DCHECK_LT(r, rows_);
    DCHECK_GE(c, 0);
    DCHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float* row(int64_t r) { return data_.data() + r * cols_; }
  const float* row(int64_t r) const { return data_.data() + r * cols_; }

  // Value of a 1x1 tensor.
  float scalar() const {
    CHECK_EQ(numel(), 1);
    return data_[0];
  }

  // Reinterprets the buffer with a new shape (same element count).
  Tensor Reshaped(int64_t rows, int64_t cols) const;

  // In-place helpers.
  void Fill(float value);
  void Scale(float factor);
  void AddInPlace(const Tensor& other);            // this += other
  void AddScaledInPlace(const Tensor& other, float factor);  // this += f*other
  void Apply(const std::function<float(float)>& fn);

  // Reductions / stats (host-side, not differentiable).
  float Sum() const;
  float Mean() const;
  float MaxAbs() const;
  float L2Norm() const;

  // Indices of the k largest entries of row r, descending.
  std::vector<int> TopKIndicesOfRow(int64_t r, int k) const;

  std::string ShapeString() const;
  // Small-tensor debug printout (truncates large tensors).
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<float> data_;
};

// True if every corresponding element differs by at most `atol`.
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f);

}  // namespace tensor
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_TENSOR_H_
