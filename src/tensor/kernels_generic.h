#ifndef CONTRATOPIC_TENSOR_KERNELS_GENERIC_H_
#define CONTRATOPIC_TENSOR_KERNELS_GENERIC_H_

// Backend-generic micro-kernel bodies, templated over the 8-lane vector-ops
// concept (simd_scalar.h / simd_sse2.h / simd_avx2.h). Every backend
// instantiates the *same* code, so the per-lane instruction sequence -- and
// therefore every bit of the result -- is identical across backends by
// construction (DESIGN.md §12):
//
//   * reductions accumulate into 8 lanes (lane j holds elements congruent
//     to j mod 8; tails are padded with the reduction identity) and fold
//     through V::Reduce*'s canonical tree;
//   * elementwise ops are per-lane IEEE arithmetic, deterministic at any
//     vector width;
//   * exp is the shared polynomial ExpF8 below -- never libm per element.
//
// Per-row scalars (the final log in log-softmax/LSE) do use libm, once per
// row, identically in every backend.

#include <bit>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <limits>

#include "tensor/backend.h"

namespace contratopic {
namespace tensor {
namespace generic {

// Canonical exp polynomial (Cody-Waite range reduction to [-ln2/2, ln2/2],
// degree-5 minimax, exponent rebuilt via integer bits). Matches std::exp to
// a few ULP; overflows to +inf above kExpHi, flushes to zero below kExpLo
// (no denormal outputs), passes NaN through. The clamp runs before the
// int conversion so ToInt never sees NaN/inf.
inline constexpr float kExpHi = 88.3762626647949f;
inline constexpr float kExpLo = -87.3365478515625f;

template <typename V>
typename V::F8 ExpF8(typename V::F8 x) {
  using F8 = typename V::F8;
  const F8 hi = V::Broadcast(kExpHi);
  const F8 lo = V::Broadcast(kExpLo);
  F8 xs = V::Min(x, hi);  // min/max drop NaN lanes to the clamp value
  xs = V::Max(xs, lo);
  const F8 z = V::Mul(xs, V::Broadcast(1.44269504088896341f));  // x/ln2
  const typename V::I8 n_i = V::ToInt(z);  // nearest-even, in [-126, 127]
  const F8 n_f = V::ToFloat(n_i);
  F8 r = V::Sub(xs, V::Mul(n_f, V::Broadcast(0.693359375f)));
  r = V::Sub(r, V::Mul(n_f, V::Broadcast(-2.12194440e-4f)));
  F8 p = V::Broadcast(1.9875691500e-4f);
  p = V::Add(V::Mul(p, r), V::Broadcast(1.3981999507e-3f));
  p = V::Add(V::Mul(p, r), V::Broadcast(8.3334519073e-3f));
  p = V::Add(V::Mul(p, r), V::Broadcast(4.1665795894e-2f));
  p = V::Add(V::Mul(p, r), V::Broadcast(1.6666665459e-1f));
  p = V::Add(V::Mul(p, r), V::Broadcast(5.0000001201e-1f));
  const F8 e = V::Add(V::Add(V::Mul(V::Mul(r, r), p), r), V::Broadcast(1.0f));
  F8 res = V::Mul(e, V::Pow2I(n_i));
  res = V::Blend(V::CmpGt(x, hi),
                 V::Broadcast(std::numeric_limits<float>::infinity()), res);
  res = V::Blend(V::CmpLt(x, lo), V::Zero(), res);
  res = V::Blend(V::CmpUnord(x, x), x, res);
  return res;
}

template <typename V>
struct Kern {
  using F8 = typename V::F8;
  using D8 = typename V::D8;

  // Loads the `count` (1..7) floats at p, padding lanes count..7 with pad.
  static F8 LoadPad(const float* p, int64_t count, float pad) {
    float buf[8] = {pad, pad, pad, pad, pad, pad, pad, pad};
    std::memcpy(buf, p, static_cast<size_t>(count) * sizeof(float));
    return V::Load(buf);
  }
  static void StoreHead(float* p, F8 x, int64_t count) {
    float buf[8];
    V::Store(buf, x);
    std::memcpy(p, buf, static_cast<size_t>(count) * sizeof(float));
  }

  static float Dot(const float* a, const float* b, int64_t n) {
    F8 acc = V::Zero();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      acc = V::Add(acc, V::Mul(V::Load(a + i), V::Load(b + i)));
    }
    if (i < n) {
      acc = V::Add(acc, V::Mul(LoadPad(a + i, n - i, 0.0f),
                               LoadPad(b + i, n - i, 0.0f)));
    }
    return V::ReduceAdd(acc);
  }

  static void Dot4(const float* a, const float* b0, const float* b1,
                   const float* b2, const float* b3, int64_t n,
                   float out[4]) {
    F8 acc0 = V::Zero(), acc1 = V::Zero(), acc2 = V::Zero(),
       acc3 = V::Zero();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const F8 av = V::Load(a + i);
      acc0 = V::Add(acc0, V::Mul(av, V::Load(b0 + i)));
      acc1 = V::Add(acc1, V::Mul(av, V::Load(b1 + i)));
      acc2 = V::Add(acc2, V::Mul(av, V::Load(b2 + i)));
      acc3 = V::Add(acc3, V::Mul(av, V::Load(b3 + i)));
    }
    if (i < n) {
      const F8 av = LoadPad(a + i, n - i, 0.0f);
      acc0 = V::Add(acc0, V::Mul(av, LoadPad(b0 + i, n - i, 0.0f)));
      acc1 = V::Add(acc1, V::Mul(av, LoadPad(b1 + i, n - i, 0.0f)));
      acc2 = V::Add(acc2, V::Mul(av, LoadPad(b2 + i, n - i, 0.0f)));
      acc3 = V::Add(acc3, V::Mul(av, LoadPad(b3 + i, n - i, 0.0f)));
    }
    out[0] = V::ReduceAdd(acc0);
    out[1] = V::ReduceAdd(acc1);
    out[2] = V::ReduceAdd(acc2);
    out[3] = V::ReduceAdd(acc3);
  }

  static float RowMax(const float* row, int64_t n) {
    const float ninf = -std::numeric_limits<float>::infinity();
    F8 acc = V::Broadcast(ninf);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) acc = V::Max(acc, V::Load(row + i));
    if (i < n) acc = V::Max(acc, LoadPad(row + i, n - i, ninf));
    return V::ReduceMax(acc);
  }

  // exp(row - m) written back, canonical double-lane sum returned.
  static double ExpSumInPlace(float* row, int64_t n, float m) {
    const F8 bm = V::Broadcast(m);
    const float ninf = -std::numeric_limits<float>::infinity();
    D8 acc = V::DZero();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const F8 e = ExpF8<V>(V::Sub(V::Load(row + i), bm));
      V::Store(row + i, e);
      acc = V::AddWiden(acc, e);
    }
    if (i < n) {
      // -inf pad: exp(-inf - m) contributes exactly +0 to every lane.
      const F8 e = ExpF8<V>(V::Sub(LoadPad(row + i, n - i, ninf), bm));
      StoreHead(row + i, e, n - i);
      acc = V::AddWiden(acc, e);
    }
    return V::ReduceD(acc);
  }

  static double ExpSum(const float* row, int64_t n, float m) {
    const F8 bm = V::Broadcast(m);
    const float ninf = -std::numeric_limits<float>::infinity();
    D8 acc = V::DZero();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      acc = V::AddWiden(acc, ExpF8<V>(V::Sub(V::Load(row + i), bm)));
    }
    if (i < n) {
      acc = V::AddWiden(acc,
                        ExpF8<V>(V::Sub(LoadPad(row + i, n - i, ninf), bm)));
    }
    return V::ReduceD(acc);
  }

  static void SoftmaxRow(float* row, int64_t n) {
    if (n <= 0) return;
    const float m = RowMax(row, n);
    if (m == -std::numeric_limits<float>::infinity()) {
      // All--inf row: defined result, the uniform distribution.
      const float u = 1.0f / static_cast<float>(n);
      for (int64_t c = 0; c < n; ++c) row[c] = u;
      return;
    }
    const double sum = ExpSumInPlace(row, n, m);
    const float inv = static_cast<float>(1.0 / sum);
    Scale(row, n, inv);
  }

  static void LogSoftmaxRow(float* row, int64_t n) {
    if (n <= 0) return;
    const float m = RowMax(row, n);
    if (m == -std::numeric_limits<float>::infinity()) {
      // All--inf row: log of the uniform distribution.
      const float u = -static_cast<float>(std::log(static_cast<double>(n)));
      for (int64_t c = 0; c < n; ++c) row[c] = u;
      return;
    }
    const double sum = ExpSum(row, n, m);
    const float log_z = m + static_cast<float>(std::log(sum));
    BinaryScalar(BinaryOp::kSub, row, log_z, row, n);
  }

  static float LogSumExpRow(const float* row, const float* mask, int64_t n) {
    const float kEmpty = -1e30f;
    const F8 empty = V::Broadcast(kEmpty);
    const F8 zero = V::Zero();
    // Masked max with the -1e30 sentinel as identity.
    F8 macc = empty;
    int64_t i = 0;
    if (mask == nullptr) {
      for (; i + 8 <= n; i += 8) macc = V::Max(macc, V::Load(row + i));
      if (i < n) macc = V::Max(macc, LoadPad(row + i, n - i, kEmpty));
    } else {
      for (; i + 8 <= n; i += 8) {
        const F8 sel = V::CmpGt(V::Load(mask + i), zero);
        macc = V::Max(macc, V::Blend(sel, V::Load(row + i), empty));
      }
      if (i < n) {
        const F8 sel = V::CmpGt(LoadPad(mask + i, n - i, 0.0f), zero);
        macc = V::Max(macc, V::Blend(sel, LoadPad(row + i, n - i, kEmpty),
                                     empty));
      }
    }
    const float m = V::ReduceMax(macc);
    if (m <= kEmpty) return kEmpty;  // Empty mask row (or all below -1e30).
    // sum of w * exp(x - m) over selected lanes; unselected lanes add +0.
    const F8 bm = V::Broadcast(m);
    const float ninf = -std::numeric_limits<float>::infinity();
    D8 acc = V::DZero();
    i = 0;
    if (mask == nullptr) {
      for (; i + 8 <= n; i += 8) {
        acc = V::AddWiden(acc, ExpF8<V>(V::Sub(V::Load(row + i), bm)));
      }
      if (i < n) {
        acc = V::AddWiden(
            acc, ExpF8<V>(V::Sub(LoadPad(row + i, n - i, ninf), bm)));
      }
    } else {
      for (; i + 8 <= n; i += 8) {
        const F8 w = V::Load(mask + i);
        const F8 term =
            V::Mul(w, ExpF8<V>(V::Sub(V::Load(row + i), bm)));
        acc = V::AddWiden(acc, V::Blend(V::CmpGt(w, zero), term, zero));
      }
      if (i < n) {
        const F8 w = LoadPad(mask + i, n - i, 0.0f);
        const F8 term = V::Mul(
            w, ExpF8<V>(V::Sub(LoadPad(row + i, n - i, ninf), bm)));
        acc = V::AddWiden(acc, V::Blend(V::CmpGt(w, zero), term, zero));
      }
    }
    return m + static_cast<float>(std::log(V::ReduceD(acc)));
  }

  static double RowSum(const float* row, int64_t n) {
    D8 acc = V::DZero();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) acc = V::AddWiden(acc, V::Load(row + i));
    if (i < n) acc = V::AddWiden(acc, LoadPad(row + i, n - i, 0.0f));
    return V::ReduceD(acc);
  }

  static double RowSumSq(const float* row, int64_t n) {
    D8 acc = V::DZero();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) acc = V::AddSqWiden(acc, V::Load(row + i));
    if (i < n) acc = V::AddSqWiden(acc, LoadPad(row + i, n - i, 0.0f));
    return V::ReduceD(acc);
  }

  // Elementwise span ops: per-element IEEE arithmetic, so the scalar tails
  // below match the scalar backend's plain loops bit for bit.
  static void Scale(float* d, int64_t n, float f) {
    const F8 bf = V::Broadcast(f);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) V::Store(d + i, V::Mul(V::Load(d + i), bf));
    for (; i < n; ++i) d[i] *= f;
  }

  static void Axpy(float* d, const float* s, int64_t n, float f) {
    const F8 bf = V::Broadcast(f);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      V::Store(d + i, V::Add(V::Load(d + i), V::Mul(bf, V::Load(s + i))));
    }
    for (; i < n; ++i) d[i] += f * s[i];
  }

  static void Add(float* d, const float* s, int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      V::Store(d + i, V::Add(V::Load(d + i), V::Load(s + i)));
    }
    for (; i < n; ++i) d[i] += s[i];
  }

  static void Binary(BinaryOp op, const float* a, const float* b, float* out,
                     int64_t n) {
    switch (op) {
      case BinaryOp::kAdd:
        return BinaryLoop<BinaryOp::kAdd>(a, b, out, n);
      case BinaryOp::kSub:
        return BinaryLoop<BinaryOp::kSub>(a, b, out, n);
      case BinaryOp::kMul:
        return BinaryLoop<BinaryOp::kMul>(a, b, out, n);
      case BinaryOp::kDiv:
        return BinaryLoop<BinaryOp::kDiv>(a, b, out, n);
    }
  }

  static void BinaryScalar(BinaryOp op, const float* a, float b, float* out,
                           int64_t n) {
    switch (op) {
      case BinaryOp::kAdd:
        return BinaryScalarLoop<BinaryOp::kAdd>(a, b, out, n);
      case BinaryOp::kSub:
        return BinaryScalarLoop<BinaryOp::kSub>(a, b, out, n);
      case BinaryOp::kMul:
        return BinaryScalarLoop<BinaryOp::kMul>(a, b, out, n);
      case BinaryOp::kDiv:
        return BinaryScalarLoop<BinaryOp::kDiv>(a, b, out, n);
    }
  }

  static float Expf1(float x) {
    float buf[8] = {x, x, x, x, x, x, x, x};
    V::Store(buf, ExpF8<V>(V::Load(buf)));
    return buf[0];
  }

  // --- Mixed-precision serving kernels (DESIGN.md §15) -------------------
  // The bf16 codec is exact integer bit manipulation and the int8
  // quantizer is one float multiply plus an exact rounding conversion, so
  // both are written as plain shared loops: every backend instantiates
  // the identical code and there is nothing order-sensitive to vectorize.
  // Only the dot products (the matmul inner loops) use the lane ops.

  static uint16_t EncodeBf16(float x) {
    const uint32_t u = std::bit_cast<uint32_t>(x);
    if ((u & 0x7FFFFFFFu) > 0x7F800000u) {
      // NaN: rounding could clear the mantissa and fabricate an inf; keep
      // the top bits and force a quiet-NaN mantissa bit instead.
      return static_cast<uint16_t>((u >> 16) | 0x0040u);
    }
    // Round to nearest, ties to even on the truncated 16 mantissa bits.
    return static_cast<uint16_t>((u + 0x7FFFu + ((u >> 16) & 1u)) >> 16);
  }
  static float DecodeBf16(uint16_t x) {
    return std::bit_cast<float>(static_cast<uint32_t>(x) << 16);
  }

  static void Bf16Encode(const float* src, uint16_t* dst, int64_t n) {
    for (int64_t i = 0; i < n; ++i) dst[i] = EncodeBf16(src[i]);
  }

  static void Bf16Decode(const uint16_t* src, float* dst, int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) V::Store(dst + i, V::LoadBf16(src + i));
    for (; i < n; ++i) dst[i] = DecodeBf16(src[i]);
  }

  // bf16 loads decode exactly, so padding with encoded zeros (bits 0)
  // pads the fp32 lanes with +0.0, the dot identity.
  static F8 LoadBf16Pad(const uint16_t* p, int64_t count) {
    uint16_t buf[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::memcpy(buf, p, static_cast<size_t>(count) * sizeof(uint16_t));
    return V::LoadBf16(buf);
  }

  static float DotBf16(const float* a, const uint16_t* b, int64_t n) {
    F8 acc = V::Zero();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      acc = V::Add(acc, V::Mul(V::Load(a + i), V::LoadBf16(b + i)));
    }
    if (i < n) {
      acc = V::Add(acc, V::Mul(LoadPad(a + i, n - i, 0.0f),
                               LoadBf16Pad(b + i, n - i)));
    }
    return V::ReduceAdd(acc);
  }

  static void Dot4Bf16(const float* a, const uint16_t* b0,
                       const uint16_t* b1, const uint16_t* b2,
                       const uint16_t* b3, int64_t n, float out[4]) {
    F8 acc0 = V::Zero(), acc1 = V::Zero(), acc2 = V::Zero(),
       acc3 = V::Zero();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const F8 av = V::Load(a + i);
      acc0 = V::Add(acc0, V::Mul(av, V::LoadBf16(b0 + i)));
      acc1 = V::Add(acc1, V::Mul(av, V::LoadBf16(b1 + i)));
      acc2 = V::Add(acc2, V::Mul(av, V::LoadBf16(b2 + i)));
      acc3 = V::Add(acc3, V::Mul(av, V::LoadBf16(b3 + i)));
    }
    if (i < n) {
      const F8 av = LoadPad(a + i, n - i, 0.0f);
      acc0 = V::Add(acc0, V::Mul(av, LoadBf16Pad(b0 + i, n - i)));
      acc1 = V::Add(acc1, V::Mul(av, LoadBf16Pad(b1 + i, n - i)));
      acc2 = V::Add(acc2, V::Mul(av, LoadBf16Pad(b2 + i, n - i)));
      acc3 = V::Add(acc3, V::Mul(av, LoadBf16Pad(b3 + i, n - i)));
    }
    out[0] = V::ReduceAdd(acc0);
    out[1] = V::ReduceAdd(acc1);
    out[2] = V::ReduceAdd(acc2);
    out[3] = V::ReduceAdd(acc3);
  }

  static float RowAbsMax(const float* row, int64_t n) {
    if (n <= 0) return 0.0f;
    F8 acc = V::Zero();  // |x| >= 0, so +0 is the identity.
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) acc = V::Max(acc, V::Abs(V::Load(row + i)));
    if (i < n) acc = V::Max(acc, V::Abs(LoadPad(row + i, n - i, 0.0f)));
    return V::ReduceMax(acc);
  }

  static bool QuantizeI8(const float* src, int8_t* dst, int64_t n,
                         float inv_scale) {
    if constexpr (requires(const float* s, int8_t* d, int64_t m, float f) {
                    { V::QuantizeI8(s, d, m, f) } -> std::same_as<bool>;
                  }) {
      return V::QuantizeI8(src, dst, n, inv_scale);
    } else {
      bool nonneg = true;
      for (int64_t i = 0; i < n; ++i) {
        const float v = src[i] * inv_scale;
        // cvtps2dq semantics: NaN and out-of-range become INT32_MIN, which
        // the symmetric clamp turns into -127. lrintf in the default
        // rounding mode is round-to-nearest-even, matching the SIMD
        // conversion for in-range values.
        int32_t q;
        if (v != v || v >= 2147483648.0f || v < -2147483648.0f) {
          q = INT32_MIN;
        } else {
          q = static_cast<int32_t>(std::lrintf(v));
        }
        if (q > 127) q = 127;
        if (q < -127) q = -127;
        nonneg = nonneg && q >= 0;
        dst[i] = static_cast<int8_t>(q);
      }
      return nonneg;
    }
  }

  static int64_t DotI8(const int8_t* a, const int8_t* b, int64_t n) {
    if constexpr (requires(const int8_t* p, int64_t m) {
                    { V::DotI8(p, p, m) } -> std::same_as<int64_t>;
                  }) {
      return V::DotI8(a, b, n);
    } else {
      int64_t acc = 0;
      for (int64_t i = 0; i < n; ++i) {
        acc += static_cast<int64_t>(a[i]) * static_cast<int64_t>(b[i]);
      }
      return acc;
    }
  }

  static void Dot4I8(const int8_t* a, const int8_t* b0, const int8_t* b1,
                     const int8_t* b2, const int8_t* b3, int64_t n,
                     int64_t out[4]) {
    // Backends with a register-blocked form (AVX2 shares one abs pass
    // over the activation span) provide it; elsewhere four plain dots
    // are already exact, so bitwise identity costs nothing.
    if constexpr (requires(const int8_t* p, int64_t m, int64_t o[4]) {
                    V::Dot4I8(p, p, p, p, p, m, o);
                  }) {
      return V::Dot4I8(a, b0, b1, b2, b3, n, out);
    } else {
      out[0] = DotI8(a, b0, n);
      out[1] = DotI8(a, b1, n);
      out[2] = DotI8(a, b2, n);
      out[3] = DotI8(a, b3, n);
    }
  }

  // Unsigned-activation dots (codes in [0, 127], signaled by QuantizeI8
  // returning true). Exact integer math either way, so falling back to
  // the signed forms is bitwise identical; only AVX2 gains a cheaper
  // instruction sequence from the narrower domain.
  static int64_t DotI8U(const int8_t* a, const int8_t* b, int64_t n) {
    if constexpr (requires(const int8_t* p, int64_t m) {
                    { V::DotI8U(p, p, m) } -> std::same_as<int64_t>;
                  }) {
      return V::DotI8U(a, b, n);
    } else {
      return DotI8(a, b, n);
    }
  }

  static void Dot4I8U(const int8_t* a, const int8_t* b0, const int8_t* b1,
                      const int8_t* b2, const int8_t* b3, int64_t n,
                      int64_t out[4]) {
    if constexpr (requires(const int8_t* p, int64_t m, int64_t o[4]) {
                    V::Dot4I8U(p, p, p, p, p, m, o);
                  }) {
      return V::Dot4I8U(a, b0, b1, b2, b3, n, out);
    } else {
      Dot4I8(a, b0, b1, b2, b3, n, out);
    }
  }

 private:
  template <BinaryOp kOp>
  static F8 ApplyV(F8 a, F8 b) {
    if constexpr (kOp == BinaryOp::kAdd) return V::Add(a, b);
    if constexpr (kOp == BinaryOp::kSub) return V::Sub(a, b);
    if constexpr (kOp == BinaryOp::kMul) return V::Mul(a, b);
    return V::Div(a, b);
  }
  template <BinaryOp kOp>
  static float ApplyS(float a, float b) {
    if constexpr (kOp == BinaryOp::kAdd) return a + b;
    if constexpr (kOp == BinaryOp::kSub) return a - b;
    if constexpr (kOp == BinaryOp::kMul) return a * b;
    return a / b;
  }
  template <BinaryOp kOp>
  static void BinaryLoop(const float* a, const float* b, float* out,
                         int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      V::Store(out + i, ApplyV<kOp>(V::Load(a + i), V::Load(b + i)));
    }
    for (; i < n; ++i) out[i] = ApplyS<kOp>(a[i], b[i]);
  }
  template <BinaryOp kOp>
  static void BinaryScalarLoop(const float* a, float b, float* out,
                               int64_t n) {
    const F8 bv = V::Broadcast(b);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      V::Store(out + i, ApplyV<kOp>(V::Load(a + i), bv));
    }
    for (; i < n; ++i) out[i] = ApplyS<kOp>(a[i], b);
  }
};

template <typename V>
KernelTable MakeTable(KernelBackendKind kind) {
  using K = Kern<V>;
  KernelTable t;
  t.name = V::kName;
  t.kind = kind;
  t.dot = &K::Dot;
  t.dot4 = &K::Dot4;
  t.softmax_row = &K::SoftmaxRow;
  t.log_softmax_row = &K::LogSoftmaxRow;
  t.logsumexp_row = &K::LogSumExpRow;
  t.row_sum = &K::RowSum;
  t.row_sumsq = &K::RowSumSq;
  t.scale = &K::Scale;
  t.axpy = &K::Axpy;
  t.add = &K::Add;
  t.binary = &K::Binary;
  t.binary_scalar = &K::BinaryScalar;
  t.expf1 = &K::Expf1;
  t.bf16_encode = &K::Bf16Encode;
  t.bf16_decode = &K::Bf16Decode;
  t.dot_bf16 = &K::DotBf16;
  t.dot4_bf16 = &K::Dot4Bf16;
  t.row_absmax = &K::RowAbsMax;
  t.quantize_i8 = &K::QuantizeI8;
  t.dot_i8 = &K::DotI8;
  t.dot4_i8 = &K::Dot4I8;
  t.dot_i8u = &K::DotI8U;
  t.dot4_i8u = &K::Dot4I8U;
  return t;
}

}  // namespace generic
}  // namespace tensor
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_KERNELS_GENERIC_H_
