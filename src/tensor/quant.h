#ifndef CONTRATOPIC_TENSOR_QUANT_H_
#define CONTRATOPIC_TENSOR_QUANT_H_

// Mixed-precision serving tier (DESIGN.md §15, ROADMAP item 4).
//
// Training keeps the fp32 bitwise contract of backend.h untouched.
// Serving may trade bits for throughput under an explicit *tolerance*
// contract instead: eval-mode encoder matmuls (nn::Linear::Forward) can
// run against bf16-storage/fp32-accumulate or int8 (per-row scale,
// symmetric) packed weights, and serve::Checkpoint can store its tensors
// in either reduced format so a quantized model loads 2-4x smaller.
//
// The contract has two halves:
//   * Within a precision, results are still bitwise identical across
//     kernel backends, thread counts, and execution engines -- the
//     quantized kernels live in the backend dispatch tables and follow
//     the same canonical-order rules (backend.h).
//   * Across precisions, ranked top-words are invariant (serving answers
//     TopicTopWords from the checkpoint's fp32-derived id lists) and
//     theta is bounded by the documented tolerance
//     (tests/precision_differential_test.cc pins both).
//
// Precision selection mirrors the kernel-backend machinery:
// CT_SERVE_PRECISION={fp32,bf16,int8} picks the startup precision
// (default fp32), SetServePrecision/ScopedServePrecision switch at
// runtime. The mode only affects eval-mode (training() == false) forward
// passes; training math never consults it.

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace contratopic {
namespace tensor {

enum class ServePrecision { kFp32, kBf16, kInt8 };

// The precision eval-mode Linear forwards run at. Resolved once at
// startup from CT_SERVE_PRECISION (default fp32), then overridable.
ServePrecision ActiveServePrecision();

// Makes `p` the active serving precision. Like SetKernelBackend, this is
// a process-global switch: not thread-safe against in-flight inference;
// call between queries or pass InferenceEngine::Options::precision so the
// engine scopes it around its own model calls.
void SetServePrecision(ServePrecision p);

const char* ServePrecisionName(ServePrecision p);

// Parses "fp32"/"bf16"/"int8". Returns false on an unknown name.
bool ParseServePrecisionName(const std::string& name, ServePrecision* p);

// RAII precision switch for tests, benches, and the serving engine.
class ScopedServePrecision {
 public:
  explicit ScopedServePrecision(ServePrecision p);
  ~ScopedServePrecision();
  ScopedServePrecision(const ScopedServePrecision&) = delete;
  ScopedServePrecision& operator=(const ScopedServePrecision&) = delete;

 private:
  ServePrecision prev_;
};

// Row-major bf16 matrix (fp32 with the low 16 mantissa bits rounded
// away). Decoding is exact, so bf16 round-trips are idempotent.
struct Bf16Matrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<uint16_t> data;  // rows * cols
};

// Row-major int8 matrix with per-row symmetric scales: row r of the
// original matrix is approximately data[r, :] * scales[r], where
// scales[r] = absmax(row r) / 127. An all-zero (or empty) row has scale
// 0 and all-zero codes.
struct Int8Matrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int8_t> data;  // rows * cols
  std::vector<float> scales;  // rows
};

// fp32 <-> bf16 (encode rounds to nearest even; decode is exact).
Bf16Matrix Bf16FromTensor(const Tensor& t);
Tensor TensorFromBf16(const Bf16Matrix& m);

// fp32 <-> int8 per-row symmetric. Rows with non-finite values are not
// meaningfully quantizable; the result is still deterministic.
Int8Matrix Int8FromTensor(const Tensor& t);
Tensor TensorFromInt8(const Int8Matrix& m);

// Serving GEMMs against a packed *transposed* weight (wt.rows == output
// features, wt.cols == input features == x.cols):
//
//   out[r, o] = dot(x.row(r), wt.row(o)) + (bias != nullptr ? bias[o] : 0)
//
// The bf16 form accumulates in fp32 through the canonical 8-lane tree;
// the int8 form quantizes each activation row symmetrically, takes exact
// integer dots, and dequantizes as
//   (float)((double)acc * ((double)x_scale * (double)w_scale)) + bias[o]
// in that fixed expression order. Both parallelize over rows of x with
// disjoint writes, so results are bitwise identical at any thread count
// and on every kernel backend.
Tensor MatMulBf16T(const Tensor& x, const Bf16Matrix& wt, const float* bias);
Tensor MatMulInt8T(const Tensor& x, const Int8Matrix& wt, const float* bias);

// True when the serving tier stores/computes this shape in reduced
// precision. Small tensors (biases, batch-norm vectors, tiny heads) stay
// fp32: they are cheap, and quantizing running statistics would wreck
// the theta tolerance for no memory win.
bool QuantizableShape(int64_t rows, int64_t cols);

}  // namespace tensor
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_QUANT_H_
