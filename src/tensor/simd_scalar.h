#ifndef CONTRATOPIC_TENSOR_SIMD_SCALAR_H_
#define CONTRATOPIC_TENSOR_SIMD_SCALAR_H_

// Scalar reference implementation of the 8-lane vector-ops concept consumed
// by tensor/kernels_generic.h. Lanes are plain float arrays and every op is
// a per-lane loop written to mirror the x86 instruction semantics exactly
// (max/min operand order, ordered compares, bitwise blends), so the scalar
// table defines the canonical bits the SIMD tables must reproduce. The TU
// that instantiates this is compiled with auto-vectorization disabled: the
// reference stays honestly scalar.

#include <bit>
#include <cmath>
#include <cstdint>

namespace contratopic {
namespace tensor {

struct ScalarOps {
  static constexpr const char* kName = "scalar";

  struct F8 {
    float v[8];
  };
  struct I8 {
    int32_t v[8];
  };
  struct D8 {
    double v[8];
  };

  static F8 Load(const float* p) {
    F8 r;
    for (int j = 0; j < 8; ++j) r.v[j] = p[j];
    return r;
  }
  static void Store(float* p, F8 x) {
    for (int j = 0; j < 8; ++j) p[j] = x.v[j];
  }
  static F8 Broadcast(float x) {
    F8 r;
    for (int j = 0; j < 8; ++j) r.v[j] = x;
    return r;
  }
  static F8 Zero() { return Broadcast(0.0f); }

  static F8 Add(F8 a, F8 b) {
    F8 r;
    for (int j = 0; j < 8; ++j) r.v[j] = a.v[j] + b.v[j];
    return r;
  }
  static F8 Sub(F8 a, F8 b) {
    F8 r;
    for (int j = 0; j < 8; ++j) r.v[j] = a.v[j] - b.v[j];
    return r;
  }
  static F8 Mul(F8 a, F8 b) {
    F8 r;
    for (int j = 0; j < 8; ++j) r.v[j] = a.v[j] * b.v[j];
    return r;
  }
  static F8 Div(F8 a, F8 b) {
    F8 r;
    for (int j = 0; j < 8; ++j) r.v[j] = a.v[j] / b.v[j];
    return r;
  }
  // maxps/minps semantics: second operand wins on NaN or equality.
  static F8 Max(F8 a, F8 b) {
    F8 r;
    for (int j = 0; j < 8; ++j) r.v[j] = a.v[j] > b.v[j] ? a.v[j] : b.v[j];
    return r;
  }
  static F8 Min(F8 a, F8 b) {
    F8 r;
    for (int j = 0; j < 8; ++j) r.v[j] = a.v[j] < b.v[j] ? a.v[j] : b.v[j];
    return r;
  }

  // Ordered compares producing all-ones/all-zeros lane masks (NaN -> 0).
  static F8 CmpGt(F8 a, F8 b) {
    F8 r;
    for (int j = 0; j < 8; ++j) r.v[j] = MaskLane(a.v[j] > b.v[j]);
    return r;
  }
  static F8 CmpLt(F8 a, F8 b) {
    F8 r;
    for (int j = 0; j < 8; ++j) r.v[j] = MaskLane(a.v[j] < b.v[j]);
    return r;
  }
  static F8 CmpUnord(F8 a, F8 b) {
    F8 r;
    for (int j = 0; j < 8; ++j) {
      r.v[j] = MaskLane(std::isnan(a.v[j]) || std::isnan(b.v[j]));
    }
    return r;
  }
  // Bitwise select: (mask & t) | (~mask & f).
  static F8 Blend(F8 mask, F8 t, F8 f) {
    F8 r;
    for (int j = 0; j < 8; ++j) {
      const uint32_t m = std::bit_cast<uint32_t>(mask.v[j]);
      r.v[j] = std::bit_cast<float>((m & std::bit_cast<uint32_t>(t.v[j])) |
                                    (~m & std::bit_cast<uint32_t>(f.v[j])));
    }
    return r;
  }

  // cvtps2dq: round to nearest even. Inputs are pre-clamped to int range.
  static I8 ToInt(F8 x) {
    I8 r;
    for (int j = 0; j < 8; ++j) {
      r.v[j] = static_cast<int32_t>(std::lrintf(x.v[j]));
    }
    return r;
  }
  static F8 ToFloat(I8 x) {
    F8 r;
    for (int j = 0; j < 8; ++j) r.v[j] = static_cast<float>(x.v[j]);
    return r;
  }
  // 2^n via exponent-field construction; n must be in [-126, 127].
  static F8 Pow2I(I8 n) {
    F8 r;
    for (int j = 0; j < 8; ++j) {
      r.v[j] = std::bit_cast<float>(
          static_cast<uint32_t>(n.v[j] + 127) << 23);
    }
    return r;
  }

  // 8 bf16 words decoded to fp32 (exact: value << 16).
  static F8 LoadBf16(const uint16_t* p) {
    F8 r;
    for (int j = 0; j < 8; ++j) {
      r.v[j] = std::bit_cast<float>(static_cast<uint32_t>(p[j]) << 16);
    }
    return r;
  }
  // |x| via sign-bit clear (so Abs(-0.0) == +0.0 and NaN keeps its
  // payload), matching andps with the 0x7FFFFFFF mask.
  static F8 Abs(F8 x) {
    F8 r;
    for (int j = 0; j < 8; ++j) {
      r.v[j] = std::bit_cast<float>(std::bit_cast<uint32_t>(x.v[j]) &
                                    0x7FFFFFFFu);
    }
    return r;
  }

  static D8 DZero() {
    D8 r;
    for (int j = 0; j < 8; ++j) r.v[j] = 0.0;
    return r;
  }
  static D8 AddWiden(D8 acc, F8 x) {
    for (int j = 0; j < 8; ++j) acc.v[j] += static_cast<double>(x.v[j]);
    return acc;
  }
  static D8 AddSqWiden(D8 acc, F8 x) {
    for (int j = 0; j < 8; ++j) {
      const double xd = static_cast<double>(x.v[j]);
      acc.v[j] += xd * xd;
    }
    return acc;
  }

  // Canonical fold: t[j] = lane[j] + lane[j+4], s = (t0+t2) + (t1+t3).
  static double ReduceD(D8 a) {
    const double t0 = a.v[0] + a.v[4];
    const double t1 = a.v[1] + a.v[5];
    const double t2 = a.v[2] + a.v[6];
    const double t3 = a.v[3] + a.v[7];
    return (t0 + t2) + (t1 + t3);
  }
  static float ReduceAdd(F8 a) {
    const float t0 = a.v[0] + a.v[4];
    const float t1 = a.v[1] + a.v[5];
    const float t2 = a.v[2] + a.v[6];
    const float t3 = a.v[3] + a.v[7];
    return (t0 + t2) + (t1 + t3);
  }
  static float ReduceMax(F8 a) {
    const float t0 = MaxLane(a.v[0], a.v[4]);
    const float t1 = MaxLane(a.v[1], a.v[5]);
    const float t2 = MaxLane(a.v[2], a.v[6]);
    const float t3 = MaxLane(a.v[3], a.v[7]);
    return MaxLane(MaxLane(t0, t2), MaxLane(t1, t3));
  }

 private:
  static float MaskLane(bool cond) {
    return std::bit_cast<float>(cond ? 0xFFFFFFFFu : 0u);
  }
  static float MaxLane(float a, float b) { return a > b ? a : b; }
};

}  // namespace tensor
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_SIMD_SCALAR_H_
