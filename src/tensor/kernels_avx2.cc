// AVX2 backend. This TU (alone) is compiled with -mavx2; it is only
// dispatched to when util::CpuFeatures reports AVX2 at runtime, so no AVX2
// instruction executes on older hosts. Deliberately no -mfma: the bitwise
// contract mandates separately-rounded mul+add (see simd_avx2.h).

#include "tensor/kernel_tables.h"

#if CT_KERNEL_X86

#include "tensor/kernels_generic.h"

#if defined(__AVX2__)
#include "tensor/simd_avx2.h"
#else
// The toolchain could not build this TU with AVX2 enabled; keep the symbol
// linkable via the (bitwise identical) SSE2 lanes. Dispatch still reports
// kAvx2, so callers see the same behavior minus the speedup.
#include "tensor/simd_sse2.h"
#endif

namespace contratopic {
namespace tensor {

const KernelTable& Avx2KernelTable() {
#if defined(__AVX2__)
  static const KernelTable table =
      generic::MakeTable<Avx2Ops>(KernelBackendKind::kAvx2);
#else
  static const KernelTable table =
      generic::MakeTable<Sse2Ops>(KernelBackendKind::kAvx2);
#endif
  return table;
}

}  // namespace tensor
}  // namespace contratopic

#endif  // CT_KERNEL_X86
