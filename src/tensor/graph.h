#ifndef CONTRATOPIC_TENSOR_GRAPH_H_
#define CONTRATOPIC_TENSOR_GRAPH_H_

// Graph-compiled execution engine (DESIGN.md §14).
//
// With a GraphSession installed on a thread, every autodiff op records a
// pending IR node (shape inferred up front, ForwardFn deferred) instead of
// executing eagerly. Demanding any value (Var::value(), Backward's scalar
// check) forces the session's pending prefix up to that node, in recording
// order -- exactly the order the tape engine would have executed -- so the
// two engines agree bit for bit.
//
// On top of deferred execution the session layers:
//
//   * Segment plans + fusion. Each forced segment is fingerprinted by a
//     structural signature (op kinds, shapes, parent wiring, external-ref
//     bits). A plan maps the signature to a copy-elision bitmap: a node
//     whose forward is copy-parent0-then-transform steals its parent's
//     buffer and transforms in place when legality holds (single use, no
//     external Var handles, no backward reads of the elided value). Plans
//     compile once per step shape and hit the cache on every later step.
//
//   * A pooled activation arena. The session installs a thread-local
//     BufferPool (tensor/arena.h) so op outputs, gradients, and backward
//     temporaries recycle buffers instead of hitting the heap; liveness is
//     tracked by the tensors themselves (release-on-destruction, plus
//     eager gradient release in Backward), which is a linear scan of the
//     fixed execution schedule.
//
//   * A hoist cache for loop-invariant subgraphs. Chains rooted only in
//     MarkInvariant leaves are keyed by a structural invariant key and
//     memoized across steps (e.g. frozen `rho` products), with version
//     bumps on mutable_value invalidating stale entries.
//
// Sessions are strictly thread-local and single-threaded: the training
// loop installs one on its own thread; pool workers see no session and
// keep executing eagerly (which is bitwise-identical anyway).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "tensor/arena.h"
#include "tensor/autodiff.h"
#include "tensor/tensor.h"

namespace contratopic {
namespace graph {

using autodiff::ForwardFn;
using autodiff::Node;
using autodiff::NodePtr;
using autodiff::OpTraits;
using tensor::Tensor;

class GraphSession;

// Deferred forward of one recorded node.
struct PendingOp {
  ForwardFn forward;
  const OpTraits* traits = nullptr;
  // Nonzero when the op is memoizable given invariant inputs (a hash of
  // the op kind and its scalar attributes). Zero for ops with
  // non-hashable attributes (masks, index lists).
  uint64_t attr_key = 0;
  uint64_t seq = 0;
  GraphSession* owner = nullptr;
};

// Counters for one session; published process-wide at session destruction
// (LastSessionStats) so benches can report them after Train() returns.
struct ExecStats {
  uint64_t nodes_recorded = 0;
  uint64_t nodes_executed = 0;
  uint64_t ops_fused = 0;
  uint64_t segments_executed = 0;
  uint64_t plans_compiled = 0;
  uint64_t plan_hits = 0;
  uint64_t hoist_hits = 0;
  uint64_t hoist_misses = 0;
  uint64_t arena_hits = 0;    // pooled buffer reuses
  uint64_t arena_misses = 0;  // pool-path heap allocations
  size_t peak_arena_bytes = 0;
};

// The most recently compiled/fetched segment plan, exposed so tests can
// assert plan determinism across sessions.
struct SegmentPlan {
  uint64_t signature = 0;
  std::vector<uint8_t> fuse_with_parent0;
};

class GraphSession {
 public:
  // When `enabled` is false the session is inert (tape behavior); this
  // lets call sites install one unconditionally and select the engine via
  // the flag (tensor::ActiveExecEngine() == ExecEngine::kGraph).
  explicit GraphSession(bool enabled);
  ~GraphSession();
  GraphSession(const GraphSession&) = delete;
  GraphSession& operator=(const GraphSession&) = delete;

  // The session recording on the current thread (null under the tape
  // engine or on pool workers).
  static GraphSession* Active();

  bool enabled() const { return enabled_; }
  const ExecStats& stats() const { return stats_; }
  const SegmentPlan& last_plan() const { return last_plan_; }
  const tensor::BufferPool& arena() const { return pool_; }

  // Records a node carrying a PendingOp (called by autodiff::MakeNode).
  void Record(const NodePtr& node);
  // Executes the pending prefix up to and including `node`.
  void Force(Node* node);
  // Executes everything still pending.
  void FlushAll();

 private:
  uint64_t InvariantKeyFor(const Node& node, uint64_t attr_key) const;
  void ExecuteSegment(size_t count);
  const std::vector<uint8_t>& PlanForSegment(size_t count);

  bool enabled_;
  GraphSession* prev_session_ = nullptr;
  tensor::BufferPool pool_;
  tensor::BufferPool* prev_pool_ = nullptr;

  std::deque<NodePtr> pending_;
  uint64_t next_seq_ = 0;
  uint64_t front_seq_ = 0;

  std::unordered_map<uint64_t, std::vector<uint8_t>> plan_cache_;
  std::unordered_map<uint64_t, Tensor> hoist_cache_;
  SegmentPlan last_plan_;
  ExecStats stats_;

  // Scratch reused across Force calls (plan computation).
  std::unordered_map<const Node*, int> use_counts_;
};

// Stats of the most recently destroyed session in this process (the bench
// reads these after a training run completes).
ExecStats LastSessionStats();

}  // namespace graph
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_GRAPH_H_
