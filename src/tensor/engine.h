#ifndef CONTRATOPIC_TENSOR_ENGINE_H_
#define CONTRATOPIC_TENSOR_ENGINE_H_

// Execution-engine selection for the autodiff layer (DESIGN.md §14).
//
// Two engines execute the same op graph:
//
//   tape   -- the original define-by-run engine: every op runs its forward
//             at record time and allocates a fresh output tensor.
//   graph  -- the compiled engine: ops are recorded as pending IR nodes and
//             executed in recording order when a value is demanded, with
//             copy-elision fusion, a pooled activation arena, and
//             memoization of loop-invariant subgraphs (tensor/graph.h).
//
// The two engines are bitwise-identical by construction: they share the
// per-op forward/backward closures and differ only in *when* forwards run
// and *which buffer* they write into (see DESIGN.md §14.4). Selection
// mirrors the kernel-backend machinery (tensor/backend.h):
// CT_EXEC_ENGINE={tape,graph} picks the startup engine (default tape);
// SetExecEngine / ScopedExecEngine switch at runtime for A/B tests.

#include <string>

namespace contratopic {
namespace tensor {

enum class ExecEngine { kTape, kGraph };

// The engine new training loops / sessions consult. Resolved once at
// startup from CT_EXEC_ENGINE, then overridable via SetExecEngine.
ExecEngine ActiveExecEngine();

// Makes `engine` the active engine. Takes effect for sessions created
// afterwards; call between training runs, not mid-step.
void SetExecEngine(ExecEngine engine);

const char* ExecEngineName(ExecEngine engine);

// Parses "tape"/"graph". Returns false on an unknown name.
bool ParseExecEngineName(const std::string& name, ExecEngine* engine);

// RAII engine switch for tests and benches.
class ScopedExecEngine {
 public:
  explicit ScopedExecEngine(ExecEngine engine);
  ~ScopedExecEngine();
  ScopedExecEngine(const ScopedExecEngine&) = delete;
  ScopedExecEngine& operator=(const ScopedExecEngine&) = delete;

 private:
  ExecEngine prev_;
};

}  // namespace tensor
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_ENGINE_H_
