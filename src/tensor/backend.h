#ifndef CONTRATOPIC_TENSOR_BACKEND_H_
#define CONTRATOPIC_TENSOR_BACKEND_H_

// Runtime-dispatched SIMD kernel backends (DESIGN.md §12).
//
// The dense kernels in tensor/kernels.cc bottom out in the span-level
// micro-kernels declared here as a KernelTable of function pointers. Three
// tables exist: a scalar reference (always compiled, never auto-vectorized),
// an SSE2 table, and an AVX2 table; the SIMD tables are only compiled on
// x86 and only selectable when util::CpuFeatures reports the instruction
// set.
//
// The bitwise contract: every table computes the *same canonical result*,
// bit for bit. Reductions (dot products, softmax/logsumexp sums, row sums)
// follow a mandated canonical order -- 8 accumulator lanes where lane j
// holds elements congruent to j mod 8 (tails padded with the reduction
// identity), folded by the fixed tree
//
//   t[j] = lane[j] + lane[j+4]   (j = 0..3)
//   s    = (t[0] + t[2]) + (t[1] + t[3])
//
// which the scalar table emulates with 8-element arrays, SSE2 with two
// __m128, and AVX2 with one __m256. Transcendentals use a shared
// polynomial (CanonicalExpf) whose per-lane instruction sequence is
// identical in every table, and FMA contraction is disabled throughout
// (-ffp-contract=off): per-lane IEEE ops are deterministic, so all
// backends agree bitwise, and the thread-count invariance of PR 1 extends
// to vector width.
//
// One carve-out: NaN payload and sign are unspecified. When two distinct
// NaNs meet in an add/mul, x86 propagates the destination-register
// operand, which the compiler chooses freely for scalar code; any NaN is
// therefore considered equal to any NaN. NaN *placement* — which elements
// are NaN — is still exact.
//
// Backend selection: CT_KERNEL_BACKEND={auto,scalar,sse2,avx2} in the
// environment picks the startup backend (auto = best supported);
// SetKernelBackend / ScopedKernelBackend switch at runtime for A/B tests.
//
// Mixed-precision serving kernels (DESIGN.md §15) live in the same tables
// and obey the same cross-backend bitwise rule, by two different routes:
//   * int8 kernels are exact integer arithmetic, so any evaluation order
//     (pmaddwd pair sums, 32-wide SIMD blocks) produces the same integer;
//   * bf16 kernels accumulate in fp32 through the identical canonical
//     8-lane tree as `dot`, and the bf16 codec itself is exact integer
//     bit manipulation (round-to-nearest-even truncation).
// The precision *contract* relative to fp32 is a documented tolerance, not
// bit equality -- but for a fixed precision, every backend and thread
// count still agrees bit for bit.

#include <cstdint>
#include <string>
#include <vector>

namespace contratopic {
namespace tensor {

// Elementwise binary operation selector, shared by the broadcast kernels
// and the backend tables.
enum class BinaryOp { kAdd, kSub, kMul, kDiv };

enum class KernelBackendKind { kScalar, kSse2, kAvx2 };

// Span-level micro-kernels. Every function is a pure computation over
// contiguous float spans; parallel chunking stays in tensor/kernels.cc so
// thread-grid determinism and backend dispatch remain orthogonal.
struct KernelTable {
  const char* name;
  KernelBackendKind kind;

  // Canonical-order dot product over n elements.
  float (*dot)(const float* a, const float* b, int64_t n);
  // Four canonical dots sharing one pass over `a` (MatMul register
  // blocking). out[i] == dot(a, b_i, n) bitwise.
  void (*dot4)(const float* a, const float* b0, const float* b1,
               const float* b2, const float* b3, int64_t n, float out[4]);
  // In-place stabilized softmax of one row. A row whose max is -inf (all
  // lanes -inf, or empty mask upstream) becomes the uniform distribution.
  void (*softmax_row)(float* row, int64_t n);
  // In-place stabilized log-softmax of one row.
  void (*log_softmax_row)(float* row, int64_t n);
  // log(sum_c mask[c] * exp(row[c])) with the -1e30 empty-row sentinel of
  // LogSumExpRows; mask may be null (all ones).
  float (*logsumexp_row)(const float* row, const float* mask, int64_t n);
  // Canonical double-lane row reductions.
  double (*row_sum)(const float* row, int64_t n);
  double (*row_sumsq)(const float* row, int64_t n);  // sum of (double)x^2
  // Elementwise span ops (per-element, no reduction).
  void (*scale)(float* d, int64_t n, float factor);            // d *= f
  void (*axpy)(float* d, const float* s, int64_t n, float f);  // d += f*s
  void (*add)(float* d, const float* s, int64_t n);            // d += s
  void (*binary)(BinaryOp op, const float* a, const float* b, float* out,
                 int64_t n);
  void (*binary_scalar)(BinaryOp op, const float* a, float b, float* out,
                        int64_t n);
  // One-value canonical exp (reference hook for accuracy tests).
  float (*expf1)(float x);

  // --- Mixed-precision serving kernels (DESIGN.md §15) -------------------
  // fp32 -> bf16 with round-to-nearest-even (NaN quieted, never turned
  // into inf); pure integer math, bitwise identical in every backend.
  void (*bf16_encode)(const float* src, uint16_t* dst, int64_t n);
  // bf16 -> fp32 (exact: a left shift into the high half).
  void (*bf16_decode)(const uint16_t* src, float* dst, int64_t n);
  // Canonical-order dot of an fp32 span against a bf16 span, accumulated
  // in fp32 through the same 8-lane tree as `dot`.
  float (*dot_bf16)(const float* a, const uint16_t* b, int64_t n);
  // Four bf16 dots sharing one pass over `a` (register blocking).
  void (*dot4_bf16)(const float* a, const uint16_t* b0, const uint16_t* b1,
                    const uint16_t* b2, const uint16_t* b3, int64_t n,
                    float out[4]);
  // max_i |row[i]|; 0 for empty spans. -0.0 maps to +0.0. NaN lanes are
  // dropped by the max (maxps semantics), deterministically.
  float (*row_absmax)(const float* row, int64_t n);
  // Symmetric int8 quantization: round-to-nearest-even of src[i] *
  // inv_scale, saturated to [-127, 127]. NaN and out-of-range inputs take
  // the cvtps2dq path (INT32_MIN) and saturate to -127. Returns true when
  // every emitted code is non-negative (the [0, 127] domain the *_i8u
  // dots accept) -- free to compute, and it lets the int8 matmul take
  // the cheaper unsigned path for non-negative activations such as
  // normalized bag-of-words rows.
  bool (*quantize_i8)(const float* src, int8_t* dst, int64_t n,
                      float inv_scale);
  // Exact integer dot product (the int8 serving matmul core). Operands
  // are quantized codes in [-127, 127]; -128 is outside the domain
  // (quantize_i8 never emits it, and the AVX2 abs/sign form relies on
  // the symmetric range).
  int64_t (*dot_i8)(const int8_t* a, const int8_t* b, int64_t n);
  // Four int8 dots against one activation span.
  void (*dot4_i8)(const int8_t* a, const int8_t* b0, const int8_t* b1,
                  const int8_t* b2, const int8_t* b3, int64_t n,
                  int64_t out[4]);
  // Same dots with `a` restricted to [0, 127] (quantize_i8 returned
  // true). Exact like dot_i8, so results are bitwise identical to it;
  // the narrower domain lets AVX2 feed vpmaddubsw directly, with no
  // abs/sign fixup per weight row.
  int64_t (*dot_i8u)(const int8_t* a, const int8_t* b, int64_t n);
  void (*dot4_i8u)(const int8_t* a, const int8_t* b0, const int8_t* b1,
                   const int8_t* b2, const int8_t* b3, int64_t n,
                   int64_t out[4]);
};

// The table kernels.cc dispatches through. Resolved once at startup from
// CT_KERNEL_BACKEND (or the best supported backend), then overridable via
// SetKernelBackend.
const KernelTable& ActiveKernels();

// True when `kind` is compiled in and the host CPU supports it.
bool BackendSupported(KernelBackendKind kind);

// Supported backends, scalar first, fastest last.
std::vector<KernelBackendKind> SupportedBackends();

// Best supported backend (the `auto` choice).
KernelBackendKind BestSupportedBackend();

// Table for `kind`; CHECK-fails when unsupported.
const KernelTable& TableFor(KernelBackendKind kind);

// Makes `kind` the active backend (CHECK-fails when unsupported). Not
// thread-safe against in-flight kernels; call between parallel regions.
void SetKernelBackend(KernelBackendKind kind);

const char* KernelBackendName(KernelBackendKind kind);

// Parses "scalar"/"sse2"/"avx2" ("auto" -> best supported). Returns false
// on an unknown name.
bool ParseKernelBackendName(const std::string& name, KernelBackendKind* kind);

// RAII backend switch for tests and benches.
class ScopedKernelBackend {
 public:
  explicit ScopedKernelBackend(KernelBackendKind kind);
  ~ScopedKernelBackend();
  ScopedKernelBackend(const ScopedKernelBackend&) = delete;
  ScopedKernelBackend& operator=(const ScopedKernelBackend&) = delete;

 private:
  KernelBackendKind prev_;
};

// The canonical polynomial exp shared by every backend (tests compare it
// against std::exp for the documented ULP bound). Overflows to +inf above
// 88.3763, flushes to zero below -87.3365, and passes NaN through.
float CanonicalExpf(float x);

}  // namespace tensor
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_BACKEND_H_
