#ifndef CONTRATOPIC_TENSOR_GRAD_CHECK_H_
#define CONTRATOPIC_TENSOR_GRAD_CHECK_H_

// Numerical gradient checking used by the autodiff unit tests: compares the
// analytic gradient of a scalar-valued function against central finite
// differences.

#include <functional>

#include "tensor/autodiff.h"

namespace contratopic {
namespace tensor {

struct GradCheckResult {
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
  bool ok = false;
};

// `fn` maps the leaf Var (rebuilt from `input` each call) to a scalar Var.
// Checks d fn / d input at every element.
GradCheckResult CheckGradient(
    const std::function<autodiff::Var(const autodiff::Var&)>& fn,
    const Tensor& input, float epsilon = 1e-3f, float tolerance = 5e-2f);

}  // namespace tensor
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_GRAD_CHECK_H_
