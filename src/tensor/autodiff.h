#ifndef CONTRATOPIC_TENSOR_AUTODIFF_H_
#define CONTRATOPIC_TENSOR_AUTODIFF_H_

// Define-by-run reverse-mode automatic differentiation over 2-D Tensors.
// Each op builds a Node that remembers its parents, its output shape
// (inferred at record time), and a pair of closures: a ForwardFn that
// materializes the value and a backward_fn that pushes gradients to the
// parents. Backward() runs a reverse topological sweep from a scalar loss.
// This is the substrate all neural topic models in this repo train on (the
// paper's models are PyTorch VAEs; see DESIGN.md §2).
//
// Two execution engines share this op set (tensor/engine.h, DESIGN.md §14):
//
//   tape   -- every ForwardFn runs immediately at record time (the original
//             eager behavior).
//   graph  -- ops are recorded as pending IR nodes; a GraphSession
//             (tensor/graph.h) executes them in recording order when a
//             value is demanded, eliding copies via fusion and recycling
//             buffers through a pooled arena.
//
// Because both engines run the *same* ForwardFn closures over the same
// parent values in the same order, they are bitwise-identical by
// construction.
//
// Typical use:
//   Var w = Var::Leaf(Tensor::GlorotUniform(10, 4, rng),
//                     /*requires_grad=*/true);
//   Var x = Var::Constant(batch);
//   Var loss = MeanAll(Square(Sub(MatMul(x, w), targets)));
//   Backward(loss);
//   // w.grad() now holds dloss/dw.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace contratopic {

namespace graph {
struct PendingOp;
}  // namespace graph

namespace autodiff {

using tensor::Tensor;

class Node;
using NodePtr = std::shared_ptr<Node>;

// Materializes a node's value into *out, reading parent values through the
// node. `*out` is normally empty (the closure copies or allocates); the
// graph engine's fusion pass may instead pre-seed *out with the first
// parent's buffer, in which case the closure transforms it in place --
// same kernels, same bits, one copy fewer.
using ForwardFn = std::function<void(Node*, Tensor*)>;

// Static per-op metadata driving the graph engine's fusion legality rules
// (DESIGN.md §14.2). One instance per op kind, with static storage.
struct OpTraits {
  const char* name;
  // backward_fn reads this node's own value (e.g. Exp, SoftmaxRows).
  bool backward_needs_value;
  // Bit i set: backward_fn reads parents[i]->value (e.g. Mul needs both).
  uint32_t backward_needs_parents;
  // ForwardFn is copy-parent0-then-transform, so the copy can be elided by
  // handing it parent0's buffer directly.
  bool can_run_in_place;
};

// One vertex of the computation graph.
class Node {
 public:
  Node();
  ~Node();  // Out of line: PendingOp is incomplete here.
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Tensor value;
  Tensor grad;  // allocated lazily by AccumGrad
  bool requires_grad = false;
  std::vector<NodePtr> parents;
  // Distributes this node's grad into parents' grads. Null for leaves.
  std::function<void(Node*)> backward_fn;

  // Output shape, inferred at record time. Authoritative even when `value`
  // is still pending or was moved into a fused consumer: every shape query
  // (Var::rows/cols, AccumGrad, backward closures) reads these fields.
  int64_t rows = 0;
  int64_t cols = 0;

  // Loop-invariant tracking for the graph engine's hoist cache. Leaves
  // opted in via MarkInvariant get a process-unique uid; `version` bumps on
  // every mutable_value() access so stale cache keys never match. An op
  // node's invariant_key is nonzero iff its result is a pure function of
  // invariant inputs (computed at record time, persisted so downstream
  // records can extend the chain).
  uint64_t leaf_uid = 0;
  uint64_t version = 0;
  uint64_t invariant_key = 0;

  // Non-null while this node is recorded in a GraphSession but its forward
  // has not executed yet. Always null under the tape engine.
  std::unique_ptr<graph::PendingOp> pending;

  void AccumGrad(const Tensor& g);
};

// Executes the owning session's pending prefix up to and including `node`
// (tensor/graph.cc). CHECK-fails if `node` has no pending op.
void ForcePending(Node* node);

// Value-semantics handle to a Node.
class Var {
 public:
  Var() = default;
  explicit Var(NodePtr node) : node_(std::move(node)) {}

  // Trainable or frozen leaf.
  static Var Leaf(Tensor value, bool requires_grad);
  // Non-differentiable input (data batches, masks, noise).
  static Var Constant(Tensor value) { return Leaf(std::move(value), false); }

  bool defined() const { return node_ != nullptr; }
  // Demand the value: under the graph engine this forces the pending
  // execution prefix (in recording order, so results match the tape).
  const Tensor& value() const {
    if (node_->pending != nullptr) ForcePending(node_.get());
    return node_->value;
  }
  Tensor& mutable_value() {
    if (node_->pending != nullptr) ForcePending(node_.get());
    ++node_->version;  // Invalidate invariant-cache entries keyed on us.
    return node_->value;
  }
  const Tensor& grad() const { return node_->grad; }
  bool requires_grad() const { return node_->requires_grad; }
  void ZeroGrad();
  const NodePtr& node() const { return node_; }

  int64_t rows() const { return node_->rows; }
  int64_t cols() const { return node_->cols; }

 private:
  NodePtr node_;
};

// Declares a frozen leaf (requires_grad == false) loop-invariant, making
// op chains over it eligible for the graph engine's hoist cache (e.g. the
// frozen `rho` embedding products). No effect under the tape engine.
void MarkInvariant(const Var& leaf);

// Runs reverse-mode accumulation from `loss` (must be 1x1). Gradients
// accumulate into every reachable leaf with requires_grad. Under an active
// GraphSession, intermediate (non-leaf) gradients are released back to the
// arena as soon as their backward_fn has consumed them.
void Backward(const Var& loss);

// Clears every gradient reachable from `root`, intermediates and leaves
// alike. Multi-objective training runs several Backward sweeps over one
// shared graph; under the tape engine intermediate gradients survive a
// sweep, so each objective's sweep must be wiped before the next one
// starts or the shared subgraph would re-push stale gradients.
void ClearGraphGrads(const Var& root);

// ---------------------------------------------------------------------------
// Differentiable ops. All return fresh Vars; inputs are never modified.
// ---------------------------------------------------------------------------

// Elementwise (same shape).
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var Div(const Var& a, const Var& b);

// Scalar broadcast.
Var AddScalar(const Var& a, float s);
Var MulScalar(const Var& a, float s);
Var Neg(const Var& a);

// op(A) @ op(B) with optional transposes.
Var MatMul(const Var& a, const Var& b, bool trans_a = false,
           bool trans_b = false);

// A^T as its own node (for broadcast plumbing; matmuls should prefer the
// transpose flags above).
Var Transpose(const Var& a);

// Elementwise nonlinearities.
Var Exp(const Var& a);
// log(x + eps); eps guards against log(0) for probability inputs.
Var Log(const Var& a, float eps = 1e-12f);
Var Square(const Var& a);
Var Sqrt(const Var& a, float eps = 1e-12f);
// 1/sqrt(x + eps).
Var Rsqrt(const Var& a, float eps = 1e-12f);
Var Relu(const Var& a);
Var Selu(const Var& a);
Var Softplus(const Var& a);
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);

// Row-wise softmax / log-softmax.
Var SoftmaxRows(const Var& a);
Var LogSoftmaxRows(const Var& a);

// out[r,0] = log(sum_c mask[r,c] * exp(a[r,c])). Mask is a constant 0/1
// tensor; used for contrastive losses (positives/denominator masks).
Var MaskedLogSumExpRows(const Var& a, const Tensor& mask);
// Unmasked variant.
Var LogSumExpRows(const Var& a);

// Reductions.
Var SumAll(const Var& a);   // -> 1x1
Var MeanAll(const Var& a);  // -> 1x1
Var RowSum(const Var& a);   // -> rows x 1
Var ColSum(const Var& a);   // -> 1 x cols
Var ColMean(const Var& a);  // -> 1 x cols

// Broadcast a column (rows x 1) or row (1 x cols) against a matrix.
Var BroadcastColAdd(const Var& a, const Var& col);
Var BroadcastColSub(const Var& a, const Var& col);
Var BroadcastColMul(const Var& a, const Var& col);
Var BroadcastColDiv(const Var& a, const Var& col);
Var BroadcastRowAdd(const Var& a, const Var& row);
Var BroadcastRowSub(const Var& a, const Var& row);
Var BroadcastRowMul(const Var& a, const Var& row);
Var BroadcastRowDiv(const Var& a, const Var& row);

// Rows scaled to unit L2 norm.
Var RowL2Normalize(const Var& a, float eps = 1e-12f);

// Stacks inputs vertically; all must share the column count.
Var ConcatRows(const std::vector<Var>& parts);

// Gathers columns by index (duplicates allowed); gradient scatters back.
Var SelectColumns(const Var& a, const std::vector<int>& indices);

// Gathers rows by index (duplicates allowed) -- TSCTM's quantization-index
// anchor lookup. The gradient scatter-adds back in serial gather order, so
// repeated indices accumulate deterministically at any thread count.
Var GatherRows(const Var& a, const std::vector<int>& indices);

// Multiplies by a constant 0/1 (or scaled) mask; used for dropout.
Var ApplyMask(const Var& a, const Tensor& mask);

}  // namespace autodiff
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_AUTODIFF_H_
