#ifndef CONTRATOPIC_TENSOR_AUTODIFF_H_
#define CONTRATOPIC_TENSOR_AUTODIFF_H_

// Tape-free, define-by-run reverse-mode automatic differentiation over 2-D
// Tensors. Each op builds a Node that remembers its parents and how to push
// gradients back to them; Backward() runs a reverse topological sweep from a
// scalar loss. This is the substrate all neural topic models in this repo
// train on (the paper's models are PyTorch VAEs; see DESIGN.md §2).
//
// Typical use:
//   Var w = Var::Leaf(Tensor::GlorotUniform(10, 4, rng),
//                     /*requires_grad=*/true);
//   Var x = Var::Constant(batch);
//   Var loss = MeanAll(Square(Sub(MatMul(x, w), targets)));
//   Backward(loss);
//   // w.grad() now holds dloss/dw.

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace contratopic {
namespace autodiff {

using tensor::Tensor;

class Node;
using NodePtr = std::shared_ptr<Node>;

// One vertex of the dynamically built computation graph.
class Node {
 public:
  Tensor value;
  Tensor grad;  // allocated lazily by AccumGrad
  bool requires_grad = false;
  std::vector<NodePtr> parents;
  // Distributes this node's grad into parents' grads. Null for leaves.
  std::function<void(Node*)> backward_fn;

  void AccumGrad(const Tensor& g);
};

// Value-semantics handle to a Node.
class Var {
 public:
  Var() = default;
  explicit Var(NodePtr node) : node_(std::move(node)) {}

  // Trainable or frozen leaf.
  static Var Leaf(Tensor value, bool requires_grad);
  // Non-differentiable input (data batches, masks, noise).
  static Var Constant(Tensor value) { return Leaf(std::move(value), false); }

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  const Tensor& grad() const { return node_->grad; }
  bool requires_grad() const { return node_->requires_grad; }
  void ZeroGrad();
  const NodePtr& node() const { return node_; }

  int64_t rows() const { return node_->value.rows(); }
  int64_t cols() const { return node_->value.cols(); }

 private:
  NodePtr node_;
};

// Runs reverse-mode accumulation from `loss` (must be 1x1). Gradients
// accumulate into every reachable leaf with requires_grad.
void Backward(const Var& loss);

// ---------------------------------------------------------------------------
// Differentiable ops. All return fresh Vars; inputs are never modified.
// ---------------------------------------------------------------------------

// Elementwise (same shape).
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var Div(const Var& a, const Var& b);

// Scalar broadcast.
Var AddScalar(const Var& a, float s);
Var MulScalar(const Var& a, float s);
Var Neg(const Var& a);

// op(A) @ op(B) with optional transposes.
Var MatMul(const Var& a, const Var& b, bool trans_a = false,
           bool trans_b = false);

// A^T as its own node (for broadcast plumbing; matmuls should prefer the
// transpose flags above).
Var Transpose(const Var& a);

// Elementwise nonlinearities.
Var Exp(const Var& a);
// log(x + eps); eps guards against log(0) for probability inputs.
Var Log(const Var& a, float eps = 1e-12f);
Var Square(const Var& a);
Var Sqrt(const Var& a, float eps = 1e-12f);
// 1/sqrt(x + eps).
Var Rsqrt(const Var& a, float eps = 1e-12f);
Var Relu(const Var& a);
Var Selu(const Var& a);
Var Softplus(const Var& a);
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);

// Row-wise softmax / log-softmax.
Var SoftmaxRows(const Var& a);
Var LogSoftmaxRows(const Var& a);

// out[r,0] = log(sum_c mask[r,c] * exp(a[r,c])). Mask is a constant 0/1
// tensor; used for contrastive losses (positives/denominator masks).
Var MaskedLogSumExpRows(const Var& a, const Tensor& mask);
// Unmasked variant.
Var LogSumExpRows(const Var& a);

// Reductions.
Var SumAll(const Var& a);   // -> 1x1
Var MeanAll(const Var& a);  // -> 1x1
Var RowSum(const Var& a);   // -> rows x 1
Var ColSum(const Var& a);   // -> 1 x cols
Var ColMean(const Var& a);  // -> 1 x cols

// Broadcast a column (rows x 1) or row (1 x cols) against a matrix.
Var BroadcastColAdd(const Var& a, const Var& col);
Var BroadcastColSub(const Var& a, const Var& col);
Var BroadcastColMul(const Var& a, const Var& col);
Var BroadcastColDiv(const Var& a, const Var& col);
Var BroadcastRowAdd(const Var& a, const Var& row);
Var BroadcastRowSub(const Var& a, const Var& row);
Var BroadcastRowMul(const Var& a, const Var& row);
Var BroadcastRowDiv(const Var& a, const Var& row);

// Rows scaled to unit L2 norm.
Var RowL2Normalize(const Var& a, float eps = 1e-12f);

// Stacks inputs vertically; all must share the column count.
Var ConcatRows(const std::vector<Var>& parts);

// Gathers columns by index (duplicates allowed); gradient scatters back.
Var SelectColumns(const Var& a, const std::vector<int>& indices);

// Multiplies by a constant 0/1 (or scaled) mask; used for dropout.
Var ApplyMask(const Var& a, const Tensor& mask);

}  // namespace autodiff
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_AUTODIFF_H_
