#ifndef CONTRATOPIC_TENSOR_SIMD_AVX2_H_
#define CONTRATOPIC_TENSOR_SIMD_AVX2_H_

// AVX2 implementation of the 8-lane vector-ops concept: an 8-float block
// is one __m256, an 8-double accumulator two __m256d (lanes 0-3 / 4-7).
// Reductions split the register into its 128-bit halves, which reproduces
// the canonical tree of simd_scalar.h exactly. No FMA: the canonical
// result is defined by separately-rounded mul+add, which vfmadd cannot
// produce. The TU that includes this is compiled with -mavx2 and only
// dispatched to when util::CpuFeatures reports AVX2.

#include <immintrin.h>

#include <cmath>
#include <cstdint>

namespace contratopic {
namespace tensor {

struct Avx2Ops {
  static constexpr const char* kName = "avx2";

  using F8 = __m256;
  using I8 = __m256i;
  // a = lanes 0-3, b = lanes 4-7.
  struct D8 {
    __m256d a, b;
  };

  static F8 Load(const float* p) { return _mm256_loadu_ps(p); }
  static void Store(float* p, F8 x) { _mm256_storeu_ps(p, x); }
  static F8 Broadcast(float x) { return _mm256_set1_ps(x); }
  static F8 Zero() { return _mm256_setzero_ps(); }

  static F8 Add(F8 a, F8 b) { return _mm256_add_ps(a, b); }
  static F8 Sub(F8 a, F8 b) { return _mm256_sub_ps(a, b); }
  static F8 Mul(F8 a, F8 b) { return _mm256_mul_ps(a, b); }
  static F8 Div(F8 a, F8 b) { return _mm256_div_ps(a, b); }
  static F8 Max(F8 a, F8 b) { return _mm256_max_ps(a, b); }
  static F8 Min(F8 a, F8 b) { return _mm256_min_ps(a, b); }

  static F8 CmpGt(F8 a, F8 b) { return _mm256_cmp_ps(a, b, _CMP_GT_OQ); }
  static F8 CmpLt(F8 a, F8 b) { return _mm256_cmp_ps(a, b, _CMP_LT_OQ); }
  static F8 CmpUnord(F8 a, F8 b) {
    return _mm256_cmp_ps(a, b, _CMP_UNORD_Q);
  }
  static F8 Blend(F8 mask, F8 t, F8 f) {
    return _mm256_or_ps(_mm256_and_ps(mask, t), _mm256_andnot_ps(mask, f));
  }

  static I8 ToInt(F8 x) { return _mm256_cvtps_epi32(x); }
  static F8 ToFloat(I8 x) { return _mm256_cvtepi32_ps(x); }
  static F8 Pow2I(I8 n) {
    return _mm256_castsi256_ps(_mm256_slli_epi32(
        _mm256_add_epi32(n, _mm256_set1_epi32(127)), 23));
  }

  static F8 LoadBf16(const uint16_t* p) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(v), 16));
  }
  static F8 Abs(F8 x) {
    return _mm256_and_ps(x,
                         _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF)));
  }

  // Exact integer dot via the abs/sign identity
  //   dot(a, b) = dot(|a|, sign(a) * b),
  // which lets vpmaddubsw (unsigned x signed) do 32 int8 products in one
  // instruction instead of four sign-extends plus two vpmaddwd. Quantized
  // codes are clamped to [-127, 127] (backend.h), so |a| fits u8, the
  // sign flip of b cannot overflow, and each vpmaddubsw pair sum is at
  // most 2 * 127^2 = 32258 < 32767 -- no i16 saturation. vpmaddwd against
  // ones widens exactly to i32; lanes drain into the wide total every
  // 32768 elements (1024 adds of <= 4 * 127^2 per lane, far below i32
  // overflow). Exactness makes the order irrelevant, so this is bitwise
  // identical to the scalar loop.
  static __m256i MulAddI8(__m256i acc, __m256i abs_a, __m256i va,
                          const int8_t* b) {
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    const __m256i prod =
        _mm256_maddubs_epi16(abs_a, _mm256_sign_epi8(vb, va));
    return _mm256_add_epi32(
        acc, _mm256_madd_epi16(prod, _mm256_set1_epi16(1)));
  }
  static int64_t DrainI8(__m256i acc) {
    int32_t lanes[8];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
    int64_t total = 0;
    for (int j = 0; j < 8; ++j) total += lanes[j];
    return total;
  }

  static int64_t DotI8(const int8_t* a, const int8_t* b, int64_t n) {
    int64_t total = 0;
    int64_t i = 0;
    while (i + 32 <= n) {
      const int64_t stop = i + (((n - i) < 32768) ? (n - i) : 32768);
      __m256i acc = _mm256_setzero_si256();
      for (; i + 32 <= stop; i += 32) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        acc = MulAddI8(acc, _mm256_abs_epi8(va), va, b + i);
      }
      total += DrainI8(acc);
    }
    for (; i < n; ++i) {
      total += static_cast<int64_t>(a[i]) * static_cast<int64_t>(b[i]);
    }
    return total;
  }

  // Four dots sharing one pass (and one abs) over the activation span:
  // the matmul inner loop is bound by instruction throughput, not loads,
  // so amortizing the activation work across four weight rows is where
  // the int8 tier's speedup over fp32 comes from.
  static void Dot4I8(const int8_t* a, const int8_t* b0, const int8_t* b1,
                     const int8_t* b2, const int8_t* b3, int64_t n,
                     int64_t out[4]) {
    int64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
    int64_t i = 0;
    while (i + 32 <= n) {
      const int64_t stop = i + (((n - i) < 32768) ? (n - i) : 32768);
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (; i + 32 <= stop; i += 32) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i abs_a = _mm256_abs_epi8(va);
        acc0 = MulAddI8(acc0, abs_a, va, b0 + i);
        acc1 = MulAddI8(acc1, abs_a, va, b1 + i);
        acc2 = MulAddI8(acc2, abs_a, va, b2 + i);
        acc3 = MulAddI8(acc3, abs_a, va, b3 + i);
      }
      t0 += DrainI8(acc0);
      t1 += DrainI8(acc1);
      t2 += DrainI8(acc2);
      t3 += DrainI8(acc3);
    }
    for (; i < n; ++i) {
      const int64_t av = a[i];
      t0 += av * b0[i];
      t1 += av * b1[i];
      t2 += av * b2[i];
      t3 += av * b3[i];
    }
    out[0] = t0;
    out[1] = t1;
    out[2] = t2;
    out[3] = t3;
  }

  // Unsigned-activation variants for codes in [0, 127]: vpmaddubsw takes
  // the activation bytes directly, dropping the vpabsb + per-row vpsignb
  // of the signed form. Same exact integer math, same drain cadence, so
  // the result is bitwise identical to DotI8 on the shared domain.
  static __m256i MulAddI8U(__m256i acc, __m256i va, const int8_t* b) {
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    const __m256i prod = _mm256_maddubs_epi16(va, vb);
    return _mm256_add_epi32(
        acc, _mm256_madd_epi16(prod, _mm256_set1_epi16(1)));
  }

  static int64_t DotI8U(const int8_t* a, const int8_t* b, int64_t n) {
    int64_t total = 0;
    int64_t i = 0;
    while (i + 32 <= n) {
      const int64_t stop = i + (((n - i) < 32768) ? (n - i) : 32768);
      __m256i acc = _mm256_setzero_si256();
      for (; i + 32 <= stop; i += 32) {
        acc = MulAddI8U(
            acc,
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            b + i);
      }
      total += DrainI8(acc);
    }
    for (; i < n; ++i) {
      total += static_cast<int64_t>(a[i]) * static_cast<int64_t>(b[i]);
    }
    return total;
  }

  static void Dot4I8U(const int8_t* a, const int8_t* b0, const int8_t* b1,
                      const int8_t* b2, const int8_t* b3, int64_t n,
                      int64_t out[4]) {
    int64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
    int64_t i = 0;
    while (i + 32 <= n) {
      const int64_t stop = i + (((n - i) < 32768) ? (n - i) : 32768);
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (; i + 32 <= stop; i += 32) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        acc0 = MulAddI8U(acc0, va, b0 + i);
        acc1 = MulAddI8U(acc1, va, b1 + i);
        acc2 = MulAddI8U(acc2, va, b2 + i);
        acc3 = MulAddI8U(acc3, va, b3 + i);
      }
      t0 += DrainI8(acc0);
      t1 += DrainI8(acc1);
      t2 += DrainI8(acc2);
      t3 += DrainI8(acc3);
    }
    for (; i < n; ++i) {
      const int64_t av = a[i];
      t0 += av * b0[i];
      t1 += av * b1[i];
      t2 += av * b2[i];
      t3 += av * b3[i];
    }
    out[0] = t0;
    out[1] = t1;
    out[2] = t2;
    out[3] = t3;
  }

  // Vectorized symmetric quantizer, bit-for-bit the scalar path:
  // vcvtps2dq *is* the semantics the scalar loop emulates (nearest-even,
  // NaN / out-of-range -> INT32_MIN), the i32 clamp to [-127, 127]
  // matches, and the saturating packs are no-ops on already-clamped
  // values. Returns true when every code is non-negative (sign bits of
  // the packed bytes, OR-folded across the span).
  static bool QuantizeI8(const float* src, int8_t* dst, int64_t n,
                         float inv_scale) {
    const __m256 scale = _mm256_set1_ps(inv_scale);
    const __m256i lo = _mm256_set1_epi32(-127);
    const __m256i hi = _mm256_set1_epi32(127);
    const __m256i unshuffle =
        _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    __m256i signs = _mm256_setzero_si256();
    int64_t i = 0;
    for (; i + 32 <= n; i += 32) {
      __m256i q[4];
      for (int j = 0; j < 4; ++j) {
        const __m256i raw = _mm256_cvtps_epi32(
            _mm256_mul_ps(_mm256_loadu_ps(src + i + 8 * j), scale));
        q[j] = _mm256_min_epi32(_mm256_max_epi32(raw, lo), hi);
      }
      // packs interleaves per 128-bit lane; the permute restores source
      // order.
      const __m256i packed = _mm256_permutevar8x32_epi32(
          _mm256_packs_epi16(_mm256_packs_epi32(q[0], q[1]),
                             _mm256_packs_epi32(q[2], q[3])),
          unshuffle);
      signs = _mm256_or_si256(signs, packed);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), packed);
    }
    bool nonneg = _mm256_movemask_epi8(signs) == 0;
    for (; i < n; ++i) {
      const float v = src[i] * inv_scale;
      int32_t q;
      if (v != v || v >= 2147483648.0f || v < -2147483648.0f) {
        q = INT32_MIN;
      } else {
        q = static_cast<int32_t>(std::lrintf(v));
      }
      if (q > 127) q = 127;
      if (q < -127) q = -127;
      nonneg = nonneg && q >= 0;
      dst[i] = static_cast<int8_t>(q);
    }
    return nonneg;
  }

  static D8 DZero() {
    const __m256d z = _mm256_setzero_pd();
    return {z, z};
  }
  static D8 AddWiden(D8 acc, F8 x) {
    acc.a = _mm256_add_pd(acc.a, _mm256_cvtps_pd(Lo(x)));
    acc.b = _mm256_add_pd(acc.b, _mm256_cvtps_pd(Hi(x)));
    return acc;
  }
  static D8 AddSqWiden(D8 acc, F8 x) {
    const __m256d wa = _mm256_cvtps_pd(Lo(x));
    const __m256d wb = _mm256_cvtps_pd(Hi(x));
    acc.a = _mm256_add_pd(acc.a, _mm256_mul_pd(wa, wa));
    acc.b = _mm256_add_pd(acc.b, _mm256_mul_pd(wb, wb));
    return acc;
  }

  static double ReduceD(D8 x) {
    const __m256d t = _mm256_add_pd(x.a, x.b);  // t0 t1 t2 t3
    const __m128d u = _mm_add_pd(_mm256_castpd256_pd128(t),
                                 _mm256_extractf128_pd(t, 1));
    return _mm_cvtsd_f64(_mm_add_sd(u, _mm_unpackhi_pd(u, u)));
  }
  static float ReduceAdd(F8 x) {
    const __m128 t = _mm_add_ps(Lo(x), Hi(x));            // t0 t1 t2 t3
    const __m128 u = _mm_add_ps(t, _mm_movehl_ps(t, t));  // t0+t2, t1+t3
    return _mm_cvtss_f32(
        _mm_add_ss(u, _mm_shuffle_ps(u, u, _MM_SHUFFLE(1, 1, 1, 1))));
  }
  static float ReduceMax(F8 x) {
    const __m128 t = _mm_max_ps(Lo(x), Hi(x));
    const __m128 u = _mm_max_ps(t, _mm_movehl_ps(t, t));
    return _mm_cvtss_f32(
        _mm_max_ss(u, _mm_shuffle_ps(u, u, _MM_SHUFFLE(1, 1, 1, 1))));
  }

 private:
  static __m128 Lo(F8 x) { return _mm256_castps256_ps128(x); }
  static __m128 Hi(F8 x) { return _mm256_extractf128_ps(x, 1); }
};

}  // namespace tensor
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_SIMD_AVX2_H_
