#ifndef CONTRATOPIC_TENSOR_SIMD_AVX2_H_
#define CONTRATOPIC_TENSOR_SIMD_AVX2_H_

// AVX2 implementation of the 8-lane vector-ops concept: an 8-float block
// is one __m256, an 8-double accumulator two __m256d (lanes 0-3 / 4-7).
// Reductions split the register into its 128-bit halves, which reproduces
// the canonical tree of simd_scalar.h exactly. No FMA: the canonical
// result is defined by separately-rounded mul+add, which vfmadd cannot
// produce. The TU that includes this is compiled with -mavx2 and only
// dispatched to when util::CpuFeatures reports AVX2.

#include <immintrin.h>

#include <cstdint>

namespace contratopic {
namespace tensor {

struct Avx2Ops {
  static constexpr const char* kName = "avx2";

  using F8 = __m256;
  using I8 = __m256i;
  // a = lanes 0-3, b = lanes 4-7.
  struct D8 {
    __m256d a, b;
  };

  static F8 Load(const float* p) { return _mm256_loadu_ps(p); }
  static void Store(float* p, F8 x) { _mm256_storeu_ps(p, x); }
  static F8 Broadcast(float x) { return _mm256_set1_ps(x); }
  static F8 Zero() { return _mm256_setzero_ps(); }

  static F8 Add(F8 a, F8 b) { return _mm256_add_ps(a, b); }
  static F8 Sub(F8 a, F8 b) { return _mm256_sub_ps(a, b); }
  static F8 Mul(F8 a, F8 b) { return _mm256_mul_ps(a, b); }
  static F8 Div(F8 a, F8 b) { return _mm256_div_ps(a, b); }
  static F8 Max(F8 a, F8 b) { return _mm256_max_ps(a, b); }
  static F8 Min(F8 a, F8 b) { return _mm256_min_ps(a, b); }

  static F8 CmpGt(F8 a, F8 b) { return _mm256_cmp_ps(a, b, _CMP_GT_OQ); }
  static F8 CmpLt(F8 a, F8 b) { return _mm256_cmp_ps(a, b, _CMP_LT_OQ); }
  static F8 CmpUnord(F8 a, F8 b) {
    return _mm256_cmp_ps(a, b, _CMP_UNORD_Q);
  }
  static F8 Blend(F8 mask, F8 t, F8 f) {
    return _mm256_or_ps(_mm256_and_ps(mask, t), _mm256_andnot_ps(mask, f));
  }

  static I8 ToInt(F8 x) { return _mm256_cvtps_epi32(x); }
  static F8 ToFloat(I8 x) { return _mm256_cvtepi32_ps(x); }
  static F8 Pow2I(I8 n) {
    return _mm256_castsi256_ps(_mm256_slli_epi32(
        _mm256_add_epi32(n, _mm256_set1_epi32(127)), 23));
  }

  static D8 DZero() {
    const __m256d z = _mm256_setzero_pd();
    return {z, z};
  }
  static D8 AddWiden(D8 acc, F8 x) {
    acc.a = _mm256_add_pd(acc.a, _mm256_cvtps_pd(Lo(x)));
    acc.b = _mm256_add_pd(acc.b, _mm256_cvtps_pd(Hi(x)));
    return acc;
  }
  static D8 AddSqWiden(D8 acc, F8 x) {
    const __m256d wa = _mm256_cvtps_pd(Lo(x));
    const __m256d wb = _mm256_cvtps_pd(Hi(x));
    acc.a = _mm256_add_pd(acc.a, _mm256_mul_pd(wa, wa));
    acc.b = _mm256_add_pd(acc.b, _mm256_mul_pd(wb, wb));
    return acc;
  }

  static double ReduceD(D8 x) {
    const __m256d t = _mm256_add_pd(x.a, x.b);  // t0 t1 t2 t3
    const __m128d u = _mm_add_pd(_mm256_castpd256_pd128(t),
                                 _mm256_extractf128_pd(t, 1));
    return _mm_cvtsd_f64(_mm_add_sd(u, _mm_unpackhi_pd(u, u)));
  }
  static float ReduceAdd(F8 x) {
    const __m128 t = _mm_add_ps(Lo(x), Hi(x));            // t0 t1 t2 t3
    const __m128 u = _mm_add_ps(t, _mm_movehl_ps(t, t));  // t0+t2, t1+t3
    return _mm_cvtss_f32(
        _mm_add_ss(u, _mm_shuffle_ps(u, u, _MM_SHUFFLE(1, 1, 1, 1))));
  }
  static float ReduceMax(F8 x) {
    const __m128 t = _mm_max_ps(Lo(x), Hi(x));
    const __m128 u = _mm_max_ps(t, _mm_movehl_ps(t, t));
    return _mm_cvtss_f32(
        _mm_max_ss(u, _mm_shuffle_ps(u, u, _MM_SHUFFLE(1, 1, 1, 1))));
  }

 private:
  static __m128 Lo(F8 x) { return _mm256_castps256_ps128(x); }
  static __m128 Hi(F8 x) { return _mm256_extractf128_ps(x, 1); }
};

}  // namespace tensor
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_SIMD_AVX2_H_
