#include "tensor/graph.h"

#include <mutex>
#include <utility>

#include "tensor/backend.h"
#include "util/logging.h"

namespace contratopic {
namespace graph {

namespace {

thread_local GraphSession* t_session = nullptr;

std::mutex g_last_stats_mu;
ExecStats g_last_stats;

// Retain at most this many hoisted results; on overflow the whole cache is
// cleared (clear-all keeps eviction deterministic and the map tiny).
constexpr size_t kHoistCacheCap = 32;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashStr(const char* s) {
  uint64_t h = kFnvOffset;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*s));
    h *= kFnvPrime;
  }
  return h;
}

// Invariant key of a parent as seen when recording a child: leaves are
// keyed by (uid, version, shape) iff opted in via MarkInvariant; op nodes
// carry the key computed at their own record time (0 when not invariant,
// and 0 for nodes materialized outside any session).
uint64_t ParentInvariantKey(const Node& p) {
  if (!p.parents.empty()) return p.invariant_key;
  if (p.requires_grad || p.leaf_uid == 0) return 0;
  uint64_t h = MixHash(kFnvOffset, p.leaf_uid);
  h = MixHash(h, p.version);
  h = MixHash(h, static_cast<uint64_t>(p.rows));
  h = MixHash(h, static_cast<uint64_t>(p.cols));
  return h != 0 ? h : 1;
}

// The hoist cache is keyed per kernel backend: values are bitwise-equal
// across backends by the kernel contract, but keeping the keys separate
// costs nothing and keeps the cache trivially correct if a test ever
// relaxes that contract.
uint64_t HoistKey(uint64_t invariant_key) {
  return MixHash(invariant_key,
                 static_cast<uint64_t>(tensor::ActiveKernels().kind) + 17);
}

}  // namespace

GraphSession* GraphSession::Active() { return t_session; }

GraphSession::GraphSession(bool enabled) : enabled_(enabled) {
  if (!enabled_) return;
  prev_session_ = t_session;
  t_session = this;
  prev_pool_ = tensor::InstallThreadBufferPool(&pool_);
}

GraphSession::~GraphSession() {
  if (!enabled_) return;
  FlushAll();
  stats_.peak_arena_bytes = pool_.peak_outstanding_bytes();
  stats_.arena_hits = pool_.hits();
  stats_.arena_misses = pool_.misses();
  {
    std::lock_guard<std::mutex> lock(g_last_stats_mu);
    g_last_stats = stats_;
  }
  t_session = prev_session_;
  tensor::InstallThreadBufferPool(prev_pool_);
}

uint64_t GraphSession::InvariantKeyFor(const Node& node,
                                       uint64_t attr_key) const {
  if (attr_key == 0 || node.requires_grad) return 0;
  uint64_t h = MixHash(kFnvOffset, attr_key);
  for (const NodePtr& parent : node.parents) {
    const uint64_t pk = ParentInvariantKey(*parent);
    if (pk == 0) return 0;
    h = MixHash(h, pk);
  }
  return h != 0 ? h : 1;
}

void GraphSession::Record(const NodePtr& node) {
  PendingOp* op = node->pending.get();
  DCHECK(op != nullptr);
  op->seq = next_seq_++;
  op->owner = this;
  node->invariant_key = InvariantKeyFor(*node, op->attr_key);
  pending_.push_back(node);
  ++stats_.nodes_recorded;
}

const std::vector<uint8_t>& GraphSession::PlanForSegment(size_t count) {
  // Parent-use counts within the segment (the whole segment is a pending
  // prefix, so "has a pending op owned by us" == "is in the segment").
  use_counts_.clear();
  for (size_t i = 0; i < count; ++i) {
    for (const NodePtr& parent : pending_[i]->parents) {
      if (parent->pending != nullptr && parent->pending->owner == this) {
        ++use_counts_[parent.get()];
      }
    }
  }
  // A node's value may be read later through a Var handle iff shared_ptr
  // refs beyond the pending list (1) and in-segment parent edges exist.
  auto external_refs = [this](const NodePtr& node) -> long {
    const auto it = use_counts_.find(node.get());
    const long uses = it != use_counts_.end() ? it->second : 0;
    return static_cast<long>(node.use_count()) - uses - 1;
  };

  // Structural signature: op kinds, shapes, scalar-attr keys, parent
  // wiring (in-segment index or out-of-segment shape), and the flags the
  // legality rules depend on. Identical step shapes hash identically, so
  // the plan compiles once and hits the cache every later step.
  uint64_t sig = kFnvOffset;
  for (size_t i = 0; i < count; ++i) {
    const Node* n = pending_[i].get();
    const PendingOp* op = n->pending.get();
    sig = MixHash(sig, HashStr(op->traits->name));
    sig = MixHash(sig, static_cast<uint64_t>(n->rows));
    sig = MixHash(sig, static_cast<uint64_t>(n->cols));
    sig = MixHash(sig, op->attr_key);
    const uint64_t flags = (n->requires_grad ? 1u : 0u) |
                           (n->invariant_key != 0 ? 2u : 0u) |
                           (external_refs(pending_[i]) > 0 ? 4u : 0u);
    sig = MixHash(sig, flags);
    for (const NodePtr& parent : n->parents) {
      if (parent->pending != nullptr && parent->pending->owner == this) {
        sig = MixHash(sig, parent->pending->seq - front_seq_);
      } else {
        sig = MixHash(sig, 0x8000000000000000ull ^
                               (static_cast<uint64_t>(parent->rows) << 20) ^
                               static_cast<uint64_t>(parent->cols));
      }
    }
  }

  auto it = plan_cache_.find(sig);
  if (it != plan_cache_.end()) {
    ++stats_.plan_hits;
    last_plan_.signature = sig;
    last_plan_.fuse_with_parent0 = it->second;
    return it->second;
  }

  // Compile: fuse node i with parents[0] when the forward is
  // copy-then-transform and eliding the copy is unobservable (DESIGN.md
  // §14.2 legality rules).
  std::vector<uint8_t> fuse(count, 0);
  for (size_t i = 0; i < count; ++i) {
    const Node* n = pending_[i].get();
    const PendingOp* op = n->pending.get();
    if (!op->traits->can_run_in_place || n->parents.empty()) continue;
    const NodePtr& p0 = n->parents[0];
    if (p0->pending == nullptr || p0->pending->owner != this) continue;
    const auto uses_it = use_counts_.find(p0.get());
    const long uses = uses_it != use_counts_.end() ? uses_it->second : 0;
    if (uses != 1) continue;                     // value read more than once
    if (external_refs(p0) != 0) continue;        // a Var handle can read it
    if (p0->pending->traits->backward_needs_value) continue;
    if ((op->traits->backward_needs_parents & 1u) != 0) continue;
    if (p0->rows != n->rows || p0->cols != n->cols) continue;
    if (p0->invariant_key != 0 || n->invariant_key != 0) continue;  // hoisted
    fuse[i] = 1;
  }
  ++stats_.plans_compiled;
  auto inserted = plan_cache_.emplace(sig, std::move(fuse));
  last_plan_.signature = sig;
  last_plan_.fuse_with_parent0 = inserted.first->second;
  return inserted.first->second;
}

void GraphSession::ExecuteSegment(size_t count) {
  const std::vector<uint8_t>& fuse = PlanForSegment(count);
  for (size_t i = 0; i < count; ++i) {
    Node* n = pending_[i].get();
    PendingOp* op = n->pending.get();
    bool from_cache = false;
    if (n->invariant_key != 0) {
      const uint64_t key = HoistKey(n->invariant_key);
      auto it = hoist_cache_.find(key);
      if (it != hoist_cache_.end() && it->second.rows() == n->rows &&
          it->second.cols() == n->cols) {
        n->value = it->second;
        ++stats_.hoist_hits;
        from_cache = true;
      }
    }
    if (!from_cache) {
      if (fuse[i] != 0) {
        // Copy elision: hand the forward its parent's buffer; the closure
        // skips the copy (CopyInto sees an empty source) and transforms
        // the same bits in place.
        n->value = std::move(n->parents[0]->value);
        ++stats_.ops_fused;
      }
      op->forward(n, &n->value);
      ++stats_.nodes_executed;
      if (n->invariant_key != 0) {
        ++stats_.hoist_misses;
        if (hoist_cache_.size() >= kHoistCacheCap) hoist_cache_.clear();
        hoist_cache_[HoistKey(n->invariant_key)] = n->value;
      }
    }
    DCHECK_EQ(n->value.rows(), n->rows);
    DCHECK_EQ(n->value.cols(), n->cols);
    n->pending.reset();
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<long>(count));
  front_seq_ += count;
  ++stats_.segments_executed;
}

void GraphSession::Force(Node* node) {
  CHECK(node->pending != nullptr);
  CHECK(node->pending->owner == this);
  const uint64_t seq = node->pending->seq;
  CHECK_GE(seq, front_seq_);
  ExecuteSegment(static_cast<size_t>(seq - front_seq_) + 1);
}

void GraphSession::FlushAll() {
  if (!pending_.empty()) Force(pending_.back().get());
}

ExecStats LastSessionStats() {
  std::lock_guard<std::mutex> lock(g_last_stats_mu);
  return g_last_stats;
}

}  // namespace graph

namespace autodiff {

void ForcePending(Node* node) {
  CHECK(node->pending != nullptr);
  graph::GraphSession* owner = node->pending->owner;
  CHECK(owner != nullptr) << "pending node has no owning session";
  owner->Force(node);
}

}  // namespace autodiff
}  // namespace contratopic
