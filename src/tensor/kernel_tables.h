#ifndef CONTRATOPIC_TENSOR_KERNEL_TABLES_H_
#define CONTRATOPIC_TENSOR_KERNEL_TABLES_H_

// Internal: per-backend KernelTable providers, one TU each so the SIMD
// translation units can carry their own -m<isa> compile flags. Only
// backend.cc and the table TUs include this.

#include "tensor/backend.h"

// The SIMD tables exist only on x86 (the build adds their TUs there); the
// same predicate gates every reference so non-x86 builds fall back to the
// scalar reference cleanly.
#if defined(__x86_64__) || defined(__i386__)
#define CT_KERNEL_X86 1
#else
#define CT_KERNEL_X86 0
#endif

namespace contratopic {
namespace tensor {

const KernelTable& ScalarKernelTable();
#if CT_KERNEL_X86
const KernelTable& Sse2KernelTable();
const KernelTable& Avx2KernelTable();
#endif

}  // namespace tensor
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_KERNEL_TABLES_H_
