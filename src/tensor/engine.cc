#include "tensor/engine.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "util/logging.h"

namespace contratopic {
namespace tensor {

namespace {

constexpr int kUnresolved = -1;

std::atomic<int> g_engine{kUnresolved};

ExecEngine ResolveStartupEngine() {
  const char* env = std::getenv("CT_EXEC_ENGINE");
  const std::string name = env != nullptr ? env : "tape";
  ExecEngine engine;
  CHECK(ParseExecEngineName(name, &engine))
      << "CT_EXEC_ENGINE=" << name << " is not one of tape, graph";
  return engine;
}

}  // namespace

ExecEngine ActiveExecEngine() {
  int engine = g_engine.load(std::memory_order_acquire);
  if (engine == kUnresolved) {
    static std::once_flag once;
    std::call_once(once, [] {
      g_engine.store(static_cast<int>(ResolveStartupEngine()),
                     std::memory_order_release);
    });
    engine = g_engine.load(std::memory_order_acquire);
  }
  return static_cast<ExecEngine>(engine);
}

void SetExecEngine(ExecEngine engine) {
  ActiveExecEngine();  // Resolve first so a later reset cannot race startup.
  g_engine.store(static_cast<int>(engine), std::memory_order_release);
}

const char* ExecEngineName(ExecEngine engine) {
  switch (engine) {
    case ExecEngine::kTape:
      return "tape";
    case ExecEngine::kGraph:
      return "graph";
  }
  return "?";
}

bool ParseExecEngineName(const std::string& name, ExecEngine* engine) {
  if (name == "tape") {
    *engine = ExecEngine::kTape;
    return true;
  }
  if (name == "graph") {
    *engine = ExecEngine::kGraph;
    return true;
  }
  return false;
}

ScopedExecEngine::ScopedExecEngine(ExecEngine engine)
    : prev_(ActiveExecEngine()) {
  SetExecEngine(engine);
}

ScopedExecEngine::~ScopedExecEngine() { SetExecEngine(prev_); }

}  // namespace tensor
}  // namespace contratopic
