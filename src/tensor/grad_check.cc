#include "tensor/grad_check.h"

#include <cmath>

namespace contratopic {
namespace tensor {

using autodiff::Backward;
using autodiff::Var;

GradCheckResult CheckGradient(const std::function<Var(const Var&)>& fn,
                              const Tensor& input, float epsilon,
                              float tolerance) {
  // Analytic gradient.
  Var leaf = Var::Leaf(input, /*requires_grad=*/true);
  Var loss = fn(leaf);
  CHECK_EQ(loss.value().numel(), 1) << "grad check needs a scalar function";
  Backward(loss);
  const Tensor analytic = leaf.grad();

  GradCheckResult result;
  Tensor perturbed = input;
  for (int64_t i = 0; i < input.numel(); ++i) {
    const float original = perturbed.data()[i];
    perturbed.data()[i] = original + epsilon;
    const float f_plus =
        fn(Var::Leaf(perturbed, /*requires_grad=*/false)).value().scalar();
    perturbed.data()[i] = original - epsilon;
    const float f_minus =
        fn(Var::Leaf(perturbed, /*requires_grad=*/false)).value().scalar();
    perturbed.data()[i] = original;

    const float numeric = (f_plus - f_minus) / (2.0f * epsilon);
    const float a = analytic.empty() ? 0.0f : analytic.data()[i];
    const float abs_err = std::fabs(numeric - a);
    const float denom =
        std::max(1.0f, std::max(std::fabs(numeric), std::fabs(a)));
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
  }
  result.ok = result.max_rel_error <= tolerance;
  return result;
}

}  // namespace tensor
}  // namespace contratopic
