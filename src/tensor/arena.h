#ifndef CONTRATOPIC_TENSOR_ARENA_H_
#define CONTRATOPIC_TENSOR_ARENA_H_

// Pooled activation arena for the graph execution engine (DESIGN.md §14.3).
//
// The tape engine allocates a fresh heap buffer for every op output,
// gradient, and backward temporary. The graph engine instead installs a
// thread-local BufferPool for the duration of a training session: Tensor
// buffer acquisition and release route through the installed pool, so after
// the first step every step-shaped buffer is recycled and the steady-state
// heap-allocation count on the training hot path drops to ~zero.
//
// The pool is deliberately single-threaded (no locks): it is installed only
// on the thread that owns the training loop. Pool-thread tensors that are
// destroyed on a worker thread fall back to plain deallocation; worker
// tensors destroyed on the pool thread are adopted. Neither direction
// affects values -- the pool only changes where bytes live, never what is
// computed (buffers are re-zeroed or fully overwritten on acquisition,
// exactly like a fresh std::vector).
//
// Buffers are bucketed by size class: small capacities round up to
// kBufferAlignFloats floats (64 bytes) so equal-shape reuse is exact;
// capacities above kBufferClassLinearLimitFloats round up to the next
// power of two so buffers whose sizes drift step to step (e.g. the
// contrastive term's |candidate-words|^2 kernel gather, which tracks the
// evolving beta) still share a bucket instead of minting a fresh size
// class — and a fresh heap allocation — every step. Worst-case internal
// waste for large buffers is 2x, bounded overall by the retention cap.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace contratopic {
namespace tensor {

// Size-class granularity: capacities are rounded up to multiples of 16
// floats (one cache line) on acquisition...
constexpr size_t kBufferAlignFloats = 16;
// ...until this limit (16 KB), past which classes double (see file
// comment: large drifting shapes must share buckets).
constexpr size_t kBufferClassLinearLimitFloats = 4096;

inline size_t RoundUpToAlign(size_t n) {
  return (n + kBufferAlignFloats - 1) / kBufferAlignFloats *
         kBufferAlignFloats;
}

// The capacity actually reserved for a request of n floats (round up).
inline size_t BufferSizeClass(size_t n) {
  if (n <= kBufferClassLinearLimitFloats) return RoundUpToAlign(n);
  size_t c = kBufferClassLinearLimitFloats;
  while (c < n) c *= 2;
  return c;
}

// Process-global tensor-buffer allocation counters (relaxed atomics).
// heap_allocs counts buffers obtained from the heap; pool_hits counts
// buffers recycled from an installed pool. The bench's >=10x gate compares
// per-step heap_allocs deltas between the tape and graph engines.
struct AllocStats {
  uint64_t heap_allocs = 0;
  uint64_t pool_hits = 0;
};
AllocStats GlobalAllocStats();

class BufferPool {
 public:
  // Stop retaining free buffers past this many bytes (excess is freed).
  static constexpr size_t kDefaultMaxRetainedBytes = size_t{256} << 20;

  explicit BufferPool(size_t max_retained_bytes = kDefaultMaxRetainedBytes)
      : max_retained_bytes_(max_retained_bytes) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // A zero-filled buffer of size n (capacity rounded to the size class) --
  // bitwise-identical semantics to std::vector<float>(n, 0.0f).
  std::vector<float> AcquireZero(size_t n);
  // A buffer holding a copy of src[0, n) -- identical to copying a vector.
  std::vector<float> AcquireCopy(const float* src, size_t n);
  // Returns a buffer to the pool (or frees it past the retention cap).
  void Release(std::vector<float>&& buf);

  // Bytes currently acquired-but-not-released ("live arena") and the peak
  // over the pool's lifetime. Foreign releases clamp at zero.
  size_t outstanding_bytes() const { return outstanding_bytes_; }
  size_t peak_outstanding_bytes() const { return peak_outstanding_bytes_; }
  // Bytes sitting free in the pool.
  size_t retained_bytes() const { return retained_bytes_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  std::vector<float> TakeOrAllocate(size_t n);

  // Free lists keyed by size class (rounded-down capacity in floats).
  std::unordered_map<size_t, std::vector<std::vector<float>>> buckets_;
  size_t max_retained_bytes_;
  size_t retained_bytes_ = 0;
  size_t outstanding_bytes_ = 0;
  size_t peak_outstanding_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

// Installs `pool` as this thread's buffer pool and returns the previous one
// (restore it when done; GraphSession does this RAII-style). Passing null
// uninstalls.
BufferPool* InstallThreadBufferPool(BufferPool* pool);
BufferPool* ThreadBufferPool();

namespace detail {
// Tensor storage hooks (tensor.cc). Route through the installed pool when
// present, otherwise through the heap; both paths bump GlobalAllocStats.
std::vector<float> AcquireBufferZero(size_t n);
std::vector<float> AcquireBufferCopy(const float* src, size_t n);
void ReleaseBuffer(std::vector<float>&& buf);
}  // namespace detail

}  // namespace tensor
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_ARENA_H_
