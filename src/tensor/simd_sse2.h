#ifndef CONTRATOPIC_TENSOR_SIMD_SSE2_H_
#define CONTRATOPIC_TENSOR_SIMD_SSE2_H_

// SSE2 implementation of the 8-lane vector-ops concept: an 8-float block
// is a pair of __m128 (lanes 0-3 / 4-7), an 8-double accumulator four
// __m128d. The canonical reduction tree of simd_scalar.h maps onto
// lane-wise register adds, so every reduction matches the scalar reference
// bit for bit. x86-only; the build system compiles the TU that includes
// this only on x86 hosts.

#include <emmintrin.h>

#include <cstdint>

namespace contratopic {
namespace tensor {

struct Sse2Ops {
  static constexpr const char* kName = "sse2";

  struct F8 {
    __m128 lo, hi;
  };
  struct I8 {
    __m128i lo, hi;
  };
  // d[0]=(lanes 0,1) d[1]=(2,3) d[2]=(4,5) d[3]=(6,7).
  struct D8 {
    __m128d d[4];
  };

  static F8 Load(const float* p) {
    return {_mm_loadu_ps(p), _mm_loadu_ps(p + 4)};
  }
  static void Store(float* p, F8 x) {
    _mm_storeu_ps(p, x.lo);
    _mm_storeu_ps(p + 4, x.hi);
  }
  static F8 Broadcast(float x) {
    const __m128 v = _mm_set1_ps(x);
    return {v, v};
  }
  static F8 Zero() {
    const __m128 v = _mm_setzero_ps();
    return {v, v};
  }

  static F8 Add(F8 a, F8 b) {
    return {_mm_add_ps(a.lo, b.lo), _mm_add_ps(a.hi, b.hi)};
  }
  static F8 Sub(F8 a, F8 b) {
    return {_mm_sub_ps(a.lo, b.lo), _mm_sub_ps(a.hi, b.hi)};
  }
  static F8 Mul(F8 a, F8 b) {
    return {_mm_mul_ps(a.lo, b.lo), _mm_mul_ps(a.hi, b.hi)};
  }
  static F8 Div(F8 a, F8 b) {
    return {_mm_div_ps(a.lo, b.lo), _mm_div_ps(a.hi, b.hi)};
  }
  static F8 Max(F8 a, F8 b) {
    return {_mm_max_ps(a.lo, b.lo), _mm_max_ps(a.hi, b.hi)};
  }
  static F8 Min(F8 a, F8 b) {
    return {_mm_min_ps(a.lo, b.lo), _mm_min_ps(a.hi, b.hi)};
  }

  static F8 CmpGt(F8 a, F8 b) {
    return {_mm_cmpgt_ps(a.lo, b.lo), _mm_cmpgt_ps(a.hi, b.hi)};
  }
  static F8 CmpLt(F8 a, F8 b) {
    return {_mm_cmplt_ps(a.lo, b.lo), _mm_cmplt_ps(a.hi, b.hi)};
  }
  static F8 CmpUnord(F8 a, F8 b) {
    return {_mm_cmpunord_ps(a.lo, b.lo), _mm_cmpunord_ps(a.hi, b.hi)};
  }
  static F8 Blend(F8 mask, F8 t, F8 f) {
    return {_mm_or_ps(_mm_and_ps(mask.lo, t.lo),
                      _mm_andnot_ps(mask.lo, f.lo)),
            _mm_or_ps(_mm_and_ps(mask.hi, t.hi),
                      _mm_andnot_ps(mask.hi, f.hi))};
  }

  static I8 ToInt(F8 x) {
    return {_mm_cvtps_epi32(x.lo), _mm_cvtps_epi32(x.hi)};
  }
  static F8 ToFloat(I8 x) {
    return {_mm_cvtepi32_ps(x.lo), _mm_cvtepi32_ps(x.hi)};
  }
  static F8 Pow2I(I8 n) {
    const __m128i bias = _mm_set1_epi32(127);
    return {_mm_castsi128_ps(_mm_slli_epi32(_mm_add_epi32(n.lo, bias), 23)),
            _mm_castsi128_ps(_mm_slli_epi32(_mm_add_epi32(n.hi, bias), 23))};
  }

  static F8 LoadBf16(const uint16_t* p) {
    // Interleaving zeros below each word is exactly value << 16.
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i z = _mm_setzero_si128();
    return {_mm_castsi128_ps(_mm_unpacklo_epi16(z, v)),
            _mm_castsi128_ps(_mm_unpackhi_epi16(z, v))};
  }
  static F8 Abs(F8 x) {
    const __m128 mask = _mm_castsi128_ps(_mm_set1_epi32(0x7FFFFFFF));
    return {_mm_and_ps(x.lo, mask), _mm_and_ps(x.hi, mask)};
  }

  // Exact integer dot product: sign-extend to i16 (unpack + arithmetic
  // shift; SSE2 has no cvtepi8), pmaddwd pairs into i32 lanes, and drain
  // the lanes into the wide total every block so they cannot overflow
  // (each pmaddwd lane is <= 2 * 127^2; a 32768-element block adds 4096
  // such values per lane, far below 2^31). Integer arithmetic is exact,
  // so this matches the scalar loop bit for bit regardless of order.
  static int64_t DotI8(const int8_t* a, const int8_t* b, int64_t n) {
    int64_t total = 0;
    int64_t i = 0;
    while (i + 16 <= n) {
      const int64_t stop = i + (((n - i) < 32768) ? (n - i) : 32768);
      __m128i acc = _mm_setzero_si128();
      for (; i + 16 <= stop; i += 16) {
        const __m128i va =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
        const __m128i vb =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
        const __m128i a_lo = _mm_srai_epi16(_mm_unpacklo_epi8(va, va), 8);
        const __m128i a_hi = _mm_srai_epi16(_mm_unpackhi_epi8(va, va), 8);
        const __m128i b_lo = _mm_srai_epi16(_mm_unpacklo_epi8(vb, vb), 8);
        const __m128i b_hi = _mm_srai_epi16(_mm_unpackhi_epi8(vb, vb), 8);
        acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, b_lo));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, b_hi));
      }
      int32_t lanes[4];
      _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
      total += static_cast<int64_t>(lanes[0]) + lanes[1] + lanes[2] +
               lanes[3];
    }
    for (; i < n; ++i) {
      total += static_cast<int64_t>(a[i]) * static_cast<int64_t>(b[i]);
    }
    return total;
  }

  static D8 DZero() {
    const __m128d z = _mm_setzero_pd();
    return {{z, z, z, z}};
  }
  static D8 AddWiden(D8 acc, F8 x) {
    acc.d[0] = _mm_add_pd(acc.d[0], _mm_cvtps_pd(x.lo));
    acc.d[1] = _mm_add_pd(acc.d[1], _mm_cvtps_pd(HighPair(x.lo)));
    acc.d[2] = _mm_add_pd(acc.d[2], _mm_cvtps_pd(x.hi));
    acc.d[3] = _mm_add_pd(acc.d[3], _mm_cvtps_pd(HighPair(x.hi)));
    return acc;
  }
  static D8 AddSqWiden(D8 acc, F8 x) {
    const __m128d w0 = _mm_cvtps_pd(x.lo);
    const __m128d w1 = _mm_cvtps_pd(HighPair(x.lo));
    const __m128d w2 = _mm_cvtps_pd(x.hi);
    const __m128d w3 = _mm_cvtps_pd(HighPair(x.hi));
    acc.d[0] = _mm_add_pd(acc.d[0], _mm_mul_pd(w0, w0));
    acc.d[1] = _mm_add_pd(acc.d[1], _mm_mul_pd(w1, w1));
    acc.d[2] = _mm_add_pd(acc.d[2], _mm_mul_pd(w2, w2));
    acc.d[3] = _mm_add_pd(acc.d[3], _mm_mul_pd(w3, w3));
    return acc;
  }

  static double ReduceD(D8 a) {
    // (t0,t1) and (t2,t3) of the canonical tree, then (t0+t2) + (t1+t3).
    const __m128d t01 = _mm_add_pd(a.d[0], a.d[2]);
    const __m128d t23 = _mm_add_pd(a.d[1], a.d[3]);
    const __m128d u = _mm_add_pd(t01, t23);
    return _mm_cvtsd_f64(_mm_add_sd(u, _mm_unpackhi_pd(u, u)));
  }
  static float ReduceAdd(F8 a) {
    const __m128 t = _mm_add_ps(a.lo, a.hi);           // t0 t1 t2 t3
    const __m128 u = _mm_add_ps(t, _mm_movehl_ps(t, t));  // t0+t2, t1+t3
    return _mm_cvtss_f32(
        _mm_add_ss(u, _mm_shuffle_ps(u, u, _MM_SHUFFLE(1, 1, 1, 1))));
  }
  static float ReduceMax(F8 a) {
    const __m128 t = _mm_max_ps(a.lo, a.hi);
    const __m128 u = _mm_max_ps(t, _mm_movehl_ps(t, t));
    return _mm_cvtss_f32(
        _mm_max_ss(u, _mm_shuffle_ps(u, u, _MM_SHUFFLE(1, 1, 1, 1))));
  }

 private:
  // Lanes 2,3 of a __m128 moved into lanes 0,1.
  static __m128 HighPair(__m128 x) { return _mm_movehl_ps(x, x); }
};

}  // namespace tensor
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_SIMD_SSE2_H_
