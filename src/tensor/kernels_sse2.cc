// SSE2 backend (x86 baseline: every x86-64 CPU has it). Compiled without
// extra -m flags on x86-64; kept behind the CpuFeatures probe anyway so
// 32-bit builds without SSE2 never dispatch here.

#include "tensor/kernel_tables.h"

#if CT_KERNEL_X86

#include "tensor/kernels_generic.h"

#if defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__)
#define CT_SSE2_TU 1
#include "tensor/simd_sse2.h"
#else
// 32-bit build without SSE2 codegen: keep the symbol linkable with scalar
// lanes (bitwise identical; the CpuFeatures gate never picks it anyway).
#define CT_SSE2_TU 0
#include "tensor/simd_scalar.h"
#endif

namespace contratopic {
namespace tensor {

const KernelTable& Sse2KernelTable() {
#if CT_SSE2_TU
  static const KernelTable table =
      generic::MakeTable<Sse2Ops>(KernelBackendKind::kSse2);
#else
  static const KernelTable table =
      generic::MakeTable<ScalarOps>(KernelBackendKind::kSse2);
#endif
  return table;
}

}  // namespace tensor
}  // namespace contratopic

#endif  // CT_KERNEL_X86
