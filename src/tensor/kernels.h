#ifndef CONTRATOPIC_TENSOR_KERNELS_H_
#define CONTRATOPIC_TENSOR_KERNELS_H_

// Non-differentiable compute kernels on Tensors. The autodiff layer
// (tensor/autodiff.h) composes these into differentiable ops; the Gibbs
// sampler, KMeans, and the evaluators call them directly.
//
// Every kernel here is deterministic at any thread count: parallel loops
// either write disjoint, partition-independent output slots (per-row /
// per-element work) or reduce over a fixed chunk grid in fixed order
// (ColSum; see util/parallel.h).
//
// The inner span-level math dispatches through the runtime-selected SIMD
// backend (tensor/backend.h). All backends are bitwise identical, so this
// is purely a speed knob: results do not depend on CT_KERNEL_BACKEND.

#include <functional>

#include "tensor/backend.h"
#include "tensor/tensor.h"

namespace contratopic {
namespace tensor {

// Parallel-loop helpers shared by the kernels and the autodiff backward
// pass. Bodies receive [lo, hi) sub-ranges, must not throw, and must produce
// output that does not depend on how the range was partitioned.
//
// Runs body over element range [0, n) on the global pool (grain sized for
// cheap elementwise bodies).
void ParallelElems(int64_t n,
                   const std::function<void(int64_t, int64_t)>& body);
// Runs body over row range [0, rows) of a (rows x cols) matrix; the grain
// shrinks as rows get wider so that each chunk carries comparable work.
void ParallelRows(int64_t rows, int64_t cols,
                  const std::function<void(int64_t, int64_t)>& body);

// C = alpha * op(A) @ op(B) + beta * C, where op transposes when the flag is
// set. Shapes are validated. Uses a cache-blocked inner loop and, for large
// products, the global thread pool.
void MatMul(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
            Tensor* c, float alpha = 1.0f, float beta = 0.0f);

// Convenience: returns op(A) @ op(B).
Tensor MatMulNew(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b);

// Row-wise softmax; numerically stabilized (max subtraction).
void SoftmaxRowsInPlace(Tensor* x);
Tensor SoftmaxRows(const Tensor& x);

// Row-wise log-softmax.
void LogSoftmaxRowsInPlace(Tensor* x);

// out[r] = log(sum_c mask[r,c] * exp(x[r,c])); mask may be null (all ones).
// Rows whose mask is entirely zero produce -inf surrogate (-1e30).
void LogSumExpRows(const Tensor& x, const Tensor* mask, Tensor* out);

// Returns transposed copy.
Tensor Transposed(const Tensor& x);

// Row-wise reductions.
Tensor RowSum(const Tensor& x);   // -> (rows x 1)
Tensor ColSum(const Tensor& x);   // -> (1 x cols)
Tensor ColMean(const Tensor& x);  // -> (1 x cols)

// out[r,c] = a[r,c] (op) b[r,0]  /  b[0,c], used by broadcast autodiff ops.
// (BinaryOp lives in tensor/backend.h, shared with the kernel tables.)
void BroadcastCol(const Tensor& a, const Tensor& col, BinaryOp op, Tensor* out);
void BroadcastRow(const Tensor& a, const Tensor& row, BinaryOp op, Tensor* out);

// Normalizes each row to unit L2 norm (zero rows are left as zero).
Tensor RowL2Normalized(const Tensor& x, float eps = 1e-12f);
// In-place variant (bitwise-identical to RowL2Normalized on a copy).
void RowL2NormalizeInPlace(Tensor* x, float eps = 1e-12f);

// Pairwise squared Euclidean distances between rows of a (m x d) and rows
// of b (n x d) -> (m x n). Clamped at zero.
Tensor PairwiseSquaredDistances(const Tensor& a, const Tensor& b);

// Cosine similarity between rows of a and rows of b -> (m x n).
Tensor PairwiseCosine(const Tensor& a, const Tensor& b);

}  // namespace tensor
}  // namespace contratopic

#endif  // CONTRATOPIC_TENSOR_KERNELS_H_
