// Scalar reference backend: the canonical bits every SIMD backend must
// reproduce. This TU is compiled with auto-vectorization disabled (see
// src/tensor/CMakeLists.txt) so the reference stays honestly scalar and
// the bench speedup numbers mean what they say.

#include "tensor/kernel_tables.h"
#include "tensor/kernels_generic.h"
#include "tensor/simd_scalar.h"

namespace contratopic {
namespace tensor {

const KernelTable& ScalarKernelTable() {
  static const KernelTable table =
      generic::MakeTable<ScalarOps>(KernelBackendKind::kScalar);
  return table;
}

}  // namespace tensor
}  // namespace contratopic
