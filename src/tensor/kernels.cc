#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>

#include "util/parallel.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace tensor {

namespace {
// Minimum cells of work per chunk for cheap per-row/per-element bodies;
// below this the dispatch overhead dominates.
constexpr int64_t kCellsPerChunk = 1 << 14;
// Fixed reduction grid for ColSum: rows per partial accumulator. Part of
// the determinism contract -- must not depend on the thread count.
constexpr int64_t kColSumGridRows = 256;
}  // namespace

void ParallelElems(int64_t n,
                   const std::function<void(int64_t, int64_t)>& body) {
  util::ThreadPool::Global().ParallelFor(0, n, body, kCellsPerChunk);
}

void ParallelRows(int64_t rows, int64_t cols,
                  const std::function<void(int64_t, int64_t)>& body) {
  const int64_t grain =
      std::max<int64_t>(1, kCellsPerChunk / std::max<int64_t>(1, cols));
  util::ThreadPool::Global().ParallelFor(0, rows, body, grain);
}

namespace {

// Dot product of two contiguous float spans, 4-way unrolled.
inline float Dot(const float* a, const float* b, int64_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  float s = s0 + s1 + s2 + s3;
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

// Core: C[m,n] (+)= alpha * A[m,k] * Bt[n,k]^T where Bt stores B transposed
// (so both operands are read along contiguous rows).
void MatMulRowMajorTransB(const float* a, const float* bt, float* c,
                          int64_t m, int64_t n, int64_t k, float alpha,
                          float beta) {
  auto body = [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* a_row = a + i * k;
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float dot = Dot(a_row, bt + j * k, k);
        c_row[j] = beta * c_row[j] + alpha * dot;
      }
    }
  };
  const int64_t flops = m * n * k;
  if (flops > (1 << 22)) {
    // Large product: split output rows across the pool. Each output row is
    // n*k flops of independent work, so grain=1 row (the chunk count is
    // still bounded by the pool policy, ThreadPool::NumChunks).
    util::ThreadPool::Global().ParallelFor(0, m, body, /*grain=*/1);
  } else {
    body(0, m);
  }
}

}  // namespace

void MatMul(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
            Tensor* c, float alpha, float beta) {
  const int64_t m = trans_a ? a.cols() : a.rows();
  const int64_t k = trans_a ? a.rows() : a.cols();
  const int64_t kb = trans_b ? b.cols() : b.rows();
  const int64_t n = trans_b ? b.rows() : b.cols();
  CHECK_EQ(k, kb) << "MatMul inner dims: " << a.ShapeString()
                  << (trans_a ? "^T" : "") << " @ " << b.ShapeString()
                  << (trans_b ? "^T" : "");
  CHECK_EQ(c->rows(), m);
  CHECK_EQ(c->cols(), n);

  // Bring both operands into "A row-major, B transposed" layout.
  Tensor a_copy;
  const float* a_ptr = a.data();
  if (trans_a) {
    a_copy = Transposed(a);
    a_ptr = a_copy.data();
  }
  Tensor bt_copy;
  const float* bt_ptr = b.data();
  if (!trans_b) {
    bt_copy = Transposed(b);
    bt_ptr = bt_copy.data();
  }
  MatMulRowMajorTransB(a_ptr, bt_ptr, c->data(), m, n, k, alpha, beta);
}

Tensor MatMulNew(const Tensor& a, bool trans_a, const Tensor& b,
                 bool trans_b) {
  const int64_t m = trans_a ? a.cols() : a.rows();
  const int64_t n = trans_b ? b.rows() : b.cols();
  Tensor c(m, n);
  MatMul(a, trans_a, b, trans_b, &c);
  return c;
}

void SoftmaxRowsInPlace(Tensor* x) {
  ParallelRows(x->rows(), x->cols(), [x](int64_t r_lo, int64_t r_hi) {
    for (int64_t r = r_lo; r < r_hi; ++r) {
      float* row = x->row(r);
      float max_v = row[0];
      for (int64_t c = 1; c < x->cols(); ++c) max_v = std::max(max_v, row[c]);
      double sum = 0.0;
      for (int64_t c = 0; c < x->cols(); ++c) {
        row[c] = std::exp(row[c] - max_v);
        sum += row[c];
      }
      const float inv = static_cast<float>(1.0 / sum);
      for (int64_t c = 0; c < x->cols(); ++c) row[c] *= inv;
    }
  });
}

Tensor SoftmaxRows(const Tensor& x) {
  Tensor out = x;
  SoftmaxRowsInPlace(&out);
  return out;
}

void LogSoftmaxRowsInPlace(Tensor* x) {
  ParallelRows(x->rows(), x->cols(), [x](int64_t r_lo, int64_t r_hi) {
    for (int64_t r = r_lo; r < r_hi; ++r) {
      float* row = x->row(r);
      float max_v = row[0];
      for (int64_t c = 1; c < x->cols(); ++c) max_v = std::max(max_v, row[c]);
      double sum = 0.0;
      for (int64_t c = 0; c < x->cols(); ++c) sum += std::exp(row[c] - max_v);
      const float log_z = max_v + static_cast<float>(std::log(sum));
      for (int64_t c = 0; c < x->cols(); ++c) row[c] -= log_z;
    }
  });
}

void LogSumExpRows(const Tensor& x, const Tensor* mask, Tensor* out) {
  CHECK_EQ(out->rows(), x.rows());
  CHECK_EQ(out->cols(), 1);
  if (mask != nullptr) {
    CHECK(mask->same_shape(x));
  }
  ParallelRows(x.rows(), x.cols(), [&x, mask, out](int64_t r_lo, int64_t r_hi) {
    for (int64_t r = r_lo; r < r_hi; ++r) {
      const float* row = x.row(r);
      const float* m = mask != nullptr ? mask->row(r) : nullptr;
      float max_v = -1e30f;
      for (int64_t c = 0; c < x.cols(); ++c) {
        if (m == nullptr || m[c] > 0.0f) max_v = std::max(max_v, row[c]);
      }
      if (max_v <= -1e30f) {
        out->at(r, 0) = -1e30f;  // Empty mask row.
        continue;
      }
      double sum = 0.0;
      for (int64_t c = 0; c < x.cols(); ++c) {
        const float w = m == nullptr ? 1.0f : m[c];
        if (w > 0.0f) sum += w * std::exp(row[c] - max_v);
      }
      out->at(r, 0) = max_v + static_cast<float>(std::log(sum));
    }
  });
}

Tensor Transposed(const Tensor& x) {
  Tensor out(x.cols(), x.rows());
  constexpr int64_t kBlock = 32;
  ParallelRows(x.rows(), x.cols(), [&x, &out](int64_t r_lo, int64_t r_hi) {
    for (int64_t rb = r_lo; rb < r_hi; rb += kBlock) {
      const int64_t r_end = std::min(r_hi, rb + kBlock);
      for (int64_t cb = 0; cb < x.cols(); cb += kBlock) {
        const int64_t c_end = std::min(x.cols(), cb + kBlock);
        for (int64_t r = rb; r < r_end; ++r) {
          for (int64_t c = cb; c < c_end; ++c) {
            out.at(c, r) = x.at(r, c);
          }
        }
      }
    }
  });
  return out;
}

Tensor RowSum(const Tensor& x) {
  Tensor out(x.rows(), 1);
  ParallelRows(x.rows(), x.cols(), [&x, &out](int64_t r_lo, int64_t r_hi) {
    for (int64_t r = r_lo; r < r_hi; ++r) {
      double acc = 0.0;
      const float* row = x.row(r);
      for (int64_t c = 0; c < x.cols(); ++c) acc += row[c];
      out.at(r, 0) = static_cast<float>(acc);
    }
  });
  return out;
}

Tensor ColSum(const Tensor& x) {
  // Reduction across the row (batch) dimension: per-chunk partial buffers
  // over a fixed row grid, folded in fixed tree order (bitwise identical at
  // any thread count; see util/parallel.h).
  return util::ParallelReduceOrdered(
      util::ThreadPool::Global(), 0, x.rows(), kColSumGridRows,
      Tensor(1, x.cols()),
      [&x](int64_t r_lo, int64_t r_hi) {
        Tensor partial(1, x.cols());
        float* acc = partial.data();
        for (int64_t r = r_lo; r < r_hi; ++r) {
          const float* row = x.row(r);
          for (int64_t c = 0; c < x.cols(); ++c) acc[c] += row[c];
        }
        return partial;
      },
      [](Tensor& acc, Tensor&& part) { acc.AddInPlace(part); });
}

Tensor ColMean(const Tensor& x) {
  CHECK_GT(x.rows(), 0);
  Tensor out = ColSum(x);
  out.Scale(1.0f / static_cast<float>(x.rows()));
  return out;
}

namespace {
inline float ApplyBinary(float a, float b, BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return a + b;
    case BinaryOp::kSub:
      return a - b;
    case BinaryOp::kMul:
      return a * b;
    case BinaryOp::kDiv:
      return a / b;
  }
  return 0.0f;
}
}  // namespace

void BroadcastCol(const Tensor& a, const Tensor& col, BinaryOp op,
                  Tensor* out) {
  CHECK_EQ(col.rows(), a.rows());
  CHECK_EQ(col.cols(), 1);
  CHECK(out->same_shape(a));
  ParallelRows(a.rows(), a.cols(), [&](int64_t r_lo, int64_t r_hi) {
    for (int64_t r = r_lo; r < r_hi; ++r) {
      const float b = col.at(r, 0);
      const float* src = a.row(r);
      float* dst = out->row(r);
      for (int64_t c = 0; c < a.cols(); ++c) {
        dst[c] = ApplyBinary(src[c], b, op);
      }
    }
  });
}

void BroadcastRow(const Tensor& a, const Tensor& row, BinaryOp op,
                  Tensor* out) {
  CHECK_EQ(row.cols(), a.cols());
  CHECK_EQ(row.rows(), 1);
  CHECK(out->same_shape(a));
  const float* b = row.data();
  ParallelRows(a.rows(), a.cols(), [&, b](int64_t r_lo, int64_t r_hi) {
    for (int64_t r = r_lo; r < r_hi; ++r) {
      const float* src = a.row(r);
      float* dst = out->row(r);
      for (int64_t c = 0; c < a.cols(); ++c) {
        dst[c] = ApplyBinary(src[c], b[c], op);
      }
    }
  });
}

Tensor RowL2Normalized(const Tensor& x, float eps) {
  Tensor out = x;
  ParallelRows(x.rows(), x.cols(), [&x, &out, eps](int64_t r_lo, int64_t r_hi) {
    for (int64_t r = r_lo; r < r_hi; ++r) {
      const float* src = x.row(r);
      double acc = 0.0;
      for (int64_t c = 0; c < x.cols(); ++c) {
        acc += static_cast<double>(src[c]) * src[c];
      }
      const float norm = static_cast<float>(std::sqrt(acc));
      if (norm <= eps) continue;
      float* dst = out.row(r);
      const float inv = 1.0f / norm;
      for (int64_t c = 0; c < x.cols(); ++c) dst[c] *= inv;
    }
  });
  return out;
}

Tensor PairwiseSquaredDistances(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.cols(), b.cols());
  Tensor cross = MatMulNew(a, false, b, true);  // m x n
  Tensor a_sq = RowSum([&] {
    Tensor t = a;
    t.Apply([](float v) { return v * v; });
    return t;
  }());
  Tensor b_sq = RowSum([&] {
    Tensor t = b;
    t.Apply([](float v) { return v * v; });
    return t;
  }());
  Tensor out(a.rows(), b.rows());
  ParallelRows(a.rows(), b.rows(), [&](int64_t i_lo, int64_t i_hi) {
    for (int64_t i = i_lo; i < i_hi; ++i) {
      for (int64_t j = 0; j < b.rows(); ++j) {
        const float d = a_sq.at(i, 0) + b_sq.at(j, 0) - 2.0f * cross.at(i, j);
        out.at(i, j) = std::max(0.0f, d);
      }
    }
  });
  return out;
}

Tensor PairwiseCosine(const Tensor& a, const Tensor& b) {
  return MatMulNew(RowL2Normalized(a), false, RowL2Normalized(b), true);
}

}  // namespace tensor
}  // namespace contratopic
