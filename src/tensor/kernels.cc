#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>

#include "tensor/backend.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace tensor {

namespace {
// Minimum cells of work per chunk for cheap per-row/per-element bodies;
// below this the dispatch overhead dominates.
constexpr int64_t kCellsPerChunk = 1 << 14;
// Fixed reduction grid for ColSum: rows per partial accumulator. Part of
// the determinism contract -- must not depend on the thread count.
constexpr int64_t kColSumGridRows = 256;
// Columns of C per MatMul panel: the matching B^T panel (kMatMulColBlock
// rows of k floats) stays hot in L2 while a chunk's A rows stream by.
constexpr int64_t kMatMulColBlock = 64;
}  // namespace

void ParallelElems(int64_t n,
                   const std::function<void(int64_t, int64_t)>& body) {
  util::ThreadPool::Global().ParallelFor(0, n, body, kCellsPerChunk);
}

void ParallelRows(int64_t rows, int64_t cols,
                  const std::function<void(int64_t, int64_t)>& body) {
  const int64_t grain =
      std::max<int64_t>(1, kCellsPerChunk / std::max<int64_t>(1, cols));
  util::ThreadPool::Global().ParallelFor(0, rows, body, grain);
}

namespace {

// Core: C[m,n] (+)= alpha * A[m,k] * Bt[n,k]^T where Bt stores B transposed
// -- the packed panel layout: both operands are read along contiguous rows,
// and a kMatMulColBlock-row slice of Bt is reused across every A row of a
// chunk before moving to the next panel. Each C cell is one canonical-order
// dot product (backend.h), so the result is bitwise identical at any SIMD
// width and any thread count.
void MatMulRowMajorTransB(const float* a, const float* bt, float* c,
                          int64_t m, int64_t n, int64_t k, float alpha,
                          float beta) {
  const KernelTable& kt = ActiveKernels();
  auto body = [&](int64_t row_begin, int64_t row_end) {
    for (int64_t jb = 0; jb < n; jb += kMatMulColBlock) {
      const int64_t j_end = std::min<int64_t>(n, jb + kMatMulColBlock);
      for (int64_t i = row_begin; i < row_end; ++i) {
        const float* a_row = a + i * k;
        float* c_row = c + i * n;
        int64_t j = jb;
        for (; j + 4 <= j_end; j += 4) {
          float dots[4];
          kt.dot4(a_row, bt + j * k, bt + (j + 1) * k, bt + (j + 2) * k,
                  bt + (j + 3) * k, k, dots);
          c_row[j] = beta * c_row[j] + alpha * dots[0];
          c_row[j + 1] = beta * c_row[j + 1] + alpha * dots[1];
          c_row[j + 2] = beta * c_row[j + 2] + alpha * dots[2];
          c_row[j + 3] = beta * c_row[j + 3] + alpha * dots[3];
        }
        for (; j < j_end; ++j) {
          c_row[j] = beta * c_row[j] + alpha * kt.dot(a_row, bt + j * k, k);
        }
      }
    }
  };
  const int64_t flops = m * n * k;
  if (flops > (1 << 22)) {
    // Large product: split output rows across the pool. Each output row is
    // n*k flops of independent work, so grain=1 row (the chunk count is
    // still bounded by the pool policy, ThreadPool::NumChunks).
    util::ThreadPool::Global().ParallelFor(0, m, body, /*grain=*/1);
  } else {
    body(0, m);
  }
}

}  // namespace

void MatMul(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
            Tensor* c, float alpha, float beta) {
  const int64_t m = trans_a ? a.cols() : a.rows();
  const int64_t k = trans_a ? a.rows() : a.cols();
  const int64_t kb = trans_b ? b.cols() : b.rows();
  const int64_t n = trans_b ? b.rows() : b.cols();
  CHECK_EQ(k, kb) << "MatMul inner dims: " << a.ShapeString()
                  << (trans_a ? "^T" : "") << " @ " << b.ShapeString()
                  << (trans_b ? "^T" : "");
  CHECK_EQ(c->rows(), m);
  CHECK_EQ(c->cols(), n);

  // Bring both operands into "A row-major, B transposed" layout (the B^T
  // copy is the packed panel: every dot reads both operands contiguously).
  Tensor a_copy;
  const float* a_ptr = a.data();
  if (trans_a) {
    a_copy = Transposed(a);
    a_ptr = a_copy.data();
  }
  Tensor bt_copy;
  const float* bt_ptr = b.data();
  if (!trans_b) {
    bt_copy = Transposed(b);
    bt_ptr = bt_copy.data();
  }
  MatMulRowMajorTransB(a_ptr, bt_ptr, c->data(), m, n, k, alpha, beta);
}

Tensor MatMulNew(const Tensor& a, bool trans_a, const Tensor& b,
                 bool trans_b) {
  const int64_t m = trans_a ? a.cols() : a.rows();
  const int64_t n = trans_b ? b.rows() : b.cols();
  Tensor c(m, n);
  MatMul(a, trans_a, b, trans_b, &c);
  return c;
}

void SoftmaxRowsInPlace(Tensor* x) {
  const KernelTable& kt = ActiveKernels();
  ParallelRows(x->rows(), x->cols(), [x, &kt](int64_t r_lo, int64_t r_hi) {
    for (int64_t r = r_lo; r < r_hi; ++r) {
      kt.softmax_row(x->row(r), x->cols());
    }
  });
}

Tensor SoftmaxRows(const Tensor& x) {
  Tensor out = x;
  SoftmaxRowsInPlace(&out);
  return out;
}

void LogSoftmaxRowsInPlace(Tensor* x) {
  const KernelTable& kt = ActiveKernels();
  ParallelRows(x->rows(), x->cols(), [x, &kt](int64_t r_lo, int64_t r_hi) {
    for (int64_t r = r_lo; r < r_hi; ++r) {
      kt.log_softmax_row(x->row(r), x->cols());
    }
  });
}

void LogSumExpRows(const Tensor& x, const Tensor* mask, Tensor* out) {
  CHECK_EQ(out->rows(), x.rows());
  CHECK_EQ(out->cols(), 1);
  if (mask != nullptr) {
    CHECK(mask->same_shape(x));
  }
  const KernelTable& kt = ActiveKernels();
  ParallelRows(x.rows(), x.cols(),
               [&x, mask, out, &kt](int64_t r_lo, int64_t r_hi) {
                 for (int64_t r = r_lo; r < r_hi; ++r) {
                   const float* m = mask != nullptr ? mask->row(r) : nullptr;
                   out->at(r, 0) = kt.logsumexp_row(x.row(r), m, x.cols());
                 }
               });
}

Tensor Transposed(const Tensor& x) {
  Tensor out(x.cols(), x.rows());
  constexpr int64_t kBlock = 32;
  ParallelRows(x.rows(), x.cols(), [&x, &out](int64_t r_lo, int64_t r_hi) {
    for (int64_t rb = r_lo; rb < r_hi; rb += kBlock) {
      const int64_t r_end = std::min(r_hi, rb + kBlock);
      for (int64_t cb = 0; cb < x.cols(); cb += kBlock) {
        const int64_t c_end = std::min(x.cols(), cb + kBlock);
        for (int64_t r = rb; r < r_end; ++r) {
          for (int64_t c = cb; c < c_end; ++c) {
            out.at(c, r) = x.at(r, c);
          }
        }
      }
    }
  });
  return out;
}

Tensor RowSum(const Tensor& x) {
  Tensor out(x.rows(), 1);
  const KernelTable& kt = ActiveKernels();
  ParallelRows(x.rows(), x.cols(),
               [&x, &out, &kt](int64_t r_lo, int64_t r_hi) {
                 for (int64_t r = r_lo; r < r_hi; ++r) {
                   out.at(r, 0) =
                       static_cast<float>(kt.row_sum(x.row(r), x.cols()));
                 }
               });
  return out;
}

Tensor ColSum(const Tensor& x) {
  // Reduction across the row (batch) dimension: per-chunk partial buffers
  // over a fixed row grid, folded in fixed tree order (bitwise identical at
  // any thread count; see util/parallel.h). The per-row accumulation is an
  // elementwise add over columns, vectorized through the backend table.
  const KernelTable& kt = ActiveKernels();
  return util::ParallelReduceOrdered(
      util::ThreadPool::Global(), 0, x.rows(), kColSumGridRows,
      Tensor(1, x.cols()),
      [&x, &kt](int64_t r_lo, int64_t r_hi) {
        Tensor partial(1, x.cols());
        float* acc = partial.data();
        for (int64_t r = r_lo; r < r_hi; ++r) {
          kt.add(acc, x.row(r), x.cols());
        }
        return partial;
      },
      [](Tensor& acc, Tensor&& part) { acc.AddInPlace(part); });
}

Tensor ColMean(const Tensor& x) {
  CHECK_GT(x.rows(), 0);
  Tensor out = ColSum(x);
  out.Scale(1.0f / static_cast<float>(x.rows()));
  return out;
}

void BroadcastCol(const Tensor& a, const Tensor& col, BinaryOp op,
                  Tensor* out) {
  CHECK_EQ(col.rows(), a.rows());
  CHECK_EQ(col.cols(), 1);
  CHECK(out->same_shape(a));
  const KernelTable& kt = ActiveKernels();
  ParallelRows(a.rows(), a.cols(), [&](int64_t r_lo, int64_t r_hi) {
    for (int64_t r = r_lo; r < r_hi; ++r) {
      kt.binary_scalar(op, a.row(r), col.at(r, 0), out->row(r), a.cols());
    }
  });
}

void BroadcastRow(const Tensor& a, const Tensor& row, BinaryOp op,
                  Tensor* out) {
  CHECK_EQ(row.cols(), a.cols());
  CHECK_EQ(row.rows(), 1);
  CHECK(out->same_shape(a));
  const float* b = row.data();
  const KernelTable& kt = ActiveKernels();
  ParallelRows(a.rows(), a.cols(), [&, b](int64_t r_lo, int64_t r_hi) {
    for (int64_t r = r_lo; r < r_hi; ++r) {
      kt.binary(op, a.row(r), b, out->row(r), a.cols());
    }
  });
}

void RowL2NormalizeInPlace(Tensor* x, float eps) {
  // The norm is read from the row before it is scaled, so normalizing a
  // copy in place produces the same bits as RowL2Normalized.
  const KernelTable& kt = ActiveKernels();
  ParallelRows(x->rows(), x->cols(),
               [x, eps, &kt](int64_t r_lo, int64_t r_hi) {
                 for (int64_t r = r_lo; r < r_hi; ++r) {
                   const float norm = static_cast<float>(
                       std::sqrt(kt.row_sumsq(x->row(r), x->cols())));
                   if (norm <= eps) continue;
                   kt.scale(x->row(r), x->cols(), 1.0f / norm);
                 }
               });
}

Tensor RowL2Normalized(const Tensor& x, float eps) {
  Tensor out = x;
  RowL2NormalizeInPlace(&out, eps);
  return out;
}

Tensor PairwiseSquaredDistances(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.cols(), b.cols());
  Tensor cross = MatMulNew(a, false, b, true);  // m x n
  Tensor a_sq = RowSum([&] {
    Tensor t = a;
    t.Apply([](float v) { return v * v; });
    return t;
  }());
  Tensor b_sq = RowSum([&] {
    Tensor t = b;
    t.Apply([](float v) { return v * v; });
    return t;
  }());
  Tensor out(a.rows(), b.rows());
  ParallelRows(a.rows(), b.rows(), [&](int64_t i_lo, int64_t i_hi) {
    for (int64_t i = i_lo; i < i_hi; ++i) {
      for (int64_t j = 0; j < b.rows(); ++j) {
        const float d = a_sq.at(i, 0) + b_sq.at(j, 0) - 2.0f * cross.at(i, j);
        out.at(i, j) = std::max(0.0f, d);
      }
    }
  });
  return out;
}

Tensor PairwiseCosine(const Tensor& a, const Tensor& b) {
  return MatMulNew(RowL2Normalized(a), false, RowL2Normalized(b), true);
}

}  // namespace tensor
}  // namespace contratopic
