#include "tensor/arena.h"

#include <atomic>
#include <cstring>
#include <utility>

namespace contratopic {
namespace tensor {

namespace {

std::atomic<uint64_t> g_heap_allocs{0};
std::atomic<uint64_t> g_pool_hits{0};

thread_local BufferPool* t_pool = nullptr;

// Bucket key for a buffer of the given capacity (round DOWN, so a buffer
// is never filed under a class larger than itself). Pool-allocated buffers
// have capacity == their acquisition class, for which this is exact;
// foreign buffers (allocated with no pool installed, released with one)
// land in the largest class they can fully serve.
size_t BufferSizeClassFloor(size_t cap) {
  if (cap <= kBufferClassLinearLimitFloats) {
    return cap / kBufferAlignFloats * kBufferAlignFloats;
  }
  size_t c = kBufferClassLinearLimitFloats;
  while (c * 2 <= cap) c *= 2;
  return c;
}

}  // namespace

AllocStats GlobalAllocStats() {
  AllocStats s;
  s.heap_allocs = g_heap_allocs.load(std::memory_order_relaxed);
  s.pool_hits = g_pool_hits.load(std::memory_order_relaxed);
  return s;
}

std::vector<float> BufferPool::TakeOrAllocate(size_t n) {
  const size_t key = BufferSizeClass(n);
  outstanding_bytes_ += key * sizeof(float);
  if (outstanding_bytes_ > peak_outstanding_bytes_) {
    peak_outstanding_bytes_ = outstanding_bytes_;
  }
  auto it = buckets_.find(key);
  if (it != buckets_.end() && !it->second.empty()) {
    std::vector<float> buf = std::move(it->second.back());
    it->second.pop_back();
    retained_bytes_ -= key * sizeof(float);
    ++hits_;
    g_pool_hits.fetch_add(1, std::memory_order_relaxed);
    return buf;
  }
  ++misses_;
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  std::vector<float> buf;
  buf.reserve(key);
  return buf;
}

std::vector<float> BufferPool::AcquireZero(size_t n) {
  std::vector<float> buf = TakeOrAllocate(n);
  buf.assign(n, 0.0f);
  return buf;
}

std::vector<float> BufferPool::AcquireCopy(const float* src, size_t n) {
  std::vector<float> buf = TakeOrAllocate(n);
  buf.assign(src, src + n);
  return buf;
}

void BufferPool::Release(std::vector<float>&& buf) {
  const size_t cap = buf.capacity();
  if (cap == 0) return;
  const size_t key = BufferSizeClassFloor(cap);
  const size_t bytes = key * sizeof(float);
  // Foreign buffers (moved in from another thread or from move-in storage)
  // were never counted as outstanding; clamp instead of underflowing.
  outstanding_bytes_ -= bytes < outstanding_bytes_ ? bytes
                                                   : outstanding_bytes_;
  if (key == 0 || retained_bytes_ + bytes > max_retained_bytes_) {
    std::vector<float>().swap(buf);
    return;
  }
  retained_bytes_ += bytes;
  buckets_[key].push_back(std::move(buf));
}

BufferPool* InstallThreadBufferPool(BufferPool* pool) {
  BufferPool* prev = t_pool;
  t_pool = pool;
  return prev;
}

BufferPool* ThreadBufferPool() { return t_pool; }

namespace detail {

std::vector<float> AcquireBufferZero(size_t n) {
  if (n == 0) return {};
  if (t_pool != nullptr) return t_pool->AcquireZero(n);
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::vector<float>(n, 0.0f);
}

std::vector<float> AcquireBufferCopy(const float* src, size_t n) {
  if (n == 0) return {};
  if (t_pool != nullptr) return t_pool->AcquireCopy(src, n);
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::vector<float>(src, src + n);
}

void ReleaseBuffer(std::vector<float>&& buf) {
  if (buf.capacity() == 0) return;
  if (t_pool != nullptr) {
    t_pool->Release(std::move(buf));
    return;
  }
  std::vector<float>().swap(buf);
}

}  // namespace detail

}  // namespace tensor
}  // namespace contratopic
