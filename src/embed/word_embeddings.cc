#include "embed/word_embeddings.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "embed/svd.h"
#include "tensor/kernels.h"
#include "util/serialize.h"
#include "util/trace.h"

namespace contratopic {
namespace embed {

WordEmbeddings::WordEmbeddings(tensor::Tensor vectors,
                               std::vector<std::string> words)
    : vectors_(std::move(vectors)), words_(std::move(words)) {
  CHECK_EQ(static_cast<int64_t>(words_.size()), vectors_.rows());
}

WordEmbeddings WordEmbeddings::Train(const text::BowCorpus& corpus,
                                     const EmbeddingConfig& config) {
  util::TraceSpan span("embed_train");
  CooccurrenceCounts counts(corpus.vocab_size());
  counts.AddWeighted(corpus);
  tensor::Tensor ppmi = PpmiMatrix(counts, config.ppmi_smoothing);

  util::Rng rng(config.seed);
  TruncatedEigen eigen = TruncatedSymmetricEigen(
      ppmi, config.dimension, rng, config.svd_iterations);

  // Embedding = U * sqrt(max(lambda, 0)); negative tail eigenvalues carry
  // no useful signal for a PSD-like PPMI matrix.
  tensor::Tensor vectors = eigen.eigenvectors;  // V x dim
  for (int64_t c = 0; c < vectors.cols(); ++c) {
    const float scale =
        std::sqrt(std::max(0.0f, eigen.eigenvalues[static_cast<size_t>(c)]));
    for (int64_t r = 0; r < vectors.rows(); ++r) vectors.at(r, c) *= scale;
  }
  return WordEmbeddings(std::move(vectors), corpus.vocab().words());
}

float WordEmbeddings::Cosine(int a, int b) const {
  CHECK_GE(a, 0);
  CHECK_LT(a, vocab_size());
  CHECK_GE(b, 0);
  CHECK_LT(b, vocab_size());
  const float* va = vectors_.row(a);
  const float* vb = vectors_.row(b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int64_t i = 0; i < vectors_.cols(); ++i) {
    dot += static_cast<double>(va[i]) * vb[i];
    na += static_cast<double>(va[i]) * va[i];
    nb += static_cast<double>(vb[i]) * vb[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 1e-12 ? static_cast<float>(dot / denom) : 0.0f;
}

std::vector<int> WordEmbeddings::NearestNeighbors(int word_id, int k) const {
  std::vector<std::pair<float, int>> scored;
  scored.reserve(vocab_size());
  for (int i = 0; i < vocab_size(); ++i) {
    if (i == word_id) continue;
    scored.emplace_back(Cosine(word_id, i), i);
  }
  k = std::min<int>(k, static_cast<int>(scored.size()));
  std::partial_sort(
      scored.begin(), scored.begin() + k, scored.end(),
      [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<int> out(k);
  for (int i = 0; i < k; ++i) out[i] = scored[i].second;
  return out;
}

util::Status WordEmbeddings::Save(const std::string& path) const {
  util::BinaryWriter writer(path);
  if (!writer.ok()) return util::Status::IOError("cannot open " + path);
  writer.WriteU64(static_cast<uint64_t>(vectors_.rows()));
  writer.WriteU64(static_cast<uint64_t>(vectors_.cols()));
  std::vector<float> data(vectors_.data(), vectors_.data() + vectors_.numel());
  writer.WriteFloatVector(data);
  writer.WriteU64(words_.size());
  for (const auto& w : words_) writer.WriteString(w);
  return writer.Close();
}

util::StatusOr<WordEmbeddings> WordEmbeddings::Load(const std::string& path) {
  util::BinaryReader reader(path);
  if (!reader.ok()) return util::Status::IOError("cannot open " + path);
  const uint64_t rows = reader.ReadU64();
  const uint64_t cols = reader.ReadU64();
  std::vector<float> data = reader.ReadFloatVector();
  const uint64_t n_words = reader.ReadU64();
  std::vector<std::string> words;
  words.reserve(n_words);
  for (uint64_t i = 0; i < n_words; ++i) words.push_back(reader.ReadString());
  if (!reader.status().ok()) return reader.status();
  if (data.size() != rows * cols || words.size() != rows) {
    return util::Status::Internal("embedding file is corrupt: " + path);
  }
  return WordEmbeddings(
      tensor::Tensor(static_cast<int64_t>(rows), static_cast<int64_t>(cols),
                     std::move(data)),
      std::move(words));
}

}  // namespace embed
}  // namespace contratopic
