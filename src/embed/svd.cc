#include "embed/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/kernels.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace contratopic {
namespace embed {

using tensor::Tensor;

SymmetricEigen JacobiEigen(const Tensor& symmetric, int max_sweeps,
                           float tolerance) {
  CHECK_EQ(symmetric.rows(), symmetric.cols());
  const int n = static_cast<int>(symmetric.rows());
  Tensor a = symmetric;
  Tensor v = Tensor::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal magnitude.
    double off = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        off += static_cast<double>(a.at(i, j)) * a.at(i, j);
      }
    }
    if (off < tolerance) break;

    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const float apq = a.at(p, q);
        if (std::fabs(apq) < 1e-12f) continue;
        const float app = a.at(p, p);
        const float aqq = a.at(q, q);
        const float tau = (aqq - app) / (2.0f * apq);
        const float t = (tau >= 0.0f ? 1.0f : -1.0f) /
                        (std::fabs(tau) + std::sqrt(1.0f + tau * tau));
        const float c = 1.0f / std::sqrt(1.0f + t * t);
        const float s = t * c;
        // Rotate rows/cols p and q of A.
        for (int k = 0; k < n; ++k) {
          const float akp = a.at(k, p);
          const float akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const float apk = a.at(p, k);
          const float aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors (rows of v are current basis).
        for (int k = 0; k < n; ++k) {
          const float vpk = v.at(p, k);
          const float vqk = v.at(q, k);
          v.at(p, k) = c * vpk - s * vqk;
          v.at(q, k) = s * vpk + c * vqk;
        }
      }
    }
  }

  // Sort by descending eigenvalue.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int i, int j) {
    return a.at(i, i) > a.at(j, j);
  });

  SymmetricEigen result;
  result.eigenvalues.resize(n);
  result.eigenvectors = Tensor(n, n);
  for (int r = 0; r < n; ++r) {
    result.eigenvalues[r] = a.at(order[r], order[r]);
    for (int k = 0; k < n; ++k) {
      result.eigenvectors.at(r, k) = v.at(order[r], k);
    }
  }
  return result;
}

void OrthonormalizeColumns(Tensor* m, util::Rng& rng) {
  const int64_t rows = m->rows();
  const int64_t cols = m->cols();
  for (int64_t c = 0; c < cols; ++c) {
    // Subtract projections onto previous columns.
    for (int64_t prev = 0; prev < c; ++prev) {
      double dot = 0.0;
      for (int64_t r = 0; r < rows; ++r) {
        dot += static_cast<double>(m->at(r, c)) * m->at(r, prev);
      }
      for (int64_t r = 0; r < rows; ++r) {
        m->at(r, c) -= static_cast<float>(dot) * m->at(r, prev);
      }
    }
    double norm_sq = 0.0;
    for (int64_t r = 0; r < rows; ++r) {
      norm_sq += static_cast<double>(m->at(r, c)) * m->at(r, c);
    }
    double norm = std::sqrt(norm_sq);
    if (norm < 1e-8) {
      // Degenerate column: replace with a random direction and retry once.
      for (int64_t r = 0; r < rows; ++r) {
        m->at(r, c) = static_cast<float>(rng.Normal());
      }
      for (int64_t prev = 0; prev < c; ++prev) {
        double dot = 0.0;
        for (int64_t r = 0; r < rows; ++r) {
          dot += static_cast<double>(m->at(r, c)) * m->at(r, prev);
        }
        for (int64_t r = 0; r < rows; ++r) {
          m->at(r, c) -= static_cast<float>(dot) * m->at(r, prev);
        }
      }
      norm_sq = 0.0;
      for (int64_t r = 0; r < rows; ++r) {
        norm_sq += static_cast<double>(m->at(r, c)) * m->at(r, c);
      }
      norm = std::sqrt(std::max(norm_sq, 1e-16));
    }
    const float inv = static_cast<float>(1.0 / norm);
    for (int64_t r = 0; r < rows; ++r) m->at(r, c) *= inv;
  }
}

TruncatedEigen TruncatedSymmetricEigen(const Tensor& symmetric, int rank,
                                       util::Rng& rng, int iterations,
                                       int oversample) {
  util::TraceSpan span("svd");
  util::MetricsRegistry::Global()
      .counter("embed.svd.iterations")
      .Increment(iterations);
  CHECK_EQ(symmetric.rows(), symmetric.cols());
  const int n = static_cast<int>(symmetric.rows());
  rank = std::min(rank, n);
  const int k = std::min(n, rank + oversample);

  // Random start, then repeated multiply + orthonormalize.
  Tensor q = Tensor::RandNormal(n, k, rng);
  OrthonormalizeColumns(&q, rng);
  for (int it = 0; it < iterations; ++it) {
    Tensor z = tensor::MatMulNew(symmetric, false, q, false);
    q = std::move(z);
    OrthonormalizeColumns(&q, rng);
  }

  // Projected small problem B = Q^T A Q.
  Tensor aq = tensor::MatMulNew(symmetric, false, q, false);
  Tensor b = tensor::MatMulNew(q, true, aq, false);
  // Symmetrize against numerical drift.
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      const float avg = 0.5f * (b.at(i, j) + b.at(j, i));
      b.at(i, j) = avg;
      b.at(j, i) = avg;
    }
  }
  SymmetricEigen small = JacobiEigen(b);

  TruncatedEigen result;
  result.eigenvalues.assign(small.eigenvalues.begin(),
                            small.eigenvalues.begin() + rank);
  // eigenvectors = Q * W^T where W rows are small eigenvectors.
  Tensor w_t(k, rank);
  for (int r = 0; r < rank; ++r) {
    for (int c = 0; c < k; ++c) w_t.at(c, r) = small.eigenvectors.at(r, c);
  }
  result.eigenvectors = tensor::MatMulNew(q, false, w_t, false);
  return result;
}

}  // namespace embed
}  // namespace contratopic
