#ifndef CONTRATOPIC_EMBED_COOCCURRENCE_H_
#define CONTRATOPIC_EMBED_COOCCURRENCE_H_

// Word co-occurrence counting over bag-of-words corpora. Two flavours are
// provided:
//  * document-level *presence* counts (docs containing both words) -- the
//    statistic NPMI coherence is computed from, and
//  * count-weighted co-occurrence (sum over docs of c_i * c_j) -- the
//    statistic PPMI embeddings are factorized from.

#include "tensor/tensor.h"
#include "text/corpus.h"
#include "util/serialize.h"
#include "util/status.h"

namespace contratopic {
namespace embed {

// Dense symmetric co-occurrence accumulator.
class CooccurrenceCounts {
 public:
  explicit CooccurrenceCounts(int vocab_size);

  // Adds a corpus worth of counts. Large corpora are sharded over the global
  // thread pool (fixed doc grid, shards merged in fixed order); counts are
  // integer-valued so the result is bitwise-identical at any thread count.
  void AddPresence(const text::BowCorpus& corpus);
  void AddWeighted(const text::BowCorpus& corpus);

  // Adds only documents [begin, end) of `corpus`, serially -- the
  // distributed trainer's sharded build path (DESIGN.md §13), where the
  // doc grid lives above this class and each worker process accumulates
  // its own contiguous range. num_docs() grows by (end - begin).
  void AddPresenceRange(const text::BowCorpus& corpus, int64_t begin,
                        int64_t end);
  void AddWeightedRange(const text::BowCorpus& corpus, int64_t begin,
                        int64_t end);

  // Folds another accumulator over the same vocabulary into this one.
  // Counts are integer-valued, so merging is exact (bitwise equal to
  // having accumulated the union directly, for counts below 2^24).
  void Merge(const CooccurrenceCounts& other);

  // Transport between worker processes: a length-prefixed binary image of
  // (vocab_size, num_docs, counts, marginals).
  void Serialize(util::BinaryWriter* writer) const;
  static util::StatusOr<CooccurrenceCounts> Deserialize(
      util::BinaryReader* reader);

  // Exponential forgetting for streaming settings: multiplies every count
  // (including the effective document count) by `factor` in (0, 1].
  void Scale(double factor);

  int vocab_size() const { return vocab_size_; }
  int64_t num_docs() const { return num_docs_; }

  // Co-occurrence of word pair (i, j); symmetric.
  double pair(int i, int j) const { return counts_.at(i, j); }
  // Marginal count of word i (diagonal).
  double marginal(int i) const { return marginals_[i]; }

  const tensor::Tensor& matrix() const { return counts_; }

 private:
  // Shared sharded accumulation path behind AddPresence / AddWeighted.
  void Accumulate(const text::BowCorpus& corpus, bool weighted);

  int vocab_size_;
  int64_t num_docs_ = 0;
  tensor::Tensor counts_;          // V x V, symmetric
  std::vector<double> marginals_;  // V
};

// Positive PMI transform of weighted co-occurrence counts:
//   PPMI_ij = max(0, log(p_ij / (p_i p_j)))
// with additive smoothing `alpha` on pair counts.
tensor::Tensor PpmiMatrix(const CooccurrenceCounts& counts,
                          double alpha = 0.5);

}  // namespace embed
}  // namespace contratopic

#endif  // CONTRATOPIC_EMBED_COOCCURRENCE_H_
