#include "embed/cooccurrence.h"

#include <cmath>

#include "util/logging.h"

namespace contratopic {
namespace embed {

CooccurrenceCounts::CooccurrenceCounts(int vocab_size)
    : vocab_size_(vocab_size),
      counts_(vocab_size, vocab_size),
      marginals_(vocab_size, 0.0) {}

void CooccurrenceCounts::AddPresence(const text::BowCorpus& corpus) {
  CHECK_EQ(corpus.vocab_size(), vocab_size_);
  for (const auto& doc : corpus.docs()) {
    const auto& entries = doc.entries;
    for (size_t a = 0; a < entries.size(); ++a) {
      const int i = entries[a].word_id;
      marginals_[i] += 1.0;
      counts_.at(i, i) += 1.0f;
      for (size_t b = a + 1; b < entries.size(); ++b) {
        const int j = entries[b].word_id;
        counts_.at(i, j) += 1.0f;
        counts_.at(j, i) += 1.0f;
      }
    }
  }
  num_docs_ += corpus.num_docs();
}

void CooccurrenceCounts::AddWeighted(const text::BowCorpus& corpus) {
  CHECK_EQ(corpus.vocab_size(), vocab_size_);
  for (const auto& doc : corpus.docs()) {
    const auto& entries = doc.entries;
    for (size_t a = 0; a < entries.size(); ++a) {
      const int i = entries[a].word_id;
      const float ci = static_cast<float>(entries[a].count);
      marginals_[i] += ci;
      counts_.at(i, i) += ci * ci;
      for (size_t b = a + 1; b < entries.size(); ++b) {
        const int j = entries[b].word_id;
        const float w = ci * static_cast<float>(entries[b].count);
        counts_.at(i, j) += w;
        counts_.at(j, i) += w;
      }
    }
  }
  num_docs_ += corpus.num_docs();
}

void CooccurrenceCounts::Scale(double factor) {
  CHECK_GT(factor, 0.0);
  CHECK_LE(factor, 1.0);
  counts_.Scale(static_cast<float>(factor));
  for (auto& m : marginals_) m *= factor;
  num_docs_ = static_cast<int64_t>(num_docs_ * factor);
  if (num_docs_ < 1) num_docs_ = 1;
}

tensor::Tensor PpmiMatrix(const CooccurrenceCounts& counts, double alpha) {
  const int v = counts.vocab_size();
  double total = 0.0;
  for (int i = 0; i < v; ++i) total += counts.marginal(i);
  CHECK_GT(total, 0.0);

  tensor::Tensor ppmi(v, v);
  for (int i = 0; i < v; ++i) {
    const double pi = counts.marginal(i) / total;
    if (pi <= 0.0) continue;
    for (int j = 0; j < v; ++j) {
      const double pj = counts.marginal(j) / total;
      if (pj <= 0.0) continue;
      const double pij = (counts.pair(i, j) + alpha) / total;
      const double pmi = std::log(pij / (pi * pj));
      if (pmi > 0.0) ppmi.at(i, j) = static_cast<float>(pmi);
    }
  }
  return ppmi;
}

}  // namespace embed
}  // namespace contratopic
