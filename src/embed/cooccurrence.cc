#include "embed/cooccurrence.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/kernels.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace contratopic {
namespace embed {
namespace {

// Documents are sharded over a fixed grid (a function of corpus size only,
// never thread count); each shard accumulates into its own counts matrix and
// marginal vector, and shards are merged in fixed index order. Counts are
// integer-valued, so the merged sums are exact (binary32 is exact for
// integers below 2^24) and bitwise-identical to the serial accumulation.
// kMaxShards bounds the V x V per-shard memory.
constexpr int64_t kDocsPerShard = 512;
constexpr int64_t kMaxShards = 8;

int64_t NumShards(int64_t num_docs) {
  if (num_docs <= 0) return 0;
  return std::clamp<int64_t>(num_docs / kDocsPerShard, 1, kMaxShards);
}

// Accumulates docs [lo, hi) of `corpus` into counts/marginals, scanning docs
// in index order (the same order the serial path uses).
void AccumulateDocRange(const text::BowCorpus& corpus, int64_t lo, int64_t hi,
                        bool weighted, tensor::Tensor* counts,
                        std::vector<double>* marginals) {
  for (int64_t d = lo; d < hi; ++d) {
    const auto& entries = corpus.docs()[d].entries;
    for (size_t a = 0; a < entries.size(); ++a) {
      const int i = entries[a].word_id;
      const float ci = weighted ? static_cast<float>(entries[a].count) : 1.0f;
      (*marginals)[i] += ci;
      counts->at(i, i) += ci * ci;
      for (size_t b = a + 1; b < entries.size(); ++b) {
        const int j = entries[b].word_id;
        const float w =
            weighted ? ci * static_cast<float>(entries[b].count) : 1.0f;
        counts->at(i, j) += w;
        counts->at(j, i) += w;
      }
    }
  }
}

}  // namespace

CooccurrenceCounts::CooccurrenceCounts(int vocab_size)
    : vocab_size_(vocab_size),
      counts_(vocab_size, vocab_size),
      marginals_(vocab_size, 0.0) {}

void CooccurrenceCounts::Accumulate(const text::BowCorpus& corpus,
                                    bool weighted) {
  util::TraceSpan span("cooccurrence");
  util::MetricsRegistry::Global()
      .counter("embed.cooccurrence.docs")
      .Increment(corpus.num_docs());
  CHECK_EQ(corpus.vocab_size(), vocab_size_);
  const int64_t num_docs = corpus.num_docs();
  const int64_t shards = NumShards(num_docs);
  if (shards <= 1) {
    AccumulateDocRange(corpus, 0, num_docs, weighted, &counts_, &marginals_);
  } else {
    const int64_t per_shard = (num_docs + shards - 1) / shards;
    std::vector<tensor::Tensor> shard_counts(
        shards, tensor::Tensor(vocab_size_, vocab_size_));
    std::vector<std::vector<double>> shard_marginals(
        shards, std::vector<double>(vocab_size_, 0.0));
    util::ThreadPool::Global().ParallelFor(
        0, shards,
        [&](int64_t s_lo, int64_t s_hi) {
          for (int64_t s = s_lo; s < s_hi; ++s) {
            const int64_t lo = s * per_shard;
            const int64_t hi = std::min(num_docs, lo + per_shard);
            AccumulateDocRange(corpus, lo, hi, weighted, &shard_counts[s],
                               &shard_marginals[s]);
          }
        },
        /*grain=*/1);
    // Merge shards in fixed index order.
    for (int64_t s = 0; s < shards; ++s) {
      counts_.AddInPlace(shard_counts[s]);
      for (int i = 0; i < vocab_size_; ++i) {
        marginals_[i] += shard_marginals[s][i];
      }
    }
  }
  num_docs_ += num_docs;
}

void CooccurrenceCounts::AddPresence(const text::BowCorpus& corpus) {
  Accumulate(corpus, /*weighted=*/false);
}

void CooccurrenceCounts::AddWeighted(const text::BowCorpus& corpus) {
  Accumulate(corpus, /*weighted=*/true);
}

void CooccurrenceCounts::AddPresenceRange(const text::BowCorpus& corpus,
                                          int64_t begin, int64_t end) {
  CHECK_EQ(corpus.vocab_size(), vocab_size_);
  CHECK_GE(begin, 0);
  CHECK_LE(begin, end);
  CHECK_LE(end, corpus.num_docs());
  AccumulateDocRange(corpus, begin, end, /*weighted=*/false, &counts_,
                     &marginals_);
  num_docs_ += end - begin;
}

void CooccurrenceCounts::AddWeightedRange(const text::BowCorpus& corpus,
                                          int64_t begin, int64_t end) {
  CHECK_EQ(corpus.vocab_size(), vocab_size_);
  CHECK_GE(begin, 0);
  CHECK_LE(begin, end);
  CHECK_LE(end, corpus.num_docs());
  AccumulateDocRange(corpus, begin, end, /*weighted=*/true, &counts_,
                     &marginals_);
  num_docs_ += end - begin;
}

void CooccurrenceCounts::Merge(const CooccurrenceCounts& other) {
  CHECK_EQ(other.vocab_size_, vocab_size_);
  counts_.AddInPlace(other.counts_);
  for (int i = 0; i < vocab_size_; ++i) marginals_[i] += other.marginals_[i];
  num_docs_ += other.num_docs_;
}

void CooccurrenceCounts::Serialize(util::BinaryWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(vocab_size_));
  writer->WriteU64(static_cast<uint64_t>(num_docs_));
  writer->WriteU64(static_cast<uint64_t>(counts_.numel()));
  writer->WriteBytes(counts_.data(), counts_.numel() * sizeof(float));
  for (double m : marginals_) writer->WriteF64(m);
}

util::StatusOr<CooccurrenceCounts> CooccurrenceCounts::Deserialize(
    util::BinaryReader* reader) {
  const uint32_t vocab = reader->ReadU32();
  const uint64_t num_docs = reader->ReadU64();
  const uint64_t numel = reader->ReadU64();
  if (!reader->ok() || vocab > (1u << 20) ||
      numel != static_cast<uint64_t>(vocab) * vocab) {
    return util::Status::DataLoss(
        "co-occurrence image has an inconsistent header");
  }
  CooccurrenceCounts counts(static_cast<int>(vocab));
  counts.num_docs_ = static_cast<int64_t>(num_docs);
  for (int64_t i = 0; i < counts.counts_.numel(); ++i) {
    counts.counts_.data()[i] = reader->ReadF32();
  }
  for (auto& m : counts.marginals_) m = reader->ReadF64();
  if (!reader->ok()) {
    return util::Status::DataLoss("co-occurrence image is truncated");
  }
  return counts;
}

void CooccurrenceCounts::Scale(double factor) {
  CHECK_GT(factor, 0.0);
  CHECK_LE(factor, 1.0);
  counts_.Scale(static_cast<float>(factor));
  for (auto& m : marginals_) m *= factor;
  num_docs_ = static_cast<int64_t>(num_docs_ * factor);
  if (num_docs_ < 1) num_docs_ = 1;
}

tensor::Tensor PpmiMatrix(const CooccurrenceCounts& counts, double alpha) {
  const int v = counts.vocab_size();
  double total = 0.0;
  for (int i = 0; i < v; ++i) total += counts.marginal(i);
  CHECK_GT(total, 0.0);

  tensor::Tensor ppmi(v, v);
  // Rows are independent; each row's math is identical to the serial loop.
  tensor::ParallelRows(v, v, [&](int64_t r_lo, int64_t r_hi) {
    for (int64_t i = r_lo; i < r_hi; ++i) {
      const double pi = counts.marginal(static_cast<int>(i)) / total;
      if (pi <= 0.0) continue;
      for (int j = 0; j < v; ++j) {
        const double pj = counts.marginal(j) / total;
        if (pj <= 0.0) continue;
        const double pij =
            (counts.pair(static_cast<int>(i), j) + alpha) / total;
        const double pmi = std::log(pij / (pi * pj));
        if (pmi > 0.0) ppmi.at(i, j) = static_cast<float>(pmi);
      }
    }
  });
  return ppmi;
}

}  // namespace embed
}  // namespace contratopic
