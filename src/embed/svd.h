#ifndef CONTRATOPIC_EMBED_SVD_H_
#define CONTRATOPIC_EMBED_SVD_H_

// Truncated eigendecomposition of symmetric matrices via randomized
// subspace iteration, plus a dense Jacobi eigensolver for the small
// projected problem. Used to factorize the PPMI matrix into word
// embeddings (the classical closed-form counterpart of GloVe).

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace contratopic {
namespace embed {

// Eigendecomposition of a small dense symmetric matrix (Jacobi rotations).
// Returns eigenvalues (descending) and the corresponding eigenvectors as
// rows of `eigvecs`.
struct SymmetricEigen {
  std::vector<float> eigenvalues;
  tensor::Tensor eigenvectors;  // n x n; row i is the i-th eigenvector
};
SymmetricEigen JacobiEigen(const tensor::Tensor& symmetric,
                           int max_sweeps = 50, float tolerance = 1e-9f);

// Top-`rank` eigenpairs of a large symmetric matrix using `iterations`
// rounds of subspace iteration with `oversample` extra directions.
struct TruncatedEigen {
  std::vector<float> eigenvalues;  // descending, size = rank
  tensor::Tensor eigenvectors;     // n x rank (columns are eigenvectors)
};
TruncatedEigen TruncatedSymmetricEigen(const tensor::Tensor& symmetric,
                                       int rank, util::Rng& rng,
                                       int iterations = 6,
                                       int oversample = 8);

// Orthonormalizes the columns of `m` in place (modified Gram-Schmidt).
// Columns that collapse to zero norm are re-randomized from `rng`.
void OrthonormalizeColumns(tensor::Tensor* m, util::Rng& rng);

}  // namespace embed
}  // namespace contratopic

#endif  // CONTRATOPIC_EMBED_SVD_H_
