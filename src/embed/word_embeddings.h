#ifndef CONTRATOPIC_EMBED_WORD_EMBEDDINGS_H_
#define CONTRATOPIC_EMBED_WORD_EMBEDDINGS_H_

// Corpus-trained word embeddings. The paper uses frozen GloVe-on-Wikipedia
// vectors; we factorize the corpus PPMI matrix with a truncated
// eigendecomposition (PPMI-SVD), the classical closed-form counterpart of
// GloVe, and freeze the result (DESIGN.md §2).

#include <string>
#include <vector>

#include "embed/cooccurrence.h"
#include "tensor/tensor.h"
#include "text/corpus.h"
#include "util/rng.h"
#include "util/status.h"

namespace contratopic {
namespace embed {

struct EmbeddingConfig {
  int dimension = 64;
  double ppmi_smoothing = 0.5;
  int svd_iterations = 6;
  uint64_t seed = 1234;
};

class WordEmbeddings {
 public:
  WordEmbeddings() = default;
  WordEmbeddings(tensor::Tensor vectors, std::vector<std::string> words);

  // Trains PPMI-SVD embeddings on `corpus`.
  static WordEmbeddings Train(const text::BowCorpus& corpus,
                              const EmbeddingConfig& config);

  int vocab_size() const { return static_cast<int>(vectors_.rows()); }
  int dimension() const { return static_cast<int>(vectors_.cols()); }
  const tensor::Tensor& vectors() const { return vectors_; }
  const std::vector<std::string>& words() const { return words_; }

  // Cosine similarity between two word ids.
  float Cosine(int a, int b) const;

  // Ids of the k most-cosine-similar words to `word_id` (excluding itself).
  std::vector<int> NearestNeighbors(int word_id, int k) const;

  // Binary round trip for caching.
  util::Status Save(const std::string& path) const;
  static util::StatusOr<WordEmbeddings> Load(const std::string& path);

 private:
  tensor::Tensor vectors_;  // V x e
  std::vector<std::string> words_;
};

}  // namespace embed
}  // namespace contratopic

#endif  // CONTRATOPIC_EMBED_WORD_EMBEDDINGS_H_
