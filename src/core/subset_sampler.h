#ifndef CONTRATOPIC_CORE_SUBSET_SAMPLER_H_
#define CONTRATOPIC_CORE_SUBSET_SAMPLER_H_

// Differentiable top-v subset sampling without replacement via the
// Gumbel-softmax relaxation of Xie & Ermon (2019) -- paper §IV.B, Eqs. 3-5.
//
// Given per-topic log-weights (rows of `log_weights`), perturb each row
// with Gumbel noise, then run v relaxed arg-max steps:
//     r^1     = log beta + g
//     p(r^j)  = softmax(r^j / tau)
//     r^{j+1} = r^j + log(1 - p(r^j))
// Each step yields a relaxed one-hot row; their sum is a relaxed v-hot
// vector of the sampled subset. Gradients flow to `log_weights` through
// every step.

#include <vector>

#include "tensor/autodiff.h"
#include "util/rng.h"

namespace contratopic {
namespace core {

using autodiff::Var;
using tensor::Tensor;

struct SubsetSample {
  // Relaxed one-hot matrices, one per draw: v entries of shape K x C.
  std::vector<Var> steps;
  // Relaxed v-hot matrix: sum of the steps (K x C).
  Var v_hot;
};

// Draws `v` relaxed samples per row of `log_weights` (K x C) at temperature
// `tau`. Gumbel noise comes from `rng`; pass `hard = true` to use
// straight-through hard one-hots in the forward pass (DESIGN.md §5 #4).
SubsetSample SampleTopVWithoutReplacement(const Var& log_weights, int v,
                                          float tau, util::Rng& rng,
                                          bool hard = false);

// Host-side hard variant (no gradients): indices of the v sampled items per
// row, using the same Gumbel-top-v scheme. Used by VTMRL-style reward
// computation and by tests as the exact counterpart of the relaxation.
std::vector<std::vector<int>> HardSampleTopV(const Tensor& log_weights, int v,
                                             util::Rng& rng);

}  // namespace core
}  // namespace contratopic

#endif  // CONTRATOPIC_CORE_SUBSET_SAMPLER_H_
