#include "core/subset_sampler.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace contratopic {
namespace core {

using namespace autodiff;  // NOLINT: op-heavy translation unit

SubsetSample SampleTopVWithoutReplacement(const Var& log_weights, int v,
                                          float tau, util::Rng& rng,
                                          bool hard) {
  CHECK_GT(v, 0);
  CHECK_GT(tau, 0.0f);
  CHECK_LE(v, log_weights.cols())
      << "cannot sample more items than are available";

  // Gumbel-perturbed keys r^1 = log w + g.
  Var r = Add(log_weights,
              Var::Constant(Tensor::RandGumbel(log_weights.rows(),
                                               log_weights.cols(), rng)));
  SubsetSample sample;
  sample.steps.reserve(v);
  for (int j = 0; j < v; ++j) {
    Var p = SoftmaxRows(MulScalar(r, 1.0f / tau));
    if (hard) {
      // Straight-through: hard one-hot forward, relaxed backward. Adding
      // (hard - soft) as a constant keeps the graph's gradient identical
      // to the relaxed p while the forward value becomes the hard vector.
      Tensor hard_minus_soft(p.rows(), p.cols());
      const Tensor& soft = p.value();
      for (int64_t row = 0; row < soft.rows(); ++row) {
        int64_t argmax = 0;
        for (int64_t c = 1; c < soft.cols(); ++c) {
          if (soft.at(row, c) > soft.at(row, argmax)) argmax = c;
        }
        for (int64_t c = 0; c < soft.cols(); ++c) {
          hard_minus_soft.at(row, c) =
              (c == argmax ? 1.0f : 0.0f) - soft.at(row, c);
        }
      }
      p = Add(p, Var::Constant(hard_minus_soft));
    }
    sample.steps.push_back(p);
    if (j + 1 < v) {
      // Exclude the sampled item: r += log(1 - p). The epsilon turns the
      // -inf at a fully-sampled coordinate into a large negative number,
      // which the next softmax maps to ~0 probability.
      r = Add(r, Log(AddScalar(Neg(p), 1.0f), 1e-20f));
    }
  }
  sample.v_hot = sample.steps[0];
  for (int j = 1; j < v; ++j) {
    sample.v_hot = Add(sample.v_hot, sample.steps[j]);
  }
  return sample;
}

std::vector<std::vector<int>> HardSampleTopV(const Tensor& log_weights, int v,
                                             util::Rng& rng) {
  CHECK_LE(v, log_weights.cols());
  std::vector<std::vector<int>> out(log_weights.rows());
  const int cols = static_cast<int>(log_weights.cols());
  for (int64_t r = 0; r < log_weights.rows(); ++r) {
    std::vector<std::pair<float, int>> keys(cols);
    for (int c = 0; c < cols; ++c) {
      keys[c] = {log_weights.at(r, c) + static_cast<float>(rng.Gumbel()), c};
    }
    std::partial_sort(
        keys.begin(), keys.begin() + v, keys.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    out[r].reserve(v);
    for (int i = 0; i < v; ++i) out[r].push_back(keys[i].second);
  }
  return out;
}

}  // namespace core
}  // namespace contratopic
