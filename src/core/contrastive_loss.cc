#include "core/contrastive_loss.h"

#include <map>
#include <mutex>
#include <utility>

#include "util/logging.h"

namespace contratopic {
namespace core {

using namespace autodiff;  // NOLINT: op-heavy translation unit

namespace {

// Masks for M = K*v samples where row index i = j*K + k belongs to topic k.
struct Masks {
  Tensor positive;     // same topic, i != j
  Tensor denominator;  // everything except self
};

Masks ComputeMasks(int num_topics, int v) {
  const int m = num_topics * v;
  Masks masks{Tensor(m, m), Tensor(m, m)};
  for (int i = 0; i < m; ++i) {
    const int topic_i = i % num_topics;
    for (int j = 0; j < m; ++j) {
      if (i == j) continue;
      masks.denominator.at(i, j) = 1.0f;
      if (j % num_topics == topic_i) masks.positive.at(i, j) = 1.0f;
    }
  }
  return masks;
}

// The masks depend only on (num_topics, v), both fixed for a training run,
// so building them per step is pure overhead (O(M^2) writes). Memoized
// process-wide; a run uses a single entry.
const Masks& BuildMasks(int num_topics, int v) {
  static std::mutex mu;
  static std::map<std::pair<int, int>, Masks>* cache =
      new std::map<std::pair<int, int>, Masks>();
  std::lock_guard<std::mutex> lock(mu);
  auto [it, inserted] = cache->try_emplace({num_topics, v});
  if (inserted) it->second = ComputeMasks(num_topics, v);
  return it->second;
}

}  // namespace

Var TopicContrastiveLoss(const std::vector<Var>& samples, const Tensor& kernel,
                         ContrastVariant variant, float temperature) {
  CHECK_GT(temperature, 0.0f);
  CHECK(!samples.empty());
  const int num_topics = static_cast<int>(samples[0].rows());
  const int v = static_cast<int>(samples.size());
  CHECK_EQ(samples[0].cols(), kernel.rows());
  CHECK_EQ(kernel.rows(), kernel.cols());

  // Stack the v draws: row j*K + k is draw j of topic k.
  Var p = ConcatRows(samples);                       // M x C
  Var kernel_var = Var::Constant(kernel);            // C x C
  Var s = MulScalar(MatMul(MatMul(p, kernel_var), p, false, true),
                    1.0f / temperature);             // M x M

  const Masks& masks = BuildMasks(num_topics, v);
  const int m = num_topics * v;
  const float inv_m = 1.0f / static_cast<float>(m);

  switch (variant) {
    case ContrastVariant::kFull: {
      Var log_pos = MaskedLogSumExpRows(s, masks.positive);
      Var log_all = MaskedLogSumExpRows(s, masks.denominator);
      return MulScalar(SumAll(Sub(log_all, log_pos)), inv_m);
    }
    case ContrastVariant::kPositiveOnly: {
      // Maximize the mean positive similarity.
      const float positives_per_anchor = static_cast<float>(v - 1);
      if (positives_per_anchor <= 0.0f) {
        // v == 1: no positive pairs exist; the term vanishes.
        return Var::Constant(Tensor::Scalar(0.0f));
      }
      Var pos_sum = SumAll(Mul(s, Var::Constant(masks.positive)));
      return MulScalar(Neg(pos_sum), inv_m / positives_per_anchor);
    }
    case ContrastVariant::kNegativeOnly: {
      // Minimize the (soft-max-weighted) negative similarity.
      Tensor negative = masks.denominator;
      negative.AddScaledInPlace(masks.positive, -1.0f);
      Var log_neg = MaskedLogSumExpRows(s, negative);
      return MulScalar(SumAll(log_neg), inv_m);
    }
  }
  LOG(FATAL) << "unreachable";
  return Var();
}

Var ExpectationContrastiveLoss(const Var& topic_word_probs,
                               const Tensor& kernel, float temperature) {
  CHECK_GT(temperature, 0.0f);
  const int k = static_cast<int>(topic_word_probs.rows());
  CHECK_EQ(topic_word_probs.cols(), kernel.rows());
  Var kernel_var = Var::Constant(kernel);
  Var s = MulScalar(MatMul(MatMul(topic_word_probs, kernel_var),
                           topic_word_probs, false, true),
                    1.0f / temperature);  // K x K
  // Positive mass: the diagonal (expected within-topic similarity);
  // denominator: the full row.
  Tensor pos_mask(k, k);
  for (int i = 0; i < k; ++i) pos_mask.at(i, i) = 1.0f;
  Var log_pos = MaskedLogSumExpRows(s, pos_mask);
  Var log_all = LogSumExpRows(s);
  return MulScalar(SumAll(Sub(log_all, log_pos)), 1.0f / static_cast<float>(k));
}

}  // namespace core
}  // namespace contratopic
