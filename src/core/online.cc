#include "core/online.h"

#include "eval/npmi.h"
#include "topicmodel/etm.h"
#include "util/logging.h"

namespace contratopic {
namespace core {

OnlineContraTopic::OnlineContraTopic(const embed::WordEmbeddings& embeddings,
                                     Options options)
    : options_(std::move(options)), embeddings_(&embeddings) {
  CHECK_GT(options_.decay, 0.0);
  CHECK_LE(options_.decay, 1.0);
  CHECK(options_.contra.variant != Variant::kInnerProduct)
      << "the online kernel refresh requires the NPMI kernel";
  // Warmup is pointless in the incremental regime: the model is only cold
  // for the very first slice, which FitSlice handles via Train().
  options_.contra.warmup_fraction = 0.0f;
}

OnlineContraTopic::SliceReport OnlineContraTopic::FitSlice(
    const text::BowCorpus& slice) {
  CHECK_GT(slice.num_docs(), 0);
  SliceReport report;
  report.slice_index = slices_seen_;

  if (counts_ == nullptr) {
    counts_ = std::make_unique<embed::CooccurrenceCounts>(slice.vocab_size());
  }
  CHECK_EQ(counts_->vocab_size(), slice.vocab_size())
      << "all slices must share one vocabulary";
  counts_->Scale(options_.decay);
  counts_->AddPresence(slice);
  auto kernel = std::make_unique<eval::NpmiMatrix>(
      eval::NpmiMatrix::FromCounts(*counts_));

  if (model_ == nullptr) {
    auto backbone = std::make_unique<topicmodel::EtmModel>(options_.train,
                                                           *embeddings_);
    model_ = std::make_unique<ContraTopicModel>(
        std::move(backbone), options_.train, options_.contra, embeddings_);
    // First slice: full Train() with the streaming kernel pre-injected
    // (Prepare() skips its own NPMI computation when a kernel is set).
    model_->SetKernel(std::move(kernel));
    report.stats = model_->Train(slice);
  } else {
    model_->SetKernel(std::move(kernel));
    report.stats = model_->TrainMore(slice, options_.epochs_per_slice);
  }
  report.accumulated_docs = counts_->num_docs();
  ++slices_seen_;
  return report;
}

tensor::Tensor OnlineContraTopic::Beta() const {
  CHECK(model_ != nullptr) << "no slice has been fit yet";
  return model_->Beta();
}

tensor::Tensor OnlineContraTopic::InferTheta(const text::BowCorpus& corpus) {
  CHECK(model_ != nullptr) << "no slice has been fit yet";
  return model_->InferTheta(corpus);
}

}  // namespace core
}  // namespace contratopic
