#include "core/online.h"

#include <algorithm>
#include <unordered_set>

#include "eval/metrics.h"
#include "eval/npmi.h"
#include "topicmodel/etm.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace contratopic {
namespace core {

namespace {

// Per-topic top-k word ids under `beta`, in TopKIndicesOfRow order.
std::vector<std::vector<int>> TopWordsOf(const tensor::Tensor& beta, int k) {
  std::vector<std::vector<int>> top(static_cast<size_t>(beta.rows()));
  for (int64_t t = 0; t < beta.rows(); ++t) {
    top[static_cast<size_t>(t)] = beta.TopKIndicesOfRow(t, k);
  }
  return top;
}

// Mean over topics of the fraction of `prev` top words absent from the
// matching `cur` topic (the serving registry applies the same metric at
// its swap gate; see serve::TopWordChurn).
double Churn(const std::vector<std::vector<int>>& prev,
             const std::vector<std::vector<int>>& cur) {
  if (prev.empty() || prev.size() != cur.size()) return 0.0;
  double total = 0.0;
  for (size_t t = 0; t < prev.size(); ++t) {
    if (prev[t].empty()) continue;
    std::unordered_set<int> now(cur[t].begin(), cur[t].end());
    size_t missing = 0;
    for (int id : prev[t]) {
      if (now.find(id) == now.end()) ++missing;
    }
    total += static_cast<double>(missing) / static_cast<double>(prev[t].size());
  }
  return total / static_cast<double>(prev.size());
}

double MeanCoherence(const std::vector<std::vector<int>>& top_words,
                     const eval::NpmiMatrix& npmi) {
  if (top_words.empty()) return 0.0;
  double total = 0.0;
  for (const std::vector<int>& ids : top_words) {
    total += npmi.MeanPairwise(ids);
  }
  return total / static_cast<double>(top_words.size());
}

}  // namespace

OnlineContraTopic::OnlineContraTopic(const embed::WordEmbeddings& embeddings,
                                     Options options)
    : options_(std::move(options)), embeddings_(&embeddings) {
  CHECK_GT(options_.decay, 0.0);
  CHECK_LE(options_.decay, 1.0);
  CHECK(options_.contra.variant != Variant::kInnerProduct)
      << "the online kernel refresh requires the NPMI kernel";
  // Warmup is pointless in the incremental regime: the model is only cold
  // for the very first slice, which FitSlice handles via Train().
  options_.contra.warmup_fraction = 0.0f;
}

OnlineContraTopic::SliceReport OnlineContraTopic::FitSlice(
    const text::BowCorpus& slice) {
  CHECK_GT(slice.num_docs(), 0);
  util::Stopwatch watch;
  SliceReport report;
  report.slice_index = slices_seen_;

  if (counts_ == nullptr) {
    counts_ = std::make_unique<embed::CooccurrenceCounts>(slice.vocab_size());
  }
  CHECK_EQ(counts_->vocab_size(), slice.vocab_size())
      << "all slices must share one vocabulary";
  counts_->Scale(options_.decay);
  counts_->AddPresence(slice);
  auto kernel = std::make_unique<eval::NpmiMatrix>(
      eval::NpmiMatrix::FromCounts(*counts_));

  if (model_ == nullptr) {
    auto backbone = std::make_unique<topicmodel::EtmModel>(options_.train,
                                                           *embeddings_);
    model_ = std::make_unique<ContraTopicModel>(
        std::move(backbone), options_.train, options_.contra, embeddings_);
    // First slice: full Train() with the streaming kernel pre-injected
    // (Prepare() skips its own NPMI computation when a kernel is set).
    model_->SetKernel(std::move(kernel));
    report.stats = model_->Train(slice);
  } else {
    model_->SetKernel(std::move(kernel));
    report.stats = model_->TrainMore(slice, options_.epochs_per_slice);
  }
  report.accumulated_docs = counts_->num_docs();

  // Drift metrics: how far this slice's topics moved from the previous
  // slice's, and their coherence under the *current* decayed kernel.
  std::vector<std::vector<int>> top_words =
      TopWordsOf(model_->Beta(), eval::kCoherenceTopWords);
  report.top_word_churn = Churn(prev_top_words_, top_words);
  const eval::NpmiMatrix* slice_kernel = model_->kernel();
  CHECK(slice_kernel != nullptr);
  report.npmi = MeanCoherence(top_words, *slice_kernel);
  report.npmi_delta = slices_seen_ > 0 ? report.npmi - prev_npmi_ : 0.0;
  prev_top_words_ = std::move(top_words);
  prev_npmi_ = report.npmi;

  if (telemetry_ != nullptr) {
    telemetry_->RecordStage(
        "online_slice", watch.ElapsedSeconds(),
        {{"slice", static_cast<double>(report.slice_index)},
         {"accumulated_docs", static_cast<double>(report.accumulated_docs)},
         {"top_word_churn", report.top_word_churn},
         {"npmi", report.npmi},
         {"npmi_delta", report.npmi_delta}});
  }

  ++slices_seen_;
  return report;
}

tensor::Tensor OnlineContraTopic::Beta() const {
  CHECK(model_ != nullptr) << "no slice has been fit yet";
  return model_->Beta();
}

tensor::Tensor OnlineContraTopic::InferTheta(const text::BowCorpus& corpus) {
  CHECK(model_ != nullptr) << "no slice has been fit yet";
  return model_->InferTheta(corpus);
}

}  // namespace core
}  // namespace contratopic
