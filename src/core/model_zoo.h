#ifndef CONTRATOPIC_CORE_MODEL_ZOO_H_
#define CONTRATOPIC_CORE_MODEL_ZOO_H_

// Factory for every model in the paper's evaluation, keyed by the names
// used in the figures/tables. Benches and examples construct models
// through this registry so each experiment lists the same lineup.

#include <memory>
#include <string>
#include <vector>

#include "core/contratopic.h"
#include "embed/word_embeddings.h"
#include "topicmodel/topic_model.h"

namespace contratopic {
namespace core {

// Model lineup of Figure 2 / Table III, in paper order.
std::vector<std::string> PaperModelNames();

// The five ablation variants of Table II.
std::vector<std::string> AblationModelNames();

// Builds a model by name. Accepted names (case-insensitive):
//   lda, prodlda, wlda, etm, nstm, wete, ntmr, vtmrl, clntm, tsctm,
//   contratopic, contratopic-p, contratopic-n, contratopic-i,
//   contratopic-s, contratopic-wlda, contratopic-wete.
// `contra_options` applies to the contratopic* names (lambda, v, ...).
std::unique_ptr<topicmodel::TopicModel> CreateModel(
    const std::string& name, const topicmodel::TrainConfig& config,
    const embed::WordEmbeddings& embeddings,
    const ContraTopicOptions& contra_options = ContraTopicOptions());

// Display name used in tables ("ContraTopic", "ProdLDA", ...).
std::string DisplayName(const std::string& zoo_name);

}  // namespace core
}  // namespace contratopic

#endif  // CONTRATOPIC_CORE_MODEL_ZOO_H_
