#include "core/contratopic.h"

#include <algorithm>
#include <unordered_set>

#include "tensor/kernels.h"
#include "topicmodel/augment.h"
#include "topicmodel/etm.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace core {

using namespace autodiff;  // NOLINT: op-heavy translation unit
using topicmodel::NeuralTopicModel;

std::string VariantName(Variant variant) {
  switch (variant) {
    case Variant::kFull:
      return "ContraTopic";
    case Variant::kPositiveOnly:
      return "ContraTopic-P";
    case Variant::kNegativeOnly:
      return "ContraTopic-N";
    case Variant::kInnerProduct:
      return "ContraTopic-I";
    case Variant::kExpectation:
      return "ContraTopic-S";
  }
  return "ContraTopic";
}

namespace {

std::string ModelName(const ContraTopicOptions& options,
                      const NeuralTopicModel& backbone) {
  std::string name = VariantName(options.variant);
  if (backbone.name() != "ETM") name += "(" + backbone.name() + ")";
  return name;
}

}  // namespace

ContraTopicModel::ContraTopicModel(
    std::unique_ptr<NeuralTopicModel> backbone,
    const topicmodel::TrainConfig& config, ContraTopicOptions options,
    const embed::WordEmbeddings* embeddings)
    : NeuralTopicModel(ModelName(options, *backbone), config),
      backbone_(std::move(backbone)),
      options_(options),
      embeddings_(embeddings) {
  if (options_.variant == Variant::kInnerProduct) {
    CHECK(embeddings_ != nullptr)
        << "ContraTopic-I needs word embeddings for its kernel";
  }
  CHECK_GT(options_.v, 0);
}

void ContraTopicModel::Prepare(const text::BowCorpus& corpus) {
  backbone_->Prepare(corpus);
  kernel_cache_valid_ = false;
  if (options_.document_contrast_weight > 0.0f) {
    doc_freq_ = corpus.DocumentFrequencies();
  }
  if (options_.variant == Variant::kInnerProduct) {
    // Embedding-cosine kernel (the NTM-R style similarity; Table II row
    // ContraTopic-I). Rows normalized so values live in [-1, 1] like NPMI.
    embedding_cosine_ = tensor::PairwiseCosine(embeddings_->vectors(),
                                               embeddings_->vectors());
  } else if (train_npmi_ == nullptr) {
    // The paper's kernel: NPMI pre-computed on the *training* corpus.
    // (Skipped when a kernel was injected via SetKernel, as in the online
    // extension where co-occurrence statistics accumulate across slices.)
    train_npmi_ =
        std::make_unique<eval::NpmiMatrix>(eval::NpmiMatrix::Compute(corpus));
  }
}

std::vector<int> ContraTopicModel::CandidateWords(
    const Tensor& beta_value) const {
  const int vocab = static_cast<int>(beta_value.cols());
  if (options_.candidate_words <= 0 || options_.candidate_words >= vocab) {
    std::vector<int> all(vocab);
    for (int i = 0; i < vocab; ++i) all[i] = i;
    return all;
  }
  // Top-k per topic is independent work; the union is order-insensitive
  // because the result is sorted before use.
  std::vector<std::vector<int>> per_topic(beta_value.rows());
  util::ThreadPool::Global().ParallelFor(
      0, beta_value.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t k = lo; k < hi; ++k) {
          per_topic[k] =
              beta_value.TopKIndicesOfRow(k, options_.candidate_words);
        }
      },
      /*grain=*/1);
  std::unordered_set<int> unioned;
  for (const auto& topic_words : per_topic) {
    unioned.insert(topic_words.begin(), topic_words.end());
  }
  std::vector<int> words(unioned.begin(), unioned.end());
  std::sort(words.begin(), words.end());
  return words;
}

Tensor ContraTopicModel::KernelSubMatrix(const std::vector<int>& words) const {
  if (kernel_cache_valid_ && kernel_cache_words_ == words) {
    return kernel_cache_;
  }
  Tensor sub;
  if (options_.variant == Variant::kInnerProduct) {
    const int n = static_cast<int>(words.size());
    sub = Tensor(n, n);
    tensor::ParallelRows(n, n, [&](int64_t lo, int64_t hi) {
      for (int64_t a = lo; a < hi; ++a) {
        for (int b = 0; b < n; ++b) {
          sub.at(a, b) = embedding_cosine_.at(words[a], words[b]);
        }
      }
    });
  } else {
    CHECK(train_npmi_ != nullptr) << "Prepare() was not called";
    sub = train_npmi_->SubMatrix(words);
  }
  if (options_.clip_kernel_at_zero) {
    sub.Apply([](float v) { return v > 0.0f ? v : 0.0f; });
  }
  kernel_cache_valid_ = true;
  kernel_cache_words_ = words;
  kernel_cache_ = sub;
  return sub;
}

NeuralTopicModel::BatchGraph ContraTopicModel::BuildBatch(
    const topicmodel::Batch& batch) {
  BatchGraph base = backbone_->BuildBatch(batch);
  CHECK(base.beta.defined());

  // Restrict to the candidate vocabulary (DESIGN.md §5 #1).
  const std::vector<int> words = CandidateWords(base.beta.value());
  Var beta_candidates = SelectColumns(base.beta, words);
  const Tensor kernel = KernelSubMatrix(words);

  Var contrast;
  switch (options_.variant) {
    case Variant::kExpectation:
      contrast = ExpectationContrastiveLoss(beta_candidates, kernel,
                                            options_.tau_contrast);
      break;
    case Variant::kPositiveOnly:
    case Variant::kNegativeOnly:
    case Variant::kFull:
    case Variant::kInnerProduct: {
      SubsetSample sample = SampleTopVWithoutReplacement(
          Log(beta_candidates, 1e-20f), options_.v, options_.tau_gumbel,
          rng_, options_.straight_through);
      ContrastVariant cv = ContrastVariant::kFull;
      if (options_.variant == Variant::kPositiveOnly) {
        cv = ContrastVariant::kPositiveOnly;
      } else if (options_.variant == Variant::kNegativeOnly) {
        cv = ContrastVariant::kNegativeOnly;
      }
      contrast = TopicContrastiveLoss(sample.steps, kernel, cv,
                                      options_.tau_contrast);
      break;
    }
  }
  last_contrastive_loss_ = contrast.value().scalar();

  // Linear lambda warmup (0 at step 0, full after warmup_fraction).
  float lambda = options_.lambda;
  if (options_.warmup_fraction > 0.0f) {
    const float ramp = static_cast<float>(TrainingProgress()) /
                       options_.warmup_fraction;
    lambda *= std::min(1.0f, ramp);
  }
  Var loss = Add(base.loss, MulScalar(contrast, lambda));
  BatchGraph out;
  out.beta = base.beta;
  out.loss_components = std::move(base.loss_components);
  out.loss_components.emplace_back(
      "l_con", static_cast<float>(last_contrastive_loss_));
  // Unweighted terms for --loss-weighting=moo: the backbone's objectives
  // (empty for backbones that predate the split, which disables MOO) plus
  // the raw contrastive terms -- MOO-derived weights then replace the
  // fixed lambda / warmup ramp.
  out.objectives = std::move(base.objectives);
  if (!out.objectives.empty()) {
    out.objectives.emplace_back("l_con", contrast);
  }
  if (options_.document_contrast_weight > 0.0f) {
    Var doc_term = DocumentContrastTerm(batch);
    if (doc_term.defined()) {
      out.loss_components.emplace_back("l_doc", doc_term.value().scalar());
      loss = Add(loss,
                 MulScalar(doc_term, options_.document_contrast_weight));
      if (!out.objectives.empty()) {
        out.objectives.emplace_back("l_doc", doc_term);
      }
    }
  }
  out.loss = loss;
  return out;
}

Var ContraTopicModel::DocumentContrastTerm(const topicmodel::Batch& batch) {
  Var h = backbone_->EncodeRepresentation(batch.normalized);
  if (!h.defined()) return Var();  // Backbone has no document encoder.
  CHECK(batch.corpus != nullptr);
  Tensor positive;
  Tensor negative;
  const Tensor tfidf = batch.corpus->TfIdfBatch(batch.indices, doc_freq_);
  topicmodel::BuildTfIdfViews(batch.normalized, tfidf,
                              /*salient_fraction=*/0.25f, &positive,
                              &negative);
  Var hn = RowL2Normalize(h);
  Var h_pos = RowL2Normalize(backbone_->EncodeRepresentation(positive));
  Var h_neg = RowL2Normalize(backbone_->EncodeRepresentation(negative));
  const float inv_tau = 1.0f / options_.document_contrast_temperature;
  Var s_pos = MulScalar(RowSum(Mul(hn, h_pos)), inv_tau);
  Var s_neg = MulScalar(RowSum(Mul(hn, h_neg)), inv_tau);
  // InfoNCE with one positive / one negative: softplus(s_neg - s_pos).
  return MeanAll(Softplus(Sub(s_neg, s_pos)));
}

Tensor ContraTopicModel::InferThetaBatch(const Tensor& x_normalized) {
  return backbone_->InferThetaBatch(x_normalized);
}

std::vector<nn::Parameter> ContraTopicModel::Parameters() {
  return backbone_->Parameters();
}

std::vector<nn::NamedTensor> ContraTopicModel::Buffers() {
  // Inference runs entirely through the backbone; the kernel / candidate
  // machinery only exists at training time and is not serving state.
  return backbone_->Buffers();
}

topicmodel::ModelDescriptor ContraTopicModel::Describe() const {
  topicmodel::ModelDescriptor backbone_desc = backbone_->Describe();
  topicmodel::ModelDescriptor d;
  d.display_name = name_;
  d.config = config_;
  d.vocab_size = backbone_desc.vocab_size;
  d.embedding_dim = backbone_desc.embedding_dim;
  std::string suffix;
  switch (options_.variant) {
    case Variant::kFull:
      break;
    case Variant::kPositiveOnly:
      suffix = "-p";
      break;
    case Variant::kNegativeOnly:
      suffix = "-n";
      break;
    case Variant::kInnerProduct:
      suffix = "-i";
      break;
    case Variant::kExpectation:
      suffix = "-s";
      break;
  }
  if (backbone_desc.type == "etm") {
    d.type = "contratopic" + suffix;
  } else if (suffix.empty() && backbone_desc.type == "wlda") {
    d.type = "contratopic-wlda";
  } else if (suffix.empty() && backbone_desc.type == "wete") {
    d.type = "contratopic-wete";
  }
  // Else: no zoo name covers this backbone/variant combination, so the
  // descriptor stays non-checkpointable (type empty).
  d.extras.emplace_back("lambda", util::StrFormat("%.9g", options_.lambda));
  d.extras.emplace_back("v", std::to_string(options_.v));
  d.extras.emplace_back("tau_gumbel",
                        util::StrFormat("%.9g", options_.tau_gumbel));
  d.extras.emplace_back("tau_contrast",
                        util::StrFormat("%.9g", options_.tau_contrast));
  d.extras.emplace_back("candidate_words",
                        std::to_string(options_.candidate_words));
  d.extras.emplace_back("clip_kernel_at_zero",
                        options_.clip_kernel_at_zero ? "1" : "0");
  d.extras.emplace_back("warmup_fraction",
                        util::StrFormat("%.9g", options_.warmup_fraction));
  d.extras.emplace_back("straight_through",
                        options_.straight_through ? "1" : "0");
  d.extras.emplace_back(
      "document_contrast_weight",
      util::StrFormat("%.9g", options_.document_contrast_weight));
  d.extras.emplace_back(
      "document_contrast_temperature",
      util::StrFormat("%.9g", options_.document_contrast_temperature));
  for (const auto& [key, value] : backbone_desc.extras) {
    d.extras.emplace_back("backbone." + key, value);
  }
  return d;
}

void ContraTopicModel::SetTraining(bool training) {
  training_ = training;
  backbone_->SetTraining(training);
}

std::vector<util::Rng*> ContraTopicModel::TrainingRngs() {
  std::vector<util::Rng*> streams = {&rng_};
  for (util::Rng* stream : backbone_->TrainingRngs()) {
    streams.push_back(stream);
  }
  return streams;
}

void ContraTopicModel::SetKernel(std::unique_ptr<eval::NpmiMatrix> npmi) {
  CHECK(options_.variant != Variant::kInnerProduct)
      << "ContraTopic-I uses an embedding kernel";
  train_npmi_ = std::move(npmi);
  kernel_cache_valid_ = false;
}

int64_t ContraTopicModel::ExtraMemoryBytes() const {
  if (train_npmi_ != nullptr) return train_npmi_->MemoryBytes();
  return embedding_cosine_.numel() * static_cast<int64_t>(sizeof(float));
}

std::unique_ptr<ContraTopicModel> MakeContraTopicEtm(
    const topicmodel::TrainConfig& config,
    const embed::WordEmbeddings& embeddings, ContraTopicOptions options) {
  auto backbone = std::make_unique<topicmodel::EtmModel>(config, embeddings);
  return std::make_unique<ContraTopicModel>(std::move(backbone), config,
                                            options, &embeddings);
}

}  // namespace core
}  // namespace contratopic
