#ifndef CONTRATOPIC_CORE_CONTRATOPIC_H_
#define CONTRATOPIC_CORE_CONTRATOPIC_H_

// ContraTopic (the paper's contribution): any neural topic model backbone
// plus the topic-wise contrastive regularizer,
//     L = L_rec + L_kl + lambda * L_con        (Eq. 6)
// where L_con contrasts words sampled differentiably from each topic's
// word distribution (Gumbel relaxed top-v, §IV.B) under a pre-computed
// NPMI similarity kernel (§IV.A).
//
// The backbone is pluggable (ETM by default; WLDA / WeTe for the paper's
// Figure 6 backbone-substitution study). Ablation variants (Table II):
//   kFull         ContraTopic
//   kPositiveOnly ContraTopic-P   positive pairs only
//   kNegativeOnly ContraTopic-N   negative pairs only
//   kInnerProduct ContraTopic-I   embedding-cosine kernel instead of NPMI
//   kExpectation  ContraTopic-S   beta expectation instead of sampling

#include <memory>
#include <string>

#include "core/contrastive_loss.h"
#include "core/subset_sampler.h"
#include "embed/word_embeddings.h"
#include "eval/npmi.h"
#include "topicmodel/neural_base.h"

namespace contratopic {
namespace core {

enum class Variant {
  kFull,
  kPositiveOnly,
  kNegativeOnly,
  kInnerProduct,
  kExpectation,
};

// Human-readable suffix, e.g. "ContraTopic-P".
std::string VariantName(Variant variant);

struct ContraTopicOptions {
  // Regularizer weight (paper: 40 on 20NG/Yahoo, 300 on NYTimes).
  float lambda = 40.0f;
  // Words sampled per topic (paper: v = 10).
  int v = 10;
  // Gumbel-softmax temperature (paper: tau_g = 0.5).
  float tau_gumbel = 0.5f;
  // Contrastive sharpening temperature dividing the pairwise similarities.
  float tau_contrast = 0.7f;
  // CPU optimization: restrict the contrastive term to the union of each
  // topic's top-`candidate_words` words (0 = full vocabulary). See
  // DESIGN.md §5; gradients only reach words that can appear in a top-v
  // draw, so the restriction is lossless in practice.
  int candidate_words = 64;
  Variant variant = Variant::kFull;
  // Clip kernel similarities at zero (PPMI-style). Without clipping, word
  // pairs that never co-occur score NPMI = -1 with *everything*, making
  // "topics of mutually rare junk words" a strong attractor for the
  // negative-pair term; clipping caps the negatives' payoff at
  // independence so the loss can only be lowered by genuine coherence
  // and genuine diversity. See DESIGN.md §5.
  bool clip_kernel_at_zero = true;
  // Fraction of training during which lambda ramps linearly from 0. The
  // contrastive term needs a meaningful beta to sample from; applied to a
  // randomly initialized model it amplifies arbitrary early structure.
  float warmup_fraction = 0.4f;
  // Straight-through hard sampling (off = fully relaxed, like the paper).
  bool straight_through = false;
  // Paper §VI future work: a unified multi-level objective that adds a
  // *document-wise* InfoNCE term (CLNTM-style tf-idf views on the
  // document representations) on top of the topic-wise term. 0 disables.
  float document_contrast_weight = 0.0f;
  float document_contrast_temperature = 0.5f;
};

class ContraTopicModel : public topicmodel::NeuralTopicModel {
 public:
  // `backbone` supplies the base objective and the differentiable beta.
  // `embeddings` is only required for the kInnerProduct variant (may be
  // null otherwise).
  ContraTopicModel(std::unique_ptr<topicmodel::NeuralTopicModel> backbone,
                   const topicmodel::TrainConfig& config,
                   ContraTopicOptions options,
                   const embed::WordEmbeddings* embeddings = nullptr);

  void Prepare(const text::BowCorpus& corpus) override;
  BatchGraph BuildBatch(const topicmodel::Batch& batch) override;
  Tensor InferThetaBatch(const Tensor& x_normalized) override;
  std::vector<nn::Parameter> Parameters() override;
  std::vector<nn::NamedTensor> Buffers() override;
  topicmodel::ModelDescriptor Describe() const override;
  void SetTraining(bool training) override;
  // The wrapper's own stream (shuffles, Gumbel subset draws) plus the
  // backbone's (its encoder noise comes from its own generator).
  std::vector<util::Rng*> TrainingRngs() override;
  int64_t ExtraMemoryBytes() const override;

  const ContraTopicOptions& options() const { return options_; }

  // The regularizer value of the most recent batch (for diagnostics).
  float last_contrastive_loss() const { return last_contrastive_loss_; }

  // Access to the wrapped backbone (e.g. for the multi-level term).
  topicmodel::NeuralTopicModel* backbone() { return backbone_.get(); }

  // Replaces the NPMI kernel (online extension: the co-occurrence
  // statistics evolve as new time slices arrive).
  void SetKernel(std::unique_ptr<eval::NpmiMatrix> npmi);

  // The current NPMI kernel (null before Prepare()/SetKernel). The online
  // driver scores per-slice drift metrics against it.
  const eval::NpmiMatrix* kernel() const { return train_npmi_.get(); }

 private:
  // Union of each topic's top candidate words under the current beta.
  std::vector<int> CandidateWords(const Tensor& beta_value) const;
  // Kernel submatrix over `words` (NPMI or embedding cosine).
  Tensor KernelSubMatrix(const std::vector<int>& words) const;

  // Optional CLNTM-style document-wise InfoNCE term (multi-level variant).
  Var DocumentContrastTerm(const topicmodel::Batch& batch);

  std::unique_ptr<topicmodel::NeuralTopicModel> backbone_;
  std::vector<int> doc_freq_;  // for the multi-level tf-idf views
  ContraTopicOptions options_;
  const embed::WordEmbeddings* embeddings_;
  std::unique_ptr<eval::NpmiMatrix> train_npmi_;
  Tensor embedding_cosine_;  // V x V, only for kInnerProduct
  float last_contrastive_loss_ = 0.0f;

  // Single-entry gather cache for KernelSubMatrix: consecutive steps often
  // pick the same candidate set (beta moves slowly), and the kernel itself
  // is fixed between Prepare()/SetKernel() calls, so the O(|words|^2)
  // gather can be reused verbatim. Mutable: the method is logically const.
  mutable bool kernel_cache_valid_ = false;
  mutable std::vector<int> kernel_cache_words_;
  mutable Tensor kernel_cache_;
};

// Convenience factory: ETM backbone with the paper's defaults.
std::unique_ptr<ContraTopicModel> MakeContraTopicEtm(
    const topicmodel::TrainConfig& config,
    const embed::WordEmbeddings& embeddings,
    ContraTopicOptions options = ContraTopicOptions());

}  // namespace core
}  // namespace contratopic

#endif  // CONTRATOPIC_CORE_CONTRATOPIC_H_
