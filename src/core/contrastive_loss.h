#ifndef CONTRATOPIC_CORE_CONTRASTIVE_LOSS_H_
#define CONTRATOPIC_CORE_CONTRASTIVE_LOSS_H_

// The topic-wise supervised-contrastive regularizer (paper §IV.A, Eq. 2).
//
// Samples are words drawn from topics: words from the same topic are
// positives, words from different topics are negatives. With relaxed
// one-hot samples P (M x C, M = K*v rows over a candidate vocabulary of
// size C) and a fixed similarity kernel Kmat (C x C, pre-computed NPMI or
// embedding inner products), pairwise sample similarities are
//     S = P Kmat P^T          (M x M)
// and the loss is
//     L = sum_i -log( sum_{p in P(i)} exp(S_ip) / sum_{a != i} exp(S_ia) ).
// Maximizing within-topic similarity optimizes coherence; the denominator
// pushes cross-topic similarity down, optimizing diversity.

#include <vector>

#include "tensor/autodiff.h"

namespace contratopic {
namespace core {

using autodiff::Var;
using tensor::Tensor;

enum class ContrastVariant {
  kFull,          // ContraTopic: positives and negatives (Eq. 2)
  kPositiveOnly,  // ContraTopic-P: maximize positive-pair similarity only
  kNegativeOnly,  // ContraTopic-N: minimize negative-pair similarity only
};

// `samples` holds v relaxed one-hot matrices of shape K x C (one per
// Gumbel draw); row k of each belongs to topic k. `kernel` is the constant
// C x C similarity matrix. Returns the scalar loss, normalized by the
// number of anchors M = K*v.
// `temperature` divides the similarities before the log-sum-exp (the
// usual contrastive sharpening; NPMI lives in [-1, 1], so tau well below 1
// is needed for the hardest negatives to dominate the denominator).
Var TopicContrastiveLoss(const std::vector<Var>& samples,
                         const Tensor& kernel,
                         ContrastVariant variant = ContrastVariant::kFull,
                         float temperature = 0.2f);

// Expectation variant (ContraTopic-S): uses each topic's candidate-word
// probability row directly (K x C) instead of sampled subsets; within-topic
// similarity is the diagonal of B Kmat B^T, cross-topic the off-diagonal.
Var ExpectationContrastiveLoss(const Var& topic_word_probs,
                               const Tensor& kernel,
                               float temperature = 0.2f);

}  // namespace core
}  // namespace contratopic

#endif  // CONTRATOPIC_CORE_CONTRASTIVE_LOSS_H_
