#ifndef CONTRATOPIC_CORE_ONLINE_H_
#define CONTRATOPIC_CORE_ONLINE_H_

// Online ContraTopic: the paper's §VI future-work extension to streaming
// corpora partitioned into time slices (in the spirit of AlSumait et al.'s
// On-line LDA). Per slice:
//   1. the document co-occurrence accumulator is decayed (exponential
//      forgetting) and updated with the new slice,
//   2. the contrastive kernel is rebuilt from the decayed counts, and
//   3. the warm-started model trains for a few epochs on the slice.
// The topic-word distribution therefore tracks theme drift while the
// regularizer keeps each slice's topics coherent and diverse.

#include <memory>
#include <vector>

#include "core/contratopic.h"
#include "embed/cooccurrence.h"
#include "embed/word_embeddings.h"
#include "util/telemetry.h"

namespace contratopic {
namespace core {

class OnlineContraTopic {
 public:
  struct Options {
    topicmodel::TrainConfig train;
    ContraTopicOptions contra;
    // Exponential forgetting factor applied to the co-occurrence counts
    // before each new slice (1.0 = never forget).
    double decay = 0.7;
    int epochs_per_slice = 6;
  };

  struct SliceReport {
    int slice_index = 0;
    topicmodel::TrainStats stats;
    int64_t accumulated_docs = 0;  // effective (decayed) document count
    // Drift metrics (this slice vs the previous one; zero on slice 0).
    // Mean fraction of each topic's previous top-10 words replaced by
    // this slice's fit -- how fast the topics are tracking the stream.
    double top_word_churn = 0.0;
    // Mean per-topic top-word coherence under this slice's decayed NPMI
    // kernel, and its change against the previous slice.
    double npmi = 0.0;
    double npmi_delta = 0.0;
  };

  OnlineContraTopic(const embed::WordEmbeddings& embeddings, Options options);

  // Consumes the next time slice (chronological order). The first call
  // initializes the model; later calls warm-start from the current state.
  SliceReport FitSlice(const text::BowCorpus& slice);

  // Current topic-word distribution / inference, as in TopicModel.
  tensor::Tensor Beta() const;
  tensor::Tensor InferTheta(const text::BowCorpus& corpus);

  int num_slices_seen() const { return slices_seen_; }
  const ContraTopicModel& model() const { return *model_; }
  // Non-const access, e.g. for checkpointing the warm model between
  // slices (serve::SaveCheckpoint takes a mutable TopicModel&).
  ContraTopicModel& mutable_model() { return *model_; }

  // The decayed co-occurrence accumulator (null before the first slice).
  // A continual-serving loop rebuilds its swap-gate coherence reference
  // (eval::NpmiMatrix::FromCounts) from this.
  const embed::CooccurrenceCounts* counts() const { return counts_.get(); }

  // Per-slice drift metrics are mirrored as "online_slice" stage records
  // on this sink (not owned; may be null).
  void SetTelemetry(util::RunTelemetry* telemetry) { telemetry_ = telemetry; }

 private:
  Options options_;
  const embed::WordEmbeddings* embeddings_;
  std::unique_ptr<ContraTopicModel> model_;
  std::unique_ptr<embed::CooccurrenceCounts> counts_;
  int slices_seen_ = 0;
  // Previous slice's per-topic top words and coherence, for the drift
  // metrics.
  std::vector<std::vector<int>> prev_top_words_;
  double prev_npmi_ = 0.0;
  util::RunTelemetry* telemetry_ = nullptr;
};

}  // namespace core
}  // namespace contratopic

#endif  // CONTRATOPIC_CORE_ONLINE_H_
