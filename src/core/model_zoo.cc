#include "core/model_zoo.h"

#include "topicmodel/clntm.h"
#include "topicmodel/etm.h"
#include "topicmodel/lda.h"
#include "topicmodel/nstm.h"
#include "topicmodel/ntmr.h"
#include "topicmodel/prodlda.h"
#include "topicmodel/tsctm.h"
#include "topicmodel/vtmrl.h"
#include "topicmodel/wete.h"
#include "topicmodel/wlda.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace contratopic {
namespace core {

using topicmodel::TopicModel;
using topicmodel::TrainConfig;

std::vector<std::string> PaperModelNames() {
  return {"lda",  "prodlda", "wlda",  "etm",   "nstm",  "wete",
          "ntmr", "vtmrl",   "clntm", "tsctm", "contratopic"};
}

std::vector<std::string> AblationModelNames() {
  return {"contratopic", "contratopic-p", "contratopic-n", "contratopic-i",
          "contratopic-s"};
}

std::unique_ptr<TopicModel> CreateModel(
    const std::string& raw_name, const TrainConfig& config,
    const embed::WordEmbeddings& embeddings,
    const ContraTopicOptions& contra_options) {
  const std::string name = util::ToLower(raw_name);
  const int vocab = embeddings.vocab_size();

  if (name == "lda") {
    return std::make_unique<topicmodel::LdaModel>(config.num_topics,
                                                  config.seed);
  }
  if (name == "prodlda") {
    return std::make_unique<topicmodel::ProdLdaModel>(config, vocab);
  }
  if (name == "wlda") {
    return std::make_unique<topicmodel::WldaModel>(config, vocab);
  }
  if (name == "etm") {
    return std::make_unique<topicmodel::EtmModel>(config, embeddings);
  }
  if (name == "nstm") {
    return std::make_unique<topicmodel::NstmModel>(config, embeddings);
  }
  if (name == "wete") {
    return std::make_unique<topicmodel::WeTeModel>(config, embeddings);
  }
  if (name == "ntmr") {
    return std::make_unique<topicmodel::NtmrModel>(config, embeddings);
  }
  if (name == "vtmrl") {
    return std::make_unique<topicmodel::VtmrlModel>(config, embeddings);
  }
  if (name == "clntm") {
    return std::make_unique<topicmodel::ClntmModel>(config, embeddings);
  }
  if (name == "tsctm") {
    return std::make_unique<topicmodel::TsctmModel>(config, embeddings);
  }

  // ContraTopic family.
  ContraTopicOptions options = contra_options;
  std::unique_ptr<topicmodel::NeuralTopicModel> backbone;
  std::string variant_part = name;
  if (name == "contratopic-wlda") {
    backbone = std::make_unique<topicmodel::WldaModel>(config, vocab);
    variant_part = "contratopic";
  } else if (name == "contratopic-wete") {
    backbone = std::make_unique<topicmodel::WeTeModel>(config, embeddings);
    variant_part = "contratopic";
  } else {
    backbone = std::make_unique<topicmodel::EtmModel>(config, embeddings);
  }

  if (variant_part == "contratopic") {
    options.variant = Variant::kFull;
  } else if (variant_part == "contratopic-p") {
    options.variant = Variant::kPositiveOnly;
  } else if (variant_part == "contratopic-n") {
    options.variant = Variant::kNegativeOnly;
  } else if (variant_part == "contratopic-i") {
    options.variant = Variant::kInnerProduct;
  } else if (variant_part == "contratopic-s") {
    options.variant = Variant::kExpectation;
  } else {
    LOG(FATAL) << "unknown model name: " << raw_name;
  }
  return std::make_unique<ContraTopicModel>(std::move(backbone), config,
                                            options, &embeddings);
}

std::string DisplayName(const std::string& zoo_name) {
  const std::string name = util::ToLower(zoo_name);
  if (name == "lda") return "LDA";
  if (name == "prodlda") return "ProdLDA";
  if (name == "wlda") return "WLDA";
  if (name == "etm") return "ETM";
  if (name == "nstm") return "NSTM";
  if (name == "wete") return "WeTe";
  if (name == "ntmr") return "NTM-R";
  if (name == "vtmrl") return "VTMRL";
  if (name == "clntm") return "CLNTM";
  if (name == "tsctm") return "TSCTM";
  if (name == "contratopic") return "ContraTopic";
  if (name == "contratopic-p") return "ContraTopic-P";
  if (name == "contratopic-n") return "ContraTopic-N";
  if (name == "contratopic-i") return "ContraTopic-I";
  if (name == "contratopic-s") return "ContraTopic-S";
  if (name == "contratopic-wlda") return "ContraTopic(WLDA)";
  if (name == "contratopic-wete") return "ContraTopic(WeTe)";
  return zoo_name;
}

}  // namespace core
}  // namespace contratopic
