#!/usr/bin/env python3
"""Validates a run-telemetry JSONL artifact (DESIGN.md §9).

Usage: check_telemetry.py [--mode=train|serve|faults|swaps] <telemetry.jsonl>

Checks, in order:
  1. every line parses as a JSON object with a "type" field;
  2. at least one run_start record and at least one stage record exist;
  3. exactly one manifest record exists and it is the last line;
  4. every epoch record carries finite (non-null) loss, npmi, diversity;
  5. the manifest summary reports bitwise_identical == 1 and
     metrics_finite == 1 when those keys are present (bench-smoke runs
     emit them; other producers may not).

Modes (default: train):
  train   epoch records are required (a training run that streamed no
          epochs is broken);
  serve   a serving run (bench_serve --mode=serve): no epoch records are
          expected; instead exactly one serve_stats record must exist
          with non-negative counters, requests >= batches, and a
          bitwise_mismatches == 0 manifest summary;
  faults  a chaos run (bench_parallel_training --kill-at-epoch=N
          --resume): everything train checks, plus the manifest counters
          must prove the faults actually fired (fault.injected >= 1,
          train.rollbacks >= 1) and the serving leg both retried and
          degraded (serve.retries >= 1, serve.degraded >= 1), and the
          summary must report chaos_ok == 1 (and
          resume_bitwise_identical == 1 when present). A chaos run whose
          injected faults never fire validates nothing.
  swaps   a continual-serving hot-swap run (bench_serve --mode=hotswap
          with chaos armed): at least one swap.published, swap.rejected,
          and swap.rolled_back stage record must exist with sane fields
          (version >= 1, churn in [0, 1], retries >= 0), the manifest
          swap.* counters must agree with the stage record counts, the
          chaos leg must have actually retried (swap.retries >= 1), and
          the summary must report failed_requests == 0 -- swapping must
          never cost a request.

Exit code 0 on success, 1 with a diagnostic on the first failure.
"""

import json
import math
import sys


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def is_finite_number(value):
    return isinstance(value, (int, float)) and math.isfinite(value)


def check_serve_stats(records):
    """Validates the serve_stats records of a serving run."""
    if len(records) != 1:
        fail(f"expected exactly one serve_stats record, found {len(records)}")
    stats = records[0]
    counters = ("requests", "batches", "cache_hits", "shed", "invalid",
                "max_batch_size", "max_queue_depth")
    for key in counters:
        if key not in stats:
            fail(f"serve_stats missing '{key}': {stats}")
        if not is_finite_number(stats[key]) or stats[key] < 0:
            fail(f"serve_stats has invalid '{key}': {stats}")
    if stats["requests"] < stats["batches"]:
        fail(f"serve_stats requests < batches: {stats}")
    if stats["requests"] > 0 and stats["batches"] == 0 and stats["cache_hits"] == 0:
        fail(f"serve_stats shows requests but no batches or cache hits: {stats}")
    # Deterministic sinks omit latency; when present it must be sane.
    latency = stats.get("latency_ms")
    if latency is not None:
        for p in ("p50", "p95", "p99"):
            if not is_finite_number(latency.get(p)) or latency[p] < 0:
                fail(f"serve_stats has invalid latency '{p}': {stats}")
        if not latency["p50"] <= latency["p95"] <= latency["p99"]:
            fail(f"serve_stats latency percentiles not monotone: {stats}")


def check_swap_events(stages, manifest):
    """Validates the swap.* lifecycle events of a hot-swap run."""
    events = {"swap.published": [], "swap.rejected": [], "swap.rolled_back": []}
    for record in stages:
        name = record.get("name")
        if name in events:
            events[name].append(record)
    for name, found in events.items():
        if not found:
            fail(f"no {name} stage record; the hot-swap run proved nothing")
        for record in found:
            version = record.get("version")
            # Rejected candidates never get a version; -1 is the sentinel.
            min_version = -1 if name == "swap.rejected" else 1
            if not is_finite_number(version) or version < min_version:
                fail(f"{name} record has invalid 'version': {record}")
            churn = record.get("top_word_churn")
            if not is_finite_number(churn) or not 0.0 <= churn <= 1.0:
                fail(f"{name} record has invalid 'top_word_churn': {record}")
            retries = record.get("retries")
            if not is_finite_number(retries) or retries < 0:
                fail(f"{name} record has invalid 'retries': {record}")
    counters = manifest.get("counters", {})
    for name, found in events.items():
        if counters.get(name) != len(found):
            fail(
                f"manifest counter {name}={counters.get(name)} disagrees "
                f"with {len(found)} stage record(s)"
            )
    retries = counters.get("swap.retries")
    if not is_finite_number(retries) or retries < 1:
        fail(
            f"hot-swap run has counter swap.retries={retries}, want >= 1; "
            "a chaos run whose faults never fire validates nothing"
        )
    summary = manifest.get("summary", {})
    if summary.get("failed_requests") != 0:
        fail(
            "hot-swap run manifest summary reports failed_requests="
            f"{summary.get('failed_requests')}, want 0"
        )
    return sum(len(found) for found in events.values())


def main():
    args = sys.argv[1:]
    mode = "train"
    paths = []
    for arg in args:
        if arg.startswith("--mode="):
            mode = arg[len("--mode="):]
        else:
            paths.append(arg)
    if len(paths) != 1 or mode not in ("train", "serve", "faults", "swaps"):
        fail(
            "usage: check_telemetry.py [--mode=train|serve|faults|swaps]"
            " <telemetry.jsonl>"
        )
    path = paths[0]
    try:
        with open(path, encoding="utf-8") as f:
            lines = [line.rstrip("\n") for line in f if line.strip()]
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    if not lines:
        fail(f"{path} is empty")

    records = []
    for i, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i}: invalid JSON: {e}")
        if not isinstance(record, dict) or "type" not in record:
            fail(f"{path}:{i}: record is not an object with a 'type' field")
        records.append(record)

    by_type = {}
    for record in records:
        by_type.setdefault(record["type"], []).append(record)

    if "run_start" not in by_type:
        fail("no run_start record")
    if "stage" not in by_type:
        fail("no stage record")
    manifests = by_type.get("manifest", [])
    if len(manifests) != 1:
        fail(f"expected exactly one manifest record, found {len(manifests)}")
    if records[-1]["type"] != "manifest":
        fail("manifest is not the last record")

    epochs = by_type.get("epoch", [])
    for record in epochs:
        for key in ("loss", "npmi", "diversity"):
            if key not in record:
                fail(f"epoch record missing '{key}': {record}")
            if not is_finite_number(record[key]):
                # Non-finite doubles serialize as JSON null — a NaN metric
                # is a broken run even when the process exited 0.
                fail(f"epoch record has non-finite '{key}': {record}")

    summary = manifests[0].get("summary", {})
    for key in ("bitwise_identical", "metrics_finite"):
        if key in summary and summary[key] != 1:
            fail(f"manifest summary reports {key}={summary[key]}")

    detail = ""
    if mode == "serve":
        check_serve_stats(by_type.get("serve_stats", []))
        if summary.get("bitwise_mismatches", 0) != 0:
            fail(
                "manifest summary reports bitwise_mismatches="
                f"{summary['bitwise_mismatches']}"
            )
        detail = "serve_stats valid"
    elif mode == "swaps":
        n_events = check_swap_events(by_type["stage"], manifests[0])
        detail = f"{n_events} swap lifecycle event(s) proven"
    else:
        if not epochs:
            fail("no epoch records")
        detail = f"{len(epochs)} epoch record(s)"
        if mode == "faults":
            counters = manifests[0].get("counters", {})
            for key in ("fault.injected", "train.rollbacks"):
                value = counters.get(key)
                if not is_finite_number(value) or value < 1:
                    fail(f"faults run has counter {key}={value}, want >= 1")
            for key in ("serve.retries", "serve.degraded"):
                value = counters.get(key)
                if not is_finite_number(value) or value < 1:
                    fail(f"faults run has counter {key}={value}, want >= 1")
            value = counters.get("train.checkpoint_failures")
            if value is not None and (not is_finite_number(value) or value < 0):
                fail(f"faults run has counter train.checkpoint_failures={value}")
            if summary.get("chaos_ok") != 1:
                fail(
                    "faults run manifest summary reports "
                    f"chaos_ok={summary.get('chaos_ok')}, want 1"
                )
            if "resume_bitwise_identical" in summary and \
                    summary["resume_bitwise_identical"] != 1:
                fail(
                    "faults run manifest summary reports "
                    "resume_bitwise_identical="
                    f"{summary['resume_bitwise_identical']}"
                )
            detail += ", fault counters proven"

    n_runs = len(by_type["run_start"])
    print(
        f"check_telemetry: OK: {len(records)} records, {n_runs} run(s), "
        f"{detail}, manifest present"
    )


if __name__ == "__main__":
    main()
