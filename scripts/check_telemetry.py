#!/usr/bin/env python3
"""Validates a run-telemetry JSONL artifact (DESIGN.md §9).

Usage: check_telemetry.py <telemetry.jsonl>

Checks, in order:
  1. every line parses as a JSON object with a "type" field;
  2. at least one run_start record and at least one stage record exist;
  3. exactly one manifest record exists and it is the last line;
  4. every epoch record carries finite (non-null) loss, npmi, diversity;
  5. the manifest summary reports bitwise_identical == 1 and
     metrics_finite == 1 when those keys are present (bench-smoke runs
     emit them; other producers may not).

Exit code 0 on success, 1 with a diagnostic on the first failure.
"""

import json
import math
import sys


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def is_finite_number(value):
    return isinstance(value, (int, float)) and math.isfinite(value)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_telemetry.py <telemetry.jsonl>")
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            lines = [line.rstrip("\n") for line in f if line.strip()]
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    if not lines:
        fail(f"{path} is empty")

    records = []
    for i, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i}: invalid JSON: {e}")
        if not isinstance(record, dict) or "type" not in record:
            fail(f"{path}:{i}: record is not an object with a 'type' field")
        records.append(record)

    by_type = {}
    for record in records:
        by_type.setdefault(record["type"], []).append(record)

    if "run_start" not in by_type:
        fail("no run_start record")
    if "stage" not in by_type:
        fail("no stage record")
    manifests = by_type.get("manifest", [])
    if len(manifests) != 1:
        fail(f"expected exactly one manifest record, found {len(manifests)}")
    if records[-1]["type"] != "manifest":
        fail("manifest is not the last record")

    epochs = by_type.get("epoch", [])
    for record in epochs:
        for key in ("loss", "npmi", "diversity"):
            if key not in record:
                fail(f"epoch record missing '{key}': {record}")
            if not is_finite_number(record[key]):
                # Non-finite doubles serialize as JSON null — a NaN metric
                # is a broken run even when the process exited 0.
                fail(f"epoch record has non-finite '{key}': {record}")
    if not epochs:
        fail("no epoch records")

    summary = manifests[0].get("summary", {})
    for key in ("bitwise_identical", "metrics_finite"):
        if key in summary and summary[key] != 1:
            fail(f"manifest summary reports {key}={summary[key]}")

    n_runs = len(by_type["run_start"])
    print(
        f"check_telemetry: OK: {len(records)} records, {n_runs} run(s), "
        f"{len(epochs)} epoch record(s), manifest present"
    )


if __name__ == "__main__":
    main()
