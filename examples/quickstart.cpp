// Quickstart: generate a corpus, train ETM and ContraTopic, and compare
// topic interpretability. Mirrors the paper's headline claim at toy scale:
// the topic-wise contrastive regularizer lifts NPMI coherence and topic
// diversity over the unregularized backbone.
//
// Run: ./quickstart [--epochs=N] [--topics=K] [--lambda=L] [--scale=S]

#include <cstdio>
#include <memory>

#include "core/contratopic.h"
#include "embed/word_embeddings.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "text/synthetic.h"
#include "topicmodel/etm.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace contratopic;  // NOLINT: example code

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  // 1. Data: a synthetic 20NG-like corpus (see DESIGN.md for why the
  //    paper's corpora are simulated).
  text::SyntheticConfig data_config =
      text::Preset20NG(flags.GetDouble("scale", 0.5));
  text::SyntheticDataset dataset = text::GenerateSynthetic(data_config);
  std::printf("corpus: %d train / %d test docs, vocab %d\n",
              dataset.train.num_docs(), dataset.test.num_docs(),
              dataset.train.vocab_size());

  // 2. Frozen word embeddings: PPMI-SVD trained on a *reference* corpus
  //    (the stand-in for GloVe-on-Wikipedia; see DESIGN.md).
  text::BowCorpus reference =
      text::GenerateReferenceCorpus(data_config, dataset.train.vocab());
  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 48;
  embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(reference, embed_config);

  // 3. Train the plain backbone and ContraTopic with shared settings.
  topicmodel::TrainConfig train;
  train.num_topics = flags.GetInt("topics", 20);
  train.epochs = flags.GetInt("epochs", 10);
  train.batch_size = 256;
  train.encoder_hidden = 96;
  train.verbose = flags.GetBool("verbose", false);

  topicmodel::EtmModel etm(train, embeddings);
  std::printf("training %s ...\n", etm.name().c_str());
  etm.Train(dataset.train);

  core::ContraTopicOptions contra;
  contra.lambda = static_cast<float>(flags.GetDouble("lambda", 40.0));
  contra.v = flags.GetInt("v", 10);
  contra.tau_contrast = static_cast<float>(flags.GetDouble("tauc", 0.7));
  auto contratopic = core::MakeContraTopicEtm(train, embeddings, contra);
  std::printf("training %s (lambda=%.0f, v=%d) ...\n",
              contratopic->name().c_str(), contra.lambda, contra.v);
  contratopic->Train(dataset.train);

  // 4. Evaluate on the held-out test co-occurrence statistics.
  eval::NpmiMatrix test_npmi = eval::NpmiMatrix::Compute(dataset.test);
  for (topicmodel::TopicModel* model :
       {static_cast<topicmodel::TopicModel*>(&etm),
        static_cast<topicmodel::TopicModel*>(contratopic.get())}) {
    eval::InterpretabilityCurve curve = eval::EvaluateInterpretability(
        model->Beta(), test_npmi, {0.1, 0.5, 1.0});
    std::printf(
        "%-14s coherence@10%%=%.3f @50%%=%.3f @100%%=%.3f | "
        "diversity@10%%=%.3f @50%%=%.3f @100%%=%.3f\n",
        model->name().c_str(), curve.coherence[0], curve.coherence[1],
        curve.coherence[2], curve.diversity[0], curve.diversity[1],
        curve.diversity[2]);
  }

  // 5. Show ContraTopic's top topics with their words.
  const tensor::Tensor beta = contratopic->Beta();
  const std::vector<double> coherence =
      eval::PerTopicCoherence(beta, test_npmi);
  const std::vector<int> order = eval::TopicsByCoherence(coherence);
  std::printf("\ntop 5 ContraTopic topics (test NPMI):\n");
  for (int i = 0; i < 5 && i < static_cast<int>(order.size()); ++i) {
    const int k = order[i];
    std::printf("  [%5.2f]", coherence[k]);
    for (int w : beta.TopKIndicesOfRow(k, 8)) {
      std::printf(" %s", dataset.train.vocab().Word(w).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
