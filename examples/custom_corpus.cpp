// Bringing your own documents: runs the full preprocessing pipeline on raw
// text (tokenization, stop words, document-frequency filters), trains
// corpus-specific embeddings, and fits ContraTopic -- the path a downstream
// user takes to apply the library to their own data.
//
// Run: ./custom_corpus [--topics=K] [--epochs=N]

#include <cstdio>
#include <string>
#include <vector>

#include "core/contratopic.h"
#include "embed/word_embeddings.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "text/preprocess.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace contratopic;  // NOLINT

namespace {

// A miniature hand-written corpus with three obvious themes (cooking,
// astronomy, computing). In a real application these would be loaded from
// files; the point here is the API shape.
std::vector<text::RawDocument> BuildRawCorpus() {
  const std::vector<std::string> cooking = {
      "Whisk the butter and sugar, then fold the flour into the batter.",
      "Simmer the garlic and onion in olive oil before adding the sauce.",
      "Bake the dough until golden, then cool the bread on a rack.",
      "Season the chicken with pepper and roast with garlic butter.",
      "Knead the dough, proof the yeast, and bake at high heat.",
      "Reduce the sauce with butter, salt, and a splash of vinegar.",
  };
  const std::vector<std::string> astronomy = {
      "The telescope tracked the comet as it passed the outer planets.",
      "Astronomers measured the orbit of the new satellite around Mars.",
      "The rocket carried the probe beyond the moon into deep space.",
      "A supernova brightened the galaxy, visible through the telescope.",
      "The lander transmitted data from the surface of the red planet.",
      "Gravity from the star bends light from the distant galaxy.",
  };
  const std::vector<std::string> computing = {
      "The compiler optimized the loop and vectorized the kernel.",
      "A profiler showed the cache misses dominating the runtime.",
      "The scheduler balanced threads across the processor cores.",
      "Refactor the module so the interface hides the allocator details.",
      "The debugger caught a race between the threads in the queue.",
      "Benchmarks showed the new allocator halved memory fragmentation.",
  };
  std::vector<text::RawDocument> docs;
  // Replicate with slight variation so document frequencies are meaningful.
  util::Rng rng(5);
  for (int copy = 0; copy < 30; ++copy) {
    for (size_t i = 0; i < cooking.size(); ++i) {
      docs.push_back({cooking[i] + " " + cooking[rng.UniformInt(6)], 0});
      docs.push_back({astronomy[i] + " " + astronomy[rng.UniformInt(6)], 1});
      docs.push_back({computing[i] + " " + computing[rng.UniformInt(6)], 2});
    }
  }
  return docs;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  // 1. Preprocess raw text exactly as the paper does (§V.A).
  text::PreprocessOptions preprocess;
  preprocess.min_doc_frequency = 3;
  preprocess.max_doc_frequency_fraction = 0.7;
  const text::BowCorpus corpus = text::Preprocess(
      BuildRawCorpus(), preprocess, {"cooking", "astronomy", "computing"});
  std::printf("preprocessed: %d docs, vocab %d (stop words removed)\n",
              corpus.num_docs(), corpus.vocab_size());

  // 2. Corpus-trained embeddings (with your own data you could instead
  //    load pretrained vectors via WordEmbeddings(vectors, words)).
  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 16;
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(corpus, embed_config);

  // 3. Train ContraTopic.
  topicmodel::TrainConfig train;
  train.num_topics = flags.GetInt("topics", 3);
  train.epochs = flags.GetInt("epochs", 30);
  train.batch_size = 64;
  train.encoder_hidden = 32;
  train.encoder_layers = 1;
  core::ContraTopicOptions options;
  options.lambda = 10.0f;
  options.v = 5;
  auto model = core::MakeContraTopicEtm(train, embeddings, options);
  model->Train(corpus);

  // 4. Inspect the topics.
  const eval::NpmiMatrix npmi = eval::NpmiMatrix::Compute(corpus);
  const tensor::Tensor beta = model->Beta();
  const auto coherence = eval::PerTopicCoherence(beta, npmi, 5);
  std::printf("\ndiscovered topics:\n");
  for (int k = 0; k < train.num_topics; ++k) {
    std::printf("  topic %d [NPMI %.2f]:", k, coherence[k]);
    for (int w : beta.TopKIndicesOfRow(k, 6)) {
      std::printf(" %s", corpus.vocab().Word(w).c_str());
    }
    std::printf("\n");
  }

  // 5. Classify a new document.
  const text::BowCorpus probe = text::Preprocess(
      {{"Stir the sauce and bake the bread with butter and flour.", -1},
       {"", -1}},
      [] {
        text::PreprocessOptions p;
        p.min_doc_frequency = 0;
        p.max_doc_frequency_fraction = 2.0;
        p.min_doc_length = 1;
        return p;
      }());
  // Map the probe back into the training vocabulary.
  text::Document mapped;
  for (const auto& e : probe.docs().empty() ? std::vector<text::BowEntry>{}
                                            : probe.doc(0).entries) {
    const int id = corpus.vocab().GetId(probe.vocab().Word(e.word_id));
    if (id >= 0) mapped.entries.push_back({id, e.count});
  }
  text::BowCorpus query(corpus.vocab(), {mapped});
  const tensor::Tensor theta = model->InferTheta(query);
  std::printf("\nnew document topic mixture:");
  for (int k = 0; k < train.num_topics; ++k) {
    std::printf(" %.2f", theta.at(0, k));
  }
  std::printf("\n");
  return 0;
}
