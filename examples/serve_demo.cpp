// Serving demo: train a small ContraTopic model, freeze it into a
// versioned checkpoint, reload it through the InferenceEngine, and query
// it -- topic proportions for a document, its top topics, and each
// topic's top words. The reloaded engine's answers are bitwise-identical
// to the in-memory model's (the serving contract; see DESIGN.md §10).
// The final act continues training and hot-swaps the improved model into
// a live ModelRegistry with zero serving gap (see DESIGN.md §16).
//
// Run: ./serve_demo [--checkpoint=/tmp/demo.ckpt] [--epochs=N] [--topics=K]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/model_zoo.h"
#include "embed/word_embeddings.h"
#include "serve/checkpoint.h"
#include "serve/engine.h"
#include "serve/registry.h"
#include "text/synthetic.h"
#include "topicmodel/neural_base.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace contratopic;  // NOLINT: example code

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string path =
      flags.GetString("checkpoint", "/tmp/contratopic_demo.ckpt");

  // 1. Train a small model (any checkpointable zoo model works here).
  text::SyntheticConfig data_config = text::Preset20NG(0.25);
  text::SyntheticDataset dataset = text::GenerateSynthetic(data_config);
  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 32;
  embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(dataset.train, embed_config);
  topicmodel::TrainConfig train;
  train.num_topics = flags.GetInt("topics", 12);
  train.epochs = flags.GetInt("epochs", 8);
  train.batch_size = 256;
  train.encoder_hidden = 64;
  auto model = core::CreateModel("contratopic", train, embeddings);
  std::printf("training contratopic (K=%d, %d epochs)...\n",
              train.num_topics, train.epochs);
  model->Train(dataset.train);

  // 2. Freeze it into a checkpoint: header + hyperparameters + every
  //    state tensor + vocabulary + precomputed top words, checksummed.
  util::Status saved =
      serve::SaveCheckpoint(*model, dataset.train.vocab(), path);
  CHECK(saved.ok()) << saved;
  std::printf("saved checkpoint: %s\n", path.c_str());

  // 3. Reload it into a serving engine. In production this happens in a
  //    different process, long after training (see bench_serve.cc).
  auto engine = serve::InferenceEngine::Load(path);
  CHECK(engine.ok()) << engine.status();
  std::printf("loaded: type=%s, %d topics, vocab %d\n",
              (*engine)->descriptor().type.c_str(), (*engine)->num_topics(),
              (*engine)->vocab_size());

  // 4. Query it with a test document and sanity-check the contract: the
  //    served theta equals the in-memory model's bitwise.
  const text::Document& doc = dataset.test.doc(0);
  serve::InferenceEngine::BowDoc bow;
  for (const auto& e : doc.entries) bow.emplace_back(e.word_id, e.count);
  serve::InferenceEngine::ThetaResult theta = (*engine)->InferTheta(bow);
  CHECK(theta.ok()) << theta.status();
  tensor::Tensor reference = model->InferTheta(dataset.test);
  CHECK(std::memcmp(theta->data(), reference.row(0),
                    theta->size() * sizeof(float)) == 0)
      << "served theta differs from the training-side model";
  std::printf("served theta matches the in-memory model bitwise\n");

  auto top = (*engine)->TopTopics(bow, 3);
  CHECK(top.ok()) << top.status();
  std::printf("\ntop topics for test doc 0 (label: %s):\n",
              dataset.theme_names[doc.label].c_str());
  for (const auto& [topic, weight] : *top) {
    auto words = (*engine)->TopicTopWords(topic, 8);
    CHECK(words.ok()) << words.status();
    std::string joined;
    for (const std::string& w : *words) {
      if (!joined.empty()) joined += " ";
      joined += w;
    }
    std::printf("  topic %2d  %.3f  %s\n", topic, weight, joined.c_str());
  }

  // 5. Hot swap: put the engine behind a ModelRegistry, keep training the
  //    model, and publish the improved checkpoint through the validation
  //    gate. Traffic never pauses -- readers of the old version finish on
  //    it while new requests land on the new one.
  serve::ModelRegistry::Options registry_options;
  for (int d = 0; d < 4; ++d) {
    const text::Document& probe = dataset.test.doc(d);
    serve::InferenceEngine::BowDoc probe_bow;
    for (const auto& e : probe.entries) {
      probe_bow.emplace_back(e.word_id, e.count);
    }
    registry_options.gate.probe_docs.push_back(std::move(probe_bow));
  }
  auto registry = serve::ModelRegistry::Create(path, registry_options);
  CHECK(registry.ok()) << registry.status();

  auto* trainable = dynamic_cast<topicmodel::NeuralTopicModel*>(model.get());
  CHECK(trainable != nullptr);
  std::printf("\ncontinuing training for 2 more epochs...\n");
  trainable->TrainMore(dataset.train, 2);
  const std::string candidate_path = path + ".v2";
  saved = serve::SaveCheckpoint(*model, dataset.train.vocab(), candidate_path);
  CHECK(saved.ok()) << saved;

  auto swap = (*registry)->TryPublish(candidate_path);
  CHECK(swap.ok()) << swap.status();
  if (swap->outcome == serve::ModelRegistry::SwapOutcome::kPublished) {
    std::printf("hot-swapped to version %lld (top-word churn %.3f)\n",
                static_cast<long long>(swap->version), swap->top_word_churn);
  } else {
    std::printf("swap rejected by the validation gate: %s\n",
                swap->reject_reason.ToString().c_str());
  }

  // Served answers now come from the freshly published model, bitwise.
  serve::InferenceEngine::ThetaResult swapped = (*registry)->InferTheta(bow);
  CHECK(swapped.ok()) << swapped.status();
  tensor::Tensor updated = model->InferTheta(dataset.test);
  CHECK(std::memcmp(swapped->data(), updated.row(0),
                    swapped->size() * sizeof(float)) == 0)
      << "registry-served theta differs from the updated model";
  std::printf("registry serves the updated model bitwise, zero gap\n");
  return 0;
}
