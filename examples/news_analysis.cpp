// Domain scenario: mining a news archive (the workload the paper's intro
// motivates -- interpretable topics for computer-assisted content
// analysis). Trains ContraTopic on the NYTimes-like corpus, then produces
// an analyst-facing report: the discovered topics with their coherence,
// representative vocabulary, share of the archive, and example document
// assignments.
//
// Run: ./news_analysis [--topics=K] [--epochs=N] [--docs=S]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/contratopic.h"
#include "embed/word_embeddings.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "text/synthetic.h"
#include "util/flags.h"

using namespace contratopic;  // NOLINT

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  // 1. The archive.
  const text::SyntheticConfig config =
      text::PresetNYTimes(flags.GetDouble("docs", 0.4));
  const text::SyntheticDataset archive = text::GenerateSynthetic(config);
  std::printf("archive: %d articles, vocabulary %d\n",
              archive.train.num_docs() + archive.test.num_docs(),
              archive.train.vocab_size());

  // 2. Generic embeddings + model.
  const text::BowCorpus reference =
      text::GenerateReferenceCorpus(config, archive.train.vocab());
  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 48;
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(reference, embed_config);

  topicmodel::TrainConfig train;
  train.num_topics = flags.GetInt("topics", 24);
  train.epochs = flags.GetInt("epochs", 15);
  train.encoder_hidden = 96;
  core::ContraTopicOptions options;
  options.lambda = 100.0f;  // NYTimes-scale regularization (paper: 300).
  auto model = core::MakeContraTopicEtm(train, embeddings, options);
  std::printf("training %s (K=%d, %d epochs)...\n", model->name().c_str(),
              train.num_topics, train.epochs);
  model->Train(archive.train);

  // 3. Topic report: coherence, words, archive share.
  const eval::NpmiMatrix test_npmi = eval::NpmiMatrix::Compute(archive.test);
  const tensor::Tensor beta = model->Beta();
  const tensor::Tensor theta = model->InferTheta(archive.test);
  const auto coherence = eval::PerTopicCoherence(beta, test_npmi);
  const auto order = eval::TopicsByCoherence(coherence);

  // Archive share: mean theta mass per topic over the held-out split.
  std::vector<double> share(train.num_topics, 0.0);
  for (int64_t d = 0; d < theta.rows(); ++d) {
    for (int k = 0; k < train.num_topics; ++k) share[k] += theta.at(d, k);
  }
  for (auto& s : share) s /= theta.rows();

  std::printf("\n%-4s %-7s %-7s %s\n", "rank", "NPMI", "share", "top words");
  for (size_t i = 0; i < order.size(); ++i) {
    const int k = order[i];
    std::printf("%-4zu %-7.3f %-6.1f%% ", i + 1, coherence[k],
                100.0 * share[k]);
    for (int w : beta.TopKIndicesOfRow(k, 8)) {
      std::printf("%s ", archive.train.vocab().Word(w).c_str());
    }
    std::printf("\n");
  }

  // 4. Example document assignments (the retrieval use-case).
  std::printf("\nexample article assignments:\n");
  for (int d = 0; d < 5 && d < archive.test.num_docs(); ++d) {
    const int dominant = theta.TopKIndicesOfRow(d, 1)[0];
    std::printf("  article %d (label '%s') -> topic #%d [",
                d, archive.theme_names[archive.test.doc(d).label].c_str(),
                dominant);
    for (int w : beta.TopKIndicesOfRow(dominant, 4)) {
      std::printf(" %s", archive.train.vocab().Word(w).c_str());
    }
    std::printf(" ] weight %.2f\n", theta.at(d, dominant));
  }
  return 0;
}
