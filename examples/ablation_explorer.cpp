// Interactive counterpart of the paper's Table II: trains the ContraTopic
// ablation variants side by side on one dataset and prints where each one
// falls short -- positives-only loses diversity, negatives-only loses
// coherence and clustering, the embedding kernel (-I) trails NPMI, and the
// expectation variant (-S) gives up a little of everything.
//
// Run: ./ablation_explorer [--dataset=20ng-sim] [--epochs=N] [--docs=S]

#include <cstdio>

#include "core/model_zoo.h"
#include "embed/word_embeddings.h"
#include "eval/clustering.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "text/synthetic.h"
#include "util/flags.h"
#include "util/table_writer.h"

using namespace contratopic;  // NOLINT

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const text::SyntheticConfig config = text::PresetByName(
      flags.GetString("dataset", "20ng-sim"), flags.GetDouble("docs", 0.6));
  const text::SyntheticDataset dataset = text::GenerateSynthetic(config);
  const text::BowCorpus reference =
      text::GenerateReferenceCorpus(config, dataset.train.vocab());
  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 48;
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(reference, embed_config);
  const eval::NpmiMatrix test_npmi = eval::NpmiMatrix::Compute(dataset.test);

  topicmodel::TrainConfig train;
  train.num_topics = flags.GetInt("topics", 20);
  train.epochs = flags.GetInt("epochs", 15);
  train.encoder_hidden = 96;

  std::vector<int> all_docs(dataset.test.num_docs());
  for (size_t i = 0; i < all_docs.size(); ++i) all_docs[i] = static_cast<int>(i);
  const std::vector<int> labels = dataset.test.Labels(all_docs);

  util::TableWriter table(
      {"Variant", "TC@10%", "TC@100%", "TD@100%", "km-Purity"});
  for (const auto& name : core::AblationModelNames()) {
    auto model = core::CreateModel(name, train, embeddings);
    std::printf("training %s ...\n", core::DisplayName(name).c_str());
    model->Train(dataset.train);
    const tensor::Tensor beta = model->Beta();
    const auto coherence = eval::PerTopicCoherence(beta, test_npmi);
    util::Rng rng(17);
    const eval::ClusteringScore score = eval::EvaluateClustering(
        model->InferTheta(dataset.test), labels, train.num_topics, rng);
    table.AddRow(core::DisplayName(name),
                 {eval::CoherenceAtProportion(coherence, 0.1),
                  eval::CoherenceAtProportion(coherence, 1.0),
                  eval::DiversityAtProportion(beta, coherence, 1.0),
                  score.purity});
  }
  std::printf("\n%s", table.ToString().c_str());
  std::printf(
      "\nreading guide: -P keeps coherence but cannot see cross-topic\n"
      "redundancy; -N optimizes separation at the cost of topic quality;\n"
      "-I replaces corpus NPMI with embedding cosine (weaker supervision);\n"
      "-S skips sampling and averages over the whole distribution.\n");
  return 0;
}
