// The paper's §VI future-work scenario: streaming topic modeling over time
// slices ("documents are partitioned into time slices", citing On-line
// LDA). A dynamic corpus with drifting theme popularity is fed slice by
// slice to OnlineContraTopic, which decays its co-occurrence statistics,
// refreshes the contrastive kernel, and warm-starts training -- then we
// chart each topic's share of the stream over time (trend detection).
//
// Run: ./online_trends [--slices=N] [--docs=N] [--drift=D]

#include <cstdio>

#include "core/online.h"
#include "embed/word_embeddings.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "text/dynamic.h"
#include "util/flags.h"

using namespace contratopic;  // NOLINT

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  // 1. The stream.
  text::DynamicConfig config;
  config.base = text::Preset20NG(1.0);
  config.base.num_themes = 16;
  config.base.preprocess.min_doc_frequency = 3;
  config.num_slices = flags.GetInt("slices", 4);
  config.docs_per_slice = flags.GetInt("docs", 500);
  config.drift = flags.GetDouble("drift", 0.9);
  const text::DynamicDataset stream = text::GenerateDynamic(config);
  std::printf("stream: %d slices, vocab %d\n", config.num_slices,
              stream.vocab.size());

  // 2. Embeddings from the history available at t=0 (the first slice).
  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 32;
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(stream.slices[0], embed_config);

  // 3. Online model.
  core::OnlineContraTopic::Options options;
  options.train.num_topics = flags.GetInt("topics", 12);
  options.train.epochs = 10;
  options.train.encoder_hidden = 64;
  options.contra.lambda = 30.0f;
  options.epochs_per_slice = flags.GetInt("epochs_per_slice", 5);
  options.decay = flags.GetDouble("decay", 0.7);
  core::OnlineContraTopic online(embeddings, options);

  // 4. Consume the stream, reporting per-slice topic shares.
  std::vector<std::vector<double>> shares;  // slice x topic
  for (int s = 0; s < config.num_slices; ++s) {
    const auto report = online.FitSlice(stream.slices[s]);
    const tensor::Tensor theta = online.InferTheta(stream.slices[s]);
    std::vector<double> share(options.train.num_topics, 0.0);
    for (int64_t d = 0; d < theta.rows(); ++d) {
      for (int k = 0; k < options.train.num_topics; ++k) {
        share[k] += theta.at(d, k);
      }
    }
    for (auto& v : share) v /= theta.rows();
    shares.push_back(share);
    std::printf("slice %d: trained %.1fs, effective docs %lld\n", s,
                report.stats.total_seconds,
                static_cast<long long>(report.accumulated_docs));
  }

  // 5. Trend chart: share of each topic per slice, with its top words.
  const eval::NpmiMatrix npmi =
      eval::NpmiMatrix::Compute(stream.slices.back());
  const tensor::Tensor beta = online.Beta();
  const auto coherence = eval::PerTopicCoherence(beta, npmi);
  std::printf("\n%-5s", "topic");
  for (int s = 0; s < config.num_slices; ++s) std::printf("  t%-4d", s);
  std::printf(" trend   top words\n");
  for (int k = 0; k < options.train.num_topics; ++k) {
    std::printf("%-5d", k);
    for (int s = 0; s < config.num_slices; ++s) {
      std::printf(" %5.1f%%", 100.0 * shares[s][k]);
    }
    const double delta = shares.back()[k] - shares.front()[k];
    std::printf(" %s ", delta > 0.01 ? "rising " : delta < -0.01 ? "falling" : "stable ");
    for (int w : beta.TopKIndicesOfRow(k, 5)) {
      std::printf(" %s", stream.vocab.Word(w).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
