# Empty dependencies file for bench_fig6_backbone.
# This may be replaced when dependencies are built.
