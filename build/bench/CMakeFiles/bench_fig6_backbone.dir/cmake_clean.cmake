file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_backbone.dir/bench_fig6_backbone.cc.o"
  "CMakeFiles/bench_fig6_backbone.dir/bench_fig6_backbone.cc.o.d"
  "bench_fig6_backbone"
  "bench_fig6_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
