file(REMOVE_RECURSE
  "CMakeFiles/bench_compute_analysis.dir/bench_compute_analysis.cc.o"
  "CMakeFiles/bench_compute_analysis.dir/bench_compute_analysis.cc.o.d"
  "bench_compute_analysis"
  "bench_compute_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compute_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
