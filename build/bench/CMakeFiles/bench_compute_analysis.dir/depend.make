# Empty dependencies file for bench_compute_analysis.
# This may be replaced when dependencies are built.
