file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_interpretability.dir/bench_fig2_interpretability.cc.o"
  "CMakeFiles/bench_fig2_interpretability.dir/bench_fig2_interpretability.cc.o.d"
  "bench_fig2_interpretability"
  "bench_fig2_interpretability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_interpretability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
