# Empty dependencies file for ct_bench_harness.
# This may be replaced when dependencies are built.
