file(REMOVE_RECURSE
  "CMakeFiles/ct_bench_harness.dir/harness.cc.o"
  "CMakeFiles/ct_bench_harness.dir/harness.cc.o.d"
  "libct_bench_harness.a"
  "libct_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
