file(REMOVE_RECURSE
  "libct_bench_harness.a"
)
