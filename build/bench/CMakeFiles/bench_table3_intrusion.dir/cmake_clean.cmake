file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_intrusion.dir/bench_table3_intrusion.cc.o"
  "CMakeFiles/bench_table3_intrusion.dir/bench_table3_intrusion.cc.o.d"
  "bench_table3_intrusion"
  "bench_table3_intrusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_intrusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
