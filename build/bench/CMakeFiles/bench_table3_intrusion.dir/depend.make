# Empty dependencies file for bench_table3_intrusion.
# This may be replaced when dependencies are built.
