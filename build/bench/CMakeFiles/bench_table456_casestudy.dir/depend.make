# Empty dependencies file for bench_table456_casestudy.
# This may be replaced when dependencies are built.
