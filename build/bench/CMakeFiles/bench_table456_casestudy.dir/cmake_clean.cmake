file(REMOVE_RECURSE
  "CMakeFiles/bench_table456_casestudy.dir/bench_table456_casestudy.cc.o"
  "CMakeFiles/bench_table456_casestudy.dir/bench_table456_casestudy.cc.o.d"
  "bench_table456_casestudy"
  "bench_table456_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table456_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
