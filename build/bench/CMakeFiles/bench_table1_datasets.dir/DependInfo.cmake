
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_datasets.cc" "bench/CMakeFiles/bench_table1_datasets.dir/bench_table1_datasets.cc.o" "gcc" "bench/CMakeFiles/bench_table1_datasets.dir/bench_table1_datasets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ct_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topicmodel/CMakeFiles/ct_topicmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ct_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/ct_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ct_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ct_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ct_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
