file(REMOVE_RECURSE
  "CMakeFiles/ct_tests.dir/autodiff_test.cc.o"
  "CMakeFiles/ct_tests.dir/autodiff_test.cc.o.d"
  "CMakeFiles/ct_tests.dir/core_test.cc.o"
  "CMakeFiles/ct_tests.dir/core_test.cc.o.d"
  "CMakeFiles/ct_tests.dir/embed_test.cc.o"
  "CMakeFiles/ct_tests.dir/embed_test.cc.o.d"
  "CMakeFiles/ct_tests.dir/eval_test.cc.o"
  "CMakeFiles/ct_tests.dir/eval_test.cc.o.d"
  "CMakeFiles/ct_tests.dir/integration_test.cc.o"
  "CMakeFiles/ct_tests.dir/integration_test.cc.o.d"
  "CMakeFiles/ct_tests.dir/nn_test.cc.o"
  "CMakeFiles/ct_tests.dir/nn_test.cc.o.d"
  "CMakeFiles/ct_tests.dir/online_test.cc.o"
  "CMakeFiles/ct_tests.dir/online_test.cc.o.d"
  "CMakeFiles/ct_tests.dir/property_test.cc.o"
  "CMakeFiles/ct_tests.dir/property_test.cc.o.d"
  "CMakeFiles/ct_tests.dir/tensor_test.cc.o"
  "CMakeFiles/ct_tests.dir/tensor_test.cc.o.d"
  "CMakeFiles/ct_tests.dir/text_test.cc.o"
  "CMakeFiles/ct_tests.dir/text_test.cc.o.d"
  "CMakeFiles/ct_tests.dir/topicmodel_test.cc.o"
  "CMakeFiles/ct_tests.dir/topicmodel_test.cc.o.d"
  "CMakeFiles/ct_tests.dir/util_test.cc.o"
  "CMakeFiles/ct_tests.dir/util_test.cc.o.d"
  "ct_tests"
  "ct_tests.pdb"
  "ct_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
