# Empty compiler generated dependencies file for ct_tests.
# This may be replaced when dependencies are built.
