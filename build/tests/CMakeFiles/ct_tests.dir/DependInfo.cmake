
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autodiff_test.cc" "tests/CMakeFiles/ct_tests.dir/autodiff_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/autodiff_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/ct_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/embed_test.cc" "tests/CMakeFiles/ct_tests.dir/embed_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/embed_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/ct_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/ct_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/nn_test.cc" "tests/CMakeFiles/ct_tests.dir/nn_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/nn_test.cc.o.d"
  "/root/repo/tests/online_test.cc" "tests/CMakeFiles/ct_tests.dir/online_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/online_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/ct_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/tensor_test.cc" "tests/CMakeFiles/ct_tests.dir/tensor_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/tensor_test.cc.o.d"
  "/root/repo/tests/text_test.cc" "tests/CMakeFiles/ct_tests.dir/text_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/text_test.cc.o.d"
  "/root/repo/tests/topicmodel_test.cc" "tests/CMakeFiles/ct_tests.dir/topicmodel_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/topicmodel_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/ct_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/ct_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topicmodel/CMakeFiles/ct_topicmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ct_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/ct_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ct_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ct_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ct_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
