# Empty dependencies file for online_trends.
# This may be replaced when dependencies are built.
