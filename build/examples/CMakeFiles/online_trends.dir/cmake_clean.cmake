file(REMOVE_RECURSE
  "CMakeFiles/online_trends.dir/online_trends.cpp.o"
  "CMakeFiles/online_trends.dir/online_trends.cpp.o.d"
  "online_trends"
  "online_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
