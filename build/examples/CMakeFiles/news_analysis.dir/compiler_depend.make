# Empty compiler generated dependencies file for news_analysis.
# This may be replaced when dependencies are built.
