file(REMOVE_RECURSE
  "CMakeFiles/news_analysis.dir/news_analysis.cpp.o"
  "CMakeFiles/news_analysis.dir/news_analysis.cpp.o.d"
  "news_analysis"
  "news_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
