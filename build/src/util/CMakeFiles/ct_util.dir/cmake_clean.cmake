file(REMOVE_RECURSE
  "CMakeFiles/ct_util.dir/flags.cc.o"
  "CMakeFiles/ct_util.dir/flags.cc.o.d"
  "CMakeFiles/ct_util.dir/logging.cc.o"
  "CMakeFiles/ct_util.dir/logging.cc.o.d"
  "CMakeFiles/ct_util.dir/rng.cc.o"
  "CMakeFiles/ct_util.dir/rng.cc.o.d"
  "CMakeFiles/ct_util.dir/serialize.cc.o"
  "CMakeFiles/ct_util.dir/serialize.cc.o.d"
  "CMakeFiles/ct_util.dir/status.cc.o"
  "CMakeFiles/ct_util.dir/status.cc.o.d"
  "CMakeFiles/ct_util.dir/string_util.cc.o"
  "CMakeFiles/ct_util.dir/string_util.cc.o.d"
  "CMakeFiles/ct_util.dir/table_writer.cc.o"
  "CMakeFiles/ct_util.dir/table_writer.cc.o.d"
  "CMakeFiles/ct_util.dir/thread_pool.cc.o"
  "CMakeFiles/ct_util.dir/thread_pool.cc.o.d"
  "libct_util.a"
  "libct_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
