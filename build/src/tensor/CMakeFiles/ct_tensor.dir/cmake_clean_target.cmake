file(REMOVE_RECURSE
  "libct_tensor.a"
)
