file(REMOVE_RECURSE
  "CMakeFiles/ct_tensor.dir/autodiff.cc.o"
  "CMakeFiles/ct_tensor.dir/autodiff.cc.o.d"
  "CMakeFiles/ct_tensor.dir/grad_check.cc.o"
  "CMakeFiles/ct_tensor.dir/grad_check.cc.o.d"
  "CMakeFiles/ct_tensor.dir/kernels.cc.o"
  "CMakeFiles/ct_tensor.dir/kernels.cc.o.d"
  "CMakeFiles/ct_tensor.dir/tensor.cc.o"
  "CMakeFiles/ct_tensor.dir/tensor.cc.o.d"
  "libct_tensor.a"
  "libct_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
