# Empty dependencies file for ct_tensor.
# This may be replaced when dependencies are built.
