# Empty compiler generated dependencies file for ct_text.
# This may be replaced when dependencies are built.
