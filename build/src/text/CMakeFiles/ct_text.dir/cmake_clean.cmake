file(REMOVE_RECURSE
  "CMakeFiles/ct_text.dir/corpus.cc.o"
  "CMakeFiles/ct_text.dir/corpus.cc.o.d"
  "CMakeFiles/ct_text.dir/dynamic.cc.o"
  "CMakeFiles/ct_text.dir/dynamic.cc.o.d"
  "CMakeFiles/ct_text.dir/preprocess.cc.o"
  "CMakeFiles/ct_text.dir/preprocess.cc.o.d"
  "CMakeFiles/ct_text.dir/synthetic.cc.o"
  "CMakeFiles/ct_text.dir/synthetic.cc.o.d"
  "CMakeFiles/ct_text.dir/themes.cc.o"
  "CMakeFiles/ct_text.dir/themes.cc.o.d"
  "CMakeFiles/ct_text.dir/vocabulary.cc.o"
  "CMakeFiles/ct_text.dir/vocabulary.cc.o.d"
  "libct_text.a"
  "libct_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
