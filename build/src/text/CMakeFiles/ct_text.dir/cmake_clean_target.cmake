file(REMOVE_RECURSE
  "libct_text.a"
)
