
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/corpus.cc" "src/text/CMakeFiles/ct_text.dir/corpus.cc.o" "gcc" "src/text/CMakeFiles/ct_text.dir/corpus.cc.o.d"
  "/root/repo/src/text/dynamic.cc" "src/text/CMakeFiles/ct_text.dir/dynamic.cc.o" "gcc" "src/text/CMakeFiles/ct_text.dir/dynamic.cc.o.d"
  "/root/repo/src/text/preprocess.cc" "src/text/CMakeFiles/ct_text.dir/preprocess.cc.o" "gcc" "src/text/CMakeFiles/ct_text.dir/preprocess.cc.o.d"
  "/root/repo/src/text/synthetic.cc" "src/text/CMakeFiles/ct_text.dir/synthetic.cc.o" "gcc" "src/text/CMakeFiles/ct_text.dir/synthetic.cc.o.d"
  "/root/repo/src/text/themes.cc" "src/text/CMakeFiles/ct_text.dir/themes.cc.o" "gcc" "src/text/CMakeFiles/ct_text.dir/themes.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/text/CMakeFiles/ct_text.dir/vocabulary.cc.o" "gcc" "src/text/CMakeFiles/ct_text.dir/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ct_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
