# Empty compiler generated dependencies file for ct_topicmodel.
# This may be replaced when dependencies are built.
