file(REMOVE_RECURSE
  "CMakeFiles/ct_topicmodel.dir/augment.cc.o"
  "CMakeFiles/ct_topicmodel.dir/augment.cc.o.d"
  "CMakeFiles/ct_topicmodel.dir/clntm.cc.o"
  "CMakeFiles/ct_topicmodel.dir/clntm.cc.o.d"
  "CMakeFiles/ct_topicmodel.dir/etm.cc.o"
  "CMakeFiles/ct_topicmodel.dir/etm.cc.o.d"
  "CMakeFiles/ct_topicmodel.dir/lda.cc.o"
  "CMakeFiles/ct_topicmodel.dir/lda.cc.o.d"
  "CMakeFiles/ct_topicmodel.dir/neural_base.cc.o"
  "CMakeFiles/ct_topicmodel.dir/neural_base.cc.o.d"
  "CMakeFiles/ct_topicmodel.dir/nstm.cc.o"
  "CMakeFiles/ct_topicmodel.dir/nstm.cc.o.d"
  "CMakeFiles/ct_topicmodel.dir/ntmr.cc.o"
  "CMakeFiles/ct_topicmodel.dir/ntmr.cc.o.d"
  "CMakeFiles/ct_topicmodel.dir/prodlda.cc.o"
  "CMakeFiles/ct_topicmodel.dir/prodlda.cc.o.d"
  "CMakeFiles/ct_topicmodel.dir/vtmrl.cc.o"
  "CMakeFiles/ct_topicmodel.dir/vtmrl.cc.o.d"
  "CMakeFiles/ct_topicmodel.dir/wete.cc.o"
  "CMakeFiles/ct_topicmodel.dir/wete.cc.o.d"
  "CMakeFiles/ct_topicmodel.dir/wlda.cc.o"
  "CMakeFiles/ct_topicmodel.dir/wlda.cc.o.d"
  "libct_topicmodel.a"
  "libct_topicmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_topicmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
