file(REMOVE_RECURSE
  "libct_topicmodel.a"
)
