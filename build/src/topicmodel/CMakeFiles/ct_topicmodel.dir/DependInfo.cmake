
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topicmodel/augment.cc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/augment.cc.o" "gcc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/augment.cc.o.d"
  "/root/repo/src/topicmodel/clntm.cc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/clntm.cc.o" "gcc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/clntm.cc.o.d"
  "/root/repo/src/topicmodel/etm.cc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/etm.cc.o" "gcc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/etm.cc.o.d"
  "/root/repo/src/topicmodel/lda.cc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/lda.cc.o" "gcc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/lda.cc.o.d"
  "/root/repo/src/topicmodel/neural_base.cc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/neural_base.cc.o" "gcc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/neural_base.cc.o.d"
  "/root/repo/src/topicmodel/nstm.cc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/nstm.cc.o" "gcc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/nstm.cc.o.d"
  "/root/repo/src/topicmodel/ntmr.cc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/ntmr.cc.o" "gcc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/ntmr.cc.o.d"
  "/root/repo/src/topicmodel/prodlda.cc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/prodlda.cc.o" "gcc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/prodlda.cc.o.d"
  "/root/repo/src/topicmodel/vtmrl.cc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/vtmrl.cc.o" "gcc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/vtmrl.cc.o.d"
  "/root/repo/src/topicmodel/wete.cc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/wete.cc.o" "gcc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/wete.cc.o.d"
  "/root/repo/src/topicmodel/wlda.cc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/wlda.cc.o" "gcc" "src/topicmodel/CMakeFiles/ct_topicmodel.dir/wlda.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/ct_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/ct_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ct_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ct_text.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ct_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
