file(REMOVE_RECURSE
  "CMakeFiles/ct_core.dir/contrastive_loss.cc.o"
  "CMakeFiles/ct_core.dir/contrastive_loss.cc.o.d"
  "CMakeFiles/ct_core.dir/contratopic.cc.o"
  "CMakeFiles/ct_core.dir/contratopic.cc.o.d"
  "CMakeFiles/ct_core.dir/model_zoo.cc.o"
  "CMakeFiles/ct_core.dir/model_zoo.cc.o.d"
  "CMakeFiles/ct_core.dir/online.cc.o"
  "CMakeFiles/ct_core.dir/online.cc.o.d"
  "CMakeFiles/ct_core.dir/subset_sampler.cc.o"
  "CMakeFiles/ct_core.dir/subset_sampler.cc.o.d"
  "libct_core.a"
  "libct_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
