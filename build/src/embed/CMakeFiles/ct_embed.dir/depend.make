# Empty dependencies file for ct_embed.
# This may be replaced when dependencies are built.
