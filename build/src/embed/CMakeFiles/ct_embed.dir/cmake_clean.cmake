file(REMOVE_RECURSE
  "CMakeFiles/ct_embed.dir/cooccurrence.cc.o"
  "CMakeFiles/ct_embed.dir/cooccurrence.cc.o.d"
  "CMakeFiles/ct_embed.dir/svd.cc.o"
  "CMakeFiles/ct_embed.dir/svd.cc.o.d"
  "CMakeFiles/ct_embed.dir/word_embeddings.cc.o"
  "CMakeFiles/ct_embed.dir/word_embeddings.cc.o.d"
  "libct_embed.a"
  "libct_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
