file(REMOVE_RECURSE
  "libct_embed.a"
)
