
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/cooccurrence.cc" "src/embed/CMakeFiles/ct_embed.dir/cooccurrence.cc.o" "gcc" "src/embed/CMakeFiles/ct_embed.dir/cooccurrence.cc.o.d"
  "/root/repo/src/embed/svd.cc" "src/embed/CMakeFiles/ct_embed.dir/svd.cc.o" "gcc" "src/embed/CMakeFiles/ct_embed.dir/svd.cc.o.d"
  "/root/repo/src/embed/word_embeddings.cc" "src/embed/CMakeFiles/ct_embed.dir/word_embeddings.cc.o" "gcc" "src/embed/CMakeFiles/ct_embed.dir/word_embeddings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ct_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ct_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
