
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/clustering.cc" "src/eval/CMakeFiles/ct_eval.dir/clustering.cc.o" "gcc" "src/eval/CMakeFiles/ct_eval.dir/clustering.cc.o.d"
  "/root/repo/src/eval/intrusion.cc" "src/eval/CMakeFiles/ct_eval.dir/intrusion.cc.o" "gcc" "src/eval/CMakeFiles/ct_eval.dir/intrusion.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/ct_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/ct_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/npmi.cc" "src/eval/CMakeFiles/ct_eval.dir/npmi.cc.o" "gcc" "src/eval/CMakeFiles/ct_eval.dir/npmi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/embed/CMakeFiles/ct_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ct_text.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ct_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
