file(REMOVE_RECURSE
  "CMakeFiles/ct_eval.dir/clustering.cc.o"
  "CMakeFiles/ct_eval.dir/clustering.cc.o.d"
  "CMakeFiles/ct_eval.dir/intrusion.cc.o"
  "CMakeFiles/ct_eval.dir/intrusion.cc.o.d"
  "CMakeFiles/ct_eval.dir/metrics.cc.o"
  "CMakeFiles/ct_eval.dir/metrics.cc.o.d"
  "CMakeFiles/ct_eval.dir/npmi.cc.o"
  "CMakeFiles/ct_eval.dir/npmi.cc.o.d"
  "libct_eval.a"
  "libct_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
