# Empty dependencies file for ct_eval.
# This may be replaced when dependencies are built.
