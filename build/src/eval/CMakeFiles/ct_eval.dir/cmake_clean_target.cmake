file(REMOVE_RECURSE
  "libct_eval.a"
)
