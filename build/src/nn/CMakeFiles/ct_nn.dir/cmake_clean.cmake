file(REMOVE_RECURSE
  "CMakeFiles/ct_nn.dir/module.cc.o"
  "CMakeFiles/ct_nn.dir/module.cc.o.d"
  "CMakeFiles/ct_nn.dir/optimizer.cc.o"
  "CMakeFiles/ct_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/ct_nn.dir/serialization.cc.o"
  "CMakeFiles/ct_nn.dir/serialization.cc.o.d"
  "libct_nn.a"
  "libct_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
