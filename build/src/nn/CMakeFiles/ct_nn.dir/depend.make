# Empty dependencies file for ct_nn.
# This may be replaced when dependencies are built.
