file(REMOVE_RECURSE
  "libct_nn.a"
)
