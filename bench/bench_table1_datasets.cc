// Reproduces Table I: summary statistics of the three datasets after the
// preprocessing pipeline (vocabulary size, train/test samples, average
// length, total tokens). Values are at simulator scale; relative ordering
// across datasets mirrors the paper (NYTimes largest vocab/length, Yahoo
// most documents per unit length, 20NG smallest).

#include <cstdio>

#include "bench/harness.h"
#include "util/string_util.h"

using namespace contratopic;  // NOLINT

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double scale = flags.GetDouble("docs", 0.5);

  util::TableWriter table({"Dataset", "Vocabulary Size", "Training Samples",
                           "Test Samples", "Average Length",
                           "Number of Tokens"});
  for (const auto& name : text::AllPresetNames()) {
    const text::SyntheticConfig config = text::PresetByName(name, scale);
    const text::SyntheticDataset dataset = text::GenerateSynthetic(config);
    const text::CorpusStats stats = text::ComputeStats(dataset);
    table.AddRow({name, util::StrFormat("%d", stats.vocab_size),
                  util::StrFormat("%d", stats.train_samples),
                  util::StrFormat("%d", stats.test_samples),
                  util::FormatDouble(stats.average_length, 1),
                  util::StrFormat("%lld",
                                  static_cast<long long>(stats.num_tokens))});
  }
  bench::EmitTable("Table I: dataset statistics (simulator scale)",
                   "table1_datasets", table);
  return 0;
}
