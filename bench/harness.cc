#include "bench/harness.h"

#include <sys/stat.h>

#include <cstdio>
#include <functional>

#include "eval/metrics.h"
#include "util/logging.h"
#include "util/serialize.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace bench {
namespace {

std::string CacheKey(const std::string& zoo_name,
                     const ExperimentContext& context,
                     const topicmodel::TrainConfig& train,
                     const core::ContraTopicOptions& contra) {
  // Hash the experiment-defining knobs; collisions across genuinely
  // different configs are what we care about, not adversarial inputs.
  std::string blob = util::StrFormat(
      "%s|%s|%d|%d|%d|%d|%d|%g|%llu|%g|%d|%g|%g|%d|%d|%g",
      zoo_name.c_str(), context.config.name.c_str(), context.config.num_docs,
      train.num_topics, train.epochs, train.batch_size, train.encoder_hidden,
      static_cast<double>(train.learning_rate),
      static_cast<unsigned long long>(train.seed),
      static_cast<double>(contra.lambda), contra.v,
      static_cast<double>(contra.tau_gumbel),
      static_cast<double>(contra.tau_contrast), contra.candidate_words,
      static_cast<int>(contra.variant),
      static_cast<double>(contra.warmup_fraction));
  const size_t hash = std::hash<std::string>{}(blob);
  return util::StrFormat("%s-%s-%016zx", context.config.name.c_str(),
                         zoo_name.c_str(), hash);
}

bool LoadCached(const std::string& path, TrainedModel* out) {
  util::BinaryReader reader(path);
  if (!reader.ok()) return false;
  const uint64_t beta_rows = reader.ReadU64();
  const uint64_t beta_cols = reader.ReadU64();
  std::vector<float> beta = reader.ReadFloatVector();
  const uint64_t theta_rows = reader.ReadU64();
  const uint64_t theta_cols = reader.ReadU64();
  std::vector<float> theta = reader.ReadFloatVector();
  out->stats.total_seconds = reader.ReadF32();
  out->stats.seconds_per_epoch = reader.ReadF32();
  out->stats.final_loss = reader.ReadF32();
  out->stats.extra_memory_bytes = static_cast<int64_t>(reader.ReadU64());
  if (!reader.status().ok()) return false;
  if (beta.size() != beta_rows * beta_cols ||
      theta.size() != theta_rows * theta_cols) {
    return false;
  }
  out->beta = tensor::Tensor(static_cast<int64_t>(beta_rows),
                             static_cast<int64_t>(beta_cols), std::move(beta));
  out->test_theta =
      tensor::Tensor(static_cast<int64_t>(theta_rows),
                     static_cast<int64_t>(theta_cols), std::move(theta));
  return true;
}

void SaveCached(const std::string& path, const TrainedModel& model) {
  util::BinaryWriter writer(path);
  if (!writer.ok()) return;
  writer.WriteU64(static_cast<uint64_t>(model.beta.rows()));
  writer.WriteU64(static_cast<uint64_t>(model.beta.cols()));
  writer.WriteFloatVector(std::vector<float>(
      model.beta.data(), model.beta.data() + model.beta.numel()));
  writer.WriteU64(static_cast<uint64_t>(model.test_theta.rows()));
  writer.WriteU64(static_cast<uint64_t>(model.test_theta.cols()));
  writer.WriteFloatVector(std::vector<float>(
      model.test_theta.data(),
      model.test_theta.data() + model.test_theta.numel()));
  writer.WriteF32(static_cast<float>(model.stats.total_seconds));
  writer.WriteF32(static_cast<float>(model.stats.seconds_per_epoch));
  writer.WriteF32(static_cast<float>(model.stats.final_loss));
  writer.WriteU64(static_cast<uint64_t>(model.stats.extra_memory_bytes));
  if (!writer.Close().ok()) {
    LOG(WARNING) << "failed to write model cache " << path;
  }
}

}  // namespace

ExperimentContext LoadExperiment(const std::string& preset_name,
                                 double scale) {
  ExperimentContext context;
  context.config = text::PresetByName(preset_name, scale);
  context.dataset = text::GenerateSynthetic(context.config);
  text::BowCorpus reference = text::GenerateReferenceCorpus(
      context.config, context.dataset.train.vocab());
  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 48;
  context.embeddings = embed::WordEmbeddings::Train(reference, embed_config);
  context.train_npmi = std::make_unique<eval::NpmiMatrix>(
      eval::NpmiMatrix::Compute(context.dataset.train));
  context.test_npmi = std::make_unique<eval::NpmiMatrix>(
      eval::NpmiMatrix::Compute(context.dataset.test));
  return context;
}

BenchConfig ParseBenchConfig(const util::Flags& flags) {
  BenchConfig bench;
  const std::string scale = flags.GetString("scale", "small");
  if (scale == "paper") {
    // Paper-magnitude settings: K=100 topics, 100 epochs, 800-unit encoder.
    bench.doc_scale = 2.0;
    bench.train.num_topics = 100;
    bench.train.epochs = 100;
    bench.train.encoder_hidden = 800;
    bench.train.encoder_layers = 3;
    bench.train.batch_size = 1000;
  } else {
    bench.doc_scale = 0.75;
    bench.train.num_topics = 20;
    bench.train.epochs = 16;
    bench.train.encoder_hidden = 96;
    bench.train.encoder_layers = 2;
    bench.train.batch_size = 256;
  }
  bench.doc_scale = flags.GetDouble("docs", bench.doc_scale);
  bench.train.num_topics = flags.GetInt("topics", bench.train.num_topics);
  bench.train.epochs = flags.GetInt("epochs", bench.train.epochs);
  bench.train.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  bench.use_cache = flags.GetBool("cache", true);
  bench.telemetry_path = flags.GetString("telemetry", "");
  bench.checkpoint_path = flags.GetString("checkpoint", "");
  bench.model = util::ToLower(flags.GetString("model", "contratopic"));
  const std::string weighting =
      util::ToLower(flags.GetString("loss-weighting", "fixed"));
  CHECK(weighting == "fixed" || weighting == "moo")
      << "--loss-weighting must be fixed or moo, got " << weighting;
  bench.loss_weighting = weighting == "moo"
                             ? topicmodel::LossWeighting::kMoo
                             : topicmodel::LossWeighting::kFixed;
  // Training is bitwise-deterministic in the pool size (see DESIGN.md
  // "Parallelism & determinism"), so --threads only changes wall-clock.
  bench.num_threads = flags.GetInt("threads", 0);
  util::ThreadPool::SetGlobalNumThreads(bench.num_threads);
  return bench;
}

topicmodel::NeuralTopicModel::EpochEvaluator MakeEpochEvaluator(
    const ExperimentContext& context) {
  const eval::NpmiMatrix* npmi = context.test_npmi.get();
  return [npmi](const tensor::Tensor& beta) {
    const std::vector<double> coherence = eval::PerTopicCoherence(beta, *npmi);
    double mean = 0.0;
    for (double c : coherence) mean += c;
    if (!coherence.empty()) mean /= static_cast<double>(coherence.size());
    const double diversity =
        eval::DiversityAtProportion(beta, coherence, /*proportion=*/1.0);
    return std::vector<std::pair<std::string, double>>{
        {"npmi", mean}, {"diversity", diversity}};
  };
}

void AttachTelemetry(topicmodel::TopicModel* model,
                     util::RunTelemetry* telemetry,
                     const ExperimentContext& context) {
  auto* neural = dynamic_cast<topicmodel::NeuralTopicModel*>(model);
  if (neural == nullptr) return;
  neural->SetTelemetry(telemetry);
  if (telemetry != nullptr) {
    neural->SetEpochEvaluator(MakeEpochEvaluator(context));
  } else {
    neural->SetEpochEvaluator(nullptr);
  }
}

float LambdaForDataset(const std::string& preset_name) {
  // Paper: 40 / 40 / 300. The NYTimes value scales with its larger corpus;
  // at harness scale a milder boost reproduces the same relative emphasis.
  if (preset_name == "nytimes-sim") return 100.0f;
  return 40.0f;
}

TrainedModel TrainModel(const std::string& zoo_name,
                        const ExperimentContext& context,
                        const BenchConfig& bench,
                        core::ContraTopicOptions contra_options,
                        util::RunTelemetry* telemetry) {
  TrainedModel result;
  result.zoo_name = zoo_name;
  result.display_name = core::DisplayName(zoo_name);

  ::mkdir(kResultsDir, 0755);
  ::mkdir((std::string(kResultsDir) + "/cache").c_str(), 0755);
  const std::string cache_path =
      std::string(kResultsDir) + "/cache/" +
      CacheKey(zoo_name, context, bench.train, contra_options) + ".bin";
  if (bench.use_cache && LoadCached(cache_path, &result)) {
    return result;
  }

  auto model = core::CreateModel(zoo_name, bench.train, context.embeddings,
                                 contra_options);
  AttachTelemetry(model.get(), telemetry, context);
  if (telemetry != nullptr) {
    telemetry->RecordRunStart(
        result.display_name,
        {{"model", zoo_name},
         {"dataset", context.config.name},
         {"epochs", std::to_string(bench.train.epochs)},
         {"topics", std::to_string(bench.train.num_topics)},
         {"seed", std::to_string(bench.train.seed)}});
  }
  util::TraceSpan train_span("bench_train");
  result.stats = model->Train(context.dataset.train);
  if (telemetry != nullptr) {
    telemetry->RecordStage("train", train_span.ElapsedSeconds(),
                           {{"final_loss", result.stats.final_loss}});
  }
  result.beta = model->Beta();
  util::TraceSpan infer_span("bench_infer");
  result.test_theta = model->InferTheta(context.dataset.test);
  if (telemetry != nullptr) {
    telemetry->RecordStage("infer_theta", infer_span.ElapsedSeconds());
  }
  if (bench.use_cache) SaveCached(cache_path, result);
  return result;
}

TrainedModel TrainModel(const std::string& zoo_name,
                        const ExperimentContext& context,
                        const BenchConfig& bench) {
  core::ContraTopicOptions options;
  options.lambda = LambdaForDataset(context.config.name);
  return TrainModel(zoo_name, context, bench, options);
}

void EmitTable(const std::string& title, const std::string& stem,
               const util::TableWriter& table) {
  std::printf("\n== %s ==\n%s", title.c_str(), table.ToString().c_str());
  const std::string path = std::string(kResultsDir) + "/" + stem + ".tsv";
  const util::Status status = table.WriteTsv(path);
  if (!status.ok()) {
    LOG(WARNING) << "could not write " << path << ": " << status;
  } else {
    std::printf("[tsv: %s]\n", path.c_str());
  }
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace contratopic
