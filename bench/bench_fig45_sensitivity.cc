// Reproduces Figures 4 and 5: sensitivity of lambda (regularizer weight)
// and v (words sampled per topic). As in the paper, we report the highest
// and lowest percentile scores (TC/TD at the max and min selected-topic
// proportions, km-Purity at the max and min cluster counts).
//
// Reproduced shape: coherence rises with lambda then the coherence /
// diversity trade-off appears at large lambda; v shows a fast rise then a
// plateau and is much less dataset-sensitive than lambda.
//
// Figure 4 datasets: 20ng-sim + yahoo-sim; Figure 5: nytimes-sim
// (include it via --datasets=...,nytimes-sim; its lambda axis is larger,
// mirroring the paper's larger-scale NYTimes sweep).

#include <cstdio>

#include "bench/harness.h"
#include "eval/clustering.h"
#include "eval/metrics.h"
#include "util/string_util.h"

using namespace contratopic;  // NOLINT

namespace {

struct SweepPoint {
  std::string label;
  double tc_max, tc_min;  // coherence at 10% / 100% topics
  double td_max, td_min;  // diversity at 10% / 100% topics
  double purity_max, purity_min;
};

SweepPoint Evaluate(const std::string& label,
                    const bench::TrainedModel& model,
                    const bench::ExperimentContext& context,
                    const std::vector<int>& labels, int num_topics) {
  const auto coherence =
      eval::PerTopicCoherence(model.beta, *context.test_npmi);
  SweepPoint point;
  point.label = label;
  point.tc_max = eval::CoherenceAtProportion(coherence, 0.1);
  point.tc_min = eval::CoherenceAtProportion(coherence, 1.0);
  point.td_max = eval::DiversityAtProportion(model.beta, coherence, 0.1);
  point.td_min = eval::DiversityAtProportion(model.beta, coherence, 1.0);
  util::Rng rng_a(91);
  util::Rng rng_b(91);
  point.purity_max =
      eval::EvaluateClustering(model.test_theta, labels,
                               std::max(2, num_topics), rng_a)
          .purity;
  point.purity_min =
      eval::EvaluateClustering(model.test_theta, labels,
                               std::max(2, num_topics / 5), rng_b)
          .purity;
  return point;
}

void EmitSweep(const std::string& title, const std::string& stem,
               const std::vector<SweepPoint>& points,
               const std::string& axis_name) {
  util::TableWriter table({axis_name, "TC(max)", "TC(min)", "TD(max)",
                           "TD(min)", "km-Purity(max)", "km-Purity(min)"});
  for (const auto& p : points) {
    table.AddRow(p.label, {p.tc_max, p.tc_min, p.td_max, p.td_min,
                           p.purity_max, p.purity_min});
  }
  bench::EmitTable(title, stem, table);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchConfig bench_config = bench::ParseBenchConfig(flags);
  const auto datasets =
      util::Split(flags.GetString("datasets", "20ng-sim,yahoo-sim"), ",");

  for (const auto& dataset_name : datasets) {
    std::printf("\n### dataset %s ###\n", dataset_name.c_str());
    const bench::ExperimentContext context =
        bench::LoadExperiment(dataset_name, bench_config.doc_scale);
    std::vector<int> all_docs(context.dataset.test.num_docs());
    for (size_t i = 0; i < all_docs.size(); ++i) {
      all_docs[i] = static_cast<int>(i);
    }
    const std::vector<int> labels = context.dataset.test.Labels(all_docs);
    const int k = bench_config.train.num_topics;

    // Lambda sweep (the NYTimes analogue uses a larger axis, like Fig. 5).
    std::vector<double> lambdas = {0, 10, 20, 40, 80, 160};
    if (dataset_name == "nytimes-sim") lambdas = {0, 40, 100, 200, 400, 800};
    std::vector<SweepPoint> lambda_points;
    for (double lambda : lambdas) {
      core::ContraTopicOptions options;
      options.lambda = static_cast<float>(lambda);
      const bench::TrainedModel model =
          bench::TrainModel("contratopic", context, bench_config, options);
      lambda_points.push_back(
          Evaluate(util::StrFormat("%g", lambda), model, context, labels, k));
      std::printf("  lambda=%g done\n", lambda);
      std::fflush(stdout);
    }
    EmitSweep("Figure 4/5: lambda sensitivity on " + dataset_name,
              "fig45_lambda_" + dataset_name, lambda_points, "lambda");

    // v sweep (paper: 1..19).
    std::vector<SweepPoint> v_points;
    for (int v : {1, 3, 5, 10, 15, 19}) {
      core::ContraTopicOptions options;
      options.lambda = bench::LambdaForDataset(dataset_name);
      options.v = v;
      const bench::TrainedModel model =
          bench::TrainModel("contratopic", context, bench_config, options);
      v_points.push_back(
          Evaluate(util::StrFormat("%d", v), model, context, labels, k));
      std::printf("  v=%d done\n", v);
      std::fflush(stdout);
    }
    EmitSweep("Figure 4/5: v sensitivity on " + dataset_name,
              "fig45_v_" + dataset_name, v_points, "v");
  }
  return 0;
}
