// Reproduces Tables IV-VI: the case study listing each model's top-5
// topics (by test NPMI) with their most probable words, for the 20NG,
// Yahoo and NYTimes analogues. Models shown match the paper's selection:
// LDA, ETM, WeTe, CLNTM, ContraTopic.
//
// Reproduced shape: ContraTopic's top topics are clean single-theme word
// lists; CLNTM shows near-duplicate top topics (its diversity weakness);
// baselines mix themes further down.

#include <cstdio>

#include "bench/harness.h"
#include "eval/metrics.h"
#include "util/string_util.h"

using namespace contratopic;  // NOLINT

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchConfig bench_config = bench::ParseBenchConfig(flags);
  const auto datasets = util::Split(
      flags.GetString("datasets", "20ng-sim,yahoo-sim,nytimes-sim"), ",");
  const auto models =
      util::Split(flags.GetString("models", "lda,etm,wete,clntm,contratopic"),
                  ",");
  const int top_topics = flags.GetInt("top_topics", 5);
  const int top_words = flags.GetInt("top_words", 8);

  for (const auto& dataset_name : datasets) {
    std::printf("\n### dataset %s ###\n", dataset_name.c_str());
    const bench::ExperimentContext context =
        bench::LoadExperiment(dataset_name, bench_config.doc_scale);
    const text::Vocabulary& vocab = context.dataset.train.vocab();

    util::TableWriter table({"Model", "NPMI", "Topic Word Examples"});
    for (const auto& model_name : models) {
      const bench::TrainedModel model =
          bench::TrainModel(model_name, context, bench_config);
      const auto coherence =
          eval::PerTopicCoherence(model.beta, *context.test_npmi);
      const auto order = eval::TopicsByCoherence(coherence);
      for (int i = 0; i < top_topics && i < static_cast<int>(order.size());
           ++i) {
        const int k = order[i];
        std::vector<std::string> words;
        for (int w : model.beta.TopKIndicesOfRow(k, top_words)) {
          words.push_back(vocab.Word(w));
        }
        table.AddRow({i == 0 ? model.display_name : "",
                      util::FormatDouble(coherence[k], 2),
                      util::Join(words, " ")});
      }
      std::printf("  %-18s done\n", model.display_name.c_str());
      std::fflush(stdout);
    }
    bench::EmitTable("Tables IV-VI: generated topics on " + dataset_name,
                     "table456_casestudy_" + dataset_name, table);
  }
  return 0;
}
