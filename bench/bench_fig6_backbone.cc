// Reproduces Figure 6: backbone substitution. For each backbone (ETM,
// WLDA, WeTe) trains the plain model and the model + ContraTopic
// regularizer, on the 20NG and Yahoo analogues, reporting coherence /
// diversity at 10% and 100% of topics plus km-Purity and km-NMI.
//
// Reproduced shape: the regularizer improves coherence and diversity on
// *every* backbone, with WLDA gaining the most on clustering.

#include <cstdio>

#include "bench/harness.h"
#include "eval/clustering.h"
#include "eval/metrics.h"
#include "util/string_util.h"

using namespace contratopic;  // NOLINT

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchConfig bench_config = bench::ParseBenchConfig(flags);
  const auto datasets =
      util::Split(flags.GetString("datasets", "20ng-sim,yahoo-sim"), ",");

  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"etm", "contratopic"},
      {"wlda", "contratopic-wlda"},
      {"wete", "contratopic-wete"},
  };

  for (const auto& dataset_name : datasets) {
    std::printf("\n### dataset %s ###\n", dataset_name.c_str());
    const bench::ExperimentContext context =
        bench::LoadExperiment(dataset_name, bench_config.doc_scale);
    std::vector<int> all_docs(context.dataset.test.num_docs());
    for (size_t i = 0; i < all_docs.size(); ++i) {
      all_docs[i] = static_cast<int>(i);
    }
    const std::vector<int> labels = context.dataset.test.Labels(all_docs);

    util::TableWriter table({"Model", "TC@10%", "TC@100%", "TD@10%",
                             "TD@100%", "km-Purity", "km-NMI"});
    for (const auto& [plain, regularized] : pairs) {
      for (const std::string& name : {plain, regularized}) {
        const bench::TrainedModel model =
            bench::TrainModel(name, context, bench_config);
        const auto coherence =
            eval::PerTopicCoherence(model.beta, *context.test_npmi);
        util::Rng rng(91);
        const eval::ClusteringScore score = eval::EvaluateClustering(
            model.test_theta, labels, bench_config.train.num_topics, rng);
        table.AddRow(
            model.display_name,
            {eval::CoherenceAtProportion(coherence, 0.1),
             eval::CoherenceAtProportion(coherence, 1.0),
             eval::DiversityAtProportion(model.beta, coherence, 0.1),
             eval::DiversityAtProportion(model.beta, coherence, 1.0),
             score.purity, score.nmi});
        std::printf("  trained %-22s\n", model.display_name.c_str());
        std::fflush(stdout);
      }
    }
    bench::EmitTable("Figure 6: backbone substitution on " + dataset_name,
                     "fig6_backbone_" + dataset_name, table);
  }
  return 0;
}
