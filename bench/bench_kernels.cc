// Microbenchmarks (google-benchmark) for the substrate kernels that
// dominate training time, plus the ablation called out in DESIGN.md §5:
// the candidate-vocabulary restriction of the contrastive term versus the
// full-vocabulary version.
//
// Two extra modes beyond plain google-benchmark:
//   * per-backend variants (BM_MatMul<scalar>, <sse2>, <avx2>, ...) are
//     registered for every backend the host supports;
//   * --table [--host=<name>] runs a hand-timed single-thread GFLOP/s
//     comparison of every backend against the scalar reference, mirrors
//     it to bench_results/kernels_<name>.tsv plus a machine-readable
//     bench_results/BENCH_kernels.json, and exits non-zero if any backend
//     result deviates from the scalar bits (the CI gate for the bitwise
//     contract of tensor/backend.h).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/contrastive_loss.h"
#include "core/subset_sampler.h"
#include "eval/npmi.h"
#include "tensor/autodiff.h"
#include "tensor/backend.h"
#include "tensor/kernels.h"
#include "text/synthetic.h"
#include "util/cpu_features.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"

namespace {

using contratopic::tensor::Tensor;
namespace ad = contratopic::autodiff;
namespace core = contratopic::core;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  contratopic::util::Rng rng(1);
  const Tensor a = Tensor::RandNormal(n, n, rng);
  const Tensor b = Tensor::RandNormal(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        contratopic::tensor::MatMulNew(a, false, b, false));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_SoftmaxRows(benchmark::State& state) {
  contratopic::util::Rng rng(2);
  Tensor x = Tensor::RandNormal(256, state.range(0), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(contratopic::tensor::SoftmaxRows(x));
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(1000)->Arg(4000);

void BM_NpmiCompute(benchmark::State& state) {
  const auto dataset = contratopic::text::GenerateSynthetic(
      contratopic::text::Preset20NG(0.1 * state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        contratopic::eval::NpmiMatrix::Compute(dataset.train));
  }
}
BENCHMARK(BM_NpmiCompute)->Arg(1)->Arg(3);

void BM_SubsetSamplerForwardBackward(benchmark::State& state) {
  const int candidates = static_cast<int>(state.range(0));
  contratopic::util::Rng rng(3);
  const Tensor logits = Tensor::RandNormal(20, candidates, rng);
  const Tensor kernel =
      Tensor::RandNormal(candidates, candidates, rng, 0, 0.3f);
  for (auto _ : state) {
    ad::Var leaf = ad::Var::Leaf(logits, true);
    core::SubsetSample sample =
        core::SampleTopVWithoutReplacement(leaf, 10, 0.5f, rng);
    ad::Var loss = core::TopicContrastiveLoss(sample.steps, kernel);
    ad::Backward(loss);
    benchmark::DoNotOptimize(leaf.grad());
  }
}
BENCHMARK(BM_SubsetSamplerForwardBackward)->Arg(128)->Arg(512)->Arg(1024);

// The DESIGN.md §5 ablation: contrastive term on the candidate union vs
// the full vocabulary. Arg = vocabulary size; candidate set fixed at 512.
void BM_ContrastiveFullVocab(benchmark::State& state) {
  const int vocab = static_cast<int>(state.range(0));
  contratopic::util::Rng rng(4);
  const Tensor logits = Tensor::RandNormal(20, vocab, rng);
  const Tensor kernel = Tensor::RandNormal(vocab, vocab, rng, 0, 0.3f);
  for (auto _ : state) {
    ad::Var leaf = ad::Var::Leaf(logits, true);
    core::SubsetSample sample =
        core::SampleTopVWithoutReplacement(leaf, 10, 0.5f, rng);
    ad::Var loss = core::TopicContrastiveLoss(sample.steps, kernel);
    ad::Backward(loss);
    benchmark::DoNotOptimize(leaf.grad());
  }
}
BENCHMARK(BM_ContrastiveFullVocab)->Arg(1000)->Arg(2000);

void BM_KernelSubMatrixGather(benchmark::State& state) {
  const auto dataset = contratopic::text::GenerateSynthetic(
      contratopic::text::Preset20NG(0.1));
  const auto npmi = contratopic::eval::NpmiMatrix::Compute(dataset.train);
  std::vector<int> indices;
  for (int i = 0; i < npmi.vocab_size(); i += 2) indices.push_back(i);
  if (static_cast<int>(indices.size()) > 512) indices.resize(512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(npmi.SubMatrix(indices));
  }
}
BENCHMARK(BM_KernelSubMatrixGather);

// ---------------------------------------------------------------------------
// Per-backend variants and the --table comparison mode.
// ---------------------------------------------------------------------------

namespace tensor = contratopic::tensor;

// Registers MatMul and row-softmax (the two ops the speedup target is
// defined on) once per supported backend, so plain google-benchmark runs
// already show the per-backend picture.
void RegisterPerBackendBenchmarks() {
  for (tensor::KernelBackendKind kind : tensor::SupportedBackends()) {
    const std::string tag =
        std::string("<") + tensor::KernelBackendName(kind) + ">";
    benchmark::RegisterBenchmark(
        ("BM_MatMul" + tag).c_str(),
        [kind](benchmark::State& state) {
          tensor::ScopedKernelBackend scoped(kind);
          const int64_t n = state.range(0);
          contratopic::util::Rng rng(1);
          const Tensor a = Tensor::RandNormal(n, n, rng);
          const Tensor b = Tensor::RandNormal(n, n, rng);
          for (auto _ : state) {
            benchmark::DoNotOptimize(tensor::MatMulNew(a, false, b, false));
          }
          state.SetItemsProcessed(state.iterations() * n * n * n);
        })
        ->Arg(128)
        ->Arg(256)
        ->Arg(512);
    benchmark::RegisterBenchmark(
        ("BM_SoftmaxRows" + tag).c_str(),
        [kind](benchmark::State& state) {
          tensor::ScopedKernelBackend scoped(kind);
          contratopic::util::Rng rng(2);
          Tensor x = Tensor::RandNormal(256, state.range(0), rng);
          for (auto _ : state) {
            benchmark::DoNotOptimize(tensor::SoftmaxRows(x));
          }
        })
        ->Arg(1000)
        ->Arg(4000);
  }
}

struct TableOp {
  std::string name;
  double flops_per_call;  // work per call, for the GFLOP/s column
  std::function<Tensor()> run;
};

std::vector<TableOp> BuildTableOps() {
  std::vector<TableOp> ops;
  contratopic::util::Rng rng(7);
  for (int64_t n : {128, 256, 512}) {
    auto a = std::make_shared<Tensor>(Tensor::RandNormal(n, n, rng));
    auto b = std::make_shared<Tensor>(Tensor::RandNormal(n, n, rng));
    ops.push_back({"matmul_" + std::to_string(n),
                   2.0 * static_cast<double>(n) * n * n,
                   [a, b] { return tensor::MatMulNew(*a, false, *b, false); }});
  }
  for (int64_t cols : {1000, 4000}) {
    auto x = std::make_shared<Tensor>(Tensor::RandNormal(256, cols, rng));
    // ~5 flop/element (max, sub, exp-ish, sum, scale) -- a nominal count
    // so the column is comparable across shapes, not a precise model.
    ops.push_back({"softmax_256x" + std::to_string(cols),
                   5.0 * 256.0 * static_cast<double>(cols),
                   [x] { return tensor::SoftmaxRows(*x); }});
  }
  {
    auto x = std::make_shared<Tensor>(Tensor::RandNormal(256, 4000, rng));
    ops.push_back({"logsumexp_256x4000", 4.0 * 256.0 * 4000.0, [x] {
                     Tensor out(256, 1);
                     tensor::LogSumExpRows(*x, nullptr, &out);
                     return out;
                   }});
    ops.push_back({"row_l2norm_256x4000", 3.0 * 256.0 * 4000.0,
                   [x] { return tensor::RowL2Normalized(*x); }});
  }
  return ops;
}

// Median-of-3 seconds per call, calibrated to ~0.15 s per repetition.
double TimeOp(const TableOp& op) {
  contratopic::util::Stopwatch sw;
  op.run();
  const double once = std::max(1e-7, sw.ElapsedSeconds());
  const int iters = std::max(1, static_cast<int>(0.15 / once));
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    sw.Restart();
    for (int i = 0; i < iters; ++i) benchmark::DoNotOptimize(op.run());
    best = std::min(best, sw.ElapsedSeconds() / iters);
  }
  return best;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(), sizeof(float) * a.numel()) == 0;
}

// The --table mode. Returns the process exit code.
int RunBackendTable(const std::string& host) {
  using contratopic::tensor::KernelBackendKind;
  // Single-thread timings: the speedup target is per-core; determinism
  // makes thread count a separate, orthogonal axis.
  contratopic::util::ThreadPool::SetGlobalNumThreads(1);
  const std::vector<KernelBackendKind> backends = tensor::SupportedBackends();
  std::vector<TableOp> ops = BuildTableOps();

  contratopic::util::TableWriter table(
      {"op", "backend", "GFLOP/s", "sec/call", "speedup_vs_scalar",
       "bitwise_match"});
  std::map<std::string, double> best_speedup;
  bool all_match = true;
  for (const TableOp& op : ops) {
    Tensor reference;
    double scalar_sec = 0.0;
    for (KernelBackendKind kind : backends) {
      tensor::ScopedKernelBackend scoped(kind);
      const Tensor result = op.run();
      bool match = true;
      if (kind == KernelBackendKind::kScalar) {
        reference = result;
      } else {
        match = BitwiseEqual(reference, result);
        all_match = all_match && match;
      }
      const double sec = TimeOp(op);
      if (kind == KernelBackendKind::kScalar) scalar_sec = sec;
      const double speedup = scalar_sec / sec;
      if (kind != KernelBackendKind::kScalar) {
        double& cur = best_speedup[op.name];
        cur = std::max(cur, speedup);
      }
      char gflops[32], sec_str[32], speed_str[32];
      std::snprintf(gflops, sizeof(gflops), "%.3f",
                    op.flops_per_call / sec * 1e-9);
      std::snprintf(sec_str, sizeof(sec_str), "%.3e", sec);
      std::snprintf(speed_str, sizeof(speed_str), "%.2f", speedup);
      table.AddRow({op.name, tensor::KernelBackendName(kind), gflops,
                    sec_str, speed_str, match ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  const std::string tsv_path = "bench_results/kernels_" + host + ".tsv";
  if (!table.WriteTsv(tsv_path).ok()) {
    std::fprintf(stderr, "failed to write %s\n", tsv_path.c_str());
    return 1;
  }

  // Machine-readable summary for CI and the docs.
  const std::string json_path = "bench_results/BENCH_kernels.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"host\": \"%s\",\n", host.c_str());
  std::fprintf(f, "  \"cpu_features\": \"%s\",\n",
               contratopic::util::CpuFeatures::Get().ToString().c_str());
  std::fprintf(f, "  \"backends\": [");
  for (size_t i = 0; i < backends.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                 tensor::KernelBackendName(backends[i]));
  }
  std::fprintf(f, "],\n  \"best_backend\": \"%s\",\n",
               tensor::KernelBackendName(tensor::BestSupportedBackend()));
  std::fprintf(f, "  \"bitwise_match\": %s,\n",
               all_match ? "true" : "false");
  std::fprintf(f, "  \"best_speedup_vs_scalar\": {");
  bool first = true;
  for (const auto& [op_name, speedup] : best_speedup) {
    std::fprintf(f, "%s\n    \"%s\": %.2f", first ? "" : ",",
                 op_name.c_str(), speedup);
    first = false;
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s and %s\n", tsv_path.c_str(), json_path.c_str());

  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: a SIMD backend diverged bitwise from the scalar "
                 "reference (see bitwise_match column)\n");
    return 1;
  }
  return 0;
}

}  // namespace

// Like BENCHMARK_MAIN(), with extra flags handled before google-benchmark:
//   --threads=N  sizes the global thread pool (0 = hardware default); all
//                kernels are bitwise-deterministic in the pool size, so
//                this only moves wall-clock;
//   --table      runs the per-backend comparison table instead of the
//                google-benchmark suites (exit 1 on bitwise mismatch);
//   --host=NAME  names the TSV written by --table (default "local").
int main(int argc, char** argv) {
  bool table_mode = false;
  std::string host = "local";
  for (int i = 1; i < argc;) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      contratopic::util::ThreadPool::SetGlobalNumThreads(
          std::atoi(argv[i] + 10));
    } else if (std::strcmp(argv[i], "--table") == 0) {
      table_mode = true;
    } else if (std::strncmp(argv[i], "--host=", 7) == 0) {
      host = argv[i] + 7;
    } else {
      ++i;
      continue;
    }
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    --argc;
  }
  if (table_mode) return RunBackendTable(host);
  RegisterPerBackendBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
