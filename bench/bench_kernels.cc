// Microbenchmarks (google-benchmark) for the substrate kernels that
// dominate training time, plus the ablation called out in DESIGN.md §5:
// the candidate-vocabulary restriction of the contrastive term versus the
// full-vocabulary version.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "core/contrastive_loss.h"
#include "core/subset_sampler.h"
#include "eval/npmi.h"
#include "tensor/autodiff.h"
#include "tensor/kernels.h"
#include "text/synthetic.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using contratopic::tensor::Tensor;
namespace ad = contratopic::autodiff;
namespace core = contratopic::core;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  contratopic::util::Rng rng(1);
  const Tensor a = Tensor::RandNormal(n, n, rng);
  const Tensor b = Tensor::RandNormal(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        contratopic::tensor::MatMulNew(a, false, b, false));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_SoftmaxRows(benchmark::State& state) {
  contratopic::util::Rng rng(2);
  Tensor x = Tensor::RandNormal(256, state.range(0), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(contratopic::tensor::SoftmaxRows(x));
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(1000)->Arg(4000);

void BM_NpmiCompute(benchmark::State& state) {
  const auto dataset = contratopic::text::GenerateSynthetic(
      contratopic::text::Preset20NG(0.1 * state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        contratopic::eval::NpmiMatrix::Compute(dataset.train));
  }
}
BENCHMARK(BM_NpmiCompute)->Arg(1)->Arg(3);

void BM_SubsetSamplerForwardBackward(benchmark::State& state) {
  const int candidates = static_cast<int>(state.range(0));
  contratopic::util::Rng rng(3);
  const Tensor logits = Tensor::RandNormal(20, candidates, rng);
  const Tensor kernel =
      Tensor::RandNormal(candidates, candidates, rng, 0, 0.3f);
  for (auto _ : state) {
    ad::Var leaf = ad::Var::Leaf(logits, true);
    core::SubsetSample sample =
        core::SampleTopVWithoutReplacement(leaf, 10, 0.5f, rng);
    ad::Var loss = core::TopicContrastiveLoss(sample.steps, kernel);
    ad::Backward(loss);
    benchmark::DoNotOptimize(leaf.grad());
  }
}
BENCHMARK(BM_SubsetSamplerForwardBackward)->Arg(128)->Arg(512)->Arg(1024);

// The DESIGN.md §5 ablation: contrastive term on the candidate union vs
// the full vocabulary. Arg = vocabulary size; candidate set fixed at 512.
void BM_ContrastiveFullVocab(benchmark::State& state) {
  const int vocab = static_cast<int>(state.range(0));
  contratopic::util::Rng rng(4);
  const Tensor logits = Tensor::RandNormal(20, vocab, rng);
  const Tensor kernel = Tensor::RandNormal(vocab, vocab, rng, 0, 0.3f);
  for (auto _ : state) {
    ad::Var leaf = ad::Var::Leaf(logits, true);
    core::SubsetSample sample =
        core::SampleTopVWithoutReplacement(leaf, 10, 0.5f, rng);
    ad::Var loss = core::TopicContrastiveLoss(sample.steps, kernel);
    ad::Backward(loss);
    benchmark::DoNotOptimize(leaf.grad());
  }
}
BENCHMARK(BM_ContrastiveFullVocab)->Arg(1000)->Arg(2000);

void BM_KernelSubMatrixGather(benchmark::State& state) {
  const auto dataset = contratopic::text::GenerateSynthetic(
      contratopic::text::Preset20NG(0.1));
  const auto npmi = contratopic::eval::NpmiMatrix::Compute(dataset.train);
  std::vector<int> indices;
  for (int i = 0; i < npmi.vocab_size(); i += 2) indices.push_back(i);
  if (static_cast<int>(indices.size()) > 512) indices.resize(512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(npmi.SubMatrix(indices));
  }
}
BENCHMARK(BM_KernelSubMatrixGather);

}  // namespace

// Like BENCHMARK_MAIN(), with one extra flag: --threads=N sizes the global
// thread pool before any benchmark runs (0 = hardware default). All kernels
// are bitwise-deterministic in the pool size, so this only moves wall-clock.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      contratopic::util::ThreadPool::SetGlobalNumThreads(
          std::atoi(argv[i] + 10));
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
