// Reproduces Table III: word-intrusion scores (WIS) on the 20NG analogue
// for all ten models. The paper's 20 human annotators are replaced by the
// simulated annotator of eval/intrusion.h (DESIGN.md §2); questions follow
// the paper's protocol (3 topics per coherence decile, top-5 words + 1
// intruder drawn from an unselected topic).
//
// Reproduced shape: WIS tracks topic coherence; ContraTopic highest.

#include <cstdio>

#include "bench/harness.h"
#include "eval/intrusion.h"
#include "util/string_util.h"

using namespace contratopic;  // NOLINT

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchConfig bench_config = bench::ParseBenchConfig(flags);
  const std::string dataset_name = flags.GetString("dataset", "20ng-sim");
  const bench::ExperimentContext context =
      bench::LoadExperiment(dataset_name, bench_config.doc_scale);

  util::TableWriter table({"Model", "WIS"});
  for (const auto& model_name : core::PaperModelNames()) {
    const bench::TrainedModel model =
        bench::TrainModel(model_name, context, bench_config);
    eval::IntrusionConfig intrusion_config;
    const auto questions = eval::GenerateIntrusionQuestions(
        model.beta, *context.train_npmi, intrusion_config);
    const double wis =
        eval::WordIntrusionScore(questions, *context.test_npmi);
    table.AddRow(model.display_name, {wis}, 2);
    std::printf("  %-18s WIS=%.2f (%zu questions)\n",
                model.display_name.c_str(), wis, questions.size());
    std::fflush(stdout);
  }
  bench::EmitTable(
      "Table III: word intrusion scores (simulated annotator) on " +
          dataset_name,
      "table3_intrusion_" + dataset_name, table);
  return 0;
}
