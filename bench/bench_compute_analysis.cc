// Reproduces the computational analysis of §V.E: per-model training time
// per epoch, the extra memory attributable to ContraTopic's pre-computed
// NPMI matrix, and the NPMI precomputation time (which the paper likens to
// ~30 training epochs).
//
// Reproduced shape: ContraTopic's overhead over its ETM backbone is modest
// (sampling is O(M); the kernel is O(V^2) memory), and precomputing NPMI
// costs a small constant multiple of an epoch.

#include <cstdio>

#include "bench/harness.h"
#include "eval/npmi.h"
#include "util/string_util.h"
#include "util/trace.h"

using namespace contratopic;  // NOLINT

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::BenchConfig bench_config = bench::ParseBenchConfig(flags);
  // Cached entries carry the timings measured when they were trained, so
  // the cache stays valid for this analysis; use --cache=false to force
  // fresh measurements.
  bench_config.train.epochs = flags.GetInt("epochs", 4);
  const std::string dataset_name =
      flags.GetString("dataset", "nytimes-sim");  // §V.E reports NYTimes.
  const bench::ExperimentContext context =
      bench::LoadExperiment(dataset_name, bench_config.doc_scale);

  // NPMI precomputation cost.
  util::TraceSpan npmi_span("npmi_precompute");
  const eval::NpmiMatrix npmi =
      eval::NpmiMatrix::Compute(context.dataset.train);
  const double npmi_seconds = npmi_span.ElapsedSeconds();

  util::TableWriter table(
      {"Model", "sec/epoch", "extra memory (MiB)", "final loss"});
  double etm_sec_per_epoch = 0.0;
  for (const auto& model_name : core::PaperModelNames()) {
    const bench::TrainedModel model =
        bench::TrainModel(model_name, context, bench_config);
    if (model.zoo_name == "etm") {
      etm_sec_per_epoch = model.stats.seconds_per_epoch;
    }
    table.AddRow(model.display_name,
                 {model.stats.seconds_per_epoch,
                  model.stats.extra_memory_bytes / (1024.0 * 1024.0),
                  model.stats.final_loss});
    std::printf("  %-18s %.2fs/epoch\n", model.display_name.c_str(),
                model.stats.seconds_per_epoch);
    std::fflush(stdout);
  }
  bench::EmitTable("Computational analysis (paper SV.E) on " + dataset_name,
                   "compute_analysis_" + dataset_name, table);

  std::printf(
      "\nNPMI precompute: %.2fs (~%.1f ETM epochs; paper reports ~30 "
      "training epochs at GPU scale)\n",
      npmi_seconds,
      etm_sec_per_epoch > 0 ? npmi_seconds / etm_sec_per_epoch : 0.0);
  std::printf("NPMI matrix memory: %.1f MiB (V=%d)\n",
              npmi.MemoryBytes() / (1024.0 * 1024.0), npmi.vocab_size());
  return 0;
}
