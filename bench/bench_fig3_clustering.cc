// Reproduces Figure 3: km-Purity and km-NMI of KMeans clusters over the
// inferred document-topic distributions on the labelled datasets (20NG and
// Yahoo analogues), sweeping the number of clusters.
//
// Paper sweep: 20..100 clusters over 100 topics; harness scale sweeps the
// same 20%..100% of the topic count.

#include <cstdio>

#include "bench/harness.h"
#include "eval/clustering.h"
#include "util/string_util.h"

using namespace contratopic;  // NOLINT

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchConfig bench_config = bench::ParseBenchConfig(flags);
  const auto datasets =
      util::Split(flags.GetString("datasets", "20ng-sim,yahoo-sim"), ",");
  const auto models = util::Split(
      flags.GetString("models", util::Join(core::PaperModelNames(), ",")),
      ",");

  // Cluster counts at 20%..100% of the topic count (paper: 20..100 of 100).
  std::vector<int> cluster_counts;
  std::vector<std::string> header = {"Model"};
  for (int pct : {20, 40, 60, 80, 100}) {
    cluster_counts.push_back(
        std::max(2, bench_config.train.num_topics * pct / 100));
    header.push_back(util::StrFormat("%d clusters", cluster_counts.back()));
  }

  for (const auto& dataset_name : datasets) {
    std::printf("\n### dataset %s ###\n", dataset_name.c_str());
    const bench::ExperimentContext context =
        bench::LoadExperiment(dataset_name, bench_config.doc_scale);
    std::vector<int> all_docs(context.dataset.test.num_docs());
    for (size_t i = 0; i < all_docs.size(); ++i) {
      all_docs[i] = static_cast<int>(i);
    }
    const std::vector<int> labels = context.dataset.test.Labels(all_docs);

    util::TableWriter purity_table(header);
    util::TableWriter nmi_table(header);
    for (const auto& model_name : models) {
      const bench::TrainedModel model =
          bench::TrainModel(model_name, context, bench_config);
      std::vector<double> purities;
      std::vector<double> nmis;
      for (int clusters : cluster_counts) {
        util::Rng rng(91);
        const eval::ClusteringScore score = eval::EvaluateClustering(
            model.test_theta, labels, clusters, rng);
        purities.push_back(score.purity);
        nmis.push_back(score.nmi);
      }
      purity_table.AddRow(model.display_name, purities);
      nmi_table.AddRow(model.display_name, nmis);
      std::printf("  evaluated %-18s\n", model.display_name.c_str());
      std::fflush(stdout);
    }
    bench::EmitTable("Figure 3a: km-Purity on " + dataset_name,
                     "fig3_purity_" + dataset_name, purity_table);
    bench::EmitTable("Figure 3b: km-NMI on " + dataset_name,
                     "fig3_nmi_" + dataset_name, nmi_table);
  }
  return 0;
}
