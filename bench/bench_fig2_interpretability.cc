// Reproduces Figure 2: topic coherence (NPMI@10, test co-occurrence) and
// topic diversity (TD@25) as the proportion of selected topics sweeps from
// 10% to 100%, for all ten models on all three datasets.
//
// The reproduced *shape*: ContraTopic at or near the top of the coherence
// curves everywhere with strong diversity; CLNTM coherent-but-redundant;
// ProdLDA / WeTe diverse-but-incoherent tails; LDA mid-pack.
//
// Flags: --datasets=20ng-sim,yahoo-sim,nytimes-sim --epochs --topics --docs
//        --scale=small|paper --models=...

#include <cstdio>

#include "bench/harness.h"
#include "eval/metrics.h"
#include "util/string_util.h"

using namespace contratopic;  // NOLINT

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchConfig bench_config = bench::ParseBenchConfig(flags);
  const auto datasets = util::Split(
      flags.GetString("datasets", "20ng-sim,yahoo-sim,nytimes-sim"), ",");
  auto models = util::Split(
      flags.GetString("models", util::Join(core::PaperModelNames(), ",")),
      ",");

  const std::vector<double> proportions = {0.1, 0.2, 0.3, 0.4, 0.5,
                                           0.6, 0.7, 0.8, 0.9, 1.0};
  std::vector<std::string> header = {"Model"};
  for (double p : proportions) {
    header.push_back(util::StrFormat("%d%%", static_cast<int>(p * 100)));
  }

  for (const auto& dataset_name : datasets) {
    std::printf("\n### dataset %s ###\n", dataset_name.c_str());
    const bench::ExperimentContext context =
        bench::LoadExperiment(dataset_name, bench_config.doc_scale);

    util::TableWriter coherence_table(header);
    util::TableWriter diversity_table(header);
    for (const auto& model_name : models) {
      const bench::TrainedModel model =
          bench::TrainModel(model_name, context, bench_config);
      const eval::InterpretabilityCurve curve = eval::EvaluateInterpretability(
          model.beta, *context.test_npmi, proportions);
      coherence_table.AddRow(model.display_name, curve.coherence);
      diversity_table.AddRow(model.display_name, curve.diversity);
      std::printf("  trained %-18s (%.1fs)\n", model.display_name.c_str(),
                  model.stats.total_seconds);
      std::fflush(stdout);
    }
    bench::EmitTable(
        "Figure 2 (top row): topic coherence on " + dataset_name,
        "fig2_coherence_" + dataset_name, coherence_table);
    bench::EmitTable(
        "Figure 2 (bottom row): topic diversity on " + dataset_name,
        "fig2_diversity_" + dataset_name, diversity_table);
  }
  return 0;
}
