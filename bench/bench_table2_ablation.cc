// Reproduces Table II: ablation of the contrastive objective on the 20NG
// analogue. Rows: ContraTopic and the four variants
//   -P (positives only), -N (negatives only),
//   -I (embedding kernel instead of NPMI), -S (expectation, no sampling).
// Columns: topic coherence and diversity at 10/50/90% selected topics and
// km-Purity at 20/60/100% of the cluster sweep.
//
// Reproduced shape: full > {-P, -S, -I} > -N, with -N degrading clustering.

#include <cstdio>

#include "bench/harness.h"
#include "eval/clustering.h"
#include "eval/metrics.h"
#include "util/string_util.h"

using namespace contratopic;  // NOLINT

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchConfig bench_config = bench::ParseBenchConfig(flags);
  const std::string dataset_name = flags.GetString("dataset", "20ng-sim");
  const bench::ExperimentContext context =
      bench::LoadExperiment(dataset_name, bench_config.doc_scale);

  std::vector<int> all_docs(context.dataset.test.num_docs());
  for (size_t i = 0; i < all_docs.size(); ++i) {
    all_docs[i] = static_cast<int>(i);
  }
  const std::vector<int> labels = context.dataset.test.Labels(all_docs);

  util::TableWriter table(
      {"Model", "TC@10%", "TC@50%", "TC@90%", "TD@10%", "TD@50%", "TD@90%",
       "km-Purity@20%", "km-Purity@60%", "km-Purity@100%"});

  for (const auto& model_name : core::AblationModelNames()) {
    const bench::TrainedModel model =
        bench::TrainModel(model_name, context, bench_config);
    const auto coherence =
        eval::PerTopicCoherence(model.beta, *context.test_npmi);
    std::vector<double> row;
    for (double p : {0.1, 0.5, 0.9}) {
      row.push_back(eval::CoherenceAtProportion(coherence, p));
    }
    for (double p : {0.1, 0.5, 0.9}) {
      row.push_back(eval::DiversityAtProportion(model.beta, coherence, p));
    }
    for (int pct : {20, 60, 100}) {
      util::Rng rng(91);
      const int clusters =
          std::max(2, bench_config.train.num_topics * pct / 100);
      row.push_back(
          eval::EvaluateClustering(model.test_theta, labels, clusters, rng)
              .purity);
    }
    table.AddRow(model.display_name, row);
    std::printf("  trained %-16s\n", model.display_name.c_str());
    std::fflush(stdout);
  }
  bench::EmitTable("Table II: ablation study on " + dataset_name,
                   "table2_ablation_" + dataset_name, table);
  return 0;
}
