// Serving bench and CI serve-smoke binary (DESIGN.md §10, §15). Three
// modes; train and serve run as separate processes so the serve leg
// proves a cold-start reload:
//
//   --mode=train      train ContraTopic on the preset, save a frozen
//                     checkpoint (--checkpoint=...), and dump the
//                     expected test-set theta next to it
//                     (<checkpoint>.expected).
//   --mode=serve      in a fresh process, load the checkpoint into an
//                     InferenceEngine, replay the test documents (with
//                     repeats, so the cache and the batcher both see
//                     traffic), and verify every served theta is
//                     bitwise-identical to the training process's.
//   --mode=hotswap    continual-serving chaos gate (DESIGN.md §16): fit
//                     core::OnlineContraTopic over a streamed theme
//                     shift, checkpoint every slice, and hot-swap each
//                     candidate into a serve::ModelRegistry while
//                     queries flow and the registry.* fault sites are
//                     armed probabilistically. The exit code enforces:
//                     >= --min-swaps published swaps, zero failed
//                     requests, every injected fault retried to success
//                     or rolled back cleanly, and rejected/rolled-back
//                     swaps leaving serving bitwise-identical to the
//                     incumbent (rollback re-verified against a no-swap
//                     control engine).
//   --mode=precision  sweep the serving precisions over the same
//                     checkpoint (--precision=all|fp32|bf16|int8 picks
//                     the legs; fp32 always runs as the baseline).
//                     Each leg measures InferTheta throughput, the
//                     quantized checkpoint's bytes on disk, and theta
//                     max-abs-delta vs the fp32 leg, then verifies
//                     TopicTopWords from a server restored off the
//                     quantized file matches fp32 exactly. Results go
//                     to bench_results/BENCH_serve_precision.json; the
//                     exit code enforces the §15 contract (top-word
//                     invariance, documented theta tolerances, and
//                     int8 throughput >= 2x fp32).
//
// Train/serve stream run telemetry (--telemetry=...) ending in a
// manifest; serve mode also emits a "serve_stats" record that
// scripts/check_telemetry.py --mode=serve validates. The exit code is
// non-zero on any bitwise mismatch, serving error, or telemetry gap.
//
// Usage: bench_serve --mode=train|serve|hotswap|precision
//        [--preset=20ng-sim]
//        [--checkpoint=bench_results/serve_<preset>.ckpt]
//        [--queries=100] [--telemetry=<path>] [--threads=N]
//        [--precision=all|fp32|bf16|int8]
//        [--slices=7] [--min-swaps=5] [--chaos=1]

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/online.h"
#include "embed/cooccurrence.h"
#include "eval/npmi.h"
#include "serve/checkpoint.h"
#include "serve/engine.h"
#include "serve/registry.h"
#include "serve/resilience.h"
#include "tensor/quant.h"
#include "text/dynamic.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/serialize.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"
#include "util/trace.h"

using namespace contratopic;  // NOLINT

namespace {

// The sidecar holding the training process's InferTheta over the test
// split: rows, cols, then row-major floats.
util::Status WriteExpectedTheta(const tensor::Tensor& theta,
                                const std::string& path) {
  util::BinaryWriter writer(path);
  writer.WriteU32(static_cast<uint32_t>(theta.rows()));
  writer.WriteU32(static_cast<uint32_t>(theta.cols()));
  writer.WriteBytes(theta.data(),
                    static_cast<size_t>(theta.numel()) * sizeof(float));
  return writer.Close();
}

util::StatusOr<tensor::Tensor> ReadExpectedTheta(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IOError("cannot open expected-theta file " + path);
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  util::BinaryReader reader(bytes.data(), bytes.size());
  const uint32_t rows = reader.ReadU32();
  const uint32_t cols = reader.ReadU32();
  if (!reader.ok() || rows == 0 || cols == 0 ||
      reader.remaining() !=
          static_cast<size_t>(rows) * cols * sizeof(float)) {
    return util::Status::DataLoss("malformed expected-theta file " + path);
  }
  tensor::Tensor theta(rows, cols);
  std::memcpy(theta.data(), bytes.data() + (bytes.size() - reader.remaining()),
              reader.remaining());
  return theta;
}

serve::InferenceEngine::BowDoc ToBowDoc(const text::Document& doc) {
  serve::InferenceEngine::BowDoc bow;
  bow.reserve(doc.entries.size());
  for (const auto& e : doc.entries) bow.emplace_back(e.word_id, e.count);
  return bow;
}

int RunTrain(const bench::ExperimentContext& context,
             const bench::BenchConfig& bench_config,
             const std::string& checkpoint_path,
             util::RunTelemetry* telemetry) {
  core::ContraTopicOptions options;
  options.lambda = bench::LambdaForDataset(context.config.name);
  auto model = core::CreateModel("contratopic", bench_config.train,
                                 context.embeddings, options);
  bench::AttachTelemetry(model.get(), telemetry, context);

  double train_seconds = 0.0;
  {
    util::TraceSpan span("train");
    model->Train(context.dataset.train);
    train_seconds = span.ElapsedSeconds();
  }
  telemetry->RecordStage("train", train_seconds);

  util::Status saved = serve::SaveCheckpoint(
      *model, context.dataset.train.vocab(), checkpoint_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "FAIL: SaveCheckpoint: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  const tensor::Tensor theta = model->InferTheta(context.dataset.test);
  util::Status dumped =
      WriteExpectedTheta(theta, checkpoint_path + ".expected");
  if (!dumped.ok()) {
    std::fprintf(stderr, "FAIL: expected-theta dump: %s\n",
                 dumped.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint=%s (expected theta: %lld x %lld)\n",
              checkpoint_path.c_str(),
              static_cast<long long>(theta.rows()),
              static_cast<long long>(theta.cols()));
  telemetry->RecordManifest({{"train_seconds", train_seconds},
                             {"test_docs", double(theta.rows())}});
  return 0;
}

int RunServe(const bench::ExperimentContext& context, int num_queries,
             const std::string& checkpoint_path,
             util::RunTelemetry* telemetry) {
  double load_seconds = 0.0;
  util::StatusOr<std::unique_ptr<serve::InferenceEngine>> engine = [&] {
    util::TraceSpan span("load_checkpoint");
    auto loaded = serve::InferenceEngine::Load(checkpoint_path);
    load_seconds = span.ElapsedSeconds();
    return loaded;
  }();
  if (!engine.ok()) {
    std::fprintf(stderr, "FAIL: Load: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  telemetry->RecordStage("load_checkpoint", load_seconds);

  // The training process's InferTheta output is the bitwise oracle.
  // bench_serve --mode=train writes it; checkpoints produced elsewhere
  // (e.g. bench_parallel_training --checkpoint=) have none, and then the
  // replay only verifies that every query serves successfully.
  util::StatusOr<tensor::Tensor> expected =
      ReadExpectedTheta(checkpoint_path + ".expected");
  if (!expected.ok()) {
    std::fprintf(stderr,
                 "note: no bitwise oracle (%s); serving without the "
                 "equivalence check\n",
                 expected.status().ToString().c_str());
  }

  // Replay test documents round-robin so every query has a known-good
  // answer from the training process. The cycle is capped at half the
  // query budget so the second pass over a document is a cache hit and
  // the bench exercises both paths.
  if (expected.ok() &&
      expected->rows() != context.dataset.test.num_docs()) {
    std::fprintf(stderr,
                 "FAIL: oracle has %lld rows but the test split has %d "
                 "docs; rerun both modes with the same --preset/--docs\n",
                 static_cast<long long>(expected->rows()),
                 context.dataset.test.num_docs());
    return 1;
  }
  const int num_docs = context.dataset.test.num_docs();
  const int cycle = std::min(num_docs, std::max(1, num_queries / 2));
  int64_t mismatched = 0;
  int served = 0;
  double serve_seconds = 0.0;
  {
    util::TraceSpan span("serve_queries");
    for (int q = 0; q < num_queries; ++q) {
      const int d = q % cycle;
      const text::Document& doc = context.dataset.test.doc(d);
      if (doc.entries.empty()) continue;
      serve::InferenceEngine::ThetaResult theta =
          (*engine)->InferTheta(ToBowDoc(doc));
      if (!theta.ok()) {
        std::fprintf(stderr, "FAIL: query %d: %s\n", q,
                     theta.status().ToString().c_str());
        return 1;
      }
      ++served;
      if (expected.ok() &&
          std::memcmp(theta->data(), expected->row(d),
                      theta->size() * sizeof(float)) != 0) {
        ++mismatched;
      }
    }
    serve_seconds = span.ElapsedSeconds();
  }
  telemetry->RecordStage("serve_queries", serve_seconds,
                         {{"queries", double(served)},
                          {"bitwise_mismatches", double(mismatched)}});

  // Topic browsing endpoints must also work on the cold-started engine.
  for (int k = 0; k < (*engine)->num_topics(); ++k) {
    auto words = (*engine)->TopicTopWords(k, 10);
    if (!words.ok() || words->empty()) {
      std::fprintf(stderr, "FAIL: TopicTopWords(%d)\n", k);
      return 1;
    }
  }
  auto top = (*engine)->TopTopics(ToBowDoc(context.dataset.test.doc(0)), 3);
  if (!top.ok()) {
    std::fprintf(stderr, "FAIL: TopTopics: %s\n",
                 top.status().ToString().c_str());
    return 1;
  }

  (*engine)->EmitTelemetry(telemetry);
  const serve::InferenceEngine::Stats stats = (*engine)->stats();

  util::TableWriter table({"Metric", "Value"});
  table.AddRow("queries", {double(served)});
  table.AddRow("bitwise_mismatches", {double(mismatched)});
  table.AddRow("cache_hits", {double(stats.cache_hits)});
  table.AddRow("batches", {double(stats.batches)});
  table.AddRow("max_batch_size", {double(stats.max_batch_size_seen)});
  table.AddRow("load_seconds", {load_seconds});
  table.AddRow("serve_seconds", {serve_seconds});
  bench::EmitTable(
      util::StrFormat("Cold-start serving of %s", checkpoint_path.c_str()),
      "serve_" + context.config.name, table);

  telemetry->RecordManifest({{"queries", double(served)},
                             {"bitwise_mismatches", double(mismatched)},
                             {"cache_hits", double(stats.cache_hits)},
                             {"load_seconds", load_seconds}});

  if (mismatched > 0) {
    std::fprintf(stderr,
                 "FAIL: %lld of %d served thetas differ from the training "
                 "process\n",
                 static_cast<long long>(mismatched), served);
    return 1;
  }
  if (stats.cache_hits == 0 && num_queries > cycle) {
    std::fprintf(stderr, "FAIL: repeated queries produced no cache hits\n");
    return 1;
  }
  std::printf("OK: %d queries served%s (cache_hits=%lld)\n", served,
              expected.ok() ? " bitwise-identical" : "",
              static_cast<long long>(stats.cache_hits));
  return 0;
}

int64_t FileBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<int64_t>(st.st_size);
}

// --- --mode=hotswap -------------------------------------------------------

// Serves `n` non-empty docs of `slice` through the registry and bitwise-
// compares each theta against `oracle` (an engine pinned to the expected
// model). Returns false (with a diagnostic) on any failed request or
// mismatch.
bool ServeAndVerify(serve::ModelRegistry& registry,
                    serve::InferenceEngine& oracle,
                    const text::BowCorpus& slice, int n, const char* what,
                    int64_t* failures) {
  int checked = 0;
  for (int d = 0; d < slice.num_docs() && checked < n; ++d) {
    const text::Document& doc = slice.docs()[d];
    if (doc.entries.empty()) continue;
    serve::ModelRegistry::ThetaResult served =
        registry.InferTheta(ToBowDoc(doc));
    if (!served.ok()) {
      std::fprintf(stderr, "FAIL [%s]: request %d failed: %s\n", what, d,
                   served.status().ToString().c_str());
      ++*failures;
      return false;
    }
    serve::InferenceEngine::ThetaResult expected =
        oracle.InferTheta(ToBowDoc(doc));
    if (!expected.ok()) {
      std::fprintf(stderr, "FAIL [%s]: oracle request %d failed: %s\n", what,
                   d, expected.status().ToString().c_str());
      return false;
    }
    if (served->size() != expected->size() ||
        std::memcmp(served->data(), expected->data(),
                    served->size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "FAIL [%s]: doc %d served theta differs bitwise\n",
                   what, d);
      return false;
    }
    ++checked;
  }
  return checked > 0;
}

int RunHotSwap(int num_slices, int min_swaps, bool chaos, int num_queries,
               util::RunTelemetry* telemetry) {
  // A streamed theme shift: popularity drifts hard between slices, so the
  // continually-trained topics genuinely move under the server.
  text::DynamicConfig stream;
  stream.base = text::Preset20NG(1.0);
  stream.base.num_themes = 12;
  stream.base.words_per_theme = 24;
  stream.base.preprocess.min_doc_frequency = 3;
  stream.num_slices = num_slices;
  stream.docs_per_slice = 250;
  stream.drift = 1.0;
  const text::DynamicDataset dataset = GenerateDynamic(stream);
  telemetry->RecordStage("generate_stream", 0.0,
                         {{"slices", double(dataset.slices.size())},
                          {"vocab", double(dataset.vocab.size())}});

  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 24;
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(dataset.slices[0], embed_config);

  core::OnlineContraTopic::Options online_options;
  online_options.train.num_topics = 8;
  online_options.train.epochs = 4;
  online_options.train.encoder_hidden = 48;
  online_options.train.encoder_layers = 1;
  online_options.contra.lambda = 20.0f;
  online_options.epochs_per_slice = 2;
  online_options.decay = 0.6;
  core::OnlineContraTopic online(embeddings, online_options);
  online.SetTelemetry(telemetry);

  const std::string ckpt_base =
      std::string(bench::kResultsDir) + "/hotswap_slice";
  auto slice_ckpt = [&](int slice) {
    return ckpt_base + std::to_string(slice) + ".ckpt";
  };

  // Slice 0 bootstraps the registry.
  online.FitSlice(dataset.slices[0]);
  util::Status saved = serve::SaveCheckpoint(
      online.mutable_model(), dataset.vocab, slice_ckpt(0));
  if (!saved.ok()) {
    std::fprintf(stderr, "FAIL: initial SaveCheckpoint: %s\n",
                 saved.ToString().c_str());
    return 1;
  }

  serve::ModelRegistry::Options registry_options;
  // The stream legitimately churns topics (that is the point), so the
  // interpretability gate runs in report-only posture: churn is measured
  // and logged per swap, and the coherence reference guards against
  // collapse without rejecting honest drift.
  registry_options.gate.max_top_word_churn = 1.0;
  registry_options.gate.max_coherence_drop = 0.5;
  for (int d = 0; d < dataset.slices[0].num_docs() &&
                  registry_options.gate.probe_docs.size() < 4;
       ++d) {
    const text::Document& doc = dataset.slices[0].docs()[d];
    if (!doc.entries.empty()) {
      registry_options.gate.probe_docs.push_back(ToBowDoc(doc));
    }
  }
  registry_options.swap_retry.max_attempts = 4;
  registry_options.swap_retry.base_backoff_ms = 0.01;
  registry_options.swap_retry.max_backoff_ms = 0.1;
  registry_options.probation_requests = 64;

  auto registry = serve::ModelRegistry::Create(slice_ckpt(0),
                                               registry_options);
  if (!registry.ok()) {
    std::fprintf(stderr, "FAIL: ModelRegistry::Create: %s\n",
                 registry.status().ToString().c_str());
    return 1;
  }
  (*registry)->SetTelemetry(telemetry);

  // Chaos: each registry.* site fires probabilistically but at most 3
  // times per swap (re-armed each slice), strictly under the 4-attempt
  // retry budget -- so every injected fault must retry to success and a
  // reject/rollback is never attributable to chaos alone.
  const char* kChaosSites[] = {"registry.load", "registry.validate",
                               "registry.swap", "registry.publish"};
  auto arm_chaos = [&](size_t slice) {
    if (!chaos) return;
    // Arm() resets each site's call counter, so the per-slice seed is what
    // makes the probability draws differ between swaps (the schedule hashes
    // seed/site/call only); the run stays deterministic end to end.
    util::FaultInjector::Global().SetSeed(20260808 +
                                          static_cast<uint64_t>(slice));
    for (const char* site : kChaosSites) {
      util::FaultSpec spec;
      spec.probability = 0.35;
      spec.max_fires = 3;
      util::FaultInjector::Global().Arm(site, spec);
    }
  };

  int64_t failures = 0;
  int published = 0;
  int total_retries = 0;
  bool ok = true;
  double mean_churn = 0.0;

  for (size_t slice = 1; slice < dataset.slices.size(); ++slice) {
    // Queries flow against the incumbent while the next model trains.
    auto incumbent_oracle =
        serve::InferenceEngine::Load(slice_ckpt(static_cast<int>(slice) - 1));
    if (!incumbent_oracle.ok()) {
      std::fprintf(stderr, "FAIL: oracle load: %s\n",
                   incumbent_oracle.status().ToString().c_str());
      return 1;
    }
    if (!ServeAndVerify(**registry, **incumbent_oracle,
                        dataset.slices[slice], num_queries, "pre-swap",
                        &failures)) {
      ok = false;
    }

    const core::OnlineContraTopic::SliceReport report =
        online.FitSlice(dataset.slices[slice]);
    saved = serve::SaveCheckpoint(online.mutable_model(), dataset.vocab,
                                  slice_ckpt(static_cast<int>(slice)));
    if (!saved.ok()) {
      std::fprintf(stderr, "FAIL: SaveCheckpoint(slice %zu): %s\n", slice,
                   saved.ToString().c_str());
      return 1;
    }

    // The swap gate's coherence reference tracks the decayed stream
    // statistics, exactly like the training kernel.
    (*registry)->SetCoherenceReference(std::make_shared<eval::NpmiMatrix>(
        eval::NpmiMatrix::FromCounts(*online.counts())));

    arm_chaos(slice);
    auto swap =
        (*registry)->TryPublish(slice_ckpt(static_cast<int>(slice)));
    if (chaos) {
      for (const char* site : kChaosSites) {
        util::FaultInjector::Global().Disarm(site);
      }
    }
    if (!swap.ok()) {
      std::fprintf(stderr, "FAIL: TryPublish(slice %zu): %s\n", slice,
                   swap.status().ToString().c_str());
      return 1;
    }
    total_retries += swap->retries;
    if (swap->outcome != serve::ModelRegistry::SwapOutcome::kPublished) {
      std::fprintf(stderr, "FAIL: slice %zu swap rejected: %s\n", slice,
                   swap->reject_reason.ToString().c_str());
      ok = false;
      continue;
    }
    ++published;
    mean_churn += swap->top_word_churn;
    std::printf(
        "swap %d: version %lld published (churn %.3f, npmi %.4f -> %.4f, "
        "retries %d, slice npmi_delta %+.4f)\n",
        published, static_cast<long long>(swap->version),
        swap->top_word_churn, swap->incumbent_coherence,
        swap->candidate_coherence, swap->retries, report.npmi_delta);

    // Post-swap traffic must come from the new model, bitwise.
    auto swapped_oracle =
        serve::InferenceEngine::Load(slice_ckpt(static_cast<int>(slice)));
    if (!swapped_oracle.ok()) {
      std::fprintf(stderr, "FAIL: post-swap oracle load: %s\n",
                   swapped_oracle.status().ToString().c_str());
      return 1;
    }
    if (!ServeAndVerify(**registry, **swapped_oracle, dataset.slices[slice],
                        num_queries, "post-swap", &failures)) {
      ok = false;
    }
  }
  if (published > 0) mean_churn /= published;

  // Rejected-swap leg: a bit-flipped candidate must bounce off the gate
  // (kDataLoss) and leave serving bitwise-identical to the incumbent.
  const int last_slice = static_cast<int>(dataset.slices.size()) - 1;
  const int64_t version_before = (*registry)->current_version();
  {
    std::ifstream in(slice_ckpt(last_slice), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
    const std::string corrupt_path = ckpt_base + "_corrupt.ckpt";
    std::ofstream out(corrupt_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    auto rejected = (*registry)->TryPublish(corrupt_path);
    if (!rejected.ok() ||
        rejected->outcome != serve::ModelRegistry::SwapOutcome::kRejected) {
      std::fprintf(stderr,
                   "FAIL: corrupt candidate was not rejected at the gate\n");
      ok = false;
    }
  }
  auto final_oracle = serve::InferenceEngine::Load(slice_ckpt(last_slice));
  if (!final_oracle.ok()) return 1;
  if ((*registry)->current_version() != version_before ||
      !ServeAndVerify(**registry, **final_oracle, dataset.slices[last_slice],
                      num_queries / 2, "post-reject", &failures)) {
    std::fprintf(stderr, "FAIL: rejected swap disturbed serving\n");
    ok = false;
  }

  // Rollback leg: republish the previous slice's model so the new slot is
  // on probation, open its breaker, and prove the watchdog rolls back
  // with zero failed requests -- then re-verify serving bitwise against a
  // no-swap control engine pinned to the pre-swap checkpoint.
  int64_t rolled_back = 0;
  {
    auto swap = (*registry)->TryPublish(slice_ckpt(last_slice - 1));
    if (!swap.ok() ||
        swap->outcome != serve::ModelRegistry::SwapOutcome::kPublished) {
      std::fprintf(stderr, "FAIL: rollback-leg publish did not land\n");
      ok = false;
    } else {
      if (chaos) {
        util::FaultSpec spec;
        spec.every_nth = 1;  // rollback retries through an always-on site
        util::FaultInjector::Global().Arm("registry.rollback", spec);
      }
      std::shared_ptr<serve::InferenceEngine> sick =
          (*registry)->current_engine();
      for (int i = 0; i < 3; ++i) sick->breaker().RecordFailure();
      // The next requests ride the watchdog: rollback happens before
      // dispatch, so they are served by the restored incumbent.
      if (!ServeAndVerify(**registry, **final_oracle,
                          dataset.slices[last_slice], num_queries / 2,
                          "post-rollback", &failures)) {
        ok = false;
      }
      if (chaos) util::FaultInjector::Global().Disarm("registry.rollback");
      rolled_back = (*registry)->stats().rolled_back;
      if (rolled_back != 1 ||
          (*registry)->current_version() != version_before) {
        std::fprintf(stderr, "FAIL: probation breaker did not roll back\n");
        ok = false;
      }
    }
  }

  const serve::ModelRegistry::Stats stats = (*registry)->stats();
  if (published < min_swaps) {
    std::fprintf(stderr, "FAIL: only %d swaps published (need >= %d)\n",
                 published, min_swaps);
    ok = false;
  }
  if (failures != 0) {
    std::fprintf(stderr,
                 "FAIL: %lld requests failed; swapping must never cost a "
                 "request\n",
                 static_cast<long long>(failures));
    ok = false;
  }
  if (chaos && total_retries == 0) {
    std::fprintf(stderr,
                 "FAIL: chaos was armed but no fault ever fired; the gate "
                 "proved nothing\n");
    ok = false;
  }

  util::TableWriter table({"Metric", "Value"});
  table.AddRow("slices", {double(dataset.slices.size())});
  table.AddRow("swaps_published", {double(published)});
  table.AddRow("swaps_rejected", {double(stats.rejected)});
  table.AddRow("rolled_back", {double(rolled_back)});
  table.AddRow("chaos_retries", {double(total_retries)});
  table.AddRow("requests", {double(stats.requests)});
  table.AddRow("failed_requests", {double(failures)});
  table.AddRow("mean_top_word_churn", {mean_churn});
  bench::EmitTable("Continual serving with validation-gated hot swap",
                   "serve_hotswap", table);

  telemetry->RecordManifest({{"swaps_published", double(published)},
                             {"swaps_rejected", double(stats.rejected)},
                             {"rolled_back", double(rolled_back)},
                             {"chaos_retries", double(total_retries)},
                             {"requests", double(stats.requests)},
                             {"failed_requests", double(failures)}});
  if (ok) {
    std::printf(
        "OK: %d swaps published under chaos, %lld requests served, zero "
        "failures, reject+rollback bitwise-verified\n",
        published, static_cast<long long>(stats.requests));
  }
  return ok ? 0 : 1;
}

// One serving-precision leg of --mode=precision.
struct PrecisionLeg {
  tensor::ServePrecision precision;
  double docs_per_sec = 0.0;
  int64_t checkpoint_bytes = 0;
  double theta_max_abs_delta = 0.0;  // vs the fp32 leg; 0 for fp32
  bool top_words_match = true;       // engine TopicTopWords vs fp32
};

// Calibrated batched-InferTheta throughput at `precision`: docs/sec over
// the test split, best of 3 repetitions of ~0.2 s each. The first call
// (outside the timed region) warms the model's packed-weight caches.
double MeasureThroughput(topicmodel::NeuralTopicModel& model,
                         const text::BowCorpus& corpus,
                         tensor::ServePrecision precision) {
  tensor::ScopedServePrecision scoped(precision);
  util::Stopwatch sw;
  model.InferTheta(corpus);
  const double once = std::max(1e-6, sw.ElapsedSeconds());
  const int iters = std::max(1, static_cast<int>(0.2 / once));
  double best_sec = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    sw.Restart();
    for (int i = 0; i < iters; ++i) model.InferTheta(corpus);
    best_sec = std::min(best_sec, sw.ElapsedSeconds() / iters);
  }
  return corpus.num_docs() / best_sec;
}

int RunPrecision(const bench::ExperimentContext& context,
                 const bench::BenchConfig& bench_config,
                 const std::string& checkpoint_path,
                 const std::string& precision_filter,
                 util::RunTelemetry* telemetry) {
  using tensor::ServePrecision;
  // The sweep reuses --mode=train's checkpoint when present; a missing
  // one is trained in-process so the mode works standalone in CI.
  if (FileBytes(checkpoint_path) < 0) {
    std::printf("no checkpoint at %s; training one first\n",
                checkpoint_path.c_str());
    const int rc = RunTrain(context, bench_config, checkpoint_path,
                            telemetry);
    if (rc != 0) return rc;
  }

  util::StatusOr<serve::Checkpoint> base =
      serve::ReadCheckpoint(checkpoint_path);
  if (!base.ok()) {
    std::fprintf(stderr, "FAIL: ReadCheckpoint: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  util::StatusOr<std::unique_ptr<topicmodel::NeuralTopicModel>> model =
      serve::RestoreModel(*base);
  if (!model.ok()) {
    std::fprintf(stderr, "FAIL: RestoreModel: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  std::vector<PrecisionLeg> legs;
  legs.push_back({ServePrecision::kFp32});
  for (ServePrecision p : {ServePrecision::kBf16, ServePrecision::kInt8}) {
    if (precision_filter == "all" ||
        precision_filter == tensor::ServePrecisionName(p)) {
      legs.push_back({p});
    }
  }

  // fp32 baselines: theta over the test split and the engine's top-word
  // lists, which every other leg must reproduce.
  tensor::Tensor fp32_theta;
  {
    tensor::ScopedServePrecision scoped(ServePrecision::kFp32);
    fp32_theta = (*model)->InferTheta(context.dataset.test);
  }
  std::vector<std::vector<std::string>> fp32_top_words;

  bool ok = true;
  for (PrecisionLeg& leg : legs) {
    const char* name = tensor::ServePrecisionName(leg.precision);
    util::TraceSpan span(std::string("precision_leg_") + name);

    // The leg's checkpoint: the original file for fp32, a re-encoded
    // quantized copy (same tensors, reduced storage) otherwise.
    std::string leg_path = checkpoint_path;
    if (leg.precision != ServePrecision::kFp32) {
      serve::Checkpoint quantized = *base;
      quantized.storage_precision = leg.precision;
      leg_path = checkpoint_path + "." + name;
      util::Status written = serve::WriteCheckpoint(quantized, leg_path);
      if (!written.ok()) {
        std::fprintf(stderr, "FAIL: WriteCheckpoint(%s): %s\n", name,
                     written.ToString().c_str());
        return 1;
      }
    }
    leg.checkpoint_bytes = FileBytes(leg_path);

    leg.docs_per_sec =
        MeasureThroughput(**model, context.dataset.test, leg.precision);

    if (leg.precision != ServePrecision::kFp32) {
      tensor::ScopedServePrecision scoped(leg.precision);
      const tensor::Tensor theta = (*model)->InferTheta(context.dataset.test);
      for (int64_t i = 0; i < theta.numel(); ++i) {
        leg.theta_max_abs_delta =
            std::max(leg.theta_max_abs_delta,
                     double(std::fabs(theta.data()[i] - fp32_theta.data()[i])));
      }
    }

    // A server cold-started from the leg's file must answer queries and
    // keep the fp32 topic rankings.
    serve::InferenceEngine::Options options;
    options.precision = leg.precision;
    auto engine = serve::InferenceEngine::Load(leg_path, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "FAIL: Load(%s): %s\n", leg_path.c_str(),
                   engine.status().ToString().c_str());
      return 1;
    }
    auto theta = (*engine)->InferTheta(ToBowDoc(context.dataset.test.doc(0)));
    if (!theta.ok()) {
      std::fprintf(stderr, "FAIL: %s engine InferTheta: %s\n", name,
                   theta.status().ToString().c_str());
      return 1;
    }
    for (int k = 0; k < (*engine)->num_topics(); ++k) {
      auto words = (*engine)->TopicTopWords(k, 10);
      if (!words.ok() || words->empty()) {
        std::fprintf(stderr, "FAIL: %s TopicTopWords(%d)\n", name, k);
        return 1;
      }
      if (leg.precision == ServePrecision::kFp32) {
        fp32_top_words.push_back(*std::move(words));
      } else if (*words != fp32_top_words[k]) {
        leg.top_words_match = false;
      }
    }

    telemetry->RecordStage(std::string("precision_") + name,
                           span.ElapsedSeconds(),
                           {{"docs_per_sec", leg.docs_per_sec},
                            {"checkpoint_bytes",
                             double(leg.checkpoint_bytes)},
                            {"theta_max_abs_delta",
                             leg.theta_max_abs_delta}});
  }

  // The fp32 and int8 legs are timed minutes apart (the theta sweep and
  // engine cold-start run in between), so a host-wide stall during either
  // one skews the ratio even though each leg is already best-of-3. If the
  // ratio lands under the gate, re-time the two legs back to back and keep
  // each leg's best observed throughput before judging.
  {
    PrecisionLeg* int8_leg = nullptr;
    for (PrecisionLeg& leg : legs) {
      if (leg.precision == ServePrecision::kInt8) int8_leg = &leg;
    }
    for (int retry = 0;
         int8_leg != nullptr && retry < 2 &&
         int8_leg->docs_per_sec < 2.0 * legs[0].docs_per_sec;
         ++retry) {
      legs[0].docs_per_sec =
          std::max(legs[0].docs_per_sec,
                   MeasureThroughput(**model, context.dataset.test,
                                     ServePrecision::kFp32));
      int8_leg->docs_per_sec =
          std::max(int8_leg->docs_per_sec,
                   MeasureThroughput(**model, context.dataset.test,
                                     ServePrecision::kInt8));
    }
  }

  // The §15 contract, enforced leg by leg.
  const double fp32_docs_per_sec = legs[0].docs_per_sec;
  double int8_speedup = 0.0;
  for (const PrecisionLeg& leg : legs) {
    const char* name = tensor::ServePrecisionName(leg.precision);
    if (!leg.top_words_match) {
      std::fprintf(stderr,
                   "FAIL: %s TopicTopWords diverged from fp32 (the "
                   "checkpoint's id lists must be precision-invariant)\n",
                   name);
      ok = false;
    }
    const double tolerance = leg.precision == ServePrecision::kBf16 ? 0.05
                             : leg.precision == ServePrecision::kInt8
                                 ? 0.15
                                 : 0.0;
    if (leg.theta_max_abs_delta > tolerance) {
      std::fprintf(stderr,
                   "FAIL: %s theta max-abs-delta %.6f exceeds the "
                   "documented %.2f tolerance\n",
                   name, leg.theta_max_abs_delta, tolerance);
      ok = false;
    }
    if (leg.precision == ServePrecision::kInt8) {
      int8_speedup = leg.docs_per_sec / fp32_docs_per_sec;
      if (int8_speedup < 2.0) {
        std::fprintf(stderr,
                     "FAIL: int8 InferTheta throughput is %.2fx fp32; "
                     "the serving tier promises >= 2x\n",
                     int8_speedup);
        ok = false;
      }
    }
  }

  util::TableWriter table({"precision", "docs/sec", "speedup_vs_fp32",
                           "ckpt_bytes", "ckpt_ratio", "theta_max_abs_delta",
                           "top_words_match"});
  for (const PrecisionLeg& leg : legs) {
    char docs[32], speed[32], ratio[32], delta[32];
    std::snprintf(docs, sizeof(docs), "%.0f", leg.docs_per_sec);
    std::snprintf(speed, sizeof(speed), "%.2f",
                  leg.docs_per_sec / fp32_docs_per_sec);
    std::snprintf(ratio, sizeof(ratio), "%.2f",
                  double(legs[0].checkpoint_bytes) /
                      double(leg.checkpoint_bytes));
    std::snprintf(delta, sizeof(delta), "%.2e", leg.theta_max_abs_delta);
    table.AddRow({tensor::ServePrecisionName(leg.precision), docs, speed,
                  std::to_string(leg.checkpoint_bytes), ratio, delta,
                  leg.top_words_match ? "yes" : "NO"});
  }
  bench::EmitTable(
      util::StrFormat("Serving precision sweep of %s",
                      checkpoint_path.c_str()),
      "serve_precision_" + context.config.name, table);

  const std::string json_path =
      std::string(bench::kResultsDir) + "/BENCH_serve_precision.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"dataset\": \"%s\",\n", context.config.name.c_str());
  std::fprintf(f, "  \"test_docs\": %d,\n", context.dataset.test.num_docs());
  std::fprintf(f, "  \"legs\": {");
  for (size_t i = 0; i < legs.size(); ++i) {
    const PrecisionLeg& leg = legs[i];
    std::fprintf(f,
                 "%s\n    \"%s\": {\"docs_per_sec\": %.1f, "
                 "\"speedup_vs_fp32\": %.3f, \"checkpoint_bytes\": %lld, "
                 "\"theta_max_abs_delta\": %.3e, \"top_words_match\": %s}",
                 i == 0 ? "" : ",",
                 tensor::ServePrecisionName(leg.precision), leg.docs_per_sec,
                 leg.docs_per_sec / fp32_docs_per_sec,
                 static_cast<long long>(leg.checkpoint_bytes),
                 leg.theta_max_abs_delta,
                 leg.top_words_match ? "true" : "false");
  }
  std::fprintf(f, "\n  },\n  \"int8_speedup_vs_fp32\": %.3f,\n",
               int8_speedup);
  std::fprintf(f, "  \"contract_ok\": %s\n}\n", ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  telemetry->RecordManifest(
      {{"fp32_docs_per_sec", fp32_docs_per_sec},
       {"int8_speedup_vs_fp32", int8_speedup},
       {"contract_ok", ok ? 1.0 : 0.0}});
  if (ok) std::printf("OK: precision sweep upheld the tier contract\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::BenchConfig bench_config = bench::ParseBenchConfig(flags);
  const std::string mode = flags.GetString("mode", "train");
  const std::string dataset_name =
      flags.GetString("preset", flags.GetString("dataset", "20ng-sim"));
  const int num_queries = flags.GetInt("queries", 100);

  ::mkdir(bench::kResultsDir, 0755);
  const std::string checkpoint_path =
      bench_config.checkpoint_path.empty()
          ? std::string(bench::kResultsDir) + "/serve_" + dataset_name +
                ".ckpt"
          : bench_config.checkpoint_path;

  util::RunTelemetry::Options telemetry_options;
  telemetry_options.path =
      bench_config.telemetry_path.empty()
          ? std::string(bench::kResultsDir) + "/telemetry_serve_" +
                dataset_name + "_" + mode + ".jsonl"
          : bench_config.telemetry_path;
  util::RunTelemetry telemetry(telemetry_options);
  util::MetricsRegistry::Global().Reset();
  util::Tracer::Global().Reset();
  telemetry.RecordRunStart(
      "serve_bench[" + mode + "]",
      {{"dataset", dataset_name},
       {"mode", mode},
       {"checkpoint", checkpoint_path},
       {"queries", std::to_string(num_queries)},
       {"epochs", std::to_string(bench_config.train.epochs)},
       {"topics", std::to_string(bench_config.train.num_topics)},
       {"seed", std::to_string(bench_config.train.seed)}});

  if (mode == "hotswap") {
    // The hot-swap gate generates its own dynamic stream; the static
    // experiment context is not needed.
    const int slices = flags.GetInt("slices", 7);
    const int min_swaps = flags.GetInt("min-swaps", 5);
    const bool chaos = flags.GetInt("chaos", 1) != 0;
    return RunHotSwap(slices, min_swaps, chaos,
                      flags.GetInt("swap-queries", 24), &telemetry);
  }

  const bench::ExperimentContext context =
      bench::LoadExperiment(dataset_name, bench_config.doc_scale);

  if (mode == "train") {
    return RunTrain(context, bench_config, checkpoint_path, &telemetry);
  }
  if (mode == "serve") {
    return RunServe(context, num_queries, checkpoint_path, &telemetry);
  }
  if (mode == "precision") {
    const std::string precision = flags.GetString("precision", "all");
    tensor::ServePrecision parsed;
    if (precision != "all" &&
        !tensor::ParseServePrecisionName(precision, &parsed)) {
      std::fprintf(stderr,
                   "unknown --precision=%s (want all|fp32|bf16|int8)\n",
                   precision.c_str());
      return 2;
    }
    return RunPrecision(context, bench_config, checkpoint_path, precision,
                        &telemetry);
  }
  std::fprintf(stderr,
               "unknown --mode=%s (want train|serve|hotswap|precision)\n",
               mode.c_str());
  return 2;
}
